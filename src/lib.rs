//! # drt — the Declarative Real-Time OSGi Component Model, in Rust
//!
//! Umbrella crate re-exporting the whole reproduction of Gui et al.,
//! *"A framework for adaptive real-time applications: the declarative
//! real-time OSGi component model"* (Middleware 2008):
//!
//! * [`drcom`] — the paper's contribution: declarative component
//!   contracts, the DRCR executive, hybrid RT/non-RT components, plus the
//!   future-work extensions (modes, enforcement, adaptation, assemblies).
//! * [`osgi`] — the module-framework substrate: bundles, LDAP-filtered
//!   service registry, Declarative Services, service tracking.
//! * [`rtos`] — the real-time substrate: a deterministic discrete-event
//!   simulator of an RTAI-like dual-kernel machine.
//!
//! Start at [`drcom::runtime::DrtRuntime`], or run the examples:
//!
//! ```console
//! cargo run --example quickstart
//! cargo run --release -p bench --bin table1   # the paper's Table 1
//! ```
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use drcom;
pub use osgi;
pub use rtos;

/// One-stop re-exports for applications, examples and tests: the runtime
/// and its control surface, component building blocks, the typed
/// observability layer, and the kernel configuration types.
pub mod prelude {
    pub use drcom::contracts::{
        ContractOutcome, LearningConfig, StochasticMonitor, UsageEstimator,
    };
    pub use drcom::descriptor::ComponentDescriptor;
    pub use drcom::drcr::{ComponentProvider, Drcr};
    pub use drcom::enforce::{ContractMonitor, EnforcementAction, EnforcementPolicy, Violation};
    pub use drcom::faults::{
        FaultInjector, FaultKind, FaultPlan, InjectionLog, LinkRates, NodeFaultKind, NodeFaultPlan,
        StormRates,
    };
    pub use drcom::federation::{FailoverAccounting, Federation, FederationConfig};
    pub use drcom::hybrid::{FnLogic, RtIo, RtLogic};
    pub use drcom::lifecycle::ComponentState;
    pub use drcom::manage::{ComponentControl, ManagementReply, RtComponentManagement};
    pub use drcom::model::{PortInterface, PropertyValue, BASE_MODE};
    pub use drcom::obs::{BridgeEvent, DrcrEvent, FedEndpoint, FedEvent, MetricsReport};
    pub use drcom::parallel::FleetBridge;
    pub use drcom::runtime::DrtRuntime;
    pub use drcom::supervise::{QuarantineRule, RestartPolicy, SupervisionConfig};
    pub use rtos::kernel::KernelConfig;
    pub use rtos::latency::TimerJitterModel;
    pub use rtos::shm::DataType;
    pub use rtos::time::{SimDuration, SimTime};
    pub use rtos::trace::KernelEvent;
}
