//! Federated DRCR: N kernel+shard nodes under a hub-synced global view.
//! Node failures must displace and re-admit (or quarantine, with typed
//! evidence) every affected component; partitioned minorities must keep
//! running under local admission and reconcile on heal; the whole thing
//! must replay byte-identically from its seed.

use drt::prelude::*;
use std::rc::Rc;

fn quiet() -> Box<dyn RtLogic> {
    Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
}

fn comp(name: &str, usage: f64) -> ComponentDescriptor {
    ComponentDescriptor::builder(name)
        .periodic(100, 0, 3)
        .cpu_usage(usage)
        .build()
        .unwrap()
}

#[test]
fn steady_state_federation_runs_all_shards_in_lockstep() {
    let config = FederationConfig::new(3, 1, 11);
    let mut fed = Federation::new(config, NodeFaultPlan::new(11));
    for node in 0..3u32 {
        for i in 0..3 {
            let name = format!("s{node}x{i}");
            assert!(fed.install(node, comp(&name, 0.1), quiet).unwrap());
            assert_eq!(fed.placement_of(&name), Some(node));
        }
    }
    fed.run_ticks(20);
    for node in 0..3 {
        assert!(fed.is_alive(node));
        assert!(!fed.is_degraded(node), "node {node} degraded spuriously");
        assert_eq!(fed.active_on(node), 3);
        let counters = fed.node_counters(node).unwrap();
        assert!(counters.dispatches > 0, "node {node} kernel never ran");
        assert_eq!(counters.deadline_misses, 0);
    }
    assert_eq!(fed.leaked_reservations(), 0);
    let report = fed.metrics_report();
    let sent = report
        .counters()
        .iter()
        .find(|(k, _)| k == "fed.heartbeats.sent")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(sent >= 3 * 20, "heartbeats undercounted: {sent}");
}

#[test]
fn node_crash_displaces_and_readmits_every_component() {
    let config = FederationConfig::new(4, 1, 42);
    let mut plan = NodeFaultPlan::new(42);
    plan = plan.at(10, NodeFaultKind::Crash { node: 2 });
    let mut fed = Federation::new(config, plan);
    let mut on_victim = Vec::new();
    for node in 0..4u32 {
        for i in 0..4 {
            let name = format!("n{node}c{i}");
            assert!(fed.install(node, comp(&name, 0.08), quiet).unwrap());
            if node == 2 {
                on_victim.push(name);
            }
        }
    }
    fed.run_ticks(40);

    assert!(!fed.is_alive(2));
    let acct = fed.accounting();
    assert_eq!(acct.displaced, 4, "all of node 2's roster displaced");
    assert_eq!(acct.admitted, 4, "every displaced component re-admitted");
    assert_eq!(acct.quarantined, 0);
    assert_eq!(acct.pending, 0);
    for name in &on_victim {
        let home = fed
            .placement_of(name)
            .unwrap_or_else(|| panic!("`{name}` lost its placement"));
        assert_ne!(home, 2);
        assert_eq!(
            fed.component_state_on(home, name),
            Some(ComponentState::Active),
            "`{name}` not active on its failover node {home}"
        );
    }
    // Robustness invariants on the survivors.
    assert_eq!(fed.leaked_reservations(), 0);
    assert_eq!(fed.deadline_misses_on_survivors(), 0);
    // The decision trail is typed: planned and admitted migrations exist.
    let planned = fed
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, FedEvent::MigrationPlanned { .. }))
        .count();
    let admitted = fed
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, FedEvent::MigrationAdmitted { .. }))
        .count();
    assert!(
        planned >= 4,
        "expected >=4 planned migrations, got {planned}"
    );
    assert_eq!(admitted, 4);
}

#[test]
fn unplaceable_failover_backs_off_then_quarantines_with_evidence() {
    // Two 1-CPU nodes. The survivor is already 70% reserved, so the
    // victim's 80% component can never fit: the failover supervisor must
    // grant backoff retries and then quarantine with a typed reason.
    let config = FederationConfig::new(2, 1, 7);
    let mut plan = NodeFaultPlan::new(7);
    plan = plan.at(8, NodeFaultKind::Crash { node: 1 });
    let mut fed = Federation::new(config, plan);
    assert!(fed.install(0, comp("busy", 0.7), quiet).unwrap());
    assert!(fed.install(1, comp("fat", 0.8), quiet).unwrap());
    fed.run_ticks(80);

    let acct = fed.accounting();
    assert_eq!(acct.displaced, 1);
    assert_eq!(acct.admitted, 0);
    assert_eq!(acct.quarantined, 1, "fat component must end quarantined");
    assert_eq!(acct.pending, 0);
    let evidence = fed.quarantine_evidence();
    assert!(
        evidence.contains_key("fat"),
        "quarantine evidence missing: {evidence:?}"
    );
    // The backoff schedule ran before quarantine.
    let retries = fed
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, FedEvent::FailoverRetryScheduled { .. }))
        .count();
    assert!(retries >= 1, "expected failover retries before quarantine");
    assert!(fed
        .events()
        .iter()
        .any(|(_, e)| matches!(e, FedEvent::FailoverQuarantined { .. })));
    // The survivor was never destabilised.
    assert_eq!(
        fed.component_state_on(0, "busy"),
        Some(ComponentState::Active)
    );
    assert_eq!(fed.deadline_misses_on_survivors(), 0);
    assert_eq!(fed.leaked_reservations(), 0);
}

#[test]
fn partitioned_minority_degrades_to_local_admission_and_reconciles_on_heal() {
    let config = FederationConfig::new(3, 1, 99);
    let mut plan = NodeFaultPlan::new(99);
    plan = plan.at(5, NodeFaultKind::Partition { isolated: vec![2] });
    plan = plan.at(40, NodeFaultKind::Heal);
    let mut fed = Federation::new(config, plan);
    for node in 0..3u32 {
        let name = format!("base{node}");
        assert!(fed.install(node, comp(&name, 0.1), quiet).unwrap());
    }
    // Run into the partition until the minority notices it lost the hub.
    fed.run_ticks(20);
    assert!(fed.is_degraded(2), "minority node must degrade, not halt");
    assert!(fed.is_alive(2));
    // Its fleet keeps running on local admission: a new arrival is
    // admitted by the local resolver, not the (unreachable) hub.
    assert!(fed.install(2, comp("locl", 0.1), quiet).unwrap());
    assert_eq!(
        fed.component_state_on(2, "locl"),
        Some(ComponentState::Active)
    );
    assert!(fed
        .events()
        .iter()
        .any(|(_, e)| matches!(e, FedEvent::LocalAdmission { node: 2, .. })));
    // The hub, meanwhile, declared node 2 failed and re-placed base2.
    fed.run_ticks(20); // heals at tick 40
    fed.run_ticks(20); // post-heal reconciliation
    assert!(!fed.is_degraded(2), "healed node must rejoin");
    assert!(fed
        .events()
        .iter()
        .any(|(_, e)| matches!(e, FedEvent::NodeRejoined { node: 2 })));
    // The locally-admitted arrival was adopted into the global view.
    assert_eq!(fed.placement_of("locl"), Some(2));
    // base2 has exactly one live copy, wherever the hub placed it.
    let home = fed.placement_of("base2").expect("base2 lost");
    assert_eq!(
        fed.component_state_on(home, "base2"),
        Some(ComponentState::Active)
    );
    if home != 2 {
        // The hub won: the stale copy on the rejoined minority retired.
        assert!(fed
            .events()
            .iter()
            .any(|(_, e)| matches!(e, FedEvent::ReconcileRetired { node: 2, .. })));
        assert_eq!(fed.component_state_on(2, "base2"), None);
    }
    assert_eq!(fed.leaked_reservations(), 0);
    assert_eq!(fed.deadline_misses_on_survivors(), 0);
}

#[test]
fn lossy_links_still_deliver_placements_at_least_once() {
    let config = FederationConfig::new(3, 1, 5);
    let mut plan = NodeFaultPlan::new(5).with_link_rates(LinkRates {
        drop: 0.25,
        delay: 0.3,
        delay_ticks: (1, 2),
    });
    plan = plan.at(12, NodeFaultKind::Crash { node: 1 });
    let mut fed = Federation::new(config, plan);
    for node in 0..3u32 {
        for i in 0..2 {
            let name = format!("l{node}x{i}");
            assert!(fed.install(node, comp(&name, 0.05), quiet).unwrap());
        }
    }
    fed.run_ticks(120);

    // Despite a 25% drop rate, the reliable placement protocol converged:
    // nothing stays in flight forever and nothing leaks.
    let acct = fed.accounting();
    assert_eq!(acct.pending, 0, "placements stuck in flight: {acct:?}");
    assert_eq!(acct.displaced, acct.admitted + acct.quarantined);
    assert!(acct.admitted >= 1, "lossy run admitted nothing: {acct:?}");
    assert_eq!(fed.leaked_reservations(), 0);
    let report = fed.metrics_report();
    let counter = |key: &str| {
        report
            .counters()
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(counter("fed.messages.dropped") > 0, "drop rate never bit");
    assert!(
        counter("fed.messages.retried") > 0,
        "at-least-once layer never retransmitted"
    );
    assert!(counter("fed.messages.delivered") > 0);
}

#[test]
fn federation_runs_replay_byte_identically() {
    let run = || {
        let config = FederationConfig::new(4, 2, 1234);
        let mut plan = NodeFaultPlan::new(1234).with_link_rates(LinkRates {
            drop: 0.15,
            delay: 0.2,
            delay_ticks: (1, 3),
        });
        plan = plan.at(9, NodeFaultKind::Crash { node: 3 });
        plan = plan.at(15, NodeFaultKind::Partition { isolated: vec![0] });
        plan = plan.at(45, NodeFaultKind::Heal);
        let mut fed = Federation::new(config, plan);
        for node in 0..4u32 {
            let wave: Vec<_> = (0..3)
                .map(|i| {
                    let name = format!("r{node}x{i}");
                    (
                        comp(&name, 0.06),
                        Rc::new(quiet) as Rc<dyn Fn() -> Box<dyn RtLogic>>,
                    )
                })
                .collect();
            fed.install_wave(node, wave).unwrap();
        }
        fed.run_ticks(90);
        let counters: Vec<_> = (0..4).map(|n| fed.node_counters(n).unwrap()).collect();
        (
            fed.render_events(),
            fed.metrics_report().to_text(),
            counters,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "event logs diverged between identical runs");
    assert_eq!(a.1, b.1, "metrics diverged between identical runs");
    assert_eq!(a.2, b.2, "kernel counters diverged between identical runs");
}
