//! Cross-crate integration: descriptors parsed from XML, bundles wired by
//! the OSGi layer, components activated by the DRCR, data moving through
//! the RT kernel, and management reached through LDAP-filtered registry
//! lookups — the whole Figure 3 stack in one place.

use drcom::drcr::PROP_COMPONENT_NAME;
use drcom::manage::{ManagementHandle, MANAGEMENT_SERVICE};
use drcom::resolve::{ResolverHandle, RESOLVER_SERVICE};
use drt::prelude::*;
use osgi::framework::{BundleActivator, BundleContext, NoopActivator};
use osgi::ldap::{Filter, Properties};
use osgi::manifest::BundleManifest;
use osgi::version::{Version, VersionRange};
use std::rc::Rc;

fn runtime() -> DrtRuntime {
    DrtRuntime::new(KernelConfig::new(23).with_timer(TimerJitterModel::ideal()))
}

const PRODUCER_XML: &str = r#"<drt:component name="prod" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Producer"/>
  <periodictask frequence="200" priority="2"/>
  <outport name="stream" interface="RTAI.Mailbox" type="Byte" size="8"/>
</drt:component>"#;

const CONSUMER_XML: &str = r#"<drt:component name="cons" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Consumer"/>
  <periodictask frequence="100" priority="3"/>
  <inport name="stream" interface="RTAI.Mailbox" type="Byte" size="8"/>
</drt:component>"#;

#[test]
fn mailbox_ports_connect_components() {
    let mut rt = runtime();
    rt.install_component(
        "demo.prod",
        ComponentProvider::from_xml(PRODUCER_XML, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let msg = [io.cycle() as u8; 4];
                let _ = io.write("stream", &msg).unwrap();
            }))
        })
        .unwrap(),
    )
    .unwrap();
    rt.install_component(
        "demo.cons",
        ComponentProvider::from_xml(CONSUMER_XML, || {
            Box::new(FnLogic(
                |io: &mut RtIo<'_, '_>| {
                    while let Ok(Some(_msg)) = io.read("stream") {}
                },
            ))
        })
        .unwrap(),
    )
    .unwrap();
    assert_eq!(rt.component_state("prod"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("cons"), Some(ComponentState::Active));
    rt.advance(SimDuration::from_secs(1));
    let kernel = rt.kernel();
    let mbx = kernel.mailboxes().get("stream").unwrap();
    assert!(mbx.sent_count() > 150, "sent {}", mbx.sent_count());
    assert!(
        mbx.received_count() > 150,
        "received {}",
        mbx.received_count()
    );
}

#[test]
fn management_services_are_ldap_discoverable() {
    let mut rt = runtime();
    for name in ["alpha", "beta", "gamma"] {
        let d = ComponentDescriptor::builder(name)
            .periodic(50, 0, 4)
            .cpu_usage(0.05)
            .build()
            .unwrap();
        rt.install_component(
            &format!("demo.{name}"),
            ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))),
        )
        .unwrap();
    }
    // Three management services, filterable by component name.
    let all = rt.framework().registry().find(MANAGEMENT_SERVICE, None);
    assert_eq!(all.len(), 3);
    let f = Filter::parse(&format!("({PROP_COMPONENT_NAME}=beta)")).unwrap();
    let found = rt.framework().registry().find(MANAGEMENT_SERVICE, Some(&f));
    assert_eq!(found.len(), 1);
    let handle = rt
        .framework()
        .registry()
        .get::<ManagementHandle>(found[0].id())
        .unwrap();
    assert_eq!(handle.0.component_name(), "beta");
    // Filter by declared CPU usage — resolvable because activation
    // publishes the contract as service properties.
    let f = Filter::parse("(drt.cpuusage<=0.05)").unwrap();
    assert_eq!(
        rt.framework()
            .registry()
            .find(MANAGEMENT_SERVICE, Some(&f))
            .len(),
        3
    );
}

#[test]
fn management_service_disappears_with_its_component() {
    let mut rt = runtime();
    let d = ComponentDescriptor::builder("tmp")
        .periodic(50, 0, 4)
        .cpu_usage(0.05)
        .build()
        .unwrap();
    let bundle = rt
        .install_component(
            "demo.tmp",
            ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))),
        )
        .unwrap();
    assert!(rt.management("tmp").is_some());
    rt.stop_bundle(bundle).unwrap();
    assert!(rt.management("tmp").is_none());
    assert!(rt
        .framework()
        .registry()
        .find(MANAGEMENT_SERVICE, None)
        .is_empty());
}

/// A bundle that registers a resolving service from its activator — the
/// paper's "customized resolving service plugged into the DRCR runtime by
/// using the OSGi service model", deployed as a real bundle.
struct VetoBundle;

impl BundleActivator for VetoBundle {
    fn start(&mut self, ctx: &mut BundleContext<'_>) -> Result<(), String> {
        ctx.register_service(
            &[RESOLVER_SERVICE],
            Rc::new(ResolverHandle(Rc::new(drcom::resolve::AlwaysReject(
                "site lockdown".into(),
            )))),
            Properties::new(),
        );
        Ok(())
    }
}

#[test]
fn resolver_bundle_lifecycle_gates_admissions() {
    let mut rt = runtime();
    let veto_bundle = rt
        .framework_mut()
        .install(
            BundleManifest::new("policy.veto", Version::new(1, 0, 0)),
            Box::new(VetoBundle),
        )
        .unwrap();
    rt.framework_mut().start(veto_bundle).unwrap();
    rt.process();

    let d = ComponentDescriptor::builder("calc")
        .periodic(100, 0, 2)
        .cpu_usage(0.1)
        .build()
        .unwrap();
    rt.install_component(
        "demo.calc",
        ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))),
    )
    .unwrap();
    assert_eq!(
        rt.component_state("calc"),
        Some(ComponentState::Unsatisfied)
    );

    // Stopping the policy bundle removes the veto; the DRCR re-resolves on
    // the Unregistering event.
    rt.framework_mut().stop(veto_bundle).unwrap();
    rt.process();
    assert_eq!(rt.component_state("calc"), Some(ComponentState::Active));
}

#[test]
fn plain_osgi_bundles_coexist_with_components() {
    let mut rt = runtime();
    // A library bundle exporting a package, and an app bundle importing it.
    let lib = rt
        .framework_mut()
        .install(
            BundleManifest::new("lib", Version::new(1, 2, 0))
                .exports("lib.api", Version::new(1, 2, 0)),
            Box::new(NoopActivator),
        )
        .unwrap();
    let app = rt
        .framework_mut()
        .install(
            BundleManifest::new("app", Version::new(1, 0, 0))
                .imports("lib.api", VersionRange::at_least(Version::new(1, 0, 0))),
            Box::new(NoopActivator),
        )
        .unwrap();
    rt.framework_mut().start(app).unwrap();
    rt.process();
    assert_eq!(
        rt.framework().bundle_state(app),
        Some(osgi::framework::BundleState::Active)
    );
    assert_eq!(
        rt.framework().bundle_state(lib),
        Some(osgi::framework::BundleState::Resolved)
    );
    // Components deploy fine alongside.
    let d = ComponentDescriptor::builder("calc")
        .periodic(100, 0, 2)
        .cpu_usage(0.1)
        .build()
        .unwrap();
    rt.install_component(
        "demo.calc",
        ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))),
    )
    .unwrap();
    assert_eq!(rt.component_state("calc"), Some(ComponentState::Active));
}

#[test]
fn cyclic_pipelines_co_activate() {
    // The smart-camera feedback loop: camera needs the tracker's ROI,
    // tracker needs the camera's frames.
    let mut rt = runtime();
    let cam = ComponentDescriptor::builder("cam")
        .periodic(100, 0, 2)
        .cpu_usage(0.1)
        .outport("frames", PortInterface::Shm, DataType::Byte, 16)
        .inport("roi", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    let trk = ComponentDescriptor::builder("trk")
        .periodic(50, 0, 3)
        .cpu_usage(0.1)
        .inport("frames", PortInterface::Shm, DataType::Byte, 16)
        .outport("roi", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    rt.install_component(
        "demo.cam",
        ComponentProvider::new(cam, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))),
    )
    .unwrap();
    assert_eq!(rt.component_state("cam"), Some(ComponentState::Unsatisfied));
    rt.install_component(
        "demo.trk",
        ComponentProvider::new(trk, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))),
    )
    .unwrap();
    assert_eq!(rt.component_state("cam"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("trk"), Some(ComponentState::Active));
    // And the cycle tears down together when one leaves.
    let bundle = rt.drcr().bundle_of("trk").unwrap();
    rt.stop_bundle(bundle).unwrap();
    assert_eq!(rt.component_state("cam"), Some(ComponentState::Unsatisfied));
}
