//! Contract enforcement end to end: the deterministic monitor's boundary
//! behaviour, the stochastic monitor's learn/refine/convict loop, and
//! kernel budget clamping under every executor (CI re-runs this suite
//! with `RTOS_EXECUTOR=parallel`).

use drt::prelude::*;
use drt::rtos::exec::{executor_from_env, DeterministicExecutor, Executor, ParallelExecutor};
use drt::rtos::kernel::TaskCtx;
use drt::rtos::task::FnBody;

fn runtime() -> DrtRuntime {
    DrtRuntime::new(KernelConfig::new(53).with_timer(TimerJitterModel::ideal()))
}

/// Claims `claim` of a 10 ms period, burns `burn_us` µs per cycle.
fn steady(name: &str, claim: f64, priority: u8, burn_us: u64) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(100, 0, priority)
        .cpu_usage(claim)
        .build()
        .unwrap();
    ComponentProvider::new(d, move || {
        Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_micros(burn_us));
        }))
    })
}

// ---------------------------------------------------------------------
// Deterministic monitor: tolerance boundary, both sides.
// ---------------------------------------------------------------------

#[test]
fn enforcement_tolerance_boundary_is_exact() {
    // The pure predicate draws the line: at the ceiling is legal, one
    // epsilon above is not. 0.5 × 1.5 = 0.75 exactly in binary floating
    // point, so no rounding slop is involved.
    let policy = EnforcementPolicy {
        tolerance: 1.5,
        ..EnforcementPolicy::default()
    };
    assert!(!policy.violates(0.75, 0.5));
    assert!(policy.violates(0.75 + f64::EPSILON, 0.5));
}

#[test]
fn monitor_judges_the_ceiling_inclusively_end_to_end() {
    // Ceiling = 0.10 × 1.2 = 0.12 of the period. A component burning
    // 1.1 ms of every 10 ms stays under it; one burning 1.35 ms does not.
    let mut rt = runtime();
    rt.install_component("b.under", steady("under", 0.10, 2, 1100))
        .unwrap();
    rt.install_component("b.above", steady("above", 0.10, 3, 1350))
        .unwrap();
    let mut monitor = ContractMonitor::new(EnforcementPolicy::default());
    monitor.check(&mut rt).unwrap();
    rt.advance(SimDuration::from_millis(505));
    let violations = monitor.check(&mut rt).unwrap();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].component, "above");
    assert!(violations[0].observed > 0.12 && violations[0].observed.is_finite());
}

// ---------------------------------------------------------------------
// Stochastic monitor: the refinement loop holds in the integration tier
// (and, because this suite also runs with RTOS_EXECUTOR=parallel in CI,
// under both executor configurations of the surrounding test process).
// ---------------------------------------------------------------------

#[test]
fn stochastic_refinement_reclaims_capacity_and_convicts_liars() {
    let mut rt = runtime();
    // Over-declarer: claims 60%, uses ~10%.
    rt.install_component("b.hog", steady("hog", 0.60, 2, 1000))
        .unwrap();
    // Under-declarer: claims 4%, really uses 12–18% via a lying plan.
    let plan = std::rc::Rc::new(FaultPlan::lying(0xD0C, 5_000, (1_200_000, 1_800_000)));
    let log = InjectionLog::shared();
    let d = ComponentDescriptor::builder("sneak")
        .periodic(100, 0, 3)
        .cpu_usage(0.04)
        .build()
        .unwrap();
    rt.install_component(
        "b.sneak",
        ComponentProvider::new(d, {
            let (plan, log) = (plan.clone(), log.clone());
            move || {
                FaultInjector::wrap(
                    plan.clone(),
                    log.clone(),
                    Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                        io.compute(SimDuration::from_micros(100));
                    })),
                )
            }
        }),
    )
    .unwrap();
    // Stranded peer: its 45% cannot sit next to a declared 60% + 4%.
    rt.install_component("b.wait", steady("wait", 0.45, 4, 4000))
        .unwrap();
    assert_eq!(
        rt.component_state("wait"),
        Some(ComponentState::Unsatisfied)
    );

    let mut monitor = StochasticMonitor::new(LearningConfig {
        min_samples: 50,
        ..LearningConfig::default()
    });
    for _ in 0..15 {
        rt.advance(SimDuration::from_millis(100));
        monitor.poll(&mut rt).unwrap();
    }
    // The hog's claim was refined down and the stranded peer re-admitted.
    assert!(monitor
        .outcomes()
        .iter()
        .any(|o| matches!(o, ContractOutcome::Refined { component, .. } if component == "hog")));
    assert_eq!(rt.component_state("hog"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("wait"), Some(ComponentState::Active));
    // The under-declarer was convicted on stochastic evidence and
    // quarantined through the supervise path.
    assert!(monitor.outcomes().iter().any(
        |o| matches!(o, ContractOutcome::Violation { component, .. } if component == "sneak")
    ));
    assert_eq!(rt.component_state("sneak"), Some(ComponentState::Disabled));
    assert!(rt
        .drcr()
        .quarantine_reason("sneak")
        .is_some_and(|r| r.contains("stochastic contract violation")));
}

// ---------------------------------------------------------------------
// Kernel budget clamping, executor-parameterized: the same lying fleet
// runs under the serial executor, the threaded executor, and whatever
// RTOS_EXECUTOR selects; budgets must clamp identically everywhere.
// ---------------------------------------------------------------------

#[test]
fn budget_clamping_is_identical_under_every_executor() {
    let build = || {
        let mut bridge = FleetBridge::new(2, 907).enforce_budgets(true);
        for cpu in 0..2u32 {
            // Claims 10% of a 1 ms period (budget 100 µs) but tries to
            // burn 500 µs per cycle; the kernel must clamp it.
            let liar = ComponentDescriptor::builder(&format!("liar{cpu}"))
                .periodic(1000, cpu, 2)
                .cpu_usage(0.10)
                .build()
                .unwrap();
            // Honest sibling on the same CPU; must never starve behind
            // the clamped liar.
            let work = ComponentDescriptor::builder(&format!("work{cpu}"))
                .periodic(1000, cpu, 3)
                .cpu_usage(0.10)
                .build()
                .unwrap();
            bridge = bridge
                .component(liar, || {
                    Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                        ctx.compute(SimDuration::from_micros(500));
                    }))
                })
                .component(work, || {
                    Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                        ctx.compute(SimDuration::from_micros(50));
                    }))
                });
        }
        bridge.build().unwrap()
    };
    let horizon = SimDuration::from_millis(50);
    let reference = DeterministicExecutor.run(&build(), horizon).unwrap();
    for cpu in 0..2u32 {
        let work = reference.task(&format!("work{cpu}")).unwrap();
        assert!(work.cycles >= 49, "work{cpu} starved at {}", work.cycles);
        assert_eq!(work.deadline_misses, 0);
        let liar = reference.task(&format!("liar{cpu}")).unwrap();
        assert!(liar.cycles >= 49, "clamping should not stall the liar");
    }
    let executors: Vec<Box<dyn Executor>> =
        vec![Box::new(ParallelExecutor::new(2)), executor_from_env()];
    for executor in executors {
        let outcome = executor.run(&build(), horizon).unwrap();
        // The fleet is quiescent (no cross-CPU IPC), so every executor
        // must reproduce the reference schedule exactly: same per-task
        // cycles/overruns/misses, same global counters.
        let mut expected = reference.tasks.clone();
        let mut got = outcome.tasks.clone();
        expected.sort_by(|a, b| a.name.cmp(&b.name));
        got.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(expected, got, "{} diverged", executor.name());
        assert_eq!(
            reference.counters,
            outcome.counters,
            "{} counters diverged",
            executor.name()
        );
    }
}
