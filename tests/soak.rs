//! Soak test: every subsystem on at once — stress load, budget
//! enforcement, contract monitoring, adaptation, mode switching and
//! component churn — over a sustained run. The system must stay consistent
//! and leak-free throughout.

use drcom::adapt::{AdaptationManager, GracefulDegradation};

use drcom::enforce::{ContractMonitor, EnforcementPolicy};
use drt::prelude::*;
use rtos::kernel::Kernel;
use rtos::latency::LoadMode;
use rtos::load::apply_load;
use std::cell::RefCell;
use std::rc::Rc;

fn provider(name: &str, hz: u32, usage: f64, modes: bool) -> ComponentProvider {
    let mut b = ComponentDescriptor::builder(name)
        .periodic(hz, 0, 3)
        .cpu_usage(usage)
        .property("importance", PropertyValue::Integer((usage * 100.0) as i64));
    if modes {
        b = b.mode("cheap", hz.max(10) / 10, usage / 10.0, 3);
    }
    let d = b.build().unwrap();
    let period_ns = 1_000_000_000 / u64::from(hz);
    let cost = SimDuration::from_nanos((period_ns as f64 * usage * 0.9) as u64);
    ComponentProvider::new(d, move || {
        Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
            io.compute(cost);
        }))
    })
}

#[test]
fn everything_at_once_stays_consistent() {
    let mut rt = DrtRuntime::new(
        KernelConfig::new(101)
            .with_timer(TimerJitterModel::ideal())
            .with_load_mode(LoadMode::Stress),
    );
    rt.drcr_mut().set_budget_enforcement(true);
    apply_load(&mut rt.kernel_mut(), LoadMode::Stress, 2).unwrap();

    let mut monitor = ContractMonitor::new(EnforcementPolicy::default());
    let mut manager =
        AdaptationManager::new().with_policy(Box::new(GracefulDegradation::new(0, 0.2, 0.85)));

    let mut bundles = Vec::new();
    for round in 0..30u64 {
        // Churn: install a new component every round, retire the oldest
        // once five are live.
        let name = format!("s{round:03}");
        let moded = round % 3 == 0;
        let bundle = rt
            .install_component(
                &format!("soak.{name}"),
                provider(&name, 100 + (round as u32 % 5) * 100, 0.15, moded),
            )
            .unwrap();
        bundles.push(bundle);
        if bundles.len() > 5 {
            let oldest = bundles.remove(0);
            rt.uninstall_bundle(oldest).unwrap();
        }
        // Occasionally flip a moded component.
        if moded && rt.component_state(&name) == Some(ComponentState::Active) {
            rt.switch_mode(&name, "cheap").unwrap();
        }
        rt.advance(SimDuration::from_millis(100));
        monitor.check(&mut rt).unwrap();
        manager.run_once(&mut rt).unwrap();

        // Invariants every round.
        let util = rt.drcr().ledger().utilization(0);
        assert!(util <= 1.0 + 1e-9, "round {round}: overcommitted {util}");
        let names = rt.drcr().component_names();
        assert!(
            names.len() <= 6,
            "round {round}: {} components",
            names.len()
        );
        for n in &names {
            let state = rt.component_state(n).unwrap();
            let has_task = rt.drcr().task_of(n).is_some();
            assert_eq!(
                state.holds_admission(),
                has_task,
                "round {round}: `{n}` {state}"
            );
        }
    }

    // Drain everything; nothing leaks.
    for bundle in bundles {
        rt.uninstall_bundle(bundle).unwrap();
    }
    assert!(rt.drcr().component_names().is_empty());
    assert!(rt.drcr().ledger().is_empty());
    assert!(rt.kernel().shm().is_empty());
    assert!(rt.kernel().mailboxes().is_empty());
    assert!(rt.kernel().fifos().is_empty());
    // The Linux hogs kept the CPU saturated the whole time.
    assert!(rt.kernel().cpu_linux_utilization(0) > 0.3);
}

#[test]
fn drcr_works_embedded_without_the_bundle_path() {
    // The DRCR can be driven directly (embedded systems without the full
    // framework deployment story): register components programmatically,
    // resolve against a plain Framework.
    let kernel = Rc::new(RefCell::new(Kernel::new(
        KernelConfig::new(7).with_timer(TimerJitterModel::ideal()),
    )));
    let drcr = Drcr::new_shared(kernel.clone());
    let mut fw = osgi::framework::Framework::new();

    let d = ComponentDescriptor::builder("inline")
        .periodic(100, 0, 2)
        .cpu_usage(0.2)
        .build()
        .unwrap();
    drcr.borrow_mut()
        .register_component(
            d,
            Rc::new(|| {
                Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                    io.compute(SimDuration::from_micros(100));
                })) as Box<dyn RtLogic>
            }),
            None,
        )
        .unwrap();
    drcr.borrow_mut().process(&mut fw);
    assert_eq!(
        drcr.borrow().state_of("inline"),
        Some(ComponentState::Active)
    );
    kernel.borrow_mut().run_for(SimDuration::from_millis(100));
    let task = drcr.borrow().task_of("inline").unwrap();
    assert!(kernel.borrow().task_cycles(task).unwrap() >= 9);
    // Direct removal tears down cleanly.
    drcr.borrow_mut()
        .remove_component("inline", &mut fw)
        .unwrap();
    assert!(kernel.borrow().task_by_name("inline").is_none());
}
