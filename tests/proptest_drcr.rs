//! Stateful property test of the DRCR executive: arbitrary interleavings
//! of deployment, departure, suspension, mode switches and time must never
//! break the executive's global invariants.
//!
//! Cases are generated from the in-repo seeded `SimRng` (no external
//! property-testing crate).
//!
//! The invariants checked after every operation:
//!
//! 1. **Ledger ↔ lifecycle**: a component holds a reservation iff its
//!    state holds admission (Active/Suspended), and the reserved claim
//!    equals its current contract's claim.
//! 2. **Kernel ↔ lifecycle**: admission-holding components have a live
//!    kernel task; others have none.
//! 3. **No overcommitment**: reserved utilization per CPU never exceeds
//!    the internal resolver's cap.
//! 4. **Functional soundness**: every Active consumer has an Active
//!    provider for each inport.
//! 5. **No leaks**: with no components registered, the kernel has no SHM
//!    segments and no mailboxes.

use drt::prelude::*;
use rtos::rng::SimRng;
use rtos::task::TaskState;

#[derive(Debug, Clone)]
enum Op {
    InstallSource,
    InstallSink,
    InstallModed,
    StopSource,
    StopSink,
    StopModed,
    SuspendAny(u8),
    ResumeAny(u8),
    SwitchModed(bool), // true = cheap mode, false = base
    Advance(u8),
}

fn gen_op(rng: &mut SimRng) -> Op {
    match rng.uniform_u64(0, 10) {
        0 => Op::InstallSource,
        1 => Op::InstallSink,
        2 => Op::InstallModed,
        3 => Op::StopSource,
        4 => Op::StopSink,
        5 => Op::StopModed,
        6 => Op::SuspendAny(rng.next_u64() as u8),
        7 => Op::ResumeAny(rng.next_u64() as u8),
        8 => Op::SwitchModed(rng.chance(0.5)),
        _ => Op::Advance(rng.uniform_u64(1, 20) as u8),
    }
}

fn source() -> ComponentProvider {
    let d = ComponentDescriptor::builder("src")
        .periodic(100, 0, 2)
        .cpu_usage(0.3)
        .outport("chan", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            let _ = io.write("chan", &1i32.to_le_bytes());
        }))
    })
}

fn sink() -> ComponentProvider {
    let d = ComponentDescriptor::builder("snk")
        .periodic(50, 0, 4)
        .cpu_usage(0.2)
        .inport("chan", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            let _ = io.read("chan");
        }))
    })
}

fn moded() -> ComponentProvider {
    let d = ComponentDescriptor::builder("mod")
        .periodic(200, 0, 3)
        .cpu_usage(0.4)
        .mode("cheap", 20, 0.05, 3)
        .build()
        .unwrap();
    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
}

fn check_invariants(rt: &DrtRuntime, case: usize) {
    let drcr = rt.drcr();
    let names = drcr.component_names();
    // 1 + 2: ledger and kernel agree with lifecycle states.
    for name in &names {
        let state = drcr.state_of(name).expect("registered");
        let reservation = drcr.ledger().reservation(name);
        let task = drcr.task_of(name);
        if state.holds_admission() {
            assert!(
                reservation.is_some(),
                "case {case}: `{name}` {state} without reservation"
            );
            let claim = drcr.descriptor_of(name).unwrap().cpu_usage.fraction();
            let (_, reserved) = reservation.unwrap();
            assert!(
                (reserved - claim).abs() < 1e-9,
                "case {case}: `{name}` reserved {reserved} vs claim {claim}"
            );
            let task = task.expect("admitted components have tasks");
            let kstate = rt.kernel().task_state(task);
            assert!(
                matches!(
                    kstate,
                    Some(
                        TaskState::Waiting
                            | TaskState::Ready
                            | TaskState::Running
                            | TaskState::Suspended
                    )
                ),
                "case {case}: `{name}` task in {kstate:?}"
            );
        } else {
            assert!(
                reservation.is_none(),
                "case {case}: `{name}` {state} holds a reservation"
            );
            assert!(task.is_none(), "case {case}: `{name}` {state} holds a task");
        }
    }
    // 3: never overcommitted.
    assert!(
        drcr.ledger().utilization(0) <= 1.0 + 1e-9,
        "case {case}: CPU 0 overcommitted: {}",
        drcr.ledger().utilization(0)
    );
    // 4: active consumers are fed.
    if drcr.state_of("snk") == Some(ComponentState::Active) {
        assert_eq!(
            drcr.state_of("src"),
            Some(ComponentState::Active),
            "case {case}: sink active without an active source"
        );
    }
    // 5: no leaks once everything is gone.
    if names.is_empty() {
        assert!(rt.kernel().shm().is_empty(), "case {case}: leaked SHM");
        assert!(
            rt.kernel().mailboxes().is_empty(),
            "case {case}: leaked mailboxes"
        );
    }
}

// ---------------------------------------------------------------------
// Differential property: the incremental resolver (port index + dirty-set
// deactivation sweep + cached view) must be observationally identical to
// the naive reference re-resolver — same states, same chosen providers,
// same ledger, and a byte-identical DrcrEvent stream — under arbitrary
// deploy/undeploy/suspend/resume/mode-switch interleavings.
// ---------------------------------------------------------------------

struct Collector(std::rc::Rc<std::cell::RefCell<Vec<(SimTime, DrcrEvent)>>>);

impl drcom::obs::TraceSubscriber<DrcrEvent> for Collector {
    fn on_event(&mut self, time: SimTime, event: &DrcrEvent) {
        self.0.borrow_mut().push((time, event.clone()));
    }
}

fn tap(rt: &DrtRuntime) -> std::rc::Rc<std::cell::RefCell<Vec<(SimTime, DrcrEvent)>>> {
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    rt.drcr_mut()
        .add_event_subscriber(Box::new(Collector(log.clone())));
    log
}

/// A deeper topology than the invariant test: `src`/`alt` both provide
/// `chan`; `rly` consumes `chan` and provides `chan2`; `fan` consumes
/// `chan2` (two-level cascades); `mod` is moded. Claims sum past the 1.0
/// cap so admission rejections (and their view-derived reason strings) are
/// exercised too.
fn diff_component(name: &str) -> ComponentProvider {
    let builder = ComponentDescriptor::builder(name);
    let d = match name {
        "src" => builder.periodic(100, 0, 2).cpu_usage(0.3).outport(
            "chan",
            PortInterface::Shm,
            DataType::Integer,
            1,
        ),
        "alt" => builder.periodic(100, 0, 3).cpu_usage(0.25).outport(
            "chan",
            PortInterface::Shm,
            DataType::Integer,
            1,
        ),
        "snk" => builder.periodic(50, 0, 4).cpu_usage(0.2).inport(
            "chan",
            PortInterface::Shm,
            DataType::Integer,
            1,
        ),
        "rly" => builder
            .periodic(50, 0, 4)
            .cpu_usage(0.15)
            .inport("chan", PortInterface::Shm, DataType::Integer, 1)
            .outport("chan2", PortInterface::Shm, DataType::Integer, 1),
        "fan" => builder.periodic(20, 0, 5).cpu_usage(0.45).inport(
            "chan2",
            PortInterface::Shm,
            DataType::Integer,
            1,
        ),
        "mod" => builder
            .periodic(200, 0, 3)
            .cpu_usage(0.4)
            .mode("cheap", 20, 0.05, 3),
        other => panic!("unknown diff component {other}"),
    }
    .build()
    .unwrap();
    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
}

const DIFF_NAMES: [&str; 6] = ["src", "alt", "snk", "rly", "fan", "mod"];

fn assert_lockstep(
    case: usize,
    step: usize,
    inc: &DrtRuntime,
    naive: &DrtRuntime,
    inc_log: &std::cell::RefCell<Vec<(SimTime, DrcrEvent)>>,
    naive_log: &std::cell::RefCell<Vec<(SimTime, DrcrEvent)>>,
) {
    let (di, dn) = (inc.drcr(), naive.drcr());
    assert_eq!(
        di.component_names(),
        dn.component_names(),
        "case {case} step {step}: registered sets diverged"
    );
    for name in di.component_names() {
        assert_eq!(
            di.state_of(&name),
            dn.state_of(&name),
            "case {case} step {step}: `{name}` state diverged"
        );
        assert_eq!(
            di.providers_of(&name),
            dn.providers_of(&name),
            "case {case} step {step}: `{name}` providers diverged"
        );
        assert_eq!(
            di.current_mode(&name),
            dn.current_mode(&name),
            "case {case} step {step}: `{name}` mode diverged"
        );
    }
    for cpu in 0..di.ledger().cpu_count() {
        assert_eq!(
            di.ledger().utilization(cpu).to_bits(),
            dn.ledger().utilization(cpu).to_bits(),
            "case {case} step {step}: cpu {cpu} reservation diverged"
        );
    }
    assert_eq!(
        *inc_log.borrow(),
        *naive_log.borrow(),
        "case {case} step {step}: event streams diverged"
    );
}

#[test]
fn incremental_resolver_matches_naive_reference() {
    let mut rng = SimRng::from_seed(0x1DC5);
    for case in 0..24 {
        let mut inc = DrtRuntime::new(KernelConfig::new(2).with_timer(TimerJitterModel::ideal()));
        let mut naive = DrtRuntime::new(KernelConfig::new(2).with_timer(TimerJitterModel::ideal()));
        naive.set_resolution_strategy(drcom::ResolutionStrategy::NaiveReference);
        let inc_log = tap(&inc);
        let naive_log = tap(&naive);
        let mut inc_bundles: std::collections::HashMap<&str, osgi::event::BundleId> =
            Default::default();
        let mut naive_bundles: std::collections::HashMap<&str, osgi::event::BundleId> =
            Default::default();
        let steps = rng.uniform_u64(4, 50);
        for step in 0..steps as usize {
            let pick = DIFF_NAMES[rng.uniform_u64(0, DIFF_NAMES.len() as u64) as usize];
            match rng.uniform_u64(0, 6) {
                0 | 1 => {
                    // Install or uninstall `pick`, whichever applies.
                    if let Some(b) = inc_bundles.remove(pick) {
                        inc.uninstall_bundle(b).unwrap();
                        naive
                            .uninstall_bundle(naive_bundles.remove(pick).unwrap())
                            .unwrap();
                    } else {
                        let bundle_id = format!("b.{pick}");
                        inc_bundles.insert(
                            pick,
                            inc.install_component(&bundle_id, diff_component(pick))
                                .unwrap(),
                        );
                        naive_bundles.insert(
                            pick,
                            naive
                                .install_component(&bundle_id, diff_component(pick))
                                .unwrap(),
                        );
                    }
                }
                2 => {
                    let a = inc.suspend_component(pick);
                    let b = naive.suspend_component(pick);
                    assert_eq!(a.is_ok(), b.is_ok(), "case {case} step {step}: suspend");
                }
                3 => {
                    let a = inc.resume_component(pick);
                    let b = naive.resume_component(pick);
                    assert_eq!(a.is_ok(), b.is_ok(), "case {case} step {step}: resume");
                }
                4 => {
                    if inc.component_state("mod").is_some() {
                        let mode = if rng.chance(0.5) {
                            "cheap"
                        } else {
                            drcom::BASE_MODE
                        };
                        inc.switch_mode("mod", mode).unwrap();
                        naive.switch_mode("mod", mode).unwrap();
                    }
                }
                _ => {
                    let ms = rng.uniform_u64(1, 15);
                    inc.advance(SimDuration::from_millis(ms));
                    naive.advance(SimDuration::from_millis(ms));
                }
            }
            assert_lockstep(case, step, &inc, &naive, &inc_log, &naive_log);
        }
        // Teardown stays in lockstep too.
        for (name, b) in inc_bundles {
            inc.uninstall_bundle(b).unwrap();
            naive
                .uninstall_bundle(naive_bundles.remove(name).unwrap())
                .unwrap();
        }
        assert_lockstep(case, usize::MAX, &inc, &naive, &inc_log, &naive_log);
        // The whole point: the incremental run did strictly less wiring
        // work while producing the identical observable history.
        let inc_checks = inc.drcr().metrics().counter("drcr.wiring.checks");
        let naive_builds = naive.drcr().metrics().counter("drcr.wiring.graph_builds");
        let inc_builds = inc.drcr().metrics().counter("drcr.wiring.graph_builds");
        assert_eq!(inc_builds, 0, "case {case}: incremental built a graph");
        assert!(
            inc_checks <= naive.drcr().metrics().counter("drcr.wiring.checks"),
            "case {case}: incremental checked more than the reference ({inc_checks} > {naive_builds})"
        );
    }
}

#[test]
fn drcr_invariants_hold_under_random_operations() {
    let mut rng = SimRng::from_seed(0xD6C6);
    for case in 0..64 {
        let mut rt = DrtRuntime::new(KernelConfig::new(9).with_timer(TimerJitterModel::ideal()));
        let mut bundles: std::collections::HashMap<&str, osgi::event::BundleId> =
            Default::default();
        let ops: Vec<Op> = (0..rng.uniform_u64(1, 60))
            .map(|_| gen_op(&mut rng))
            .collect();
        for op in ops {
            match op {
                Op::InstallSource => {
                    if !bundles.contains_key("src") {
                        let b = rt.install_component("b.src", source()).unwrap();
                        bundles.insert("src", b);
                    }
                }
                Op::InstallSink => {
                    if !bundles.contains_key("snk") {
                        let b = rt.install_component("b.snk", sink()).unwrap();
                        bundles.insert("snk", b);
                    }
                }
                Op::InstallModed => {
                    if !bundles.contains_key("mod") {
                        let b = rt.install_component("b.mod", moded()).unwrap();
                        bundles.insert("mod", b);
                    }
                }
                Op::StopSource => {
                    if let Some(b) = bundles.remove("src") {
                        rt.uninstall_bundle(b).unwrap();
                    }
                }
                Op::StopSink => {
                    if let Some(b) = bundles.remove("snk") {
                        rt.uninstall_bundle(b).unwrap();
                    }
                }
                Op::StopModed => {
                    if let Some(b) = bundles.remove("mod") {
                        rt.uninstall_bundle(b).unwrap();
                    }
                }
                Op::SuspendAny(pick) => {
                    let names = rt.drcr().component_names();
                    if !names.is_empty() {
                        let name = names[pick as usize % names.len()].clone();
                        // Only legal from Active; illegal attempts must
                        // error, not corrupt.
                        let was_active = rt.component_state(&name) == Some(ComponentState::Active);
                        let result = rt.suspend_component(&name);
                        assert_eq!(result.is_ok(), was_active, "case {case}");
                    }
                }
                Op::ResumeAny(pick) => {
                    let names = rt.drcr().component_names();
                    if !names.is_empty() {
                        let name = names[pick as usize % names.len()].clone();
                        let was_suspended =
                            rt.component_state(&name) == Some(ComponentState::Suspended);
                        let result = rt.resume_component(&name);
                        assert_eq!(result.is_ok(), was_suspended, "case {case}");
                    }
                }
                Op::SwitchModed(cheap) => {
                    if rt.component_state("mod").is_some() {
                        let mode = if cheap { "cheap" } else { drcom::BASE_MODE };
                        rt.switch_mode("mod", mode).unwrap();
                    }
                }
                Op::Advance(ms) => {
                    rt.advance(SimDuration::from_millis(u64::from(ms)));
                }
            }
            check_invariants(&rt, case);
        }
        // Teardown: everything uninstalls cleanly.
        for (_, b) in bundles {
            rt.uninstall_bundle(b).unwrap();
        }
        check_invariants(&rt, case);
    }
}
