//! Stateful property test of the DRCR executive: arbitrary interleavings
//! of deployment, departure, suspension, mode switches and time must never
//! break the executive's global invariants.
//!
//! The invariants checked after every operation:
//!
//! 1. **Ledger ↔ lifecycle**: a component holds a reservation iff its
//!    state holds admission (Active/Suspended), and the reserved claim
//!    equals its current contract's claim.
//! 2. **Kernel ↔ lifecycle**: admission-holding components have a live
//!    kernel task; others have none.
//! 3. **No overcommitment**: reserved utilization per CPU never exceeds
//!    the internal resolver's cap.
//! 4. **Functional soundness**: every Active consumer has an Active
//!    provider for each inport.
//! 5. **No leaks**: with no components registered, the kernel has no SHM
//!    segments and no mailboxes.

use drcom::drcr::ComponentProvider;
use drcom::prelude::*;
use proptest::prelude::*;
use rtos::kernel::KernelConfig;
use rtos::latency::TimerJitterModel;
use rtos::task::TaskState;

#[derive(Debug, Clone)]
enum Op {
    InstallSource,
    InstallSink,
    InstallModed,
    StopSource,
    StopSink,
    StopModed,
    SuspendAny(u8),
    ResumeAny(u8),
    SwitchModed(bool), // true = cheap mode, false = base
    Advance(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::InstallSource),
        Just(Op::InstallSink),
        Just(Op::InstallModed),
        Just(Op::StopSource),
        Just(Op::StopSink),
        Just(Op::StopModed),
        any::<u8>().prop_map(Op::SuspendAny),
        any::<u8>().prop_map(Op::ResumeAny),
        any::<bool>().prop_map(Op::SwitchModed),
        (1u8..20).prop_map(Op::Advance),
    ]
}

fn source() -> ComponentProvider {
    let d = ComponentDescriptor::builder("src")
        .periodic(100, 0, 2)
        .cpu_usage(0.3)
        .outport("chan", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            let _ = io.write("chan", &1i32.to_le_bytes());
        }))
    })
}

fn sink() -> ComponentProvider {
    let d = ComponentDescriptor::builder("snk")
        .periodic(50, 0, 4)
        .cpu_usage(0.2)
        .inport("chan", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            let _ = io.read("chan");
        }))
    })
}

fn moded() -> ComponentProvider {
    let d = ComponentDescriptor::builder("mod")
        .periodic(200, 0, 3)
        .cpu_usage(0.4)
        .mode("cheap", 20, 0.05, 3)
        .build()
        .unwrap();
    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
}

fn check_invariants(rt: &DrtRuntime) -> Result<(), TestCaseError> {
    let drcr = rt.drcr();
    let names = drcr.component_names();
    // 1 + 2: ledger and kernel agree with lifecycle states.
    for name in &names {
        let state = drcr.state_of(name).expect("registered");
        let reservation = drcr.ledger().reservation(name);
        let task = drcr.task_of(name);
        if state.holds_admission() {
            prop_assert!(reservation.is_some(), "`{name}` {state} without reservation");
            let claim = drcr.descriptor_of(name).unwrap().cpu_usage.fraction();
            let (_, reserved) = reservation.unwrap();
            prop_assert!(
                (reserved - claim).abs() < 1e-9,
                "`{name}` reserved {reserved} vs claim {claim}"
            );
            let task = task.expect("admitted components have tasks");
            let kstate = rt.kernel().task_state(task);
            prop_assert!(
                matches!(
                    kstate,
                    Some(
                        TaskState::Waiting
                            | TaskState::Ready
                            | TaskState::Running
                            | TaskState::Suspended
                    )
                ),
                "`{name}` task in {kstate:?}"
            );
        } else {
            prop_assert!(reservation.is_none(), "`{name}` {state} holds a reservation");
            prop_assert!(task.is_none(), "`{name}` {state} holds a task");
        }
    }
    // 3: never overcommitted.
    prop_assert!(
        drcr.ledger().utilization(0) <= 1.0 + 1e-9,
        "CPU 0 overcommitted: {}",
        drcr.ledger().utilization(0)
    );
    // 4: active consumers are fed.
    if drcr.state_of("snk") == Some(ComponentState::Active) {
        prop_assert_eq!(
            drcr.state_of("src"),
            Some(ComponentState::Active),
            "sink active without an active source"
        );
    }
    // 5: no leaks once everything is gone.
    if names.is_empty() {
        prop_assert!(rt.kernel().shm().is_empty(), "leaked SHM");
        prop_assert!(rt.kernel().mailboxes().is_empty(), "leaked mailboxes");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn drcr_invariants_hold_under_random_operations(ops in proptest::collection::vec(op(), 1..60)) {
        let mut rt = DrtRuntime::new(
            KernelConfig::new(9).with_timer(TimerJitterModel::ideal()),
        );
        let mut bundles: std::collections::HashMap<&str, osgi::event::BundleId> =
            Default::default();
        for op in ops {
            match op {
                Op::InstallSource => {
                    if !bundles.contains_key("src") {
                        let b = rt.install_component("b.src", source()).unwrap();
                        bundles.insert("src", b);
                    }
                }
                Op::InstallSink => {
                    if !bundles.contains_key("snk") {
                        let b = rt.install_component("b.snk", sink()).unwrap();
                        bundles.insert("snk", b);
                    }
                }
                Op::InstallModed => {
                    if !bundles.contains_key("mod") {
                        let b = rt.install_component("b.mod", moded()).unwrap();
                        bundles.insert("mod", b);
                    }
                }
                Op::StopSource => {
                    if let Some(b) = bundles.remove("src") {
                        rt.uninstall_bundle(b).unwrap();
                    }
                }
                Op::StopSink => {
                    if let Some(b) = bundles.remove("snk") {
                        rt.uninstall_bundle(b).unwrap();
                    }
                }
                Op::StopModed => {
                    if let Some(b) = bundles.remove("mod") {
                        rt.uninstall_bundle(b).unwrap();
                    }
                }
                Op::SuspendAny(pick) => {
                    let names = rt.drcr().component_names();
                    if !names.is_empty() {
                        let name = names[pick as usize % names.len()].clone();
                        // Only legal from Active; illegal attempts must
                        // error, not corrupt.
                        let was_active =
                            rt.component_state(&name) == Some(ComponentState::Active);
                        let result = rt.suspend_component(&name);
                        prop_assert_eq!(result.is_ok(), was_active);
                    }
                }
                Op::ResumeAny(pick) => {
                    let names = rt.drcr().component_names();
                    if !names.is_empty() {
                        let name = names[pick as usize % names.len()].clone();
                        let was_suspended =
                            rt.component_state(&name) == Some(ComponentState::Suspended);
                        let result = rt.resume_component(&name);
                        prop_assert_eq!(result.is_ok(), was_suspended);
                    }
                }
                Op::SwitchModed(cheap) => {
                    if rt.component_state("mod").is_some() {
                        let mode = if cheap { "cheap" } else { drcom::BASE_MODE };
                        rt.switch_mode("mod", mode).unwrap();
                    }
                }
                Op::Advance(ms) => {
                    rt.advance(SimDuration::from_millis(u64::from(ms)));
                }
            }
            check_invariants(&rt)?;
        }
        // Teardown: everything uninstalls cleanly.
        for (_, b) in bundles {
            rt.uninstall_bundle(b).unwrap();
        }
        check_invariants(&rt)?;
    }
}
