//! Integration test asserting the *shape* of the paper's Table 1 across
//! all four cells — who wins, by roughly what factor, and where the
//! qualitative crossovers lie. Absolute nanoseconds are calibration;
//! these relations are the reproduction target.

use bench::{run_table1, run_table1_config, ImplKind, Table1Config};
use rtos::latency::LoadMode;

fn table(cycles: u64, seed: u64) -> Vec<(String, f64, f64, i64, i64)> {
    run_table1(cycles, seed)
        .into_iter()
        .map(|r| {
            (
                r.label,
                r.stats.average(),
                r.stats.avedev(),
                r.stats.min().unwrap(),
                r.stats.max().unwrap(),
            )
        })
        .collect()
}

#[test]
fn all_four_cells_have_the_papers_shape() {
    let rows = table(5_000, 42);
    let (hrc_l, pure_l, hrc_s, pure_s) = (&rows[0], &rows[1], &rows[2], &rows[3]);

    // Row identities.
    assert!(hrc_l.0.contains("HRC") && hrc_l.0.contains("light"));
    assert!(pure_s.0.contains("Pure") && pure_s.0.contains("stress"));

    // Light mode: small negative bias, wide spread, two-sided extrema.
    for row in [hrc_l, pure_l] {
        assert!(
            (-3_000.0..=0.0).contains(&row.1),
            "{}: avg {}",
            row.0,
            row.1
        );
        assert!(
            (3_000.0..=4_500.0).contains(&row.2),
            "{}: avedev {}",
            row.0,
            row.2
        );
        assert!(row.3 < -10_000, "{}: min {}", row.0, row.3);
        assert!(row.4 > 10_000, "{}: max {}", row.0, row.4);
    }

    // Stress mode: strongly early mean, collapsed deviation, all-negative.
    for row in [hrc_s, pure_s] {
        assert!(
            (-22_500.0..=-20_000.0).contains(&row.1),
            "{}: avg {}",
            row.0,
            row.1
        );
        assert!(row.2 < 600.0, "{}: avedev {}", row.0, row.2);
        assert!(row.4 < 0, "{}: max {}", row.0, row.4);
    }

    // The paper's headline: HRC ≈ pure RTAI in both modes.
    assert!((hrc_l.1 - pure_l.1).abs() < pure_l.2, "light delta too big");
    assert!(
        (hrc_s.1 - pure_s.1).abs() < 3.0 * pure_s.2,
        "stress delta too big"
    );

    // Stress tightens deviation by an order of magnitude (3760 -> ~350).
    assert!(pure_l.2 / pure_s.2 > 5.0, "deviation collapse factor");

    // Everything bounded within ~30 us.
    for row in &rows {
        assert!(
            row.3.abs() < 30_000 && row.4.abs() < 30_000,
            "{} unbounded",
            row.0
        );
    }
}

#[test]
fn results_are_reproducible_from_the_seed() {
    let a = table(1_000, 7);
    let b = table(1_000, 7);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "{} average differs", x.0);
        assert_eq!(x.3, y.3);
        assert_eq!(x.4, y.4);
    }
    // And a different seed gives different draws.
    let c = table(1_000, 8);
    assert_ne!(a[0].1.to_bits(), c[0].1.to_bits());
}

#[test]
fn sample_counts_match_cycles() {
    for kind in [ImplKind::PureRtai, ImplKind::Hrc] {
        let cfg = Table1Config {
            cycles: 2_000,
            ..Table1Config::paper(kind, LoadMode::Light, 3)
        };
        let stats = run_table1_config(&cfg);
        // One latency sample per 1 kHz release over the run window.
        assert!(
            (1_995..=2_005).contains(&stats.count()),
            "{kind}: {}",
            stats.count()
        );
    }
}
