//! Interplay between the two component models sharing one framework: the
//! non-real-time Declarative Services runtime (the paper's §2.1 heritage)
//! and the real-time DRCR. A DS component consumes a DRCom component's
//! management service — the exact shape of an "application specific
//! adaptation manager" deployed as an ordinary service component.

use drcom::manage::{ManagementHandle, MANAGEMENT_SERVICE};
use drt::prelude::*;
use osgi::ds::{BindingPolicy, DsComponent, DsReference, DsState, ScrRuntime};
use osgi::ldap::Filter;
use osgi::tracker::{ServiceTracker, TrackerEvent};
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

fn runtime() -> DrtRuntime {
    DrtRuntime::new(KernelConfig::new(61).with_timer(TimerJitterModel::ideal()))
}

fn rt_component(name: &str) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(100, 0, 3)
        .cpu_usage(0.1)
        .build()
        .unwrap();
    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
}

/// A DS "supervisor" component that binds to the RT component's management
/// service and suspends it on activation (a tiny adaptation manager).
struct Supervisor {
    bound: Rc<RefCell<Vec<String>>>,
    mgmt: Option<Rc<dyn RtComponentManagement>>,
}

impl osgi::ds::DsInstance for Supervisor {
    fn bind(&mut self, reference: &str, service: Rc<dyn Any>) {
        if reference == "target" {
            if let Ok(handle) = service.downcast::<ManagementHandle>() {
                self.bound
                    .borrow_mut()
                    .push(handle.0.component_name().to_string());
                self.mgmt = Some(handle.0.clone());
            }
        }
    }

    fn activate(&mut self) {
        if let Some(mgmt) = &self.mgmt {
            let _ = mgmt.suspend();
        }
    }

    fn unbind(&mut self, _reference: &str, _id: osgi::registry::ServiceId) {
        self.mgmt = None;
    }
}

#[test]
fn ds_component_supervises_a_drcom_component() {
    let mut rt = runtime();
    let mut scr = ScrRuntime::new();

    // The DS supervisor waits for the RT component's management service.
    let bound: Rc<RefCell<Vec<String>>> = Rc::default();
    let b = bound.clone();
    let supervisor = DsComponent::new("superv", move || {
        Box::new(Supervisor {
            bound: b.clone(),
            mgmt: None,
        })
    })
    .requires(
        DsReference::mandatory("target", MANAGEMENT_SERVICE)
            .with_target(Filter::parse("(drt.name=calc)").unwrap()),
    );
    // SCR resolution happens against the shared framework.
    scr.add_component(rt.framework_mut(), supervisor);
    rt.process();
    assert_eq!(scr.state("superv"), Some(DsState::Unsatisfied));

    // Deploy the RT component: its management service satisfies the DS
    // reference; the supervisor activates and suspends it.
    rt.install_component("demo.calc", rt_component("calc"))
        .unwrap();
    scr.process(rt.framework_mut());
    rt.process();
    assert_eq!(scr.state("superv"), Some(DsState::Active));
    assert_eq!(*bound.borrow(), vec!["calc".to_string()]);
    assert_eq!(rt.component_state("calc"), Some(ComponentState::Suspended));

    // Resume through the same handle the DS side saw.
    rt.resume_component("calc").unwrap();
    assert_eq!(rt.component_state("calc"), Some(ComponentState::Active));
}

#[test]
fn ds_supervisor_survives_rt_component_churn() {
    let mut rt = runtime();
    let mut scr = ScrRuntime::new();
    let bound: Rc<RefCell<Vec<String>>> = Rc::default();
    let b = bound.clone();
    let supervisor = DsComponent::new("superv", move || {
        Box::new(Supervisor {
            bound: b.clone(),
            mgmt: None,
        })
    })
    .requires(
        DsReference::mandatory("target", MANAGEMENT_SERVICE).with_policy(BindingPolicy::Dynamic),
    );
    scr.add_component(rt.framework_mut(), supervisor);

    let bundle = rt
        .install_component("demo.calc", rt_component("calc"))
        .unwrap();
    scr.process(rt.framework_mut());
    rt.process();
    assert_eq!(scr.state("superv"), Some(DsState::Active));

    // The RT component leaves: its management service unregisters, the DS
    // component deactivates (mandatory reference).
    rt.stop_bundle(bundle).unwrap();
    scr.process(rt.framework_mut());
    assert_eq!(scr.state("superv"), Some(DsState::Unsatisfied));

    // And returns.
    rt.start_bundle(bundle).unwrap();
    scr.process(rt.framework_mut());
    rt.process();
    assert_eq!(scr.state("superv"), Some(DsState::Active));
    assert_eq!(bound.borrow().len(), 2, "bound once per arrival");
    // NOTE: the fresh suspend from re-activation is expected.
    assert_eq!(rt.component_state("calc"), Some(ComponentState::Suspended));
}

#[test]
fn tracker_follows_management_services() {
    let mut rt = runtime();
    let mut tracker = ServiceTracker::new(MANAGEMENT_SERVICE);
    assert!(tracker.poll(rt.framework()).is_empty());

    rt.install_component("demo.a", rt_component("a")).unwrap();
    rt.install_component("demo.b", rt_component("b")).unwrap();
    let events = tracker.poll(rt.framework());
    assert_eq!(events.len(), 2);
    assert!(events.iter().all(|e| matches!(e, TrackerEvent::Added(_))));
    assert_eq!(tracker.len(), 2);

    let bundle = rt.drcr().bundle_of("a").unwrap();
    rt.stop_bundle(bundle).unwrap();
    let events = tracker.poll(rt.framework());
    assert_eq!(events.len(), 1);
    assert!(matches!(events[0], TrackerEvent::Removed(_)));
    assert_eq!(tracker.len(), 1);
}
