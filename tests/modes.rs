//! Integration tests for operating modes: alternate declared contracts
//! switched at run time under full DRCR admission control.

use drt::prelude::*;

fn runtime() -> DrtRuntime {
    DrtRuntime::new(KernelConfig::new(55).with_timer(TimerJitterModel::ideal()))
}

/// A camera with a full-rate and a degraded mode.
fn moded_camera() -> ComponentProvider {
    let d = ComponentDescriptor::builder("cam")
        .periodic(1000, 0, 2)
        .cpu_usage(0.50)
        .mode("degrad", 100, 0.05, 2)
        .mode("burst", 2000, 0.80, 1)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_micros(100));
        }))
    })
}

fn filler(name: &str, usage: f64) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(100, 0, 4)
        .cpu_usage(usage)
        .build()
        .unwrap();
    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
}

#[test]
fn descriptor_modes_parse_and_roundtrip() {
    let xml = r#"<drt:component name="cam" type="periodic" cpuusage="0.5">
      <implementation bincode="a.B"/>
      <periodictask frequence="1000" priority="2"/>
      <mode name="degrad" frequence="100" cpuusage="0.05" priority="2"/>
      <mode name="burst" frequence="2000" cpuusage="0.8" priority="1"/>
    </drt:component>"#;
    let d = ComponentDescriptor::parse_xml(xml).unwrap();
    assert_eq!(d.modes.len(), 2);
    assert_eq!(d.mode("degrad").unwrap().frequency_hz, 100);
    assert_eq!(d.mode(BASE_MODE).unwrap().frequency_hz, 1000);
    assert!(d.mode("nope").is_none());
    // to_xml keeps the modes.
    let reparsed = ComponentDescriptor::parse_xml(&d.to_xml()).unwrap();
    assert_eq!(reparsed.modes, d.modes);
}

#[test]
fn invalid_modes_are_rejected() {
    for (extra, why) in [
        (
            r#"<mode name="normal" frequence="10" cpuusage="0.1"/>"#,
            "reserved name",
        ),
        (
            r#"<mode name="a" frequence="10" cpuusage="0.1"/>
               <mode name="a" frequence="20" cpuusage="0.2"/>"#,
            "duplicate",
        ),
        (
            r#"<mode name="a" frequence="0" cpuusage="0.1"/>"#,
            "zero frequency",
        ),
        (
            r#"<mode name="a" frequence="10" cpuusage="2.0"/>"#,
            "bad usage",
        ),
    ] {
        let xml = format!(
            r#"<drt:component name="cam" type="periodic" cpuusage="0.5">
              <implementation bincode="a.B"/>
              <periodictask frequence="1000" priority="2"/>
              {extra}
            </drt:component>"#
        );
        assert!(ComponentDescriptor::parse_xml(&xml).is_err(), "{why}");
    }
    // Modes on aperiodic components are rejected.
    let xml = r#"<drt:component name="evt" type="aperiodic" cpuusage="0.1">
      <implementation bincode="a.B"/>
      <mode name="a" frequence="10" cpuusage="0.1"/>
    </drt:component>"#;
    assert!(ComponentDescriptor::parse_xml(xml).is_err());
}

#[test]
fn mode_switch_changes_rate_and_claim() {
    let mut rt = runtime();
    rt.install_component("demo.cam", moded_camera()).unwrap();
    assert_eq!(rt.drcr().current_mode("cam").unwrap(), BASE_MODE);
    assert_eq!(rt.drcr().ledger().reservation("cam"), Some((0, 0.50)));

    rt.advance(SimDuration::from_millis(100));
    let task = rt.drcr().task_of("cam").unwrap();
    let full_rate_cycles = rt.kernel().task_cycles(task).unwrap();
    assert!(full_rate_cycles >= 98, "{full_rate_cycles}");

    // Degrade: 100 Hz, 5% claim.
    rt.switch_mode("cam", "degrad").unwrap();
    assert_eq!(rt.drcr().current_mode("cam").unwrap(), "degrad");
    assert_eq!(rt.component_state("cam"), Some(ComponentState::Active));
    assert_eq!(rt.drcr().ledger().reservation("cam"), Some((0, 0.05)));
    let task = rt.drcr().task_of("cam").unwrap();
    let t0 = rt.kernel().task_cycles(task).unwrap();
    rt.advance(SimDuration::from_millis(500));
    let degraded_cycles = rt.kernel().task_cycles(task).unwrap() - t0;
    assert!((48..=52).contains(&degraded_cycles), "{degraded_cycles}");

    // And back to normal.
    rt.switch_mode("cam", BASE_MODE).unwrap();
    assert_eq!(rt.drcr().current_mode("cam").unwrap(), BASE_MODE);
    assert_eq!(rt.drcr().ledger().reservation("cam"), Some((0, 0.50)));
}

#[test]
fn unaffordable_mode_switch_leaves_component_unsatisfied_not_overcommitted() {
    let mut rt = runtime();
    rt.install_component("demo.cam", moded_camera()).unwrap();
    let filler_bundle = rt
        .install_component("demo.fill", filler("fill", 0.40))
        .unwrap();
    // cam 0.5 + fill 0.4 = 0.9 fits. Burst mode wants 0.8: 0.8 + 0.4 > 1.
    rt.switch_mode("cam", "burst").unwrap();
    assert_eq!(rt.component_state("cam"), Some(ComponentState::Unsatisfied));
    assert!(rt.drcr().admission_verdicts().any(|e| matches!(
        e.event,
        DrcrEvent::AdmissionVerdict {
            internal: true,
            admitted: false,
            ..
        }
    )));
    // The CPU was never overcommitted.
    assert!(rt.drcr().ledger().utilization(0) <= 1.0);
    // Freeing capacity lets the burst mode in automatically.
    rt.stop_bundle(filler_bundle).unwrap();
    assert_eq!(rt.component_state("cam"), Some(ComponentState::Active));
    assert_eq!(rt.drcr().ledger().reservation("cam"), Some((0, 0.80)));
    assert_eq!(rt.drcr().current_mode("cam").unwrap(), "burst");
}

#[test]
fn unknown_modes_error() {
    let mut rt = runtime();
    rt.install_component("demo.cam", moded_camera()).unwrap();
    let err = rt.switch_mode("cam", "warp").unwrap_err();
    assert!(err.to_string().contains("no mode `warp`"));
    assert!(rt.switch_mode("ghost", "degrad").is_err());
}

#[test]
fn mode_switch_from_suspended_resumes_under_the_new_contract() {
    let mut rt = runtime();
    rt.install_component("demo.cam", moded_camera()).unwrap();
    rt.suspend_component("cam").unwrap();
    assert_eq!(rt.component_state("cam"), Some(ComponentState::Suspended));
    rt.switch_mode("cam", "degrad").unwrap();
    // Reconfiguration epoch: the switch re-admits and activates fresh.
    assert_eq!(rt.component_state("cam"), Some(ComponentState::Active));
    assert_eq!(rt.drcr().current_mode("cam").unwrap(), "degrad");
    assert_eq!(rt.drcr().ledger().reservation("cam"), Some((0, 0.05)));
}

#[test]
fn mode_switch_is_idempotent() {
    let mut rt = runtime();
    rt.install_component("demo.cam", moded_camera()).unwrap();
    rt.switch_mode("cam", "degrad").unwrap();
    let transitions_before = rt.drcr().transitions().len();
    rt.switch_mode("cam", "degrad").unwrap();
    assert_eq!(rt.drcr().transitions().len(), transitions_before);
}

#[test]
fn consumers_follow_the_mode_switch_gap() {
    // A consumer of the camera's output rides through the switch: it drops
    // to Unsatisfied during the reconfiguration epoch and returns.
    let mut rt = runtime();
    let cam = {
        let d = ComponentDescriptor::builder("cam")
            .periodic(1000, 0, 2)
            .cpu_usage(0.30)
            .outport("frames", PortInterface::Shm, DataType::Byte, 4)
            .mode("degrad", 100, 0.05, 2)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let _ = io.write("frames", &[0, 1, 2, 3]);
            }))
        })
    };
    let viewer = {
        let d = ComponentDescriptor::builder("view")
            .periodic(10, 0, 5)
            .cpu_usage(0.02)
            .inport("frames", PortInterface::Shm, DataType::Byte, 4)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let _ = io.read("frames");
            }))
        })
    };
    rt.install_component("demo.cam", cam).unwrap();
    rt.install_component("demo.view", viewer).unwrap();
    assert_eq!(rt.component_state("view"), Some(ComponentState::Active));
    rt.switch_mode("cam", "degrad").unwrap();
    // After the single process() pass both are back.
    assert_eq!(rt.component_state("cam"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("view"), Some(ComponentState::Active));
    // The viewer's provider is still the camera.
    assert_eq!(
        rt.drcr().providers_of("view").unwrap(),
        &[("frames".to_string(), "cam".to_string())]
    );
}
