//! Multi-CPU deployments: the descriptor's `runoncup` placement, per-CPU
//! admission independence, and cross-CPU pipelines. (The paper's testbed is
//! a duo-core laptop; Figure 2 pins the camera with `runoncup="0"`.)

use drcom::resolve::RmBoundResolver;
use drt::prelude::*;

fn runtime(cpus: u32) -> DrtRuntime {
    DrtRuntime::new(
        KernelConfig::new(83)
            .with_timer(TimerJitterModel::ideal())
            .with_cpus(cpus),
    )
}

fn pinned(name: &str, cpu: u32, usage: f64) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(100, cpu, 3)
        .cpu_usage(usage)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_micros(100));
        }))
    })
}

#[test]
fn admission_is_per_cpu() {
    let mut rt = runtime(2);
    // 0.7 each: two fit only if they land on different CPUs.
    rt.install_component("d.a", pinned("a", 0, 0.7)).unwrap();
    rt.install_component("d.b", pinned("b", 1, 0.7)).unwrap();
    rt.install_component("d.c", pinned("c", 0, 0.7)).unwrap();
    assert_eq!(rt.component_state("a"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("b"), Some(ComponentState::Active));
    // c shares CPU 0 with a: rejected.
    assert_eq!(rt.component_state("c"), Some(ComponentState::Unsatisfied));
    assert!((rt.drcr().ledger().utilization(0) - 0.7).abs() < 1e-9);
    assert!((rt.drcr().ledger().utilization(1) - 0.7).abs() < 1e-9);
}

#[test]
fn descriptor_cpu_placement_reaches_the_kernel() {
    let mut rt = runtime(2);
    let xml = r#"<drt:component name="cam" type="periodic" cpuusage="0.1">
      <implementation bincode="a.B"/>
      <periodictask frequence="100" runoncup="1" priority="2"/>
    </drt:component>"#;
    rt.install_component(
        "d.cam",
        ComponentProvider::from_xml(xml, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
            .unwrap(),
    )
    .unwrap();
    rt.advance(SimDuration::from_millis(100));
    // Work shows up on CPU 1 only.
    assert!(rt.kernel().cpu_rt_utilization(1) > 0.0);
    assert_eq!(rt.kernel().cpu_rt_utilization(0), 0.0);
}

#[test]
fn a_cpu_that_does_not_exist_fails_activation_cleanly() {
    let mut rt = runtime(1);
    rt.install_component("d.ghost", pinned("ghost", 5, 0.1))
        .unwrap();
    // Registered but unactivatable: the kernel refuses CPU 5, the DRCR
    // rolls back and logs it.
    assert_eq!(
        rt.component_state("ghost"),
        Some(ComponentState::Unsatisfied)
    );
    assert!(rt.drcr().events_for("ghost").any(|e| matches!(
        e.event,
        DrcrEvent::ActivationFailed { .. } | DrcrEvent::Rollback { .. }
    )));
    assert!(rt.drcr().ledger().is_empty());
}

#[test]
fn cross_cpu_pipelines_flow_through_shm() {
    let mut rt = runtime(2);
    let prod = {
        let d = ComponentDescriptor::builder("prod")
            .periodic(100, 0, 2)
            .cpu_usage(0.1)
            .outport("link", PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let v = io.cycle() as i32;
                io.write("link", &v.to_le_bytes()).unwrap();
            }))
        })
    };
    let cons = {
        let d = ComponentDescriptor::builder("cons")
            .periodic(50, 1, 2)
            .cpu_usage(0.1)
            .inport("link", PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let _ = io.read("link").unwrap();
            }))
        })
    };
    rt.install_component("d.prod", prod).unwrap();
    rt.install_component("d.cons", cons).unwrap();
    rt.advance(SimDuration::from_secs(1));
    let kernel = rt.kernel();
    let seg = kernel.shm().get("link").unwrap();
    assert!(seg.write_count() >= 99);
    assert!(seg.read_count() >= 49);
    assert!(kernel.cpu_rt_utilization(0) > 0.0);
    assert!(kernel.cpu_rt_utilization(1) > 0.0);
}

#[test]
fn rm_bound_applies_per_cpu() {
    let mut rt = DrtRuntime::with_resolver(
        KernelConfig::new(85)
            .with_timer(TimerJitterModel::ideal())
            .with_cpus(2),
        Box::new(RmBoundResolver),
    );
    // Two tasks at 0.5 + 0.3 = 0.8 violate the 2-task RM bound (0.828? no:
    // 0.8 < 0.828 fits). Use 0.5 + 0.35 = 0.85 > 0.828: second rejected on
    // the same CPU, admitted on the other.
    rt.install_component("d.a", pinned("a", 0, 0.5)).unwrap();
    rt.install_component("d.b", pinned("b", 0, 0.35)).unwrap();
    assert_eq!(rt.component_state("b"), Some(ComponentState::Unsatisfied));
    rt.install_component("d.c", pinned("c", 1, 0.35)).unwrap();
    assert_eq!(rt.component_state("c"), Some(ComponentState::Active));
}

// ---------------------------------------------------------------------------
// Executor-parameterized fleets: the same multi-CPU workloads run under the
// serial `DeterministicExecutor` and the threaded `ParallelExecutor`, and on
// quiescent (CPU-local IPC) workloads the two must produce linearization-
// equivalent schedules at every worker count.
// ---------------------------------------------------------------------------

use drt::drcom::parallel::FleetBridge;
use drt::rtos::exec::{
    executor_from_env, linearization_equivalent, DeterministicExecutor, Executor, ParallelExecutor,
    Workload,
};
use drt::rtos::kernel::TaskCtx;
use drt::rtos::task::{FnBody, TaskConfig};
use drt::rtos::trace::KernelEvent as KEvent;

fn parallel_variants(cpus: u32) -> Vec<ParallelExecutor> {
    (1..=cpus as usize).map(ParallelExecutor::new).collect()
}

#[test]
fn mailbox_wakeup_is_equivalent_under_both_executors() {
    // One ping/echo pair per CPU: every post stays CPU-local, so the
    // workload is quiescent and the linearization guarantee applies.
    let mut bridge = FleetBridge::new(2, 311);
    for cpu in 0..2u32 {
        let mbx = format!("mbx{cpu}");
        let ping = ComponentDescriptor::builder(&format!("ping{cpu}"))
            .periodic(1000, cpu, 3)
            .cpu_usage(0.1)
            .outport(&mbx, PortInterface::Mailbox, DataType::Byte, 8)
            .build()
            .unwrap();
        let echo = ComponentDescriptor::builder(&format!("echo{cpu}"))
            .aperiodic(cpu, 2)
            .cpu_usage(0.05)
            .inport(&mbx, PortInterface::Mailbox, DataType::Byte, 8)
            .build()
            .unwrap();
        let post_to = mbx.clone();
        bridge = bridge
            .component(ping, move || {
                let mbx = post_to.clone();
                let mut cycle: u64 = 0;
                Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                    cycle += 1;
                    if cycle.is_multiple_of(3) {
                        let _ = ctx.mailbox_send(&mbx, &cycle.to_le_bytes());
                    }
                }))
            })
            .component(echo, move || {
                let mbx = mbx.clone();
                Box::new(FnBody(
                    move |ctx: &mut TaskCtx<'_>| {
                        while let Ok(Some(_)) = ctx.mailbox_recv(&mbx) {}
                    },
                ))
            });
    }
    let workload = bridge.build().unwrap();
    let horizon = SimDuration::from_millis(30);
    let reference = DeterministicExecutor.run(&workload, horizon).unwrap();
    for cpu in 0..2 {
        let echo = reference.task(&format!("echo{cpu}")).unwrap();
        assert!(echo.cycles >= 9, "echo{cpu} woke {} times", echo.cycles);
    }
    for parallel in parallel_variants(2) {
        let workers = parallel.workers();
        let outcome = parallel.run(&workload, horizon).unwrap();
        linearization_equivalent(&reference, &outcome)
            .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
    }
}

#[test]
fn preemption_points_survive_the_parallel_executor() {
    // A slow low-urgency hog shares CPU 0 with a fast high-urgency dart;
    // CPU 1 runs an independent hog. The dart must displace the hog at the
    // same instants in every mode.
    let workload = Workload::new(2, 77)
        .task(
            TaskConfig::periodic(
                "hog",
                drt::rtos::task::Priority(5),
                SimDuration::from_millis(10),
            )
            .unwrap()
            .on_cpu(0),
            || {
                Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                    ctx.compute(SimDuration::from_millis(4));
                }))
            },
        )
        .task(
            TaskConfig::periodic(
                "dart",
                drt::rtos::task::Priority(1),
                SimDuration::from_millis(1),
            )
            .unwrap()
            .on_cpu(0)
            .with_latency_tracking(),
            || {
                Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                    ctx.compute(SimDuration::from_micros(100));
                }))
            },
        )
        .task(
            TaskConfig::periodic(
                "hog2",
                drt::rtos::task::Priority(5),
                SimDuration::from_millis(5),
            )
            .unwrap()
            .on_cpu(1),
            || {
                Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                    ctx.compute(SimDuration::from_millis(2));
                }))
            },
        );
    let horizon = SimDuration::from_millis(40);
    let reference = DeterministicExecutor.run(&workload, horizon).unwrap();
    let preemptions = |outcome: &drt::rtos::exec::ExecOutcome| {
        outcome
            .trace
            .iter()
            .filter(|e| matches!(&e.entry.event, KEvent::Preempt { task, .. } if task.as_str() == "hog"))
            .count()
    };
    let reference_preemptions = preemptions(&reference);
    assert!(
        reference_preemptions >= 10,
        "expected steady preemption, saw {reference_preemptions}"
    );
    for parallel in parallel_variants(2) {
        let workers = parallel.workers();
        let outcome = parallel.run(&workload, horizon).unwrap();
        linearization_equivalent(&reference, &outcome)
            .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
        assert_eq!(preemptions(&outcome), reference_preemptions);
    }
}

#[test]
fn fifo_handoff_crosses_the_cpu_boundary_in_every_mode() {
    // Producer on CPU 0 streams into a FIFO homed on CPU 1; the consumer
    // tallies received bytes into a CPU-local SHM segment. Cross-CPU
    // streams are not quiescent (parallel delivery lands at epoch
    // barriers), so this asserts delivery, not schedule equality.
    let build = || {
        Workload::new(2, 19)
            .fifo("pipe", 256, 1)
            .shm("tally", DataType::Byte, 8)
            .task(
                TaskConfig::periodic(
                    "feed",
                    drt::rtos::task::Priority(3),
                    SimDuration::from_millis(1),
                )
                .unwrap()
                .on_cpu(0),
                || {
                    let mut cycle: u64 = 0;
                    Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                        cycle += 1;
                        let _ = ctx.fifo_put("pipe", &cycle.to_le_bytes());
                    }))
                },
            )
            .task(
                TaskConfig::periodic(
                    "drain",
                    drt::rtos::task::Priority(3),
                    SimDuration::from_millis(2),
                )
                .unwrap()
                .on_cpu(1),
                || {
                    let mut total: u64 = 0;
                    Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                        if let Ok(bytes) = ctx.fifo_get("pipe", 64) {
                            total += bytes.len() as u64;
                        }
                        let _ = ctx.shm_write("tally", &total.to_le_bytes());
                    }))
                },
            )
    };
    let workload = build();
    let horizon = SimDuration::from_millis(40);
    let executors: Vec<Box<dyn Executor>> = vec![
        Box::new(DeterministicExecutor),
        Box::new(ParallelExecutor::new(2).with_epoch(SimDuration::from_millis(5))),
    ];
    for executor in executors {
        let outcome = executor.run(&workload, horizon).unwrap();
        let tally = outcome
            .shm
            .iter()
            .find(|p| p.name == "tally")
            .map(|p| u64::from_le_bytes(p.bytes[..8].try_into().unwrap()))
            .unwrap();
        assert!(
            tally > 0,
            "{}: consumer never saw FIFO bytes",
            executor.name()
        );
    }
}

#[test]
fn env_selected_executor_runs_the_fleet() {
    // CI runs this test twice: once with `RTOS_EXECUTOR` unset (serial) and
    // once with `RTOS_EXECUTOR=parallel`, driving the threaded path through
    // the same assertions.
    let workload = Workload::new(2, 5)
        .task(
            TaskConfig::periodic(
                "beat0",
                drt::rtos::task::Priority(2),
                SimDuration::from_millis(1),
            )
            .unwrap()
            .on_cpu(0),
            || Box::new(drt::rtos::task::IdleBody),
        )
        .task(
            TaskConfig::periodic(
                "beat1",
                drt::rtos::task::Priority(2),
                SimDuration::from_millis(1),
            )
            .unwrap()
            .on_cpu(1),
            || Box::new(drt::rtos::task::IdleBody),
        );
    let executor = executor_from_env();
    let outcome = executor
        .run(&workload, SimDuration::from_millis(20))
        .unwrap();
    assert!(outcome.task("beat0").unwrap().cycles >= 19);
    assert!(outcome.task("beat1").unwrap().cycles >= 19);
}
