//! Multi-CPU deployments: the descriptor's `runoncup` placement, per-CPU
//! admission independence, and cross-CPU pipelines. (The paper's testbed is
//! a duo-core laptop; Figure 2 pins the camera with `runoncup="0"`.)

use drcom::resolve::RmBoundResolver;
use drt::prelude::*;

fn runtime(cpus: u32) -> DrtRuntime {
    DrtRuntime::new(
        KernelConfig::new(83)
            .with_timer(TimerJitterModel::ideal())
            .with_cpus(cpus),
    )
}

fn pinned(name: &str, cpu: u32, usage: f64) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(100, cpu, 3)
        .cpu_usage(usage)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_micros(100));
        }))
    })
}

#[test]
fn admission_is_per_cpu() {
    let mut rt = runtime(2);
    // 0.7 each: two fit only if they land on different CPUs.
    rt.install_component("d.a", pinned("a", 0, 0.7)).unwrap();
    rt.install_component("d.b", pinned("b", 1, 0.7)).unwrap();
    rt.install_component("d.c", pinned("c", 0, 0.7)).unwrap();
    assert_eq!(rt.component_state("a"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("b"), Some(ComponentState::Active));
    // c shares CPU 0 with a: rejected.
    assert_eq!(rt.component_state("c"), Some(ComponentState::Unsatisfied));
    assert!((rt.drcr().ledger().utilization(0) - 0.7).abs() < 1e-9);
    assert!((rt.drcr().ledger().utilization(1) - 0.7).abs() < 1e-9);
}

#[test]
fn descriptor_cpu_placement_reaches_the_kernel() {
    let mut rt = runtime(2);
    let xml = r#"<drt:component name="cam" type="periodic" cpuusage="0.1">
      <implementation bincode="a.B"/>
      <periodictask frequence="100" runoncup="1" priority="2"/>
    </drt:component>"#;
    rt.install_component(
        "d.cam",
        ComponentProvider::from_xml(xml, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
            .unwrap(),
    )
    .unwrap();
    rt.advance(SimDuration::from_millis(100));
    // Work shows up on CPU 1 only.
    assert!(rt.kernel().cpu_rt_utilization(1) > 0.0);
    assert_eq!(rt.kernel().cpu_rt_utilization(0), 0.0);
}

#[test]
fn a_cpu_that_does_not_exist_fails_activation_cleanly() {
    let mut rt = runtime(1);
    rt.install_component("d.ghost", pinned("ghost", 5, 0.1))
        .unwrap();
    // Registered but unactivatable: the kernel refuses CPU 5, the DRCR
    // rolls back and logs it.
    assert_eq!(
        rt.component_state("ghost"),
        Some(ComponentState::Unsatisfied)
    );
    assert!(rt.drcr().events_for("ghost").any(|e| matches!(
        e.event,
        DrcrEvent::ActivationFailed { .. } | DrcrEvent::Rollback { .. }
    )));
    assert!(rt.drcr().ledger().is_empty());
}

#[test]
fn cross_cpu_pipelines_flow_through_shm() {
    let mut rt = runtime(2);
    let prod = {
        let d = ComponentDescriptor::builder("prod")
            .periodic(100, 0, 2)
            .cpu_usage(0.1)
            .outport("link", PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let v = io.cycle() as i32;
                io.write("link", &v.to_le_bytes()).unwrap();
            }))
        })
    };
    let cons = {
        let d = ComponentDescriptor::builder("cons")
            .periodic(50, 1, 2)
            .cpu_usage(0.1)
            .inport("link", PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let _ = io.read("link").unwrap();
            }))
        })
    };
    rt.install_component("d.prod", prod).unwrap();
    rt.install_component("d.cons", cons).unwrap();
    rt.advance(SimDuration::from_secs(1));
    let kernel = rt.kernel();
    let seg = kernel.shm().get("link").unwrap();
    assert!(seg.write_count() >= 99);
    assert!(seg.read_count() >= 49);
    assert!(kernel.cpu_rt_utilization(0) > 0.0);
    assert!(kernel.cpu_rt_utilization(1) > 0.0);
}

#[test]
fn rm_bound_applies_per_cpu() {
    let mut rt = DrtRuntime::with_resolver(
        KernelConfig::new(85)
            .with_timer(TimerJitterModel::ideal())
            .with_cpus(2),
        Box::new(RmBoundResolver),
    );
    // Two tasks at 0.5 + 0.3 = 0.8 violate the 2-task RM bound (0.828? no:
    // 0.8 < 0.828 fits). Use 0.5 + 0.35 = 0.85 > 0.828: second rejected on
    // the same CPU, admitted on the other.
    rt.install_component("d.a", pinned("a", 0, 0.5)).unwrap();
    rt.install_component("d.b", pinned("b", 0, 0.35)).unwrap();
    assert_eq!(rt.component_state("b"), Some(ComponentState::Unsatisfied));
    rt.install_component("d.c", pinned("c", 1, 0.35)).unwrap();
    assert_eq!(rt.component_state("c"), Some(ComponentState::Active));
}
