//! Event-driven (aperiodic) components: released by mailbox arrivals or
//! explicit triggers rather than the hardware timer.

use drt::prelude::*;

fn runtime() -> DrtRuntime {
    DrtRuntime::new(KernelConfig::new(71).with_timer(TimerJitterModel::ideal()))
}

/// An aperiodic alarm handler consuming a mailbox inport.
fn handler() -> ComponentProvider {
    let d = ComponentDescriptor::builder("alarm")
        .aperiodic(0, 2)
        .cpu_usage(0.05)
        .inport("events", PortInterface::Mailbox, DataType::Byte, 8)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            while let Ok(Some(msg)) = io.read("events") {
                io.compute(SimDuration::from_micros(50));
                io.log(format!("handled event {:?}", msg.first()));
            }
        }))
    })
}

/// A periodic detector feeding the alarm mailbox.
fn detector() -> ComponentProvider {
    let d = ComponentDescriptor::builder("detect")
        .periodic(100, 0, 3)
        .cpu_usage(0.05)
        .outport("events", PortInterface::Mailbox, DataType::Byte, 8)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            // Fire an event every 10th cycle.
            if io.cycle().is_multiple_of(10) {
                let _ = io.write("events", &[io.cycle() as u8]).unwrap();
            }
        }))
    })
}

#[test]
fn mailbox_arrivals_wake_the_handler() {
    let mut rt = runtime();
    rt.install_component("demo.detect", detector()).unwrap();
    rt.install_component("demo.alarm", handler()).unwrap();
    assert_eq!(rt.component_state("alarm"), Some(ComponentState::Active));
    rt.advance(SimDuration::from_secs(1));
    let task = rt.drcr().task_of("alarm").unwrap();
    let cycles = rt.kernel().task_cycles(task).unwrap();
    // The detector fires 10 events/second; the handler runs per arrival,
    // never on a timer.
    assert!((9..=11).contains(&cycles), "handler cycles {cycles}");
    // Every event was consumed.
    let kernel = rt.kernel();
    let mbx = kernel.mailboxes().get("events").unwrap();
    assert_eq!(mbx.sent_count(), mbx.received_count());
    assert!(mbx.is_empty());
}

#[test]
fn external_posts_wake_the_handler() {
    let mut rt = runtime();
    // No detector: the handler's inport is fed from outside the assembly,
    // but functional resolution needs *some* provider — use a provider-only
    // stub to open the channel... or rather: external feeds mean the
    // handler cannot resolve without a provider, so deploy the detector but
    // suspend it, then drive the mailbox by hand.
    rt.install_component("demo.detect", detector()).unwrap();
    rt.install_component("demo.alarm", handler()).unwrap();
    rt.suspend_component("detect").unwrap();
    // Suspending the provider unsatisfies the handler; resume to keep the
    // pipeline up but idle the detector by advancing zero time.
    rt.resume_component("detect").unwrap();
    assert_eq!(rt.component_state("alarm"), Some(ComponentState::Active));
    let task = rt.drcr().task_of("alarm").unwrap();
    let before = rt.kernel().task_cycles(task).unwrap();
    // Post three events directly (a management/driver path).
    for i in 0..3 {
        assert!(rt.post("events", &[i]).unwrap());
        rt.advance(SimDuration::from_millis(1));
    }
    let after = rt.kernel().task_cycles(task).unwrap();
    assert!(
        after >= before + 3,
        "handler ran {} extra cycles",
        after - before
    );
}

#[test]
fn manual_trigger_releases_one_cycle() {
    let mut rt = runtime();
    // A pure computational aperiodic component (no ports).
    let d = ComponentDescriptor::builder("job")
        .aperiodic(0, 2)
        .cpu_usage(0.05)
        .build()
        .unwrap();
    rt.install_component(
        "demo.job",
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                io.compute(SimDuration::from_millis(1));
            }))
        }),
    )
    .unwrap();
    let task = rt.drcr().task_of("job").unwrap();
    rt.advance(SimDuration::from_millis(50));
    assert_eq!(
        rt.kernel().task_cycles(task).unwrap(),
        0,
        "no spontaneous runs"
    );
    rt.trigger_component("job").unwrap();
    rt.advance(SimDuration::from_millis(10));
    assert_eq!(rt.kernel().task_cycles(task).unwrap(), 1);
    // Triggering periodic components is refused.
    rt.install_component("demo.detect", detector()).unwrap();
    assert!(rt.trigger_component("detect").is_err());
    // Triggering unknown/inactive components errors.
    assert!(rt.trigger_component("ghost").is_err());
}

#[test]
fn wakeups_die_with_the_component() {
    let mut rt = runtime();
    rt.install_component("demo.detect", detector()).unwrap();
    let alarm_bundle = rt.install_component("demo.alarm", handler()).unwrap();
    rt.advance(SimDuration::from_millis(500));
    rt.stop_bundle(alarm_bundle).unwrap();
    // The detector keeps producing; no dead task is ever woken, and the
    // events channel keeps working (it belongs to the detector).
    rt.advance(SimDuration::from_millis(500));
    assert_eq!(rt.component_state("alarm"), None);
    assert!(rt.kernel().mailboxes().get("events").is_some());
}
