//! FIFO (byte-stream) ports end to end: the `RTAI.FIFO` extension carried
//! through descriptor, wiring, activation and the hybrid I/O layer.

use drt::prelude::*;

fn runtime() -> DrtRuntime {
    DrtRuntime::new(KernelConfig::new(91).with_timer(TimerJitterModel::ideal()))
}

const LOGGER_XML: &str = r#"<drt:component name="logsrc" type="periodic" cpuusage="0.05">
  <implementation bincode="demo.LogSource"/>
  <periodictask frequence="200" priority="3"/>
  <outport name="logs" interface="RTAI.FIFO" type="Byte" size="32"/>
</drt:component>"#;

const DRAIN_XML: &str = r#"<drt:component name="drain" type="periodic" cpuusage="0.02">
  <implementation bincode="demo.LogDrain"/>
  <periodictask frequence="20" priority="5"/>
  <inport name="logs" interface="RTAI.FIFO" type="Byte" size="32"/>
</drt:component>"#;

#[test]
fn fifo_ports_stream_bytes_between_components() {
    let mut rt = runtime();
    rt.install_component(
        "demo.logsrc",
        ComponentProvider::from_xml(LOGGER_XML, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                // Emit a short variable-length record each cycle.
                let line = format!("c{:04}\n", io.cycle());
                let _ = io.write("logs", line.as_bytes()).unwrap();
            }))
        })
        .unwrap(),
    )
    .unwrap();
    rt.install_component(
        "demo.drain",
        ComponentProvider::from_xml(DRAIN_XML, || {
            let mut collected = Vec::new();
            Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
                while let Ok(Some(chunk)) = io.read("logs") {
                    collected.extend_from_slice(&chunk);
                }
            }))
        })
        .unwrap(),
    )
    .unwrap();
    assert_eq!(rt.component_state("logsrc"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("drain"), Some(ComponentState::Active));

    rt.advance(SimDuration::from_secs(1));
    let kernel = rt.kernel();
    let fifo = kernel.fifos().lookup("logs").unwrap();
    // 200 cycles/s × 6 bytes ≈ 1200 bytes through the stream; the drain at
    // 20 Hz pulls 32 bytes per read until empty, so nearly all flow through.
    assert!(
        fifo.written_bytes() >= 1100,
        "wrote {}",
        fifo.written_bytes()
    );
    assert!(
        fifo.read_bytes() + 64 >= fifo.written_bytes(),
        "drained {} of {}",
        fifo.read_bytes(),
        fifo.written_bytes()
    );
}

#[test]
fn fifo_shape_mismatch_is_functionally_incompatible() {
    let mut rt = runtime();
    rt.install_component(
        "demo.logsrc",
        ComponentProvider::from_xml(LOGGER_XML, || {
            Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
        })
        .unwrap(),
    )
    .unwrap();
    // A drain expecting the channel over SHM instead of a FIFO never wires.
    let wrong = r#"<drt:component name="drain" type="periodic" cpuusage="0.02">
      <implementation bincode="demo.LogDrain"/>
      <periodictask frequence="20" priority="5"/>
      <inport name="logs" interface="RTAI.SHM" type="Byte" size="32"/>
    </drt:component>"#;
    rt.install_component(
        "demo.drain",
        ComponentProvider::from_xml(wrong, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(
        rt.component_state("drain"),
        Some(ComponentState::Unsatisfied)
    );
    assert!(rt.drcr().events().iter().any(|e| matches!(
        &e.event,
        DrcrEvent::WiringUnsatisfied { missing, .. } if missing.contains("incompatible")
    )));
}

#[test]
fn fifo_channels_are_reclaimed_on_departure() {
    let mut rt = runtime();
    let bundle = rt
        .install_component(
            "demo.logsrc",
            ComponentProvider::from_xml(LOGGER_XML, || {
                Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
            })
            .unwrap(),
        )
        .unwrap();
    assert!(rt.kernel().fifos().lookup("logs").is_some());
    rt.stop_bundle(bundle).unwrap();
    assert!(rt.kernel().fifos().is_empty());
}
