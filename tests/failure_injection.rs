//! Failure injection: the system must degrade loudly and cleanly, never
//! silently or leakily, when components misbehave at deployment or run
//! time.

use drt::prelude::*;
use osgi::framework::{BundleActivator, BundleContext, FrameworkError};
use osgi::manifest::BundleManifest;
use osgi::version::Version;
use std::cell::Cell;
use std::rc::Rc;

fn runtime() -> DrtRuntime {
    DrtRuntime::new(KernelConfig::new(77).with_timer(TimerJitterModel::ideal()))
}

fn simple(name: &str, usage: f64) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(100, 0, 3)
        .cpu_usage(usage)
        .build()
        .unwrap();
    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
}

#[test]
fn malformed_descriptors_fail_before_deployment() {
    // A descriptor with a 7-character name, a bogus CPU claim, and a
    // dangling periodic declaration all fail at parse/validate time —
    // nothing ever reaches the framework or kernel.
    for bad_xml in [
        r#"<drt:component name="toolong7" type="aperiodic" cpuusage="0.1">
             <implementation bincode="a.B"/></drt:component>"#,
        r#"<drt:component name="x" type="periodic" cpuusage="0.1">
             <implementation bincode="a.B"/></drt:component>"#,
        r#"<drt:component name="x" type="aperiodic" cpuusage="7">
             <implementation bincode="a.B"/></drt:component>"#,
        "<not-even-xml",
    ] {
        assert!(
            ComponentProvider::from_xml(bad_xml, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
                .is_err(),
            "{bad_xml}"
        );
    }
}

struct PanickyActivator;

impl BundleActivator for PanickyActivator {
    fn start(&mut self, _ctx: &mut BundleContext<'_>) -> Result<(), String> {
        Err("refusing to start".into())
    }
}

#[test]
fn failed_activator_leaves_system_consistent() {
    let mut rt = runtime();
    rt.install_component("demo.good", simple("good", 0.1))
        .unwrap();
    let bad = rt
        .framework_mut()
        .install(
            BundleManifest::new("demo.bad", Version::new(1, 0, 0)),
            Box::new(PanickyActivator),
        )
        .unwrap();
    let err = rt.framework_mut().start(bad).unwrap_err();
    assert!(matches!(err, FrameworkError::ActivatorFailed { .. }));
    rt.process();
    // The failure is contained: the good component is untouched.
    assert_eq!(rt.component_state("good"), Some(ComponentState::Active));
    assert_eq!(rt.drcr().component_names(), vec!["good".to_string()]);
}

#[test]
fn duplicate_component_names_are_refused_loudly() {
    let mut rt = runtime();
    rt.install_component("demo.one", simple("calc", 0.1))
        .unwrap();
    // A second bundle shipping the same component name: the DRCR refuses
    // the registration (names are globally unique, §2.3) and logs it.
    rt.install_component("demo.two", simple("calc", 0.2))
        .unwrap();
    assert!(rt
        .drcr()
        .events()
        .iter()
        .any(|e| matches!(e.event, DrcrEvent::RegistrationRefused { .. })));
    // Exactly one `calc`, with the first bundle's claim.
    assert_eq!(rt.drcr().ledger().reservation("calc"), Some((0, 0.1)));
}

#[test]
fn channel_shape_conflicts_roll_back_cleanly() {
    let mut rt = runtime();
    // An unrelated kernel object already owns the channel name with a
    // different shape.
    rt.kernel_mut()
        .shm_mut()
        .alloc("chan", DataType::Byte, 99)
        .unwrap();
    let d = ComponentDescriptor::builder("prod")
        .periodic(100, 0, 3)
        .cpu_usage(0.1)
        .outport("chan", PortInterface::Shm, DataType::Integer, 1)
        .outport("chan2", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    rt.install_component(
        "demo.prod",
        ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))),
    )
    .unwrap();
    // Activation failed...
    assert_eq!(
        rt.component_state("prod"),
        Some(ComponentState::Unsatisfied)
    );
    assert!(rt.drcr().events_for("prod").any(|e| matches!(
        e.event,
        DrcrEvent::Rollback { .. } | DrcrEvent::ActivationFailed { .. }
    )));
    // ...and rolled back: no task, no stray chan2 segment, no reservation.
    assert!(rt.kernel().task_by_name("prod").is_none());
    assert!(rt.kernel().shm().get("chan2").is_none());
    assert!(rt.drcr().ledger().is_empty());
    // Freeing the conflicting object and re-resolving recovers.
    rt.kernel_mut().shm_mut().free("chan").unwrap();
    rt.install_component("demo.nudge", simple("nudge", 0.01))
        .unwrap();
    assert_eq!(rt.component_state("prod"), Some(ComponentState::Active));
}

#[test]
fn command_mailbox_overflow_is_reported_not_lost() {
    let mut rt = runtime();
    rt.install_component("demo.calc", simple("calc", 0.1))
        .unwrap();
    let mgmt = rt.management("calc").unwrap();
    // The command mailbox holds 16; the RT task never runs (we do not
    // advance time), so the 17th command must be rejected.
    let mut accepted = 0;
    let mut rejected = 0;
    for i in 0..20 {
        match mgmt.set_property("p", PropertyValue::Integer(i)) {
            Ok(()) => accepted += 1,
            Err(e) => {
                rejected += 1;
                assert!(e.to_string().contains("full"), "{e}");
            }
        }
    }
    assert_eq!(accepted, 16);
    assert_eq!(rejected, 4);
    // Once the task runs, the queue drains and commands flow again.
    rt.advance(SimDuration::from_millis(50));
    let mgmt = rt.management("calc").unwrap();
    mgmt.set_property("p", PropertyValue::Integer(99)).unwrap();
}

#[test]
fn management_calls_on_dead_components_error_cleanly() {
    let mut rt = runtime();
    let bundle = rt
        .install_component("demo.calc", simple("calc", 0.1))
        .unwrap();
    let mgmt = rt.management("calc").unwrap();
    rt.stop_bundle(bundle).unwrap();
    // The handle outlived its component: every operation fails with a
    // meaningful error instead of panicking or going to a wrong target.
    assert!(mgmt.suspend().is_err());
    assert!(mgmt.set_property("p", PropertyValue::Integer(1)).is_err());
    assert!(mgmt.request_status().is_err());
    assert_eq!(mgmt.state(), ComponentState::Destroyed);
}

#[test]
fn reply_mailbox_overflow_drops_replies_not_the_task() {
    let mut rt = runtime();
    rt.install_component("demo.calc", simple("calc", 0.1))
        .unwrap();
    let mgmt = rt.management("calc").unwrap();
    // 16 status requests fit the command box; the RT side answers all of
    // them in one cycle, overflowing the 16-slot reply box is impossible
    // here, but 2 rounds of 16 with no polling in between would overflow.
    let mut tokens = Vec::new();
    for _ in 0..16 {
        tokens.push(mgmt.request_status().unwrap());
    }
    rt.advance(SimDuration::from_millis(15));
    for _ in 0..16 {
        let _ = mgmt.request_status();
    }
    rt.advance(SimDuration::from_millis(15));
    // The task is alive and still answering.
    let task = rt.drcr().task_of("calc").unwrap();
    assert!(rt.kernel().task_cycles(task).unwrap() >= 2);
    // The first batch of replies is retrievable.
    let mgmt = rt.management("calc").unwrap();
    let got = tokens
        .iter()
        .filter(|t| matches!(mgmt.poll_reply(**t), Ok(Some(_))))
        .count();
    assert!(got >= 1, "at least the drained replies arrive");
}

#[test]
fn overload_admission_explains_every_rejection() {
    let mut rt = runtime();
    for i in 0..8 {
        rt.install_component(&format!("demo.c{i}"), simple(&format!("c{i}"), 0.3))
            .unwrap();
    }
    // 0.3 × 8 = 2.4: only 3 fit under the 1.0 internal cap.
    let active = (0..8)
        .filter(|i| rt.component_state(&format!("c{i}")) == Some(ComponentState::Active))
        .count();
    assert_eq!(active, 3);
    let rejections = rt
        .drcr()
        .admission_verdicts()
        .filter(|e| {
            matches!(
                e.event,
                DrcrEvent::AdmissionVerdict {
                    internal: true,
                    admitted: false,
                    ..
                }
            )
        })
        .count();
    assert!(rejections >= 5, "rejections {rejections}");
}

// ---------------------------------------------------------------------
// Runtime faults: panics out of RT cycle bodies must be contained the
// same cycle, reported through typed events, and answered by the
// supervision policy — quarantine by default, restart under Backoff,
// flap-detection quarantine for wedged components.
// ---------------------------------------------------------------------

/// A component whose logic panics at `panic_cycle` on every instance
/// (a *wedged* component: restarting it never helps).
fn wedged(name: &str, panic_cycle: u64) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(100, 0, 3)
        .cpu_usage(0.1)
        .build()
        .unwrap();
    ComponentProvider::new(d, move || {
        Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
            if io.cycle() == panic_cycle {
                panic!("wedged at cycle {panic_cycle}");
            }
        }))
    })
}

#[test]
fn panicking_component_is_quarantined_by_default() {
    let mut rt = runtime();
    rt.install_component("demo.victim", wedged("victim", 2))
        .unwrap();
    rt.install_component("demo.good", simple("good", 0.1))
        .unwrap();
    assert_eq!(rt.component_state("victim"), Some(ComponentState::Active));
    rt.advance(SimDuration::from_millis(100));
    // Fail-stop default: the panicking component is quarantined…
    assert_eq!(rt.component_state("victim"), Some(ComponentState::Disabled));
    assert!(rt.drcr().is_quarantined("victim"));
    // …its task and reservation are gone, the neighbour is untouched.
    assert!(rt.drcr().task_of("victim").is_none());
    assert!(rt.drcr().ledger().reservation("victim").is_none());
    assert_eq!(rt.component_state("good"), Some(ComponentState::Active));
    // The whole story is in the typed event stream.
    assert!(rt.drcr().events_for("victim").any(|e| matches!(
        &e.event,
        DrcrEvent::ComponentFault { cause, .. } if cause.contains("wedged at cycle 2")
    )));
    assert!(rt
        .drcr()
        .events_for("victim")
        .any(|e| matches!(e.event, DrcrEvent::Quarantined { .. })));
    // Quarantine is not a death sentence: an operator re-enable grants a
    // fresh slate and the component re-admits (and will fault again —
    // it is wedged — but that is the operator's call).
    rt.enable_component("victim").unwrap();
    assert!(!rt.drcr().is_quarantined("victim"));
    assert_eq!(rt.component_state("victim"), Some(ComponentState::Active));
}

#[test]
fn transient_provider_fault_recovers_under_backoff_and_rewires() {
    let mut rt = runtime();
    // Provider of `chan` that panics once, on its first instance only: a
    // transient fault that a restart clears.
    let instances = Rc::new(Cell::new(0u32));
    let counter = instances.clone();
    let d = ComponentDescriptor::builder("src")
        .periodic(100, 0, 2)
        .cpu_usage(0.2)
        .outport("chan", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    let provider = ComponentProvider::new(d, move || {
        counter.set(counter.get() + 1);
        let first = counter.get() == 1;
        Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
            if first && io.cycle() == 2 {
                panic!("transient glitch");
            }
            let _ = io.write("chan", &7i32.to_le_bytes());
        }))
    });
    let sink = {
        let d = ComponentDescriptor::builder("snk")
            .periodic(50, 0, 4)
            .cpu_usage(0.1)
            .inport("chan", PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let _ = io.read("chan");
            }))
        })
    };
    rt.set_supervision(
        "src",
        SupervisionConfig::backoff(
            SimDuration::from_millis(20),
            2,
            SimDuration::from_millis(80),
            3,
        ),
    );
    rt.install_component("demo.src", provider).unwrap();
    rt.install_component("demo.snk", sink).unwrap();
    assert_eq!(rt.component_state("snk"), Some(ComponentState::Active));
    // The provider panics at ~20 ms; detection happens at the next
    // management poll (the end of this advance).
    rt.advance(SimDuration::from_millis(50));
    assert_eq!(rt.component_state("src"), Some(ComponentState::Unsatisfied));
    // The consumer cascade-deactivated cleanly: no dangling wiring into a
    // dead provider, no leaked reservations.
    assert_eq!(rt.component_state("snk"), Some(ComponentState::Unsatisfied));
    assert!(rt.drcr().ledger().is_empty());
    assert!(rt.drcr().events_for("src").any(|e| matches!(
        e.event,
        DrcrEvent::RestartScheduled {
            attempt: 1,
            delay_ns: 20_000_000,
            ..
        }
    )));
    // Within the backoff window nothing restarts.
    rt.advance(SimDuration::from_millis(5));
    assert_eq!(rt.component_state("src"), Some(ComponentState::Unsatisfied));
    // Once the delay expires the supervisor releases the hold, the
    // resolver re-admits the fresh instance, and the consumer rewires.
    rt.advance(SimDuration::from_millis(30));
    assert!(rt
        .drcr()
        .events_for("src")
        .any(|e| matches!(e.event, DrcrEvent::RestartAttempt { attempt: 1, .. })));
    assert_eq!(rt.component_state("src"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("snk"), Some(ComponentState::Active));
    assert_eq!(
        rt.drcr().providers_of("snk").unwrap(),
        &[("chan".to_string(), "src".to_string())]
    );
    assert_eq!(instances.get(), 2, "restart built a fresh logic instance");
    // And the recovered instance stays up.
    rt.advance(SimDuration::from_millis(100));
    assert_eq!(rt.component_state("src"), Some(ComponentState::Active));
    assert!(!rt.drcr().is_quarantined("src"));
}

#[test]
fn wedged_component_flaps_into_sliding_window_quarantine() {
    let mut rt = runtime();
    // The injector panics the body at cycle 0 of *every* instance; the
    // shared log survives restarts and counts what was injected.
    let plan = Rc::new(FaultPlan::new(11).at(0, FaultKind::Panic));
    let log = InjectionLog::shared();
    let d = ComponentDescriptor::builder("flappy")
        .periodic(100, 0, 3)
        .cpu_usage(0.1)
        .build()
        .unwrap();
    let provider = ComponentProvider::new(d, {
        let (plan, log) = (plan.clone(), log.clone());
        move || {
            FaultInjector::wrap(
                plan.clone(),
                log.clone(),
                Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})),
            )
        }
    });
    // A generous restart budget, but a flap detector that gives up after
    // 3 faults inside one second.
    rt.set_supervision(
        "flappy",
        SupervisionConfig::immediate(100).with_quarantine(SimDuration::from_secs(1), 3),
    );
    rt.install_component("demo.flappy", provider).unwrap();
    for _ in 0..6 {
        rt.advance(SimDuration::from_millis(50));
        if rt.drcr().is_quarantined("flappy") {
            break;
        }
    }
    // The window overrode the per-restart budget.
    assert!(rt.drcr().is_quarantined("flappy"));
    assert_eq!(rt.component_state("flappy"), Some(ComponentState::Disabled));
    assert!(rt.drcr().ledger().is_empty());
    assert!(rt.drcr().events_for("flappy").any(|e| matches!(
        &e.event,
        DrcrEvent::Quarantined { reason, .. } if reason.contains("within")
    )));
    // 3 instances ran, each injected exactly one panic.
    assert_eq!(log.borrow().instances, 3);
    assert_eq!(log.borrow().panics, 3);
    // 2 restarts were attempted before the window tripped.
    assert_eq!(
        rt.drcr()
            .events_for("flappy")
            .filter(|e| matches!(e.event, DrcrEvent::RestartAttempt { .. }))
            .count(),
        2
    );
}

struct Collector(Rc<std::cell::RefCell<Vec<(SimTime, DrcrEvent)>>>);

impl drt::drcom::obs::TraceSubscriber<DrcrEvent> for Collector {
    fn on_event(&mut self, time: SimTime, event: &DrcrEvent) {
        self.0.borrow_mut().push((time, event.clone()));
    }
}

#[test]
fn fault_reaction_is_resolution_strategy_independent() {
    // The same faulty scenario under the incremental resolver and the
    // naive reference must produce byte-identical DrcrEvent streams —
    // supervision is part of the executive's observable contract.
    let build = |naive: bool| {
        let mut rt = runtime();
        if naive {
            rt.set_resolution_strategy(drt::drcom::ResolutionStrategy::NaiveReference);
        }
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        rt.drcr_mut()
            .add_event_subscriber(Box::new(Collector(log.clone())));
        rt.set_supervision(
            "victim",
            SupervisionConfig::backoff(
                SimDuration::from_millis(10),
                2,
                SimDuration::from_millis(40),
                2,
            )
            .with_quarantine(SimDuration::from_secs(1), 4),
        );
        rt.install_component("demo.victim", wedged("victim", 1))
            .unwrap();
        rt.install_component("demo.good", simple("good", 0.1))
            .unwrap();
        for _ in 0..8 {
            rt.advance(SimDuration::from_millis(25));
        }
        (rt, log)
    };
    let (inc, inc_log) = build(false);
    let (naive, naive_log) = build(true);
    assert_eq!(
        inc.component_state("victim"),
        naive.component_state("victim")
    );
    assert!(!inc_log.borrow().is_empty());
    assert_eq!(*inc_log.borrow(), *naive_log.borrow());
    // The wedged victim exhausted its restart budget in both worlds.
    assert!(inc.drcr().is_quarantined("victim"));
    assert!(naive.drcr().is_quarantined("victim"));
    assert_eq!(inc.component_state("good"), Some(ComponentState::Active));
}

// ---------------------------------------------------------------------
// Sustained fault storms: Backoff × quarantine-window interaction. The
// backoff schedule must hold on *virtual time* across restarts — every
// attempt releases only after its exponentially grown delay — and a
// storm must always terminate in quarantine (via the sliding window or
// the restart budget), never in a silent retry loop.
// ---------------------------------------------------------------------

/// A component wedged on every instance: each restarted incarnation
/// faults again on its first cycle, sustaining the storm for as long as
/// the policy keeps granting restarts.
fn stormy(name: &str) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(100, 0, 3)
        .cpu_usage(0.1)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            if io.cycle() == 0 {
                panic!("storm");
            }
        }))
    })
}

#[test]
fn fault_storm_backoff_schedule_holds_on_virtual_time() {
    let mut rt = runtime();
    // Wide flap window (tolerating 4 faults) so the exponential schedule
    // gets three full rounds before the window rules.
    rt.set_supervision(
        "storm",
        SupervisionConfig::backoff(
            SimDuration::from_millis(20),
            2,
            SimDuration::from_millis(160),
            8,
        )
        .with_quarantine(SimDuration::from_secs(10), 4),
    );
    rt.install_component("demo.storm", stormy("storm")).unwrap();
    rt.install_component("demo.good", simple("good", 0.1))
        .unwrap();
    // Fine-grained advance: the 1 ms poll granularity bounds how far past
    // its virtual-time deadline a restart release can land.
    for _ in 0..600 {
        rt.advance(SimDuration::from_millis(1));
        if rt.drcr().is_quarantined("storm") {
            break;
        }
    }
    assert!(rt.drcr().is_quarantined("storm"), "storm never quarantined");

    // Three restarts were scheduled with exponentially growing delays.
    let scheduled: Vec<(SimTime, u32, u64)> = rt
        .drcr()
        .events_for("storm")
        .filter_map(|e| match e.event {
            DrcrEvent::RestartScheduled {
                attempt, delay_ns, ..
            } => Some((e.time, attempt, delay_ns)),
            _ => None,
        })
        .collect();
    assert_eq!(
        scheduled
            .iter()
            .map(|(_, a, d)| (*a, *d))
            .collect::<Vec<_>>(),
        vec![(1, 20_000_000), (2, 40_000_000), (3, 80_000_000)],
        "backoff schedule wrong: {scheduled:?}"
    );
    // And each attempt released on *virtual time*: no earlier than its
    // delay after the scheduling decision, no later than the delay plus
    // poll slack.
    let attempts: Vec<(SimTime, u32)> = rt
        .drcr()
        .events_for("storm")
        .filter_map(|e| match e.event {
            DrcrEvent::RestartAttempt { attempt, .. } => Some((e.time, attempt)),
            _ => None,
        })
        .collect();
    assert_eq!(attempts.len(), 3, "attempts: {attempts:?}");
    for (when, attempt) in &attempts {
        let (decided, _, delay_ns) = scheduled[(*attempt - 1) as usize];
        let gap = when.duration_since(decided).as_nanos();
        assert!(
            gap >= delay_ns,
            "attempt {attempt} released {gap} ns after decision, before its {delay_ns} ns backoff"
        );
        assert!(
            gap <= delay_ns + 5_000_000,
            "attempt {attempt} released {gap} ns after decision, way past its {delay_ns} ns backoff"
        );
    }
    // The 4th fault tripped the sliding window, with the window as the
    // typed reason.
    assert!(rt.drcr().events_for("storm").any(|e| matches!(
        &e.event,
        DrcrEvent::Quarantined { reason, .. } if reason.contains("faults within")
    )));
    // The storm never leaked: no reservation, no task, neighbour intact.
    assert!(rt.drcr().ledger().reservation("storm").is_none());
    assert!(rt.drcr().task_of("storm").is_none());
    assert_eq!(rt.component_state("good"), Some(ComponentState::Active));
}

#[test]
fn fault_storm_exhausts_restart_budget_into_quarantine() {
    let mut rt = runtime();
    // No flap window: the restart *budget* is the only terminator.
    rt.set_supervision(
        "storm",
        SupervisionConfig::backoff(
            SimDuration::from_millis(10),
            2,
            SimDuration::from_millis(40),
            2,
        ),
    );
    rt.install_component("demo.storm", stormy("storm")).unwrap();
    for _ in 0..400 {
        rt.advance(SimDuration::from_millis(1));
        if rt.drcr().is_quarantined("storm") {
            break;
        }
    }
    assert!(rt.drcr().is_quarantined("storm"));
    assert!(rt.drcr().events_for("storm").any(|e| matches!(
        &e.event,
        DrcrEvent::Quarantined { reason, .. } if reason.contains("restart budget exhausted (2)")
    )));
    // Exactly the budget's worth of attempts ran, then the storm went
    // quiet: quarantine holds through further virtual time.
    let count_attempts = |rt: &DrtRuntime| {
        rt.drcr()
            .events_for("storm")
            .filter(|e| matches!(e.event, DrcrEvent::RestartAttempt { .. }))
            .count()
    };
    assert_eq!(count_attempts(&rt), 2);
    rt.advance(SimDuration::from_millis(300));
    assert_eq!(count_attempts(&rt), 2, "quarantined storm restarted");
    assert!(rt.drcr().is_quarantined("storm"));
}

// ---------------------------------------------------------------------
// Executor-parameterized fault containment: the same fleet runs under
// the serial executor, the threaded executor, and whatever
// `RTOS_EXECUTOR` selects (CI runs this suite both ways), so panic
// containment and undo-journal rollback are exercised on the parallel
// path too.
// ---------------------------------------------------------------------

use drt::rtos::exec::{executor_from_env, DeterministicExecutor, Executor, ParallelExecutor};
use drt::rtos::kernel::TaskCtx;
use drt::rtos::task::{FnBody, TaskState};

#[test]
fn panic_containment_holds_under_every_executor() {
    let build = || {
        let mut bridge = FleetBridge::new(2, 401);
        for cpu in 0..2u32 {
            let work = ComponentDescriptor::builder(&format!("work{cpu}"))
                .periodic(1000, cpu, 3)
                .cpu_usage(0.1)
                .build()
                .unwrap();
            let boom = ComponentDescriptor::builder(&format!("boom{cpu}"))
                .periodic(1000, cpu, 2)
                .cpu_usage(0.1)
                .build()
                .unwrap();
            bridge = bridge
                .component(work, || {
                    Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                        ctx.compute(SimDuration::from_micros(20));
                    }))
                })
                .component(boom, || {
                    Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                        if ctx.cycle() == 3 {
                            panic!("boom at cycle 3");
                        }
                    }))
                });
        }
        bridge.build().unwrap()
    };
    let executors: Vec<Box<dyn Executor>> = vec![
        Box::new(DeterministicExecutor),
        Box::new(ParallelExecutor::new(2)),
        executor_from_env(),
    ];
    for executor in executors {
        let outcome = executor
            .run(&build(), SimDuration::from_millis(20))
            .unwrap();
        for cpu in 0..2u32 {
            let boom = outcome.task(&format!("boom{cpu}")).unwrap();
            assert_eq!(boom.state, TaskState::Faulted, "{}", executor.name());
            assert_eq!(boom.faults, 1, "{}", executor.name());
            // Containment: the sibling on the same CPU never missed a
            // beat despite the panic in a higher-priority neighbour.
            let work = outcome.task(&format!("work{cpu}")).unwrap();
            assert!(
                work.cycles >= 19,
                "{}: work{cpu} starved at {} cycles",
                executor.name(),
                work.cycles
            );
            assert_eq!(work.faults, 0);
        }
        assert_eq!(outcome.counters.faults, 2, "{}", executor.name());
    }
}

#[test]
fn undo_journal_rolls_back_partial_writes_under_every_executor() {
    // The producer publishes its cycle number to SHM and a mailbox every
    // clean cycle; on cycle 5 it writes/sends poison and panics. The
    // undo journal must roll the poisoned cycle back on every executor:
    // the SHM cell still holds the last *clean* value and the consumer
    // tallies only clean messages.
    let build = || {
        let prod = ComponentDescriptor::builder("prod")
            .periodic(1000, 0, 2)
            .cpu_usage(0.2)
            .outport("cell", PortInterface::Shm, DataType::Byte, 8)
            .outport("post", PortInterface::Mailbox, DataType::Byte, 64)
            .build()
            .unwrap();
        let sink = ComponentDescriptor::builder("sink")
            .aperiodic(0, 3)
            .cpu_usage(0.1)
            .inport("post", PortInterface::Mailbox, DataType::Byte, 64)
            .outport("sum", PortInterface::Shm, DataType::Byte, 16)
            .build()
            .unwrap();
        FleetBridge::new(1, 402)
            .component(prod, || {
                Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                    let c = ctx.cycle();
                    if c == 5 {
                        ctx.shm_write("cell", &u64::MAX.to_le_bytes()).unwrap();
                        let _ = ctx.mailbox_send("post", &u64::MAX.to_le_bytes());
                        panic!("poisoned cycle");
                    }
                    ctx.shm_write("cell", &c.to_le_bytes()).unwrap();
                    let _ = ctx.mailbox_send("post", &c.to_le_bytes());
                }))
            })
            .component(sink, || {
                let mut total: u64 = 0;
                let mut count: u64 = 0;
                Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                    while let Ok(Some(msg)) = ctx.mailbox_recv("post") {
                        total += u64::from_le_bytes(msg[..8].try_into().unwrap());
                        count += 1;
                    }
                    let mut out = [0u8; 16];
                    out[..8].copy_from_slice(&total.to_le_bytes());
                    out[8..].copy_from_slice(&count.to_le_bytes());
                    ctx.shm_write("sum", &out).unwrap();
                }))
            })
            .build()
            .unwrap()
    };
    let executors: Vec<Box<dyn Executor>> = vec![
        Box::new(DeterministicExecutor),
        Box::new(ParallelExecutor::new(1)),
        executor_from_env(),
    ];
    for executor in executors {
        let outcome = executor
            .run(&build(), SimDuration::from_millis(20))
            .unwrap();
        let prod = outcome.task("prod").unwrap();
        assert_eq!(prod.state, TaskState::Faulted, "{}", executor.name());
        assert_eq!(prod.faults, 1, "{}", executor.name());
        let shm = |name: &str| {
            outcome
                .shm
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("{}: no shm `{name}`", executor.name()))
                .bytes
                .clone()
        };
        // The poisoned write was rolled back: the cell holds the last
        // clean cycle number, not u64::MAX.
        let cell = u64::from_le_bytes(shm("cell")[..8].try_into().unwrap());
        assert_eq!(cell, 4, "{}: poisoned SHM write survived", executor.name());
        // The poisoned send was rolled back too: the consumer saw the 5
        // clean messages (0+1+2+3+4 = 10) and nothing else.
        let sum = shm("sum");
        let total = u64::from_le_bytes(sum[..8].try_into().unwrap());
        let count = u64::from_le_bytes(sum[8..16].try_into().unwrap());
        assert_eq!(count, 5, "{}: poisoned send delivered", executor.name());
        assert_eq!(total, 10, "{}: tally off", executor.name());
    }
}
