//! Failure injection: the system must degrade loudly and cleanly, never
//! silently or leakily, when components misbehave at deployment or run
//! time.

use drt::prelude::*;
use osgi::framework::{BundleActivator, BundleContext, FrameworkError};
use osgi::manifest::BundleManifest;
use osgi::version::Version;

fn runtime() -> DrtRuntime {
    DrtRuntime::new(KernelConfig::new(77).with_timer(TimerJitterModel::ideal()))
}

fn simple(name: &str, usage: f64) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(100, 0, 3)
        .cpu_usage(usage)
        .build()
        .unwrap();
    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
}

#[test]
fn malformed_descriptors_fail_before_deployment() {
    // A descriptor with a 7-character name, a bogus CPU claim, and a
    // dangling periodic declaration all fail at parse/validate time —
    // nothing ever reaches the framework or kernel.
    for bad_xml in [
        r#"<drt:component name="toolong7" type="aperiodic" cpuusage="0.1">
             <implementation bincode="a.B"/></drt:component>"#,
        r#"<drt:component name="x" type="periodic" cpuusage="0.1">
             <implementation bincode="a.B"/></drt:component>"#,
        r#"<drt:component name="x" type="aperiodic" cpuusage="7">
             <implementation bincode="a.B"/></drt:component>"#,
        "<not-even-xml",
    ] {
        assert!(
            ComponentProvider::from_xml(bad_xml, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
                .is_err(),
            "{bad_xml}"
        );
    }
}

struct PanickyActivator;

impl BundleActivator for PanickyActivator {
    fn start(&mut self, _ctx: &mut BundleContext<'_>) -> Result<(), String> {
        Err("refusing to start".into())
    }
}

#[test]
fn failed_activator_leaves_system_consistent() {
    let mut rt = runtime();
    rt.install_component("demo.good", simple("good", 0.1))
        .unwrap();
    let bad = rt
        .framework_mut()
        .install(
            BundleManifest::new("demo.bad", Version::new(1, 0, 0)),
            Box::new(PanickyActivator),
        )
        .unwrap();
    let err = rt.framework_mut().start(bad).unwrap_err();
    assert!(matches!(err, FrameworkError::ActivatorFailed { .. }));
    rt.process();
    // The failure is contained: the good component is untouched.
    assert_eq!(rt.component_state("good"), Some(ComponentState::Active));
    assert_eq!(rt.drcr().component_names(), vec!["good".to_string()]);
}

#[test]
fn duplicate_component_names_are_refused_loudly() {
    let mut rt = runtime();
    rt.install_component("demo.one", simple("calc", 0.1))
        .unwrap();
    // A second bundle shipping the same component name: the DRCR refuses
    // the registration (names are globally unique, §2.3) and logs it.
    rt.install_component("demo.two", simple("calc", 0.2))
        .unwrap();
    assert!(rt
        .drcr()
        .events()
        .iter()
        .any(|e| matches!(e.event, DrcrEvent::RegistrationRefused { .. })));
    // Exactly one `calc`, with the first bundle's claim.
    assert_eq!(rt.drcr().ledger().reservation("calc"), Some((0, 0.1)));
}

#[test]
fn channel_shape_conflicts_roll_back_cleanly() {
    let mut rt = runtime();
    // An unrelated kernel object already owns the channel name with a
    // different shape.
    rt.kernel_mut()
        .shm_mut()
        .alloc("chan", DataType::Byte, 99)
        .unwrap();
    let d = ComponentDescriptor::builder("prod")
        .periodic(100, 0, 3)
        .cpu_usage(0.1)
        .outport("chan", PortInterface::Shm, DataType::Integer, 1)
        .outport("chan2", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    rt.install_component(
        "demo.prod",
        ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))),
    )
    .unwrap();
    // Activation failed...
    assert_eq!(
        rt.component_state("prod"),
        Some(ComponentState::Unsatisfied)
    );
    assert!(rt.drcr().events_for("prod").any(|e| matches!(
        e.event,
        DrcrEvent::Rollback { .. } | DrcrEvent::ActivationFailed { .. }
    )));
    // ...and rolled back: no task, no stray chan2 segment, no reservation.
    assert!(rt.kernel().task_by_name("prod").is_none());
    assert!(rt.kernel().shm().get("chan2").is_none());
    assert!(rt.drcr().ledger().is_empty());
    // Freeing the conflicting object and re-resolving recovers.
    rt.kernel_mut().shm_mut().free("chan").unwrap();
    rt.install_component("demo.nudge", simple("nudge", 0.01))
        .unwrap();
    assert_eq!(rt.component_state("prod"), Some(ComponentState::Active));
}

#[test]
fn command_mailbox_overflow_is_reported_not_lost() {
    let mut rt = runtime();
    rt.install_component("demo.calc", simple("calc", 0.1))
        .unwrap();
    let mgmt = rt.management("calc").unwrap();
    // The command mailbox holds 16; the RT task never runs (we do not
    // advance time), so the 17th command must be rejected.
    let mut accepted = 0;
    let mut rejected = 0;
    for i in 0..20 {
        match mgmt.set_property("p", PropertyValue::Integer(i)) {
            Ok(()) => accepted += 1,
            Err(e) => {
                rejected += 1;
                assert!(e.to_string().contains("full"), "{e}");
            }
        }
    }
    assert_eq!(accepted, 16);
    assert_eq!(rejected, 4);
    // Once the task runs, the queue drains and commands flow again.
    rt.advance(SimDuration::from_millis(50));
    let mgmt = rt.management("calc").unwrap();
    mgmt.set_property("p", PropertyValue::Integer(99)).unwrap();
}

#[test]
fn management_calls_on_dead_components_error_cleanly() {
    let mut rt = runtime();
    let bundle = rt
        .install_component("demo.calc", simple("calc", 0.1))
        .unwrap();
    let mgmt = rt.management("calc").unwrap();
    rt.stop_bundle(bundle).unwrap();
    // The handle outlived its component: every operation fails with a
    // meaningful error instead of panicking or going to a wrong target.
    assert!(mgmt.suspend().is_err());
    assert!(mgmt.set_property("p", PropertyValue::Integer(1)).is_err());
    assert!(mgmt.request_status().is_err());
    assert_eq!(mgmt.state(), ComponentState::Destroyed);
}

#[test]
fn reply_mailbox_overflow_drops_replies_not_the_task() {
    let mut rt = runtime();
    rt.install_component("demo.calc", simple("calc", 0.1))
        .unwrap();
    let mgmt = rt.management("calc").unwrap();
    // 16 status requests fit the command box; the RT side answers all of
    // them in one cycle, overflowing the 16-slot reply box is impossible
    // here, but 2 rounds of 16 with no polling in between would overflow.
    let mut tokens = Vec::new();
    for _ in 0..16 {
        tokens.push(mgmt.request_status().unwrap());
    }
    rt.advance(SimDuration::from_millis(15));
    for _ in 0..16 {
        let _ = mgmt.request_status();
    }
    rt.advance(SimDuration::from_millis(15));
    // The task is alive and still answering.
    let task = rt.drcr().task_of("calc").unwrap();
    assert!(rt.kernel().task_cycles(task).unwrap() >= 2);
    // The first batch of replies is retrievable.
    let mgmt = rt.management("calc").unwrap();
    let got = tokens
        .iter()
        .filter(|t| matches!(mgmt.poll_reply(**t), Ok(Some(_))))
        .count();
    assert!(got >= 1, "at least the drained replies arrive");
}

#[test]
fn overload_admission_explains_every_rejection() {
    let mut rt = runtime();
    for i in 0..8 {
        rt.install_component(&format!("demo.c{i}"), simple(&format!("c{i}"), 0.3))
            .unwrap();
    }
    // 0.3 × 8 = 2.4: only 3 fit under the 1.0 internal cap.
    let active = (0..8)
        .filter(|i| rt.component_state(&format!("c{i}")) == Some(ComponentState::Active))
        .count();
    assert_eq!(active, 3);
    let rejections = rt
        .drcr()
        .admission_verdicts()
        .filter(|e| {
            matches!(
                e.event,
                DrcrEvent::AdmissionVerdict {
                    internal: true,
                    admitted: false,
                    ..
                }
            )
        })
        .count();
    assert!(rejections >= 5, "rejections {rejections}");
}
