//! Integration test of the paper's §4.3 dynamicity scenario, asserting the
//! full event chain: arrival ordering, cascade on departure, automatic
//! re-activation, and the integrity of the DRCR's global view throughout.

use drt::prelude::*;

fn runtime() -> DrtRuntime {
    DrtRuntime::new(KernelConfig::new(11).with_timer(TimerJitterModel::ideal()))
}

fn calc() -> ComponentProvider {
    let d = ComponentDescriptor::builder("calc")
        .periodic(1000, 0, 2)
        .cpu_usage(0.15)
        .outport("latdat", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_micros(100));
            let v = (io.cycle() as i32).to_le_bytes();
            io.write("latdat", &v).unwrap();
        }))
    })
}

fn disp() -> ComponentProvider {
    let d = ComponentDescriptor::builder("disp")
        .periodic(4, 0, 5)
        .cpu_usage(0.01)
        .inport("latdat", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .unwrap();
    ComponentProvider::new(d, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            let _ = io.read("latdat").unwrap();
        }))
    })
}

#[test]
fn scenario_forward_consumer_first() {
    let mut rt = runtime();
    rt.install_component("demo.disp", disp()).unwrap();
    assert_eq!(
        rt.component_state("disp"),
        Some(ComponentState::Unsatisfied)
    );
    // The typed event log explains *why*.
    assert!(rt.drcr().events_for("disp").any(|e| matches!(
        &e.event,
        DrcrEvent::WiringUnsatisfied { missing, .. } if missing.contains("no provider")
    )));

    rt.install_component("demo.calc", calc()).unwrap();
    assert_eq!(rt.component_state("calc"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("disp"), Some(ComponentState::Active));
}

#[test]
fn scenario_reverse_provider_departs_and_returns() {
    let mut rt = runtime();
    let calc_bundle = rt.install_component("demo.calc", calc()).unwrap();
    rt.install_component("demo.disp", disp()).unwrap();
    rt.advance(SimDuration::from_millis(20));

    // Departure: the DRCR gets notified and consults its resolving services
    // again; disp is found unsatisfied and disabled (paper §4.3).
    rt.stop_bundle(calc_bundle).unwrap();
    assert_eq!(
        rt.component_state("calc"),
        None,
        "calc removed with its bundle"
    );
    assert_eq!(
        rt.component_state("disp"),
        Some(ComponentState::Unsatisfied)
    );

    // The RT side is really gone: no tasks, no channels, no reservations.
    assert!(rt.kernel().task_by_name("calc").is_none());
    assert!(rt.kernel().task_by_name("disp").is_none());
    assert!(rt.kernel().shm().is_empty(), "SHM leaked");
    assert!(rt.drcr().ledger().is_empty(), "admission leaked");

    // Return: everything re-activates without operator involvement.
    rt.start_bundle(calc_bundle).unwrap();
    assert_eq!(rt.component_state("calc"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("disp"), Some(ComponentState::Active));
    rt.advance(SimDuration::from_millis(20));
    let task = rt.drcr().task_of("disp").unwrap();
    assert!(rt.kernel().task_state(task).is_some());
}

#[test]
fn data_flows_across_components_through_rt_ipc() {
    let mut rt = runtime();
    rt.install_component("demo.calc", calc()).unwrap();
    rt.install_component("demo.disp", disp()).unwrap();
    rt.advance(SimDuration::from_secs(1));
    let shm = rt.kernel();
    let seg = shm.shm().get("latdat").unwrap();
    assert!(seg.write_count() >= 990, "calc wrote {}", seg.write_count());
    assert!(seg.read_count() >= 3, "disp read {}", seg.read_count());
}

#[test]
fn repeated_churn_never_leaks() {
    let mut rt = runtime();
    rt.install_component("demo.disp", disp()).unwrap();
    let calc_bundle = rt.install_component("demo.calc", calc()).unwrap();
    for _ in 0..10 {
        rt.advance(SimDuration::from_millis(10));
        rt.stop_bundle(calc_bundle).unwrap();
        assert_eq!(
            rt.component_state("disp"),
            Some(ComponentState::Unsatisfied)
        );
        rt.start_bundle(calc_bundle).unwrap();
        assert_eq!(rt.component_state("disp"), Some(ComponentState::Active));
    }
    // Exactly one live reservation pair and one SHM segment at the end.
    assert_eq!(rt.drcr().ledger().len(), 2);
    assert_eq!(rt.kernel().shm().len(), 1);
    // Transition log shows 11 activations of disp (1 initial + 10 churns).
    let disp_activations = rt
        .drcr()
        .transitions()
        .iter()
        .filter(|t| t.component == "disp" && t.to == ComponentState::Active)
        .count();
    assert_eq!(disp_activations, 11);
}

#[test]
fn uninstall_behaves_like_stop_for_the_drcr() {
    let mut rt = runtime();
    let calc_bundle = rt.install_component("demo.calc", calc()).unwrap();
    rt.install_component("demo.disp", disp()).unwrap();
    rt.uninstall_bundle(calc_bundle).unwrap();
    assert_eq!(rt.component_state("calc"), None);
    assert_eq!(
        rt.component_state("disp"),
        Some(ComponentState::Unsatisfied)
    );
    // A fresh bundle with the same component name can be installed again.
    rt.install_component("demo.calc2", calc()).unwrap();
    assert_eq!(rt.component_state("disp"), Some(ComponentState::Active));
}
