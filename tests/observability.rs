//! Observability-layer guarantees: metrics snapshots are deterministic
//! (byte-identical across same-seed runs) and tracing is free of observer
//! effects (attaching rings and subscribers never perturbs scheduling).

use std::cell::Cell;
use std::rc::Rc;

use drt::prelude::*;
use rtos::time::SimTime;
use rtos::trace::TraceSubscriber;

/// Builds and exercises a full scenario: a producer/consumer pair, a moded
/// camera, an admission rejection, management traffic, and a mode switch.
fn run_scenario(seed: u64, trace_capacity: usize) -> DrtRuntime {
    replay_scenario(DrtRuntime::new(
        KernelConfig::new(seed)
            .with_timer(TimerJitterModel::calibrated(
                rtos::latency::TimerMode::Periodic,
            ))
            .with_trace(trace_capacity),
    ))
}

/// A fingerprint of everything scheduling-relevant: component states, task
/// cycle counts, latency statistics, IPC traffic, and virtual time.
fn scheduling_fingerprint(rt: &DrtRuntime) -> String {
    let mut out = String::new();
    for name in rt.drcr().component_names() {
        let state = rt.component_state(&name);
        out.push_str(&format!("{name}: {state:?}\n"));
        if let Some(task) = rt.drcr().task_of(&name) {
            let kernel = rt.kernel();
            let cycles = kernel.task_cycles(task).unwrap_or(0);
            out.push_str(&format!("  cycles={cycles}\n"));
            if let Some(stats) = kernel.task_stats(task) {
                out.push_str(&format!(
                    "  lat: n={} avg={:.6} avedev={:.6} min={:?} max={:?}\n",
                    stats.count(),
                    stats.average(),
                    stats.avedev(),
                    stats.min(),
                    stats.max(),
                ));
            }
        }
    }
    let kernel = rt.kernel();
    if let Some(seg) = kernel.shm().get("latdat") {
        out.push_str(&format!(
            "latdat: writes={} reads={}\n",
            seg.write_count(),
            seg.read_count()
        ));
    }
    out.push_str(&format!("now={}\n", kernel.now().as_nanos()));
    out
}

/// Drops the `kernel.trace.*` bookkeeping lines, which legitimately change
/// with the trace configuration itself.
fn without_trace_counters(report_text: &str) -> String {
    report_text
        .lines()
        .filter(|l| !l.contains("kernel.trace."))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn metrics_snapshot_is_byte_identical_across_same_seed_runs() {
    let a = run_scenario(2008, 0);
    let b = run_scenario(2008, 0);
    let ra = a.metrics_report();
    let rb = b.metrics_report();
    assert_eq!(ra.to_text(), rb.to_text());
    assert_eq!(ra.to_json_lines(), rb.to_json_lines());
    // The typed event logs agree too (timestamps and payloads).
    let da = a.drcr();
    let db = b.drcr();
    let ea: Vec<_> = da.events().iter().collect();
    let eb: Vec<_> = db.events().iter().collect();
    assert_eq!(ea, eb);
    // Sanity: the report actually has content from every layer.
    let text = ra.to_text();
    assert!(text.contains("drcr.activations"));
    assert!(text.contains("bridge.commands"));
    assert!(text.contains("drcr.mode_switches"));
    assert!(text.contains("sched.calc.cycles"));
}

#[test]
fn different_seeds_give_different_latencies_but_same_structure() {
    let a = run_scenario(2008, 0);
    let b = run_scenario(4242, 0);
    let ta = a.metrics_report().to_text();
    let tb = b.metrics_report().to_text();
    assert_ne!(ta, tb, "jitter must differ across seeds");
    // Same metric names in the same order, only values differ.
    let names = |t: &str| {
        t.lines()
            .filter_map(|l| l.split('=').next().map(str::to_string))
            .collect::<Vec<_>>()
    };
    assert_eq!(names(&ta), names(&tb));
}

struct CountingTap(Rc<Cell<u64>>);

impl TraceSubscriber<KernelEvent> for CountingTap {
    fn on_event(&mut self, _time: SimTime, _event: &KernelEvent) {
        self.0.set(self.0.get() + 1);
    }
}

struct DrcrTap(Rc<Cell<u64>>);

impl TraceSubscriber<DrcrEvent> for DrcrTap {
    fn on_event(&mut self, _time: SimTime, _event: &DrcrEvent) {
        self.0.set(self.0.get() + 1);
    }
}

/// Property: for any seed, running the identical scenario untraced, with a
/// large kernel trace ring, or with a tiny ring plus live subscribers on
/// both layers produces the exact same scheduling outcome. Observability
/// never feeds back into the system under observation.
#[test]
fn tracing_is_observer_effect_free_across_seeds() {
    for seed in [3, 11, 42, 77, 1234, 99991] {
        let baseline = run_scenario(seed, 0);
        let expected = scheduling_fingerprint(&baseline);
        let expected_metrics = without_trace_counters(&baseline.metrics_report().to_text());

        // Variant 1: a generously sized kernel trace ring.
        let traced = run_scenario(seed, 4096);
        assert_eq!(
            scheduling_fingerprint(&traced),
            expected,
            "seed {seed}: trace ring perturbed scheduling"
        );
        assert_eq!(
            without_trace_counters(&traced.metrics_report().to_text()),
            expected_metrics,
            "seed {seed}: trace ring perturbed metrics"
        );
        assert!(!traced.kernel().trace().is_empty());

        // Variant 2: a tiny ring (constant eviction) plus live taps on the
        // kernel and the DRCR — the most intrusive configuration we offer.
        let kernel_events = Rc::new(Cell::new(0u64));
        let drcr_events = Rc::new(Cell::new(0u64));
        let tapped = DrtRuntime::new(
            KernelConfig::new(seed)
                .with_timer(TimerJitterModel::calibrated(
                    rtos::latency::TimerMode::Periodic,
                ))
                .with_trace(2),
        );
        tapped
            .kernel_mut()
            .add_trace_subscriber(Box::new(CountingTap(kernel_events.clone())));
        tapped
            .drcr_mut()
            .add_event_subscriber(Box::new(DrcrTap(drcr_events.clone())));
        // Replay the exact same scenario steps on the tapped runtime.
        let reference = run_scenario(seed, 0);
        let tapped = replay_scenario(tapped);
        assert_eq!(
            scheduling_fingerprint(&tapped),
            scheduling_fingerprint(&reference),
            "seed {seed}: live taps perturbed scheduling"
        );
        assert!(kernel_events.get() > 0, "kernel tap never fired");
        assert!(drcr_events.get() > 0, "drcr tap never fired");
    }
}

/// The scenario body applied to an already-constructed runtime, so tests
/// can attach subscribers before any activity happens.
fn replay_scenario(mut rt: DrtRuntime) -> DrtRuntime {
    let calc = {
        let d = ComponentDescriptor::builder("calc")
            .periodic(1000, 0, 2)
            .cpu_usage(0.15)
            .outport("latdat", PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                io.compute(SimDuration::from_micros(100));
                let v = (io.cycle() as i32).to_le_bytes();
                io.write("latdat", &v).unwrap();
            }))
        })
    };
    let disp = {
        let d = ComponentDescriptor::builder("disp")
            .periodic(4, 0, 5)
            .cpu_usage(0.01)
            .inport("latdat", PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let _ = io.read("latdat").unwrap();
            }))
        })
    };
    let cam = {
        let d = ComponentDescriptor::builder("cam")
            .periodic(500, 0, 3)
            .cpu_usage(0.40)
            .mode("degrad", 50, 0.05, 3)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                io.compute(SimDuration::from_micros(50));
            }))
        })
    };
    let hog = {
        // 0.15 + 0.01 + 0.40 + 0.60 > 1.0: rejected by internal admission.
        let d = ComponentDescriptor::builder("hog")
            .periodic(100, 0, 4)
            .cpu_usage(0.60)
            .build()
            .unwrap();
        ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
    };
    rt.install_component("demo.calc", calc).unwrap();
    rt.install_component("demo.disp", disp).unwrap();
    rt.install_component("demo.cam", cam).unwrap();
    rt.install_component("demo.hog", hog).unwrap();
    rt.advance(SimDuration::from_millis(200));
    let mgmt = rt.management("calc").unwrap();
    mgmt.set_property("gain", PropertyValue::Integer(3))
        .unwrap();
    let token = mgmt.request_status().unwrap();
    rt.advance(SimDuration::from_millis(20));
    let mgmt = rt.management("calc").unwrap();
    assert!(matches!(mgmt.poll_reply(token), Ok(Some(_))));
    rt.switch_mode("cam", "degrad").unwrap();
    rt.advance(SimDuration::from_millis(50));
    rt.suspend_component("disp").unwrap();
    rt.advance(SimDuration::from_millis(20));
    rt.resume_component("disp").unwrap();
    rt.advance(SimDuration::from_millis(50));
    rt
}
