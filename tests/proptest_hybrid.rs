//! Hand-rolled property tests for the hybrid bridge wire format
//! (`drcom::hybrid::{Command, Reply}`).
//!
//! Cases are generated from the in-repo seeded `SimRng` (no external
//! property-testing crate). The properties:
//!
//! 1. **Round-trip**: `decode(encode(m)) == m` for arbitrary messages.
//! 2. **Totality**: `decode` never panics — not on random garbage, not on
//!    truncated prefixes of valid encodings, not on bit-flipped valid
//!    encodings, not on a command fed to the reply decoder or vice versa.
//!    Malformed input is a `ProtoError` value, never an unwind (an unwind
//!    inside the RT task body would trip the kernel's fault containment).
//! 3. **Truncation detection**: every *strict* prefix of a valid encoding
//!    is rejected — the format carries enough framing that a partial
//!    message can never masquerade as a complete one.
//! 4. **Re-encode stability**: whatever `decode` accepts, `encode` maps
//!    back to bytes that decode to the same message (no lossy corners).

use drcom::hybrid::{Command, Reply};
use drcom::model::PropertyValue;
use rtos::rng::SimRng;

fn arb_string(rng: &mut SimRng) -> String {
    let len = rng.uniform_u64(0, 12) as usize;
    (0..len)
        .map(|_| {
            // Mix ASCII with multi-byte code points to stress UTF-8 paths.
            if rng.chance(0.15) {
                '\u{03B8}' // θ
            } else {
                char::from(b'a' + (rng.next_u64() % 26) as u8)
            }
        })
        .collect()
}

fn arb_value(rng: &mut SimRng) -> PropertyValue {
    match rng.uniform_u64(0, 4) {
        0 => PropertyValue::Integer(rng.next_u64() as i64),
        1 => PropertyValue::Float((rng.uniform() - 0.5) * 1.0e9),
        2 => PropertyValue::Text(arb_string(rng)),
        _ => PropertyValue::Boolean(rng.chance(0.5)),
    }
}

fn arb_command(rng: &mut SimRng) -> Command {
    match rng.uniform_u64(0, 4) {
        0 => Command::SetProperty {
            name: arb_string(rng),
            value: arb_value(rng),
        },
        1 => Command::GetProperty {
            token: rng.next_u64() as u32,
            name: arb_string(rng),
        },
        2 => Command::QueryStatus {
            token: rng.next_u64() as u32,
        },
        _ => Command::Ping {
            token: rng.next_u64() as u32,
        },
    }
}

fn arb_reply(rng: &mut SimRng) -> Reply {
    match rng.uniform_u64(0, 3) {
        0 => Reply::Property {
            token: rng.next_u64() as u32,
            name: arb_string(rng),
            value: if rng.chance(0.5) {
                Some(arb_value(rng))
            } else {
                None
            },
        },
        1 => Reply::Status {
            token: rng.next_u64() as u32,
            cycles: rng.next_u64(),
            at_ns: rng.next_u64(),
        },
        _ => Reply::Pong {
            token: rng.next_u64() as u32,
        },
    }
}

#[test]
fn arbitrary_messages_round_trip() {
    let mut rng = SimRng::from_seed(0xC0DEC);
    for case in 0..2_000 {
        let cmd = arb_command(&mut rng);
        assert_eq!(
            Command::decode(&cmd.encode().unwrap()).unwrap(),
            cmd,
            "case {case}: {cmd:?}"
        );
        let reply = arb_reply(&mut rng);
        assert_eq!(
            Reply::decode(&reply.encode().unwrap()).unwrap(),
            reply,
            "case {case}: {reply:?}"
        );
    }
}

#[test]
fn strict_prefixes_of_valid_encodings_are_rejected() {
    let mut rng = SimRng::from_seed(0x7A11);
    for case in 0..400 {
        let bytes = arb_command(&mut rng).encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                Command::decode(&bytes[..cut]).is_err(),
                "case {case}: prefix of length {cut}/{} decoded",
                bytes.len()
            );
        }
        let bytes = arb_reply(&mut rng).encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                Reply::decode(&bytes[..cut]).is_err(),
                "case {case}: prefix of length {cut}/{} decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn mutated_encodings_never_panic_and_accepted_ones_reencode() {
    let mut rng = SimRng::from_seed(0xF1F1);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for _ in 0..2_000 {
        let mut bytes = arb_command(&mut rng).encode().unwrap();
        for _ in 0..rng.uniform_u64(1, 5) {
            let i = rng.uniform_u64(0, bytes.len() as u64) as usize;
            bytes[i] ^= rng.next_u64() as u8;
        }
        // A mutation may still be a (different) valid message — fine; the
        // property is no panic, and whatever decodes must re-encode to an
        // equal message.
        match Command::decode(&bytes) {
            Ok(m) => {
                accepted += 1;
                assert_eq!(Command::decode(&m.encode().unwrap()).unwrap(), m);
            }
            Err(e) => {
                rejected += 1;
                assert!(!e.to_string().is_empty());
            }
        }
        let mut bytes = arb_reply(&mut rng).encode().unwrap();
        for _ in 0..rng.uniform_u64(1, 5) {
            let i = rng.uniform_u64(0, bytes.len() as u64) as usize;
            bytes[i] ^= rng.next_u64() as u8;
        }
        match Reply::decode(&bytes) {
            Ok(m) => {
                accepted += 1;
                assert_eq!(Reply::decode(&m.encode().unwrap()).unwrap(), m);
            }
            Err(e) => {
                rejected += 1;
                assert!(!e.to_string().is_empty());
            }
        }
    }
    // The fuzz actually exercised both outcomes.
    assert!(accepted > 0, "no mutation ever decoded");
    assert!(rejected > 0, "no mutation was ever rejected");
}

#[test]
fn length_prefix_boundaries_encode_or_reject_cleanly() {
    // The wire format length-prefixes strings with a u16: 65535 bytes is
    // the last encodable length and must round-trip; 65536 must be a
    // ProtoError at encode time, never a silently wrapped prefix.
    let limit = usize::from(u16::MAX);
    for (len, ok) in [(limit - 1, true), (limit, true), (limit + 1, false)] {
        let name: String = "m".repeat(len);
        let cmd = Command::GetProperty {
            token: 42,
            name: name.clone(),
        };
        match cmd.encode() {
            Ok(bytes) => {
                assert!(ok, "length {len} should have been rejected");
                assert_eq!(Command::decode(&bytes).unwrap(), cmd);
            }
            Err(e) => {
                assert!(!ok, "length {len} should encode: {e}");
            }
        }
        let reply = Reply::Property {
            token: 42,
            name: "p".into(),
            value: Some(PropertyValue::Text(name)),
        };
        match reply.encode() {
            Ok(bytes) => {
                assert!(ok, "length {len} should have been rejected");
                assert_eq!(Reply::decode(&bytes).unwrap(), reply);
            }
            Err(e) => {
                assert!(!ok, "length {len} should encode: {e}");
            }
        }
    }
}

#[test]
fn random_garbage_and_cross_decoding_never_panic() {
    let mut rng = SimRng::from_seed(0x6A6B);
    for _ in 0..2_000 {
        let len = rng.uniform_u64(0, 64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = Command::decode(&bytes);
        let _ = Reply::decode(&bytes);
        // Feeding each decoder the other side's traffic is a ProtoError or
        // a (harmless) coincidental parse — never an unwind.
        let _ = Reply::decode(&arb_command(&mut rng).encode().unwrap());
        let _ = Command::decode(&arb_reply(&mut rng).encode().unwrap());
    }
    assert!(Command::decode(&[]).is_err());
    assert!(Reply::decode(&[]).is_err());
}
