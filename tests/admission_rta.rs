//! Edge cases and lockstep laws for the response-time-analysis admission
//! path (`drcom::rta`, `ResolutionStrategy::ResponseTime`).
//!
//! The analytical cases pin the recurrence against hand-computed response
//! times; the lockstep properties relate the exact test to the utilization
//! family (RM bound ⇒ RTA ⇒ EDF) and check that the `ResponseTime` strategy
//! and the cap strategy drive the executive identically whenever they admit
//! the same fleet.

use drcom::drcr::ResolutionStrategy;
use drcom::lifecycle::ComponentState;
use drcom::resolve::{EdfResolver, ResolvingService, RmBoundResolver, UtilizationResolver};
use drcom::rta::{RtaParams, RtaResolver};
use drcom::view::{ComponentInfo, SystemView};
use drt::prelude::*;
use rtos::rng::SimRng;

fn comp(name: &str, state: ComponentState, usage: f64, prio: u8, period_ms: u64) -> ComponentInfo {
    ComponentInfo {
        name: name.into(),
        state,
        cpu: 0,
        cpu_usage: usage,
        priority: prio,
        period_ns: Some(period_ms * 1_000_000),
    }
}

fn pinned(name: &str, freq: u32, prio: u8, usage: f64) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .periodic(freq, 0, prio)
        .cpu_usage(usage)
        .build()
        .unwrap();
    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
}

/// A single task claiming the whole CPU is exactly schedulable (R = C = T)
/// under the pure analysis, while any utilization cap below 1 rejects it.
#[test]
fn single_task_at_full_utilization() {
    let rta = RtaResolver::new(RtaParams::exact());
    let cap = UtilizationResolver::new(0.9);
    let candidate = comp("solo", ComponentState::Unsatisfied, 1.0, 3, 10);
    let view = SystemView::new(1, vec![candidate.clone()]);
    assert!(rta.admit(&candidate, &view).is_admit());
    assert_eq!(
        rta.analyze(&candidate, &view).wcrt_of("solo"),
        Some(10_000_000)
    );
    assert!(!cap.admit(&candidate, &view).is_admit());
    // Once per-cycle container overhead is charged the 100% claim no
    // longer fits — the default params are deliberately conservative.
    assert!(!RtaResolver::default().admit(&candidate, &view).is_admit());
}

/// Equal priorities: the kernel breaks ties FIFO and round-robins, so an
/// equal-priority peer counts as interference. A long-period candidate that
/// passes every utilization test can still starve a short-period peer of
/// the same priority past its deadline.
#[test]
fn equal_priority_interference_is_counted() {
    let incumbent = comp("short", ComponentState::Active, 0.5, 2, 10);
    // 49 ms of work every 100 ms at the same priority: U = 0.99, yet the
    // incumbent's window now contains up to one full candidate job.
    let candidate = comp("long", ComponentState::Unsatisfied, 0.49, 2, 100);
    let view = SystemView::new(1, vec![incumbent, candidate.clone()]);
    assert!(UtilizationResolver::default()
        .admit(&candidate, &view)
        .is_admit());
    let rta = RtaResolver::new(RtaParams::exact());
    let analysis = rta.analyze(&candidate, &view);
    assert!(!analysis.schedulable);
    // The victim is the *incumbent*: 5 ms own + 49 ms peer = 54 ms > 10 ms.
    assert_eq!(analysis.wcrt_of("short"), Some(54_000_000));
    assert!(analysis.reason.as_deref().unwrap().contains("`short`"));
    // The candidate itself converges: 49 + ceil(99/10)·5 = 99 <= 100.
    assert_eq!(analysis.wcrt_of("long"), Some(99_000_000));
}

/// A candidate below existing higher-priority tasks absorbs their
/// interference: admitted when the inflated response still fits, rejected
/// when preemption pushes it past the deadline the cap never sees.
#[test]
fn candidate_preempted_by_existing_higher_priority_tasks() {
    let hp = comp("hp", ComponentState::Active, 0.5, 1, 10);
    let rta = RtaResolver::new(RtaParams::exact());

    // 5 ms of work, 20 ms period: R = 5 + ceil(R/10)·5 -> 10 ms. Admitted,
    // and the analysis shows the preemption-inflated WCRT (2x the WCET).
    let ok = comp("below", ComponentState::Unsatisfied, 0.25, 3, 20);
    let view = SystemView::new(1, vec![hp.clone(), ok.clone()]);
    let analysis = rta.analyze(&ok, &view);
    assert!(analysis.schedulable);
    assert_eq!(analysis.wcrt_of("below"), Some(10_000_000));

    // 6 ms of work, 15 ms period: R -> 6 + 2·5 = 16 ms > 15 ms. Total
    // utilization is 0.9, so the cap (even at 0.9 + epsilon) admits what
    // fixed-priority scheduling cannot serve.
    let tight = comp("tight", ComponentState::Unsatisfied, 0.4, 3, 15);
    let view = SystemView::new(1, vec![hp, tight.clone()]);
    assert!(UtilizationResolver::new(0.9)
        .admit(&tight, &view)
        .is_admit());
    let analysis = rta.analyze(&tight, &view);
    assert!(!analysis.schedulable);
    assert_eq!(analysis.wcrt_of("tight"), Some(16_000_000));
}

/// Sufficiency ordering on random rate-monotonic fleets: whenever the
/// Liu–Layland RM bound admits, the exact analysis admits too; whenever the
/// exact analysis admits, total utilization is at most 1 (EDF admits).
#[test]
fn rta_sits_between_rm_bound_and_edf_on_random_fleets() {
    let mut rng = SimRng::from_seed(0x57A5);
    let rm = RmBoundResolver;
    let edf = EdfResolver;
    let rta = RtaResolver::new(RtaParams::exact());
    let (mut rm_admits, mut rta_admits) = (0u32, 0u32);
    for case in 0..400 {
        // 1-5 admitted tasks plus a candidate, rate-monotonic priorities.
        let n = rng.uniform_u64(1, 6) as usize;
        let mut periods: Vec<u64> = (0..=n)
            .map(|_| [1u64, 2, 4, 5, 8, 10, 20, 25, 40, 50][rng.uniform_u64(0, 10) as usize])
            .collect();
        periods.sort_unstable();
        let mut fleet: Vec<ComponentInfo> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let usage = 0.02 + rng.uniform() * 0.25;
                comp(&format!("t{i}"), ComponentState::Active, usage, i as u8, p)
            })
            .collect();
        let pick = rng.uniform_u64(0, fleet.len() as u64) as usize;
        fleet[pick].state = ComponentState::Unsatisfied;
        let candidate = fleet[pick].clone();
        let view = SystemView::new(1, fleet);

        let rm_ok = rm.admit(&candidate, &view).is_admit();
        let rta_ok = rta.admit(&candidate, &view).is_admit();
        let edf_ok = edf.admit(&candidate, &view).is_admit();
        if rm_ok {
            rm_admits += 1;
            assert!(
                rta_ok,
                "case {case}: RM bound admitted but exact analysis rejected"
            );
        }
        if rta_ok {
            rta_admits += 1;
            assert!(
                edf_ok,
                "case {case}: RTA admitted a fleet above utilization 1"
            );
        }
    }
    // The fuzz exercised real decisions, and the exact test is strictly
    // more permissive than the bound somewhere in the sample.
    assert!(rm_admits > 0 && rta_admits > rm_admits);
}

/// Lockstep law at the executive level: install a random fleet under the
/// cap strategy and under `ResponseTime`. Whenever both strategies admit
/// exactly the same components, their ledgers agree and their lifecycle
/// event streams (modulo the RTA evidence events and verdict resolver
/// names) are identical.
#[test]
fn response_time_strategy_agrees_with_cap_when_both_admit() {
    let mut rng = SimRng::from_seed(0xADA1);
    let mut agreements = 0u32;
    for case in 0..40 {
        let n = rng.uniform_u64(2, 7) as usize;
        let fleet: Vec<(String, u32, u8, f64)> = (0..n)
            .map(|i| {
                let freq = [50u32, 100, 200][rng.uniform_u64(0, 3) as usize];
                let prio = rng.uniform_u64(1, 5) as u8;
                let usage = 0.05 + rng.uniform() * 0.3;
                (format!("c{i}"), freq, prio, usage)
            })
            .collect();

        let run = |strategy: ResolutionStrategy| {
            let mut rt = DrtRuntime::with_resolver(
                KernelConfig::new(1000 + case).with_timer(TimerJitterModel::ideal()),
                Box::new(UtilizationResolver::new(0.9)),
            );
            rt.set_resolution_strategy(strategy);
            for (name, freq, prio, usage) in &fleet {
                rt.install_component(&format!("d.{name}"), pinned(name, *freq, *prio, *usage))
                    .unwrap();
            }
            rt.advance(SimDuration::from_millis(200));
            let admitted: Vec<String> = fleet
                .iter()
                .filter(|(name, ..)| rt.component_state(name) == Some(ComponentState::Active))
                .map(|(name, ..)| name.clone())
                .collect();
            let utilization = rt.drcr().ledger().utilization(0);
            let lifecycle: Vec<String> = rt
                .drcr()
                .events()
                .iter()
                .filter(|e| {
                    matches!(
                        e.event,
                        DrcrEvent::Activated { .. }
                            | DrcrEvent::Deactivated { .. }
                            | DrcrEvent::CascadeDeactivation { .. }
                    )
                })
                .map(|e| format!("{} {}", e.time.as_nanos(), e.event))
                .collect();
            (admitted, utilization, lifecycle)
        };

        let (cap_admitted, cap_util, cap_events) = run(ResolutionStrategy::Incremental);
        let (rta_admitted, rta_util, rta_events) = run(ResolutionStrategy::ResponseTime);
        if cap_admitted == rta_admitted {
            agreements += 1;
            assert_eq!(
                cap_util.to_bits(),
                rta_util.to_bits(),
                "case {case}: ledgers diverged on an identical admitted set"
            );
            assert_eq!(
                cap_events, rta_events,
                "case {case}: lifecycle streams diverged on an identical admitted set"
            );
        }
    }
    assert!(agreements > 0, "strategies never admitted the same fleet");
}
