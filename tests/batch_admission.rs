//! Batch-vs-sequential admission equivalence (`Drcr::set_batched_admission`).
//!
//! When K simultaneous arrivals are admitted in one response-time-analysis
//! pass per CPU, the outcome must be indistinguishable from K individual
//! passes: the same components end up active, the ledger carries the same
//! reservations, and the analysis evidence for the final task set is the
//! same worst-case response times the last sequential pass would have
//! produced. When the batch cannot be admitted whole, the executive falls
//! back to the sequential path and the event streams are byte-identical.

use std::collections::BTreeMap;

use drcom::drcr::ResolutionStrategy;
use drcom::lifecycle::ComponentState;
use drcom::obs::MetricsReport;
use drt::prelude::*;
use rtos::rng::SimRng;

const CPUS: u32 = 3;

/// `(name, freq_hz, cpu, priority, cpu_usage)`.
type Spec = (String, u32, u32, u8, f64);

fn pinned(spec: &Spec) -> ComponentProvider {
    let (name, freq, cpu, prio, usage) = spec;
    let d = ComponentDescriptor::builder(name)
        .periodic(*freq, *cpu, *prio)
        .cpu_usage(*usage)
        .build()
        .unwrap();
    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
}

fn counter(report: &MetricsReport, name: &str) -> u64 {
    report
        .counters()
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

/// One CPU's final `AdmissionAnalysis` evidence: `(schedulable, wcrts)`,
/// each WCRT row `(task, wcrt_ns, deadline_ns)`.
type CpuAnalysis = (bool, Vec<(String, u64, u64)>);

struct Outcome {
    /// Names that ended the install wave `Active`, in fleet order.
    active: Vec<String>,
    /// Per-CPU ledger utilization, bit-exact.
    utilization_bits: Vec<u64>,
    /// The last `AdmissionAnalysis` evidence emitted per CPU — the
    /// component that carried the event is deliberately excluded, since
    /// the batched pass attributes each CPU's analysis to the final
    /// candidate placed there.
    final_analysis: BTreeMap<u32, CpuAnalysis>,
    rejections: usize,
    batches: u64,
    rta_passes: u64,
    events: Vec<(u64, String)>,
}

/// Installs the whole fleet in one resolve round (one batch window) and
/// snapshots everything the equivalence laws compare.
fn run(fleet: &[Spec], seed: u64, batched: bool) -> Outcome {
    let mut rt = DrtRuntime::new(
        KernelConfig::new(seed)
            .with_cpus(CPUS)
            .with_timer(TimerJitterModel::ideal()),
    );
    rt.set_resolution_strategy(ResolutionStrategy::ResponseTime);
    rt.set_batched_admission(batched);
    rt.install_components(
        fleet
            .iter()
            .map(|spec| (format!("fleet.{}", spec.0), pinned(spec))),
    )
    .unwrap();

    let active = fleet
        .iter()
        .filter(|spec| rt.component_state(&spec.0) == Some(ComponentState::Active))
        .map(|spec| spec.0.clone())
        .collect();
    let drcr = rt.drcr();
    let utilization_bits = (0..CPUS)
        .map(|cpu| drcr.ledger().utilization(cpu).to_bits())
        .collect();
    let mut final_analysis = BTreeMap::new();
    let mut rejections = 0usize;
    let mut events = Vec::new();
    for e in drcr.events().iter() {
        match &e.event {
            DrcrEvent::AdmissionAnalysis {
                cpu,
                schedulable,
                wcrts,
                ..
            } => {
                final_analysis.insert(*cpu, (*schedulable, wcrts.clone()));
            }
            DrcrEvent::AdmissionVerdict {
                admitted: false, ..
            } => rejections += 1,
            _ => {}
        }
        events.push((e.time.as_nanos(), e.event.to_string()));
    }
    let report = drcr.metrics_report();
    Outcome {
        active,
        utilization_bits,
        final_analysis,
        rejections,
        batches: counter(&report, "drcr.admission.batches"),
        rta_passes: counter(&report, "drcr.admission.rta_passes"),
        events,
    }
}

/// A fully schedulable 9-arrival wave over 3 CPUs: the batched pass runs
/// exactly one RTA fixed point per CPU (versus one per candidate
/// sequentially) and lands on the same admitted set, ledger, and final
/// per-CPU response-time evidence.
#[test]
fn batched_wave_admits_like_sequential_with_one_pass_per_cpu() {
    let fleet: Vec<Spec> = (0..9)
        .map(|i| (format!("b{i}"), 100, i % CPUS, (2 + i / CPUS) as u8, 0.05))
        .collect();
    let seq = run(&fleet, 77, false);
    let bat = run(&fleet, 77, true);

    assert_eq!(seq.active.len(), 9, "sequential baseline must admit all");
    assert_eq!(bat.active, seq.active);
    assert_eq!(bat.utilization_bits, seq.utilization_bits);
    assert_eq!(bat.rejections, 0);
    assert_eq!(seq.rejections, 0);

    assert_eq!(bat.batches, 1, "one install wave, one batch");
    assert_eq!(bat.rta_passes, CPUS as u64, "one fixed point per CPU");
    assert_eq!(seq.batches, 0);
    assert_eq!(seq.rta_passes, 9, "one fixed point per candidate");

    // The batched evidence per CPU equals the evidence of the *last*
    // sequential pass on that CPU: both analyse the identical final task
    // set, so the WCRTs agree value for value.
    assert_eq!(bat.final_analysis, seq.final_analysis);
    assert_eq!(bat.final_analysis.len(), CPUS as usize);
}

/// An overloaded wave the batch cannot admit whole: the batched executive
/// falls back to the sequential path inside the same round, so the two
/// runs are byte-identical — same events, same rejections, same ledger.
#[test]
fn unschedulable_batch_falls_back_to_sequential_byte_identically() {
    // CPU 0 receives 0.55 + 0.55: the second claim fails the analysis.
    let fleet: Vec<Spec> = vec![
        ("h0".into(), 100, 0, 2, 0.55),
        ("h1".into(), 100, 0, 3, 0.55),
        ("ok".into(), 100, 1, 2, 0.10),
    ];
    let seq = run(&fleet, 99, false);
    let bat = run(&fleet, 99, true);

    assert_eq!(bat.batches, 0, "an unschedulable batch never commits");
    assert!(seq.rejections > 0, "overload case must actually reject");
    assert_eq!(bat.active, seq.active);
    assert_eq!(bat.rejections, seq.rejections);
    assert_eq!(bat.utilization_bits, seq.utilization_bits);
    assert_eq!(bat.rta_passes, seq.rta_passes);
    assert_eq!(bat.events, seq.events, "fallback must replay sequentially");
}

/// Randomized fleets: for any mix of placements, priorities, and loads,
/// batched and sequential admission agree on the admit/reject set and the
/// ledger — and whenever the batch commits, its per-CPU evidence matches
/// the final sequential analysis. The sample must exercise both the
/// committed-batch and fallback paths.
#[test]
fn randomized_fleets_agree_between_batched_and_sequential() {
    let mut rng = SimRng::from_seed(0xBA7C);
    let (mut committed, mut fell_back) = (0u32, 0u32);
    for case in 0..30u64 {
        let n = rng.uniform_u64(3, 10) as usize;
        let fleet: Vec<Spec> = (0..n)
            .map(|i| {
                let freq = [50u32, 100, 200, 250][rng.uniform_u64(0, 4) as usize];
                let cpu = rng.uniform_u64(0, u64::from(CPUS)) as u32;
                let prio = rng.uniform_u64(1, 6) as u8;
                // A quarter of the candidates are heavy enough that small
                // clusters overload a CPU and force rejections.
                let usage = if rng.uniform_u64(0, 4) == 0 {
                    0.45 + rng.uniform() * 0.3
                } else {
                    0.03 + rng.uniform() * 0.2
                };
                (format!("c{i}"), freq, cpu, prio, usage)
            })
            .collect();

        let seq = run(&fleet, 500 + case, false);
        let bat = run(&fleet, 500 + case, true);

        assert_eq!(
            bat.active, seq.active,
            "case {case}: admit/reject sets diverged"
        );
        assert_eq!(
            bat.utilization_bits, seq.utilization_bits,
            "case {case}: ledgers diverged"
        );
        assert_eq!(
            bat.rejections, seq.rejections,
            "case {case}: rejection counts diverged"
        );
        if bat.batches > 0 {
            committed += 1;
            assert_eq!(
                bat.rejections, 0,
                "case {case}: a committed batch rejects nothing"
            );
            assert_eq!(
                bat.final_analysis, seq.final_analysis,
                "case {case}: batched evidence diverged from the final sequential analysis"
            );
            let cpus_used: std::collections::BTreeSet<u32> =
                fleet.iter().map(|spec| spec.2).collect();
            assert_eq!(
                bat.rta_passes,
                cpus_used.len() as u64,
                "case {case}: committed batch must run one pass per occupied CPU"
            );
        } else {
            fell_back += 1;
            assert_eq!(
                bat.events, seq.events,
                "case {case}: fallback must be byte-identical to sequential"
            );
        }
    }
    assert!(committed > 0, "sample never committed a batch");
    assert!(fell_back > 0, "sample never exercised the fallback");
}
