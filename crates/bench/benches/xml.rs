//! Descriptor parse throughput: the deployment-time cost of reading the
//! component meta-data (paper Figure 2).

use bench::microbench::Runner;
use drcom::descriptor::ComponentDescriptor;
use drcom::xml;
use std::hint::black_box;

const CAMERA_XML: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="camera" desc="this is a smart camera controller"
    type="periodic" enabled="true" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="images" interface="RTAI.SHM" type="Byte" size="400" />
  <inport name="xysize" interface="RTAI.SHM" type="Integer" size="400"/>
  <property name="prox00" type="Integer" value="6" />
  <property name="prox01" type="Integer" value="7" />
  <property name="label" type="String" value="left-arm &amp; gripper" />
</drt:component>"#;

fn big_descriptor(ports: usize) -> String {
    let mut xml = String::from(
        r#"<drt:component name="big" type="periodic" cpuusage="0.5">
  <implementation bincode="a.B"/>
  <periodictask frequence="100" priority="2"/>
"#,
    );
    for i in 0..ports {
        xml.push_str(&format!(
            "  <outport name=\"p{i:04}\" interface=\"RTAI.SHM\" type=\"Byte\" size=\"16\"/>\n"
        ));
    }
    xml.push_str("</drt:component>");
    xml
}

fn main() {
    let runner = Runner::new("xml").iterations(50);
    runner.bench("parse-camera", || {
        xml::parse(black_box(CAMERA_XML)).unwrap()
    });
    runner.bench("descriptor-camera", || {
        ComponentDescriptor::parse_xml(black_box(CAMERA_XML)).unwrap()
    });
    let big = big_descriptor(64);
    runner.bench("descriptor-64-ports", || {
        ComponentDescriptor::parse_xml(black_box(&big)).unwrap()
    });
}
