//! Service registry and LDAP filter throughput.
//!
//! The paper notes that "pure OSGi register based service reference
//! location may not handle the real time invocation timely" — which is why
//! the DRCR maps inter-component communication onto the RT kernel instead
//! of the registry. These benches quantify the registry-side costs that
//! motivated that design: lookup latency as the registry grows, and filter
//! evaluation cost by filter complexity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osgi::ldap::{Filter, Properties};
use osgi::registry::ServiceRegistry;
use std::hint::black_box;
use std::rc::Rc;

fn populate(n: usize) -> ServiceRegistry {
    let mut reg = ServiceRegistry::new();
    for i in 0..n {
        let props = Properties::new()
            .with("drt.name", format!("comp{i:04}"))
            .with("drt.cpu", (i % 4) as i64)
            .with("drt.cpuusage", (i % 100) as f64 / 100.0)
            .with("service.ranking", (i % 10) as i64);
        reg.register(&["drt.management"], Rc::new(i), props);
    }
    reg
}

fn bench_lookup_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry/find-by-name");
    for n in [10usize, 100, 1_000] {
        let reg = populate(n);
        let filter = Filter::parse(&format!("(drt.name=comp{:04})", n / 2)).unwrap();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| black_box(reg.find("drt.management", Some(black_box(&filter)))).len())
        });
    }
    group.finish();
}

fn bench_filter_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry/filter-eval");
    let props = Properties::new()
        .with("drt.name", "calc")
        .with("drt.cpu", 0)
        .with("drt.cpuusage", 0.15)
        .with("drt.enabled", true);
    for (label, text) in [
        ("equality", "(drt.name=calc)"),
        ("presence", "(drt.name=*)"),
        ("substring", "(drt.name=c*l*)"),
        (
            "composite",
            "(&(drt.name=calc)(|(drt.cpu<=1)(drt.cpuusage>=0.5))(!(drt.enabled=false)))",
        ),
    ] {
        let filter = Filter::parse(text).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| black_box(filter.matches(black_box(&props))))
        });
    }
    group.finish();
}

fn bench_filter_parse(c: &mut Criterion) {
    c.bench_function("registry/filter-parse", |b| {
        b.iter(|| {
            Filter::parse(black_box(
                "(&(objectclass=drt.resolver)(|(policy=rm)(policy=edf))(!(disabled=true)))",
            ))
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_lookup_scaling,
    bench_filter_complexity,
    bench_filter_parse
);
criterion_main!(benches);
