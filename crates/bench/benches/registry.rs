//! Service registry and LDAP filter throughput.
//!
//! The paper notes that "pure OSGi register based service reference
//! location may not handle the real time invocation timely" — which is why
//! the DRCR maps inter-component communication onto the RT kernel instead
//! of the registry. These benches quantify the registry-side costs that
//! motivated that design: lookup latency as the registry grows, and filter
//! evaluation cost by filter complexity.

use bench::microbench::Runner;
use osgi::ldap::{Filter, Properties};
use osgi::registry::ServiceRegistry;
use std::hint::black_box;
use std::rc::Rc;

fn populate(n: usize) -> ServiceRegistry {
    let mut reg = ServiceRegistry::new();
    for i in 0..n {
        let props = Properties::new()
            .with("drt.name", format!("comp{i:04}"))
            .with("drt.cpu", (i % 4) as i64)
            .with("drt.cpuusage", (i % 100) as f64 / 100.0)
            .with("service.ranking", (i % 10) as i64);
        reg.register(&["drt.management"], Rc::new(i), props);
    }
    reg
}

fn bench_lookup_scaling() {
    let runner = Runner::new("registry/find-by-name").iterations(50);
    for n in [10usize, 100, 1_000] {
        let reg = populate(n);
        let filter = Filter::parse(&format!("(drt.name=comp{:04})", n / 2)).unwrap();
        runner.bench(&n.to_string(), || {
            black_box(reg.find("drt.management", Some(black_box(&filter)))).len()
        });
    }
}

fn bench_filter_complexity() {
    let runner = Runner::new("registry/filter-eval").iterations(50);
    let props = Properties::new()
        .with("drt.name", "calc")
        .with("drt.cpu", 0)
        .with("drt.cpuusage", 0.15)
        .with("drt.enabled", true);
    for (label, text) in [
        ("equality", "(drt.name=calc)"),
        ("presence", "(drt.name=*)"),
        ("substring", "(drt.name=c*l*)"),
        (
            "composite",
            "(&(drt.name=calc)(|(drt.cpu<=1)(drt.cpuusage>=0.5))(!(drt.enabled=false)))",
        ),
    ] {
        let filter = Filter::parse(text).unwrap();
        runner.bench(label, || black_box(filter.matches(black_box(&props))));
    }
}

fn bench_filter_parse() {
    Runner::new("registry")
        .iterations(50)
        .bench("filter-parse", || {
            Filter::parse(black_box(
                "(&(objectclass=drt.resolver)(|(policy=rm)(policy=edf))(!(disabled=true)))",
            ))
            .unwrap()
        });
}

fn main() {
    bench_lookup_scaling();
    bench_filter_complexity();
    bench_filter_parse();
}
