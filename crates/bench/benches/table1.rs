//! Criterion wrapper around the Table 1 cells: wall-clock cost of
//! simulating each configuration (shortened runs; the full-scale table is
//! produced by the `table1` binary).

use bench::{run_table1_config, ImplKind, Table1Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtos::latency::LoadMode;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for (kind, load) in [
        (ImplKind::PureRtai, LoadMode::Light),
        (ImplKind::Hrc, LoadMode::Light),
        (ImplKind::PureRtai, LoadMode::Stress),
        (ImplKind::Hrc, LoadMode::Stress),
    ] {
        group.bench_function(BenchmarkId::from_parameter(format!("{kind}-{load}")), |b| {
            b.iter(|| {
                let cfg = Table1Config {
                    cycles: 1_000,
                    ..Table1Config::paper(kind, load, 42)
                };
                let stats = run_table1_config(black_box(&cfg));
                black_box(stats.average())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
