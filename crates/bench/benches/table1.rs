//! Timing wrapper around the Table 1 cells: wall-clock cost of simulating
//! each configuration (shortened runs; the full-scale table is produced by
//! the `table1` binary).

use bench::microbench::Runner;
use bench::{run_table1_config, ImplKind, Table1Config};
use rtos::latency::LoadMode;
use std::hint::black_box;

fn main() {
    let runner = Runner::new("table1").iterations(10);
    for (kind, load) in [
        (ImplKind::PureRtai, LoadMode::Light),
        (ImplKind::Hrc, LoadMode::Light),
        (ImplKind::PureRtai, LoadMode::Stress),
        (ImplKind::Hrc, LoadMode::Stress),
    ] {
        runner.bench(&format!("{kind}-{load}"), || {
            let cfg = Table1Config {
                cycles: 1_000,
                ..Table1Config::paper(kind, load, 42)
            };
            let stats = run_table1_config(black_box(&cfg));
            black_box(stats.average())
        });
    }
}
