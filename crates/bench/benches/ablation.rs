//! Ablations of the paper's two load-bearing design choices:
//!
//! * **A — admission policy.** DESIGN.md calls out pluggable resolving
//!   services; this compares the cost of resolving a deployment burst under
//!   no admission control, utilization cap, RM bound, and EDF.
//! * **B — bridge discipline.** §3.2 mandates an *asynchronous* management
//!   bridge. This compares simulating the same component under the async
//!   poll, the rejected synchronous design, and no bridge at all. (The
//!   `ablation` binary reports the quality metrics — overruns and latency —
//!   for the same configurations.)

use bench::microbench::Runner;
use bench::{run_table1_config, ImplKind, Table1Config};
use drcom::drcr::ComponentProvider;
use drcom::hybrid::BridgeMode;
use drcom::prelude::*;
use drcom::resolve::{
    AlwaysAdmit, EdfResolver, ResolvingService, RmBoundResolver, UtilizationResolver,
};
use rtos::kernel::KernelConfig;
use rtos::latency::{LoadMode, TimerJitterModel};
use rtos::time::SimDuration;
use std::hint::black_box;

fn deploy_burst(internal: Box<dyn ResolvingService>, n: usize) -> usize {
    let mut rt = DrtRuntime::with_resolver(
        KernelConfig::new(5).with_timer(TimerJitterModel::ideal()),
        internal,
    );
    for i in 0..n {
        let name = format!("b{i:03}");
        let descriptor = ComponentDescriptor::builder(&name)
            .periodic(100, 0, 2)
            .cpu_usage(0.04)
            .build()
            .expect("descriptor");
        rt.install_component(
            &format!("bundle.{name}"),
            ComponentProvider::new(descriptor, || {
                Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
            }),
        )
        .expect("install");
    }
    let names = rt.drcr().component_names();
    names
        .iter()
        .filter(|n| rt.component_state(n) == Some(ComponentState::Active))
        .count()
}

fn bench_admission_policies() {
    let runner = Runner::new("ablation/admission-policy").iterations(10);
    type ResolverFactory = fn() -> Box<dyn ResolvingService>;
    let policies: Vec<(&str, ResolverFactory)> = vec![
        ("none", || Box::new(AlwaysAdmit)),
        ("utilization", || Box::new(UtilizationResolver::default())),
        ("rm-bound", || Box::new(RmBoundResolver)),
        ("edf", || Box::new(EdfResolver)),
    ];
    for (label, make) in policies {
        runner.bench(label, || black_box(deploy_burst(make(), 32)));
    }
}

fn bench_bridge_modes() {
    let runner = Runner::new("ablation/bridge-mode").iterations(10);
    for (label, bridge) in [
        ("async-poll", BridgeMode::AsyncPoll),
        (
            "sync-blocking",
            BridgeMode::SyncBlocking(SimDuration::from_micros(200)),
        ),
        ("disconnected", BridgeMode::Disconnected),
    ] {
        runner.bench(label, || {
            let cfg = Table1Config {
                cycles: 1_000,
                bridge,
                ..Table1Config::paper(ImplKind::Hrc, LoadMode::Light, 11)
            };
            black_box(run_table1_config(&cfg).average())
        });
    }
}

fn main() {
    bench_admission_policies();
    bench_bridge_modes();
}
