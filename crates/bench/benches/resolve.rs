//! DRCR resolve-loop scalability: cost of deployment (constraint
//! resolution + activation) and departure (cascade) as the number of
//! deployed components grows.

use bench::microbench::Runner;
use drcom::drcr::ComponentProvider;
use drcom::prelude::*;
use drcom::resolve::AlwaysAdmit;
use rtos::kernel::KernelConfig;
use rtos::latency::TimerJitterModel;
use std::hint::black_box;

/// Builds a runtime with a chain of `n` components, each consuming the
/// previous one's outport (the worst case for cascades).
fn chain_runtime(n: usize) -> DrtRuntime {
    let mut rt = DrtRuntime::with_resolver(
        KernelConfig::new(1).with_timer(TimerJitterModel::ideal()),
        Box::new(AlwaysAdmit),
    );
    for i in 0..n {
        let name = format!("c{i:03}");
        let mut builder = ComponentDescriptor::builder(&name)
            .periodic(100, 0, 2)
            .cpu_usage(0.001)
            .outport(&format!("d{i:03}"), PortInterface::Shm, DataType::Byte, 1);
        if i > 0 {
            builder = builder.inport(
                &format!("d{:03}", i - 1),
                PortInterface::Shm,
                DataType::Byte,
                1,
            );
        }
        let descriptor = builder.build().expect("descriptor");
        rt.install_component(
            &format!("bundle.{name}"),
            ComponentProvider::new(descriptor, || {
                Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
            }),
        )
        .expect("install");
    }
    rt
}

fn bench_deploy_chain() {
    let runner = Runner::new("resolve/deploy-chain").iterations(10);
    for n in [4usize, 16, 64] {
        runner.bench(&n.to_string(), || {
            let rt = chain_runtime(black_box(n));
            black_box(rt.component_state(&format!("c{:03}", n - 1)))
        });
    }
}

fn bench_departure_cascade() {
    let runner = Runner::new("resolve/cascade").iterations(10);
    for n in [4usize, 16, 64] {
        runner.bench(&n.to_string(), || {
            // Setup is included (no per-iteration setup hook): build the
            // chain, then measure its teardown.
            let mut rt = chain_runtime(n);
            // Stopping the root cascades the whole chain.
            let bundle = {
                let drcr = rt.drcr();
                drcr.bundle_of("c000").expect("bundle")
            };
            rt.stop_bundle(bundle).expect("stop");
            black_box(rt.component_state(&format!("c{:03}", n - 1)))
        });
    }
}

fn bench_independent_deploy() {
    // Independent (unwired) components: resolution without dependencies.
    let runner = Runner::new("resolve/deploy-independent").iterations(10);
    for n in [4usize, 16, 64] {
        runner.bench(&n.to_string(), || {
            let mut rt = DrtRuntime::with_resolver(
                KernelConfig::new(1).with_timer(TimerJitterModel::ideal()),
                Box::new(AlwaysAdmit),
            );
            for i in 0..black_box(n) {
                let name = format!("i{i:03}");
                let descriptor = ComponentDescriptor::builder(&name)
                    .periodic(100, 0, 2)
                    .cpu_usage(0.001)
                    .build()
                    .expect("descriptor");
                rt.install_component(
                    &format!("bundle.{name}"),
                    ComponentProvider::new(descriptor, || {
                        Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
                    }),
                )
                .expect("install");
            }
            let count = rt.drcr().component_names().len();
            black_box(count)
        });
    }
}

fn bench_mode_switch() {
    // Reconfiguration cost: a mode switch is deactivate + contract rewrite
    // + re-admission + reactivate, at varying registry population.
    let runner = Runner::new("resolve/mode-switch").iterations(10);
    for n in [1usize, 16, 64] {
        runner.bench(&n.to_string(), || {
            let mut rt = DrtRuntime::with_resolver(
                KernelConfig::new(2).with_timer(TimerJitterModel::ideal()),
                Box::new(AlwaysAdmit),
            );
            for i in 0..n {
                let name = format!("f{i:03}");
                let d = ComponentDescriptor::builder(&name)
                    .periodic(100, 0, 4)
                    .cpu_usage(0.001)
                    .build()
                    .expect("descriptor");
                rt.install_component(
                    &format!("bundle.{name}"),
                    ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))),
                )
                .expect("install");
            }
            let d = ComponentDescriptor::builder("moded")
                .periodic(1000, 0, 2)
                .cpu_usage(0.3)
                .mode("cheap", 10, 0.01, 2)
                .build()
                .expect("descriptor");
            rt.install_component(
                "bundle.moded",
                ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))),
            )
            .expect("install");
            rt.switch_mode("moded", "cheap").expect("switch");
            rt.switch_mode("moded", drcom::BASE_MODE)
                .expect("switch back");
            let mode = rt.drcr().current_mode("moded");
            black_box(mode)
        });
    }
}

fn main() {
    bench_deploy_chain();
    bench_departure_cascade();
    bench_independent_deploy();
    bench_mode_switch();
}
