//! Benchmark and experiment harness for the DRCom/DRCR reproduction.
//!
//! * [`harness`] — runs the paper's Table 1 latency experiment (pure RTAI
//!   vs HRC, light vs stress) and formats the results.
//! * `cargo run -p bench --bin table1` — regenerates Table 1 alongside the
//!   paper's published numbers.
//! * `cargo run -p bench --bin dynamicity` — replays the §4.3 adaptation
//!   scenario and prints the DRCR's decision log.
//! * `cargo bench -p bench` — timing benches (driven by the in-repo
//!   [`microbench`] loop): the Table 1 cells, service registry and LDAP
//!   throughput, DRCR resolve-loop scalability, XML descriptor parsing,
//!   and the admission/bridge ablations.

pub mod harness;
pub mod microbench;
pub mod timing;

pub use harness::{
    format_table1, run_table1, run_table1_config, ImplKind, Table1Config, Table1Row, PAPER_TABLE1,
};
