//! Replays the paper's §4.3 dynamicity scenario and prints the DRCR's
//! transition and decision logs — the "figures of the whole process" the
//! paper could not include for page limits.
//!
//! Usage: `cargo run -p bench --bin dynamicity`

use drcom::drcr::ComponentProvider;
use drcom::prelude::*;
use rtos::kernel::KernelConfig;
use rtos::latency::TimerJitterModel;

fn calc_provider() -> ComponentProvider {
    let descriptor = ComponentDescriptor::builder("calc")
        .description("calculation task, 1 kHz")
        .periodic(1000, 0, 2)
        .cpu_usage(0.15)
        .outport("latdat", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .expect("descriptor");
    ComponentProvider::new(descriptor, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_micros(100));
            let v = (io.cycle() as i32).to_le_bytes();
            io.write("latdat", &v).expect("write");
        }))
    })
}

fn disp_provider() -> ComponentProvider {
    let descriptor = ComponentDescriptor::builder("disp")
        .description("display task, 4 Hz, depends on calc's outport")
        .periodic(4, 0, 5)
        .cpu_usage(0.01)
        .inport("latdat", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .expect("descriptor");
    ComponentProvider::new(descriptor, || {
        Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
            let _ = io.read("latdat").expect("read");
        }))
    })
}

fn show_states(rt: &DrtRuntime, step: &str) {
    let calc = rt
        .component_state("calc")
        .map(|s| s.to_string())
        .unwrap_or_else(|| "(not deployed)".into());
    let disp = rt
        .component_state("disp")
        .map(|s| s.to_string())
        .unwrap_or_else(|| "(not deployed)".into());
    println!("{step:<55} calc={calc:<13} disp={disp}");
}

fn main() {
    let mut rt = DrtRuntime::new(KernelConfig::new(42).with_timer(TimerJitterModel::ideal()));
    println!("=== §4.3 dynamicity scenario ===\n");

    show_states(&rt, "boot");

    // 1. Display arrives first: functional constraint unsatisfied.
    rt.install_component("demo.disp", disp_provider())
        .expect("install disp");
    show_states(&rt, "install Display (needs Calculation's outport)");

    // 2. Calculation arrives: both resolve; DRCR activates Display too.
    let calc_bundle = rt
        .install_component("demo.calc", calc_provider())
        .expect("install calc");
    show_states(&rt, "install Calculation");

    rt.advance(SimDuration::from_millis(500));
    let calc_task = rt.drcr().task_of("calc").expect("task");
    println!(
        "{:<55} calc ran {} cycles",
        "run 500 ms",
        rt.kernel().task_cycles(calc_task).unwrap()
    );

    // 3. Calculation is stopped: DRCR cascades Display to Unsatisfied.
    rt.stop_bundle(calc_bundle).expect("stop calc");
    show_states(&rt, "stop Calculation bundle");

    // 4. Calculation returns: Display re-activates automatically.
    rt.start_bundle(calc_bundle).expect("restart calc");
    show_states(&rt, "restart Calculation bundle");

    rt.advance(SimDuration::from_millis(200));

    println!("\n=== DRCR transition log ===");
    for t in rt.drcr().transitions() {
        println!("  {t}");
    }

    println!("\n=== DRCR event log ===");
    for e in rt.drcr().events().iter() {
        println!("  [{:>12} ns] {}", e.time.as_nanos(), e.event);
    }

    println!("\n=== metrics (text) ===");
    let report = rt.metrics_report();
    print!("{}", report.to_text());

    println!("\n=== metrics (json-lines) ===");
    print!("{}", report.to_json_lines());
}
