//! Admission benchmark: utilization-cap vs response-time-analysis
//! admission, validating both halves of the RTA claim.
//!
//! **Capacity half** — a harmonic fleet (200/100/50 Hz bands, rate-monotonic
//! priorities, equal per-component claims summing to 0.96 of one CPU) is
//! installed under the 0.9-cap strategy and under
//! [`ResolutionStrategy::ResponseTime`]. The cap strands capacity: it
//! rejects the component that pushes the sum past 0.9. Exact analysis
//! proves every deadline is met and admits the full fleet; the simulation
//! then runs it with **zero** kernel deadline misses.
//!
//! **Correctness half** — a two-task counterexample (a 200 Hz hog claiming
//! 0.6 plus a 125 Hz victim claiming 0.275, total 0.875) sails under the
//! 0.9 cap, but fixed-priority scheduling cannot serve it: the victim's
//! response-time recurrence exceeds its 8 ms period. The cap admits both
//! and the kernel records real deadline misses; RTA rejects the victim up
//! front and the admitted remainder again runs miss-free.
//!
//! Both halves repeat across seeds, and the RTA run is re-executed to
//! assert the event stream and scheduler counters are byte-identical.
//!
//! Usage:
//!   cargo run --release -p bench --bin admission_scale            # full, writes BENCH_admission.json
//!   cargo run --release -p bench --bin admission_scale -- --smoke # small run, stdout only
//!   cargo run --release -p bench --bin admission_scale -- --check # assert both halves + determinism
//!
//! `--smoke --check` is the CI configuration: it fails the build if RTA
//! stops out-admitting the cap on the harmonic fleet, if an RTA-admitted
//! fleet ever misses a deadline, if the cap-admitted counterexample stops
//! missing (the bench lost its teeth), or if the run stops being
//! deterministic.

use drcom::drcr::{ComponentProvider, ResolutionStrategy};
use drcom::obs::{DrcrEvent, TraceSubscriber};
use drcom::prelude::*;
use drcom::resolve::UtilizationResolver;
use rtos::kernel::{KernelConfig, SchedCounters};
use rtos::latency::TimerJitterModel;
use std::cell::RefCell;
use std::rc::Rc;

/// Per-cycle slack left inside each component's claimed budget so the
/// container's own overheads (bridge poll, dispatch cost) fit under the
/// contract. The analysis charges a conservative model of the same costs.
const MARGIN_NS: u64 = 20_000;

const CAP: f64 = 0.9;

/// One periodic component contract: name, frequency, priority, CPU claim.
#[derive(Clone)]
struct Spec {
    name: String,
    freq: u32,
    prio: u8,
    usage: f64,
}

impl Spec {
    fn period_ns(&self) -> u64 {
        1_000_000_000 / self.freq as u64
    }
}

struct Params {
    per_band: usize,
    claim: f64,
    horizon_ms: u64,
    seeds: &'static [u64],
}

impl Params {
    fn full() -> Self {
        Params {
            per_band: 4,
            claim: 0.08,
            horizon_ms: 2_000,
            seeds: &[0xAD01, 0xAD02, 0xAD03],
        }
    }

    fn smoke() -> Self {
        Params {
            per_band: 2,
            claim: 0.16,
            horizon_ms: 500,
            seeds: &[0xAD01, 0xAD02],
        }
    }

    /// The harmonic fleet: `per_band` components in each of three bands
    /// (200 Hz / 100 Hz / 50 Hz) with rate-monotonic priorities. Total
    /// claim is `3 * per_band * claim` = 0.96 on one CPU in both modes.
    fn harmonic_fleet(&self) -> Vec<Spec> {
        let bands: [(u32, u8); 3] = [(200, 1), (100, 2), (50, 3)];
        let mut fleet = Vec::new();
        for (b, (freq, prio)) in bands.iter().enumerate() {
            for i in 0..self.per_band {
                fleet.push(Spec {
                    name: format!("a{b}{i:02}"),
                    freq: *freq,
                    prio: *prio,
                    usage: self.claim,
                });
            }
        }
        fleet
    }

    /// The counterexample: U = 0.875 <= 0.9 yet unschedulable. The victim's
    /// recurrence is R = 2.2 + ceil(R/5)*3 -> 2.2, 5.2, 8.2 ms > 8 ms.
    fn counterexample_fleet(&self) -> Vec<Spec> {
        vec![
            Spec {
                name: "hog".to_string(),
                freq: 200,
                prio: 1,
                usage: 0.6,
            },
            Spec {
                name: "victim".to_string(),
                freq: 125,
                prio: 2,
                usage: 0.275,
            },
        ]
    }
}

struct Collector(Rc<RefCell<Vec<(SimTime, DrcrEvent)>>>);

impl TraceSubscriber<DrcrEvent> for Collector {
    fn on_event(&mut self, time: SimTime, event: &DrcrEvent) {
        self.0.borrow_mut().push((time, event.clone()));
    }
}

fn provider(spec: &Spec) -> ComponentProvider {
    let descriptor = ComponentDescriptor::builder(&spec.name)
        .description("admission bench task")
        .periodic(spec.freq, 0, spec.prio)
        .cpu_usage(spec.usage)
        .build()
        .expect("bench descriptor");
    let budget_ns = (spec.usage * spec.period_ns() as f64) as u64;
    let work = SimDuration::from_nanos(budget_ns.saturating_sub(MARGIN_NS));
    ComponentProvider::new(descriptor, move || {
        Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
            io.compute(work);
        }))
    })
}

/// Outcome of installing `fleet` under `strategy` and running the horizon.
struct RunStats {
    admitted: Vec<String>,
    utilization: f64,
    sched: SchedCounters,
    rendered: String,
}

fn run(strategy: ResolutionStrategy, fleet: &[Spec], seed: u64, horizon_ms: u64) -> RunStats {
    let mut rt = DrtRuntime::with_resolver(
        KernelConfig::new(seed).with_timer(TimerJitterModel::ideal()),
        Box::new(UtilizationResolver::new(CAP)),
    );
    rt.set_resolution_strategy(strategy);
    let log = Rc::new(RefCell::new(Vec::new()));
    rt.drcr_mut()
        .add_event_subscriber(Box::new(Collector(log.clone())));

    for spec in fleet {
        rt.install_component(&format!("bundle.{}", spec.name), provider(spec))
            .expect("install component");
    }
    rt.advance(SimDuration::from_millis(horizon_ms));

    let admitted: Vec<String> = fleet
        .iter()
        .filter(|s| rt.component_state(&s.name) == Some(ComponentState::Active))
        .map(|s| s.name.clone())
        .collect();
    let utilization = rt.drcr().ledger().utilization(0);
    let sched = rt.kernel().counters();
    let mut rendered = String::new();
    for (t, e) in log.borrow().iter() {
        rendered.push_str(&format!("[{}] {e}\n", t.as_nanos()));
    }
    RunStats {
        admitted,
        utilization,
        sched,
        rendered,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let params = if smoke {
        Params::smoke()
    } else {
        Params::full()
    };

    let harmonic = params.harmonic_fleet();
    let counterexample = params.counterexample_fleet();
    println!(
        "admission_scale: harmonic fleet of {} (claim {} each, U = {:.2}), {} ms horizon, {} seeds, mode={}",
        harmonic.len(),
        params.claim,
        harmonic.len() as f64 * params.claim,
        params.horizon_ms,
        params.seeds.len(),
        if smoke { "smoke" } else { "full" },
    );

    // -- Capacity half: RTA admits the harmonic fleet the cap truncates. --
    let clock = bench::timing::WallClock::new();
    let mut sim_runs = 0u64;
    let mut total_dispatches = 0u64;
    let mut cap_a = None;
    let mut rta_a = None;
    let mut rta_a_misses = 0u64;
    for &seed in params.seeds {
        let cap = run(
            ResolutionStrategy::Incremental,
            &harmonic,
            seed,
            params.horizon_ms,
        );
        let rta = run(
            ResolutionStrategy::ResponseTime,
            &harmonic,
            seed,
            params.horizon_ms,
        );
        rta_a_misses += rta.sched.deadline_misses;
        sim_runs += 2;
        total_dispatches += cap.sched.dispatches + rta.sched.dispatches;
        println!(
            "  [seed {seed:#06x}] harmonic: cap admits {} (U = {:.2}), RTA admits {} (U = {:.2}), RTA misses = {}",
            cap.admitted.len(),
            cap.utilization,
            rta.admitted.len(),
            rta.utilization,
            rta.sched.deadline_misses,
        );
        cap_a.get_or_insert(cap);
        rta_a.get_or_insert(rta);
    }
    let (cap_a, rta_a) = (cap_a.unwrap(), rta_a.unwrap());
    let capacity_delta = rta_a.admitted.len() as i64 - cap_a.admitted.len() as i64;
    println!(
        "  capacity: RTA admits {capacity_delta} more component(s), reclaiming {:.2} CPU the cap strands",
        rta_a.utilization - cap_a.utilization,
    );

    // -- Correctness half: the cap admits a fleet that really misses. --
    let mut cap_b_misses = 0u64;
    let mut rta_b_misses = 0u64;
    let mut cap_b = None;
    let mut rta_b = None;
    for &seed in params.seeds {
        let cap = run(
            ResolutionStrategy::Incremental,
            &counterexample,
            seed,
            params.horizon_ms,
        );
        let rta = run(
            ResolutionStrategy::ResponseTime,
            &counterexample,
            seed,
            params.horizon_ms,
        );
        cap_b_misses += cap.sched.deadline_misses;
        rta_b_misses += rta.sched.deadline_misses;
        sim_runs += 2;
        total_dispatches += cap.sched.dispatches + rta.sched.dispatches;
        println!(
            "  [seed {seed:#06x}] counterexample: cap admits {:?} with {} misses, RTA admits {:?} with {} misses",
            cap.admitted, cap.sched.deadline_misses, rta.admitted, rta.sched.deadline_misses,
        );
        cap_b.get_or_insert(cap);
        rta_b.get_or_insert(rta);
    }
    let (cap_b, rta_b) = (cap_b.unwrap(), rta_b.unwrap());
    let wall = clock.finish(sim_runs * params.horizon_ms * 1_000_000, total_dispatches);
    println!(
        "  throughput: {} ({} simulation runs)",
        wall.summary(),
        sim_runs
    );

    if check {
        assert!(
            rta_a.admitted.len() == harmonic.len(),
            "RTA admitted {}/{} of the harmonic fleet",
            rta_a.admitted.len(),
            harmonic.len()
        );
        assert!(
            cap_a.admitted.len() < rta_a.admitted.len(),
            "the cap admitted the whole harmonic fleet; no capacity win to show"
        );
        assert_eq!(
            rta_a_misses, 0,
            "RTA-admitted harmonic fleet missed {rta_a_misses} deadlines"
        );
        assert_eq!(
            cap_b.admitted.len(),
            2,
            "cap did not admit the full counterexample"
        );
        assert!(
            cap_b_misses > 0,
            "cap-admitted counterexample never missed a deadline: the bench lost its teeth"
        );
        assert_eq!(
            rta_b.admitted,
            vec!["hog".to_string()],
            "RTA should admit exactly the hog"
        );
        assert_eq!(
            rta_b_misses, 0,
            "RTA-admitted counterexample remainder missed {rta_b_misses} deadlines"
        );
        // Same seed, same fleet, same stream — byte for byte — and the
        // scheduler counters must match too.
        let again = run(
            ResolutionStrategy::ResponseTime,
            &harmonic,
            params.seeds[0],
            params.horizon_ms,
        );
        assert_eq!(
            rta_a.rendered.as_bytes(),
            again.rendered.as_bytes(),
            "admission run is not deterministic"
        );
        assert_eq!(
            rta_a.sched, again.sched,
            "scheduler counters diverged between identical runs"
        );
        println!("  check: PASS");
    }

    if !smoke {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"admission_scale\",\n",
                "  \"horizon_ms\": {},\n",
                "  \"seeds\": {},\n",
                "  \"capacity\": {{\n",
                "    \"fleet\": {}, \"fleet_utilization\": {:.2},\n",
                "    \"cap_admitted\": {}, \"cap_utilization\": {:.3},\n",
                "    \"rta_admitted\": {}, \"rta_utilization\": {:.3},\n",
                "    \"admitted_delta\": {}, \"rta_deadline_misses\": {}\n",
                "  }},\n",
                "  \"correctness\": {{\n",
                "    \"fleet_utilization\": 0.875, \"cap\": {:.2},\n",
                "    \"cap_admitted\": {}, \"cap_deadline_misses\": {},\n",
                "    \"rta_admitted\": {}, \"rta_deadline_misses\": {}\n",
                "  }},\n",
                "  {}\n",
                "}}\n"
            ),
            params.horizon_ms,
            params.seeds.len(),
            harmonic.len(),
            harmonic.len() as f64 * params.claim,
            cap_a.admitted.len(),
            cap_a.utilization,
            rta_a.admitted.len(),
            rta_a.utilization,
            capacity_delta,
            rta_a_misses,
            CAP,
            cap_b.admitted.len(),
            cap_b_misses,
            rta_b.admitted.len(),
            rta_b_misses,
            wall.json_fields(),
        );
        std::fs::write("BENCH_admission.json", &json).expect("write BENCH_admission.json");
        println!("  wrote BENCH_admission.json");
    }
}
