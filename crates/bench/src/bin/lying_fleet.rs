//! Lying-fleet benchmark: stochastic contract monitoring against a fleet
//! whose declared claims and real demands disagree in both directions.
//!
//! Topology (one CPU, everything at 100 Hz): `hogs` over-declarers that
//! claim far more than they use, honest components whose claims are
//! accurate, one under-declarer (`sneak`) whose real demand comes from a
//! seeded [`FaultPlan::lying`] spike plan, and `waiters` that are admitted
//! last and stranded behind the hogs' inflated claims.
//!
//! Two runs over the same fleet and seed:
//!
//! * **declared** — admission trusts the declared claims; no monitor. The
//!   waiters stay stranded and the under-declarer runs undetected.
//! * **refined** — a [`StochasticMonitor`] polls the kernel accounting,
//!   publishes measured claims for the hogs (re-admitting the waiters
//!   against the reclaimed capacity) and quarantines the under-declarer
//!   with typed stochastic evidence.
//!
//! Reported: stranded/active component counts, claimed-ledger utilization,
//! refinements, convictions, deadline misses (the refined run must add
//! none), and estimator-overhead counters.
//!
//! Usage:
//!   cargo run --release -p bench --bin lying_fleet            # full, writes BENCH_contracts.json
//!   cargo run --release -p bench --bin lying_fleet -- --smoke # small run, stdout only
//!   cargo run --release -p bench --bin lying_fleet -- --check # assert ceilings + determinism
//!
//! `--smoke --check` is the CI configuration: it fails the build if the
//! monitor stops reclaiming stranded capacity, stops convicting the
//! under-declarer, adds deadline misses, churns (refinement/conviction
//! counters past their ceilings), or stops being deterministic.

use drcom::contracts::{ContractOutcome, LearningConfig, StochasticMonitor};
use drcom::faults::{FaultInjector, FaultPlan, InjectionLog};
use drcom::obs::{DrcrEvent, MetricsReport, TraceSubscriber};
use drcom::prelude::*;
use rtos::kernel::{KernelConfig, SchedCounters};
use rtos::latency::TimerJitterModel;
use std::cell::RefCell;
use std::rc::Rc;

/// Everything runs at 100 Hz: one task cycle is 10 ms of virtual time.
const PERIOD_NS: u64 = 10_000_000;

struct Params {
    hogs: usize,
    honest: usize,
    waiters: usize,
    horizon_ms: u64,
    poll_ms: u64,
    min_samples: u64,
    seed: u64,
}

impl Params {
    fn full() -> Self {
        Params {
            hogs: 2,
            honest: 2,
            waiters: 3,
            horizon_ms: 12_000,
            poll_ms: 100,
            min_samples: 400,
            seed: 0x11E5,
        }
    }

    fn smoke() -> Self {
        Params {
            hogs: 2,
            honest: 2,
            waiters: 3,
            horizon_ms: 3_000,
            poll_ms: 100,
            min_samples: 100,
            seed: 0x11E5,
        }
    }

    fn components(&self) -> usize {
        self.hogs + self.honest + self.waiters + 1
    }
}

/// Ceilings asserted in `--check` mode. The overhead ceilings guard
/// against estimator churn: each hog refines exactly once (hysteresis),
/// the under-declarer is convicted exactly once, and the estimators never
/// fold more cycles than the fleet actually ran.
struct Ceilings {
    max_refinements: u64,
    max_convictions: u64,
    min_reclaimed_waiters: usize,
}

impl Ceilings {
    fn for_params(params: &Params) -> Self {
        Ceilings {
            max_refinements: params.hogs as u64,
            max_convictions: 1,
            min_reclaimed_waiters: params.waiters,
        }
    }
}

struct Collector(Rc<RefCell<Vec<(SimTime, DrcrEvent)>>>);

impl TraceSubscriber<DrcrEvent> for Collector {
    fn on_event(&mut self, time: SimTime, event: &DrcrEvent) {
        self.0.borrow_mut().push((time, event.clone()));
    }
}

fn counter(report: &MetricsReport, name: &str) -> u64 {
    report
        .counters()
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

/// Claims `claim` of the 10 ms period, burns `burn_us` µs per cycle.
fn steady(name: &str, claim: f64, priority: u8, burn_us: u64) -> ComponentProvider {
    let d = ComponentDescriptor::builder(name)
        .description("lying-fleet steady component")
        .periodic(100, 0, priority)
        .cpu_usage(claim)
        .build()
        .expect("steady descriptor");
    ComponentProvider::new(d, move || {
        Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
            io.compute(SimDuration::from_micros(burn_us));
        }))
    })
}

struct RunStats {
    events: Vec<(SimTime, DrcrEvent)>,
    active: usize,
    stranded_waiters: usize,
    claimed_util: f64,
    refinements: u64,
    convictions: u64,
    sneak_quarantined: bool,
    sneak_evidence: Option<String>,
    estimator_samples: u64,
    deadline_misses: u64,
    sched: SchedCounters,
}

fn run(params: &Params, monitored: bool) -> RunStats {
    let mut rt =
        DrtRuntime::new(KernelConfig::new(params.seed).with_timer(TimerJitterModel::ideal()));
    let log = Rc::new(RefCell::new(Vec::new()));
    rt.drcr_mut()
        .add_event_subscriber(Box::new(Collector(log.clone())));

    let horizon_cycles = params.horizon_ms / (PERIOD_NS / 1_000_000);
    // Over-declarers: claim 40%, really use ~5%.
    for i in 0..params.hogs {
        rt.install_component(
            &format!("bundle.h{i:02}"),
            steady(&format!("h{i:02}"), 0.40, 2, 500),
        )
        .expect("install hog");
    }
    // Honest components: claim 5%, use ~4%.
    for i in 0..params.honest {
        rt.install_component(
            &format!("bundle.o{i:02}"),
            steady(&format!("o{i:02}"), 0.05, 3, 400),
        )
        .expect("install honest");
    }
    // The under-declarer: claims 3%, but a seeded lying plan injects
    // 1.2–1.8 ms of real demand into every 10 ms cycle (~15%).
    let plan = Rc::new(FaultPlan::lying(
        params.seed,
        horizon_cycles,
        (1_200_000, 1_800_000),
    ));
    let injection = InjectionLog::shared();
    let d = ComponentDescriptor::builder("sneak")
        .description("under-declaring component")
        .periodic(100, 0, 4)
        .cpu_usage(0.03)
        .build()
        .expect("sneak descriptor");
    rt.install_component(
        "bundle.sneak",
        ComponentProvider::new(d, {
            let (plan, injection) = (plan.clone(), injection.clone());
            move || {
                FaultInjector::wrap(
                    plan.clone(),
                    injection.clone(),
                    Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                        io.compute(SimDuration::from_micros(100));
                    })),
                )
            }
        }),
    )
    .expect("install sneak");
    // Waiters arrive last: their 10% claims cannot be admitted next to
    // the hogs' declared 80%.
    for i in 0..params.waiters {
        rt.install_component(
            &format!("bundle.q{i:02}"),
            steady(&format!("q{i:02}"), 0.10, 5, 900),
        )
        .expect("install waiter");
    }

    let mut monitor = StochasticMonitor::new(LearningConfig {
        min_samples: params.min_samples,
        ..LearningConfig::default()
    });
    let steps = params.horizon_ms / params.poll_ms;
    for _ in 0..steps {
        rt.advance(SimDuration::from_millis(params.poll_ms));
        if monitored {
            monitor.poll(&mut rt).expect("monitor poll");
        }
    }

    let drcr = rt.drcr();
    let active = drcr
        .component_names()
        .iter()
        .filter(|n| drcr.state_of(n) == Some(ComponentState::Active))
        .count();
    let stranded_waiters = (0..params.waiters)
        .filter(|i| drcr.state_of(&format!("q{i:02}")) != Some(ComponentState::Active))
        .count();
    let claimed_util = drcr.ledger().utilization(0);
    let sneak_quarantined = drcr.is_quarantined("sneak");
    let sneak_evidence = drcr.quarantine_reason("sneak").map(str::to_string);
    drop(drcr);

    let estimator_samples: u64 = rt
        .drcr()
        .component_names()
        .iter()
        .filter_map(|n| monitor.estimator(n).map(|e| e.samples()))
        .sum();
    let refinements = monitor
        .outcomes()
        .iter()
        .filter(|o| matches!(o, ContractOutcome::Refined { .. }))
        .count() as u64;
    let convictions = monitor
        .outcomes()
        .iter()
        .filter(|o| matches!(o, ContractOutcome::Violation { .. }))
        .count() as u64;

    let sched = rt.kernel().counters();
    let report = rt.metrics_report();
    let events = log.borrow().clone();
    RunStats {
        events,
        active,
        stranded_waiters,
        claimed_util,
        refinements: refinements.max(counter(&report, "drcr.contracts.refinements")),
        convictions,
        sneak_quarantined,
        sneak_evidence,
        estimator_samples,
        deadline_misses: sched.deadline_misses,
        sched,
    }
}

/// Renders an event stream to one canonical string (used for the
/// determinism comparison).
fn render(events: &[(SimTime, DrcrEvent)]) -> String {
    let mut out = String::new();
    for (t, e) in events {
        out.push_str(&format!("[{}] {e}\n", t.as_nanos()));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let params = if smoke {
        Params::smoke()
    } else {
        Params::full()
    };

    println!(
        "lying_fleet: {} components ({} hogs + {} honest + 1 sneak + {} waiters), {} ms horizon, mode={}",
        params.components(),
        params.hogs,
        params.honest,
        params.waiters,
        params.horizon_ms,
        if smoke { "smoke" } else { "full" },
    );

    let clock = bench::timing::WallClock::new();
    let declared = run(&params, false);
    let refined = run(&params, true);
    let wall = clock.finish(
        2 * params.horizon_ms * 1_000_000,
        declared.sched.dispatches + refined.sched.dispatches,
    );

    println!();
    println!(
        "  declared: {} active, {} waiters stranded, claimed util {:.3}, sneak quarantined: {}, {} misses",
        declared.active,
        declared.stranded_waiters,
        declared.claimed_util,
        declared.sneak_quarantined,
        declared.deadline_misses,
    );
    println!(
        "  refined:  {} active, {} waiters stranded, claimed util {:.3}, sneak quarantined: {}, {} misses",
        refined.active,
        refined.stranded_waiters,
        refined.claimed_util,
        refined.sneak_quarantined,
        refined.deadline_misses,
    );
    println!(
        "  monitor: {} refinements, {} convictions, {} estimator samples",
        refined.refinements, refined.convictions, refined.estimator_samples,
    );
    if let Some(reason) = &refined.sneak_evidence {
        println!("  evidence: {reason}");
    }
    println!("  throughput: {}", wall.summary());

    if check {
        let ceilings = Ceilings::for_params(&params);
        // The declared run shows the problem: stranded waiters, an
        // undetected under-declarer.
        assert_eq!(
            declared.stranded_waiters, params.waiters,
            "declared-claim run no longer strands the waiters"
        );
        assert!(
            !declared.sneak_quarantined,
            "declared-claim run cannot detect the under-declarer"
        );
        // The refined run reclaims the stranded capacity…
        let reclaimed = declared.stranded_waiters - refined.stranded_waiters;
        assert!(
            reclaimed >= ceilings.min_reclaimed_waiters,
            "refinement reclaimed only {reclaimed} waiters (< {})",
            ceilings.min_reclaimed_waiters
        );
        assert!(
            refined.active > declared.active,
            "refined run should run more components ({} vs {})",
            refined.active,
            declared.active
        );
        assert!(
            refined.claimed_util < declared.claimed_util,
            "refined ledger ({:.3}) should claim less than the declared one ({:.3})",
            refined.claimed_util,
            declared.claimed_util
        );
        // …convicts the under-declarer with typed evidence…
        assert!(refined.sneak_quarantined, "under-declarer not quarantined");
        let evidence = refined.sneak_evidence.as_deref().unwrap_or("");
        assert!(
            evidence.contains("stochastic contract violation"),
            "quarantine evidence is untyped: {evidence:?}"
        );
        // …without costing any deadlines.
        assert!(
            refined.deadline_misses <= declared.deadline_misses,
            "monitoring added deadline misses: {} vs {}",
            refined.deadline_misses,
            declared.deadline_misses
        );
        // Overhead ceilings: no refinement/conviction churn, no phantom
        // estimator samples.
        assert!(
            refined.refinements <= ceilings.max_refinements,
            "{} refinements exceed ceiling {} (hysteresis broken?)",
            refined.refinements,
            ceilings.max_refinements
        );
        assert!(refined.refinements > 0, "no claim was ever refined");
        assert!(
            refined.convictions <= ceilings.max_convictions,
            "{} convictions exceed ceiling {}",
            refined.convictions,
            ceilings.max_convictions
        );
        let max_samples = params.components() as u64 * (params.horizon_ms / 10);
        assert!(
            refined.estimator_samples <= max_samples,
            "estimators folded {} cycles, more than the fleet ran ({max_samples})",
            refined.estimator_samples
        );
        // Same seed, same fleet, same stream — byte for byte.
        let again = run(&params, true);
        assert_eq!(
            render(&refined.events).as_bytes(),
            render(&again.events).as_bytes(),
            "monitored run is not deterministic"
        );
        assert_eq!(
            refined.sched, again.sched,
            "scheduler counters diverged between identical runs"
        );
        println!("  check: PASS");
    }

    if !smoke {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"lying_fleet\",\n",
                "  \"components\": {},\n",
                "  \"horizon_ms\": {},\n",
                "  \"seed\": {},\n",
                "  \"declared\": {{\"active\": {}, \"stranded_waiters\": {}, ",
                "\"claimed_util\": {:.4}, \"deadline_misses\": {}}},\n",
                "  \"refined\": {{\"active\": {}, \"stranded_waiters\": {}, ",
                "\"claimed_util\": {:.4}, \"deadline_misses\": {}}},\n",
                "  \"refinements\": {},\n",
                "  \"convictions\": {},\n",
                "  \"sneak_quarantined\": {},\n",
                "  \"estimator_samples\": {},\n",
                "  {}\n",
                "}}\n"
            ),
            params.components(),
            params.horizon_ms,
            params.seed,
            declared.active,
            declared.stranded_waiters,
            declared.claimed_util,
            declared.deadline_misses,
            refined.active,
            refined.stranded_waiters,
            refined.claimed_util,
            refined.deadline_misses,
            refined.refinements,
            refined.convictions,
            refined.sneak_quarantined,
            refined.estimator_samples,
            wall.json_fields(),
        );
        std::fs::write("BENCH_contracts.json", &json).expect("write BENCH_contracts.json");
        println!("  wrote BENCH_contracts.json");
    }
}
