//! Quality-metric ablations (the companion to `cargo bench -p bench
//! --bench ablation`, which measures wall-clock cost):
//!
//! * **A — admission policy**: deploy an overload burst under each policy
//!   and report how many components were admitted and how many deadline
//!   overruns the admitted set then suffered. No admission control admits
//!   everything and melts down; the bounds admit fewer and stay clean.
//! * **B — bridge discipline**: run the Table 1 workload with management
//!   traffic flowing, under the async poll (§3.2) vs the rejected
//!   synchronous design, and report latency and overruns.
//!
//! Usage: `cargo run --release -p bench --bin ablation`

use drcom::drcr::ComponentProvider;
use drcom::hybrid::BridgeMode;
use drcom::prelude::*;
use drcom::resolve::{
    AlwaysAdmit, EdfResolver, ResolvingService, RmBoundResolver, UtilizationResolver,
};
use rtos::kernel::KernelConfig;
use rtos::latency::TimerJitterModel;
use rtos::time::SimDuration;

fn admission_ablation() {
    println!("== Ablation A: admission policy under an overload burst ==");
    println!(
        "16 components, each periodic 100 Hz claiming 12% CPU; real demand matches the claim."
    );
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>12}",
        "policy", "admitted", "overruns", "misses", "cpu-reserved"
    );
    type ResolverFactory = Box<dyn Fn() -> Box<dyn ResolvingService>>;
    let policies: Vec<(&str, ResolverFactory)> = vec![
        ("none", Box::new(|| Box::new(AlwaysAdmit))),
        (
            "utilization",
            Box::new(|| Box::new(UtilizationResolver::default())),
        ),
        ("rm-bound", Box::new(|| Box::new(RmBoundResolver))),
        ("edf", Box::new(|| Box::new(EdfResolver))),
    ];
    for (label, make) in policies {
        let mut rt = DrtRuntime::with_resolver(
            KernelConfig::new(5).with_timer(TimerJitterModel::ideal()),
            make(),
        );
        for i in 0..16 {
            let name = format!("b{i:03}");
            let descriptor = ComponentDescriptor::builder(&name)
                .periodic(100, 0, 2)
                .cpu_usage(0.12)
                .build()
                .expect("descriptor");
            rt.install_component(
                &format!("bundle.{name}"),
                ComponentProvider::new(descriptor, || {
                    Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                        // Real demand = the claimed 12% of a 10 ms period.
                        io.compute(SimDuration::from_micros(1_200));
                    }))
                }),
            )
            .expect("install");
        }
        rt.advance(SimDuration::from_secs(2));
        let names = rt.drcr().component_names();
        let admitted = names
            .iter()
            .filter(|n| rt.component_state(n) == Some(ComponentState::Active))
            .count();
        let overruns: u64 = names
            .iter()
            .filter_map(|n| rt.drcr().task_of(n))
            .filter_map(|t| rt.kernel().task_overruns(t))
            .sum();
        let misses: u64 = names
            .iter()
            .filter_map(|n| rt.drcr().task_of(n))
            .filter_map(|t| rt.kernel().task_deadline_misses(t))
            .sum();
        let reserved: f64 = rt.drcr().ledger().iter().map(|(_, _, u)| u).sum();
        println!("{label:<14} {admitted:>9} {overruns:>10} {misses:>10} {reserved:>11.2}");
    }
    println!();
}

fn bridge_ablation() {
    println!("== Ablation B: intra-component bridge discipline (§3.2) ==");
    println!("1 kHz component with steady management traffic (a status query every 10 ms),");
    println!("plus a lower-priority 1 kHz victim component on the same CPU whose scheduling");
    println!("latency absorbs whatever CPU time the bridge burns.");
    println!(
        "{:<28} {:>14} {:>12} {:>10}",
        "bridge", "victim-lat(ns)", "avedev(ns)", "overruns"
    );
    for (label, bridge) in [
        ("async-poll (paper)", BridgeMode::AsyncPoll),
        (
            "sync-blocking 200us",
            BridgeMode::SyncBlocking(SimDuration::from_micros(200)),
        ),
        (
            "sync-blocking 900us",
            BridgeMode::SyncBlocking(SimDuration::from_micros(900)),
        ),
    ] {
        let mut rt = DrtRuntime::new(KernelConfig::new(17).with_timer(TimerJitterModel::ideal()));
        rt.drcr_mut().set_bridge_mode(bridge);
        let descriptor = ComponentDescriptor::builder("calc")
            .periodic(1000, 0, 2)
            .cpu_usage(0.15)
            .build()
            .expect("descriptor");
        rt.install_component(
            "demo.calc",
            ComponentProvider::new(descriptor, || {
                Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                    io.compute(SimDuration::from_micros(100));
                }))
            }),
        )
        .expect("install");
        let victim = ComponentDescriptor::builder("audit")
            .periodic(1000, 0, 6)
            .cpu_usage(0.05)
            .build()
            .expect("descriptor");
        rt.install_component(
            "demo.audit",
            ComponentProvider::new(victim, || {
                Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                    io.compute(SimDuration::from_micros(30));
                }))
            }),
        )
        .expect("install");
        let mgmt = rt.management("calc").expect("management");
        // Drive management traffic while the tasks run: one status request
        // every 10 ms of virtual time.
        for _ in 0..200 {
            let _ = mgmt.request_status();
            rt.advance(SimDuration::from_millis(10));
        }
        let calc_task = rt.drcr().task_of("calc").expect("task");
        let victim_task = rt.drcr().task_of("audit").expect("task");
        let kernel = rt.kernel();
        let stats = kernel.task_stats(victim_task).expect("stats");
        println!(
            "{label:<28} {:>14.1} {:>12.1} {:>10}",
            stats.average(),
            stats.avedev(),
            kernel.task_overruns(calc_task).unwrap_or(0),
        );
    }
    println!();
    println!("The async poll keeps the RT path independent of management traffic;");
    println!("the synchronous design burns the timeout every quiet cycle, and at");
    println!("900 us it overruns its own 1 ms period — exactly the failure mode");
    println!("the paper's design rules out.");
}

fn timer_mode_ablation() {
    use bench::{run_table1_config, ImplKind, Table1Config};
    use rtos::latency::{LoadMode, TimerMode};
    println!();
    println!("== Ablation C: hardware timer programming mode ==");
    println!("The paper runs the periodic timer and attributes the negative averages to");
    println!("its calibration drift; oneshot mode trades the drift for a per-shot");
    println!("programming cost (positive mean, no early dispatch).");
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>10}",
        "mode", "AVERAGE", "AVEDEV", "MIN", "MAX"
    );
    for (label, timer_mode, load) in [
        ("periodic (light)", TimerMode::Periodic, LoadMode::Light),
        ("oneshot  (light)", TimerMode::Oneshot, LoadMode::Light),
        ("periodic (stress)", TimerMode::Periodic, LoadMode::Stress),
        ("oneshot  (stress)", TimerMode::Oneshot, LoadMode::Stress),
    ] {
        let cfg = Table1Config {
            cycles: 10_000,
            timer_mode,
            ..Table1Config::paper(ImplKind::Hrc, load, 42)
        };
        let stats = run_table1_config(&cfg);
        println!(
            "{label:<22} {:>12.2} {:>12.2} {:>10} {:>10}",
            stats.average(),
            stats.avedev(),
            stats.min().unwrap_or(0),
            stats.max().unwrap_or(0),
        );
    }
}

fn main() {
    admission_ablation();
    bridge_ablation();
    timer_mode_ablation();
}
