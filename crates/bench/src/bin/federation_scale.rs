//! Federation-scale benchmark: a 100+-node federated DRCR carrying 10k+
//! components through node kills, a network partition, and lossy bridge
//! links — asserting that robustness holds at scale.
//!
//! Topology: `nodes` simulated nodes, each its own kernel + DRCR shard in
//! hub-synced lockstep. Every node hosts `comps_per_node` periodic
//! components; the last `kill` nodes additionally trade one normal
//! component for a *fat* one (CPU claim ~0.95) that fits at home but can
//! never be re-admitted anywhere else. Mid-run the fault plan kills those
//! `kill` nodes, then partitions a minority of survivors away from the
//! hub, then heals. All bridge traffic runs over seeded lossy links, so
//! the at-least-once retry layer is exercised throughout.
//!
//! Checked invariants (the ISSUE-9 acceptance bar):
//! * every displaced component is re-admitted on a surviving node or
//!   quarantined with typed evidence — nothing stays in flight;
//! * zero leaked reservations on any live shard;
//! * zero deadline misses on surviving nodes;
//! * the partitioned minority degrades to local-only admission (a probe
//!   component is admitted locally mid-partition) and reconciles on heal;
//! * the whole run replays byte-identically from its seed.
//!
//! Usage:
//!   cargo run --release -p bench --bin federation_scale            # full, writes BENCH_federation.json
//!   cargo run --release -p bench --bin federation_scale -- --smoke # small run, stdout only
//!   cargo run --release -p bench --bin federation_scale -- --check # assert invariants + determinism
//!
//! `--smoke --check` is the CI configuration.

use drcom::descriptor::ComponentDescriptor;
use drcom::faults::{LinkRates, NodeFaultKind, NodeFaultPlan};
use drcom::federation::{FailoverAccounting, Federation, FederationConfig, LogicFactory};
use drcom::hybrid::{FnLogic, RtIo, RtLogic};
use drcom::obs::{FedEvent, MetricsReport};
use std::rc::Rc;

struct Params {
    nodes: u32,
    cpus_per_node: u32,
    comps_per_node: usize,
    usage: f64,
    kill: u32,
    isolate: u32,
    kill_tick: u64,
    partition_tick: u64,
    heal_tick: u64,
    probe_tick: u64,
    horizon_ticks: u64,
    seed: u64,
}

impl Params {
    fn full() -> Self {
        Params {
            nodes: 120,
            cpus_per_node: 2,
            comps_per_node: 84,
            usage: 0.011,
            kill: 10,
            isolate: 3,
            kill_tick: 15,
            partition_tick: 30,
            heal_tick: 45,
            probe_tick: 40,
            horizon_ticks: 80,
            seed: 0xFED5,
        }
    }

    fn smoke() -> Self {
        Params {
            nodes: 12,
            cpus_per_node: 2,
            comps_per_node: 8,
            usage: 0.05,
            kill: 2,
            isolate: 1,
            kill_tick: 15,
            partition_tick: 30,
            heal_tick: 45,
            probe_tick: 40,
            horizon_ticks: 80,
            seed: 0xFED5,
        }
    }

    fn components(&self) -> usize {
        self.nodes as usize * self.comps_per_node
    }

    fn killed(&self) -> Vec<u32> {
        (self.nodes - self.kill..self.nodes).collect()
    }

    fn isolated(&self) -> Vec<u32> {
        (0..self.isolate).collect()
    }
}

fn quiet() -> Box<dyn RtLogic> {
    Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
}

fn descriptor(name: &str, usage: f64, cpu: u32, prio: u8) -> ComponentDescriptor {
    ComponentDescriptor::builder(name)
        .periodic(100, cpu, prio)
        .cpu_usage(usage)
        .build()
        .expect("descriptor")
}

struct RunStats {
    accounting: FailoverAccounting,
    fat_quarantined: usize,
    minority_degraded: bool,
    probe_adopted: bool,
    local_admissions_seen: bool,
    rejoined: bool,
    leaked_reservations: u64,
    survivor_deadline_misses: u64,
    total_dispatches: u64,
    events: String,
    report: MetricsReport,
}

fn counter(report: &MetricsReport, name: &str) -> u64 {
    report
        .counters()
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

fn run(params: &Params) -> RunStats {
    let config = FederationConfig::new(params.nodes, params.cpus_per_node, params.seed);
    let mut plan = NodeFaultPlan::new(params.seed).with_link_rates(LinkRates {
        drop: 0.05,
        delay: 0.1,
        delay_ticks: (1, 2),
    });
    for node in params.killed() {
        plan = plan.at(params.kill_tick, NodeFaultKind::Crash { node });
    }
    plan = plan.at(
        params.partition_tick,
        NodeFaultKind::Partition {
            isolated: params.isolated(),
        },
    );
    plan = plan.at(params.heal_tick, NodeFaultKind::Heal);
    let mut fed = Federation::new(config, plan);

    // Deploy the fleet: `comps_per_node` components per node, one wave
    // per node so each node admits its shard in a single batched pass.
    // Doomed (to-be-killed) nodes host a fat component alone on CPU 0 —
    // admitted at home, unplaceable anywhere else.
    let killed = params.killed();
    let mut index = 0usize;
    for node in 0..params.nodes {
        let doomed = killed.contains(&node);
        let mut wave: Vec<(ComponentDescriptor, LogicFactory)> = Vec::new();
        let normals = if doomed {
            params.comps_per_node - 1
        } else {
            params.comps_per_node
        };
        for i in 0..normals {
            let cpu = if doomed {
                // Keep the doomed node's CPU 0 clear for the fat tenant.
                1 % params.cpus_per_node
            } else {
                i as u32 % params.cpus_per_node
            };
            wave.push((
                descriptor(&format!("c{index:05}"), params.usage, cpu, 3),
                Rc::new(quiet),
            ));
            index += 1;
        }
        if doomed {
            wave.push((
                descriptor(&format!("f{node:04}"), 0.95, 0, 5),
                Rc::new(quiet),
            ));
        }
        let admitted = fed.install_wave(node, wave).expect("install wave");
        assert_eq!(
            admitted, params.comps_per_node,
            "node {node} admitted only {admitted}/{} at deploy",
            params.comps_per_node
        );
    }

    // Run into the partition until the minority has noticed it lost the
    // hub, then probe local-only admission with a fresh component.
    fed.run_ticks(params.probe_tick);
    let isolated = params.isolated();
    let minority_degraded = isolated.iter().all(|&n| fed.is_degraded(n));
    let probe_node = isolated[0];
    let probe_admitted = fed
        .install(probe_node, descriptor("probe", params.usage, 0, 3), quiet)
        .expect("probe install");
    fed.run_ticks(params.horizon_ticks - params.probe_tick);

    let accounting = fed.accounting();
    let evidence = fed.quarantine_evidence();
    let fat_quarantined = killed
        .iter()
        .filter(|node| {
            evidence
                .get(&format!("f{node:04}"))
                .is_some_and(|reason| !reason.is_empty())
        })
        .count();
    let probe_adopted = probe_admitted && fed.placement_of("probe") == Some(probe_node);
    let local_admissions_seen = fed.events().iter().any(|(_, e)| {
        matches!(e, FedEvent::LocalAdmission { component, admitted: true, .. } if component == "probe")
    });
    let rejoined = isolated.iter().all(|&n| {
        !fed.is_degraded(n)
            && fed
                .events()
                .iter()
                .any(|(_, e)| matches!(e, FedEvent::NodeRejoined { node } if *node == n))
    });
    let total_dispatches: u64 = (0..params.nodes)
        .filter_map(|n| fed.node_counters(n))
        .map(|c| c.dispatches)
        .sum();
    RunStats {
        accounting,
        fat_quarantined,
        minority_degraded,
        probe_adopted,
        local_admissions_seen,
        rejoined,
        leaked_reservations: fed.leaked_reservations(),
        survivor_deadline_misses: fed.deadline_misses_on_survivors(),
        total_dispatches,
        events: fed.render_events(),
        report: fed.metrics_report(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let params = if smoke {
        Params::smoke()
    } else {
        Params::full()
    };

    println!(
        "federation_scale: {} nodes x {} components = {} total, kill {} @ tick {}, partition {:?} @ {}..{}, mode={}",
        params.nodes,
        params.comps_per_node,
        params.components(),
        params.kill,
        params.kill_tick,
        params.isolated(),
        params.partition_tick,
        params.heal_tick,
        if smoke { "smoke" } else { "full" },
    );

    let clock = bench::timing::WallClock::new();
    let stats = run(&params);
    let sim_ns = params.horizon_ticks * 10_000_000;
    let wall = clock.finish(sim_ns, stats.total_dispatches);
    let acct = stats.accounting;

    println!();
    println!(
        "  displaced: {} ({} re-admitted, {} quarantined, {} pending)",
        acct.displaced, acct.admitted, acct.quarantined, acct.pending,
    );
    println!(
        "  failover: {} planned, {} admitted, {} rejected, {} retries, {} quarantines ({} fat with evidence)",
        counter(&stats.report, "fed.migrations.planned"),
        counter(&stats.report, "fed.migrations.admitted"),
        counter(&stats.report, "fed.migrations.rejected"),
        counter(&stats.report, "fed.failover.retries"),
        counter(&stats.report, "fed.failover.quarantines"),
        stats.fat_quarantined,
    );
    println!(
        "  bridge: {} delivered, {} dropped, {} retried, {} expired, {} duplicate",
        counter(&stats.report, "fed.messages.delivered"),
        counter(&stats.report, "fed.messages.dropped"),
        counter(&stats.report, "fed.messages.retried"),
        counter(&stats.report, "fed.messages.expired"),
        counter(&stats.report, "fed.messages.duplicates"),
    );
    println!(
        "  detector: {} suspected, {} failed, {} degraded, {} rejoined; minority degraded: {}, probe adopted: {}, rejoined: {}",
        counter(&stats.report, "fed.nodes.suspected"),
        counter(&stats.report, "fed.nodes.failed"),
        counter(&stats.report, "fed.nodes.degraded"),
        counter(&stats.report, "fed.nodes.rejoined"),
        stats.minority_degraded,
        stats.probe_adopted,
        stats.rejoined,
    );
    println!(
        "  hygiene: {} leaked reservations, {} deadline misses on survivors",
        stats.leaked_reservations, stats.survivor_deadline_misses,
    );
    println!("  throughput: {}", wall.summary());

    if check {
        assert!(
            acct.displaced >= (params.kill as usize) * (params.comps_per_node - 1),
            "only {} components displaced by {} node kills",
            acct.displaced,
            params.kill
        );
        assert_eq!(acct.pending, 0, "placements still in flight at horizon");
        assert_eq!(
            acct.admitted + acct.quarantined,
            acct.displaced,
            "displaced components unaccounted for: {acct:?}"
        );
        assert_eq!(
            stats.fat_quarantined, params.kill as usize,
            "every fat component must end quarantined with typed evidence"
        );
        assert_eq!(
            stats.leaked_reservations, 0,
            "{} leaked reservations",
            stats.leaked_reservations
        );
        assert_eq!(
            stats.survivor_deadline_misses, 0,
            "{} deadline misses on surviving nodes",
            stats.survivor_deadline_misses
        );
        assert!(
            stats.minority_degraded,
            "partitioned minority never degraded to local admission"
        );
        assert!(
            stats.local_admissions_seen && stats.probe_adopted,
            "local-only admission or heal reconciliation failed \
             (local admission: {}, adopted: {})",
            stats.local_admissions_seen,
            stats.probe_adopted
        );
        assert!(stats.rejoined, "partitioned minority never rejoined");
        // Same seed, same federation, same story — byte for byte.
        let again = run(&params);
        assert_eq!(
            stats.events.as_bytes(),
            again.events.as_bytes(),
            "federation run is not deterministic"
        );
        assert_eq!(
            stats.total_dispatches, again.total_dispatches,
            "kernel dispatch totals diverged between identical runs"
        );
        println!("  check: PASS");
    }

    if !smoke {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"federation_scale\",\n",
                "  \"nodes\": {},\n",
                "  \"cpus_per_node\": {},\n",
                "  \"components\": {},\n",
                "  \"killed\": {},\n",
                "  \"isolated\": {},\n",
                "  \"horizon_ticks\": {},\n",
                "  \"seed\": {},\n",
                "  \"displaced\": {},\n",
                "  \"readmitted\": {},\n",
                "  \"quarantined\": {},\n",
                "  \"pending\": {},\n",
                "  \"fat_quarantined\": {},\n",
                "  \"migrations\": {{\"planned\": {}, \"admitted\": {}, ",
                "\"rejected\": {}, \"retries\": {}}},\n",
                "  \"bridge\": {{\"delivered\": {}, \"dropped\": {}, ",
                "\"retried\": {}, \"expired\": {}, \"duplicates\": {}}},\n",
                "  \"minority_degraded\": {},\n",
                "  \"probe_adopted\": {},\n",
                "  \"rejoined\": {},\n",
                "  \"leaked_reservations\": {},\n",
                "  \"survivor_deadline_misses\": {},\n",
                "  {}\n",
                "}}\n"
            ),
            params.nodes,
            params.cpus_per_node,
            params.components(),
            params.kill,
            params.isolate,
            params.horizon_ticks,
            params.seed,
            acct.displaced,
            acct.admitted,
            acct.quarantined,
            acct.pending,
            stats.fat_quarantined,
            counter(&stats.report, "fed.migrations.planned"),
            counter(&stats.report, "fed.migrations.admitted"),
            counter(&stats.report, "fed.migrations.rejected"),
            counter(&stats.report, "fed.failover.retries"),
            counter(&stats.report, "fed.messages.delivered"),
            counter(&stats.report, "fed.messages.dropped"),
            counter(&stats.report, "fed.messages.retried"),
            counter(&stats.report, "fed.messages.expired"),
            counter(&stats.report, "fed.messages.duplicates"),
            stats.minority_degraded,
            stats.probe_adopted,
            stats.rejoined,
            stats.leaked_reservations,
            stats.survivor_deadline_misses,
            wall.json_fields(),
        );
        std::fs::write("BENCH_federation.json", &json).expect("write BENCH_federation.json");
        println!("  wrote BENCH_federation.json");
    }
}
