//! Resolver scale benchmark: the reactive incremental engine vs the
//! naive-reference oracle, in three phases.
//!
//! **Phase 1 — identity.** A ~1k-component hub/consumer topology with
//! churn, run under both strategies. Consumers are installed *first*, so
//! they pile up Unsatisfied and every subsequent resolve round has a large
//! activation frontier — the worst case for the naive full-rescan
//! resolver. The phase asserts the two `DrcrEvent` streams are
//! byte-identical and reports the wiring-work counters side by side.
//!
//! **Phase 2 — churn at scale.** A 100k-component topology (reactive
//! engine only; the naive oracle would take hours), installed in two
//! arrival waves, then hub 0 flaps. Each flap touches only hub 0's
//! consumer cohort (~n/hubs components), so the per-churn-event wiring
//! work must stay O(changed), not O(n) — gated by counter ceilings.
//!
//! **Phase 3 — batched arrivals.** K components arrive in one wave under
//! response-time admission. With batched admission the engine proves the
//! whole wave schedulable in **one** RTA fixed-point per CPU; without it,
//! one pass per candidate. The phase asserts the batch really collapsed
//! K passes into `cpus` passes and that both paths admit everything.
//!
//! Usage:
//!   cargo run --release -p bench --bin resolve_scale            # full, writes BENCH_resolve.json
//!   cargo run --release -p bench --bin resolve_scale -- --smoke # small phase 1, stdout only
//!   cargo run --release -p bench --bin resolve_scale -- --check # also assert ceilings
//!
//! `--smoke --check` is the CI configuration: fast, deterministic, and it
//! fails the build if the reactive engine regresses (extra graph builds,
//! extra sweeps, O(n) churn work, a diverging event stream, or a batch
//! that stopped batching). Phases 2 and 3 run at full scale in both
//! modes — their cost is dominated by the two arrival waves, not by the
//! per-install resolve rounds phase 1 exercises.

use drcom::drcr::{ComponentProvider, ResolutionStrategy};
use drcom::obs::{DrcrEvent, MetricsReport, TraceSubscriber};
use drcom::prelude::*;
use drcom::resolve::AlwaysAdmit;
use rtos::kernel::KernelConfig;
use rtos::latency::TimerJitterModel;
use std::cell::RefCell;
use std::rc::Rc;

/// Phase 1 scenario shape. Full mode is the ISSUE's n=1000 configuration;
/// smoke mode is a scaled-down copy for CI.
struct Params {
    hubs: usize,
    consumers: usize,
    churn_cycles: usize,
}

impl Params {
    fn full() -> Self {
        Params {
            hubs: 10,
            consumers: 990,
            churn_cycles: 5,
        }
    }

    fn smoke() -> Self {
        Params {
            hubs: 8,
            consumers: 192,
            churn_cycles: 3,
        }
    }

    fn components(&self) -> usize {
        self.hubs + self.consumers
    }
}

/// Phase 2 scenario shape: both modes run the full 100k-component fleet
/// (the phase avoids per-install resolve rounds, so scale is cheap).
struct ChurnParams {
    hubs: usize,
    consumers: usize,
    churn_cycles: usize,
}

impl ChurnParams {
    fn new() -> Self {
        ChurnParams {
            hubs: 100,
            consumers: 99_900,
            churn_cycles: 5,
        }
    }

    fn components(&self) -> usize {
        self.hubs + self.consumers
    }

    /// Consumers fed by one hub — the churn blast radius.
    fn cohort(&self) -> usize {
        self.consumers / self.hubs
    }
}

/// Phase 3 scenario shape.
struct BatchParams {
    arrivals: usize,
    cpus: u32,
}

impl BatchParams {
    fn new() -> Self {
        BatchParams {
            arrivals: 64,
            cpus: 4,
        }
    }
}

/// Counter ceilings asserted in `--check` mode, with ~25-50% headroom over
/// the measured values so legitimate scenario tweaks don't trip them.
/// Phase 1 measured (smoke): incremental checks=40570, sweeps=231,
/// rebuilds=206; naive graph_builds=45370. Measured (full): incremental
/// checks=1003874, sweeps=1045, rebuilds=1010; naive graph_builds=1040999.
/// Phase 2 measured: 2997 checks per churn event at cohort=999 (3x).
struct Ceilings {
    incremental_checks: u64,
    incremental_sweeps: u64,
    view_rebuilds: u64,
    /// Phase 2: per-churn-event wiring checks, as a multiple of the churn
    /// cohort. O(changed) work is a small constant; O(n) work at
    /// hubs=100 would be ~100x the cohort and trips this immediately.
    churn_checks_per_cohort: u64,
}

impl Ceilings {
    fn for_mode(smoke: bool) -> Self {
        if smoke {
            Ceilings {
                incremental_checks: 60_000,
                incremental_sweeps: 300,
                view_rebuilds: 450,
                churn_checks_per_cohort: 8,
            }
        } else {
            Ceilings {
                incremental_checks: 1_300_000,
                incremental_sweeps: 1_300,
                view_rebuilds: 2_000,
                churn_checks_per_cohort: 8,
            }
        }
    }
}

struct Collector(Rc<RefCell<Vec<(SimTime, DrcrEvent)>>>);

impl TraceSubscriber<DrcrEvent> for Collector {
    fn on_event(&mut self, time: SimTime, event: &DrcrEvent) {
        self.0.borrow_mut().push((time, event.clone()));
    }
}

fn hub_provider(j: usize) -> ComponentProvider {
    let descriptor = ComponentDescriptor::builder(&format!("h{j:03}"))
        .description("hub provider")
        .periodic(100, 0, 2)
        .cpu_usage(0.001)
        .outport(
            &format!("p{j:03}"),
            PortInterface::Shm,
            DataType::Integer,
            1,
        )
        .build()
        .expect("hub descriptor");
    ComponentProvider::new(descriptor, || {
        Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
    })
}

fn consumer_provider(i: usize, hubs: usize) -> ComponentProvider {
    let descriptor = ComponentDescriptor::builder(&format!("c{i:05}"))
        .description("fan-in consumer")
        .periodic(50, (i % 4) as u32, 5)
        .cpu_usage(0.0005)
        .inport(
            &format!("p{:03}", i % hubs),
            PortInterface::Shm,
            DataType::Integer,
            1,
        )
        .build()
        .expect("consumer descriptor");
    ComponentProvider::new(descriptor, || {
        Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
    })
}

/// Phase 3 candidate: no ports (wiring trivially satisfied), distinct
/// priority per CPU-local slot so the RTA fixed point is non-degenerate.
fn batch_provider(i: usize, cpus: u32) -> ComponentProvider {
    let descriptor = ComponentDescriptor::builder(&format!("b{i:03}"))
        .description("batched arrival")
        .periodic(100, (i as u32) % cpus, (2 + i / cpus as usize) as u8)
        .cpu_usage(0.004)
        .build()
        .expect("batch descriptor");
    ComponentProvider::new(descriptor, || {
        Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
    })
}

/// Per-strategy outcome of phase 1: the full event stream plus the
/// wiring-work counters the comparison is about.
struct RunStats {
    events: Vec<(SimTime, DrcrEvent)>,
    wiring_checks: u64,
    graph_builds: u64,
    resolve_rounds: u64,
    deactivation_sweeps: u64,
    view_rebuilds: u64,
}

fn counter(report: &MetricsReport, name: &str) -> u64 {
    report
        .counters()
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

fn histogram_sum(report: &MetricsReport, name: &str) -> u64 {
    report
        .histograms()
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, h)| h.sum())
}

fn run(strategy: ResolutionStrategy, params: &Params) -> RunStats {
    let mut rt = DrtRuntime::with_resolver(
        KernelConfig::new(4)
            .with_cpus(4)
            .with_timer(TimerJitterModel::ideal()),
        Box::new(AlwaysAdmit),
    );
    rt.set_resolution_strategy(strategy);
    let log = Rc::new(RefCell::new(Vec::new()));
    rt.drcr_mut()
        .add_event_subscriber(Box::new(Collector(log.clone())));

    // Consumers first: each install triggers a resolve round over an
    // ever-growing Unsatisfied population with no providers yet.
    for i in 0..params.consumers {
        rt.install_component(
            &format!("bundle.c{i:05}"),
            consumer_provider(i, params.hubs),
        )
        .expect("install consumer");
    }
    // Hubs next: each arrival activates its whole consumer cohort.
    let mut hub_bundles = Vec::with_capacity(params.hubs);
    for j in 0..params.hubs {
        let b = rt
            .install_component(&format!("bundle.h{j:03}"), hub_provider(j))
            .expect("install hub");
        hub_bundles.push(b);
    }
    // Churn: hub 0 flaps, cascading its cohort down and back up.
    for _ in 0..params.churn_cycles {
        rt.stop_bundle(hub_bundles[0]).expect("stop hub");
        rt.start_bundle(hub_bundles[0]).expect("restart hub");
    }

    let report = rt.metrics_report();
    let events = log.borrow().clone();
    RunStats {
        events,
        wiring_checks: counter(&report, "drcr.wiring.checks"),
        graph_builds: counter(&report, "drcr.wiring.graph_builds"),
        resolve_rounds: counter(&report, "drcr.resolve.rounds"),
        deactivation_sweeps: histogram_sum(&report, "drcr.resolve.sweeps"),
        view_rebuilds: counter(&report, "drcr.view.rebuilds"),
    }
}

/// Phase 2 outcome: per-churn-event work on the 100k fleet.
struct ChurnStats {
    components: usize,
    cohort: usize,
    churn_events: u64,
    checks_per_event: u64,
    evals_per_event: u64,
    graph_builds: u64,
    active_after: usize,
}

fn run_churn(params: &ChurnParams) -> ChurnStats {
    let mut rt = DrtRuntime::with_resolver(
        KernelConfig::new(4)
            .with_cpus(4)
            .with_timer(TimerJitterModel::ideal()),
        Box::new(AlwaysAdmit),
    );
    rt.set_resolution_strategy(ResolutionStrategy::Incremental);

    // Two arrival waves (one resolve round each), not n per-install
    // rounds: consumers pile up Unsatisfied, then the hub wave activates
    // the whole fleet.
    rt.install_components(
        (0..params.consumers)
            .map(|i| (format!("bundle.c{i:05}"), consumer_provider(i, params.hubs))),
    )
    .expect("install consumers");
    let hub_bundles = rt
        .install_components((0..params.hubs).map(|j| (format!("bundle.h{j:03}"), hub_provider(j))))
        .expect("install hubs");

    let before = rt.metrics_report();
    for _ in 0..params.churn_cycles {
        rt.stop_bundle(hub_bundles[0]).expect("stop hub");
        rt.start_bundle(hub_bundles[0]).expect("restart hub");
    }
    let after = rt.metrics_report();

    let churn_events = 2 * params.churn_cycles as u64;
    let delta = |name: &str| counter(&after, name) - counter(&before, name);
    let active_after = (0..params.consumers)
        .filter(|i| rt.component_state(&format!("c{i:05}")) == Some(ComponentState::Active))
        .count();
    ChurnStats {
        components: params.components(),
        cohort: params.cohort(),
        churn_events,
        checks_per_event: delta("drcr.wiring.checks") / churn_events,
        evals_per_event: delta("drcr.wiring.evals") / churn_events,
        graph_builds: counter(&after, "drcr.wiring.graph_builds"),
        active_after,
    }
}

/// Phase 3 outcome of one run (batched or sequential admission).
struct BatchStats {
    rta_passes: u64,
    batches: u64,
    activations: u64,
    rejections: u64,
}

fn run_batch(params: &BatchParams, batched: bool) -> BatchStats {
    let mut rt = DrtRuntime::new(
        KernelConfig::new(4)
            .with_cpus(params.cpus)
            .with_timer(TimerJitterModel::ideal()),
    );
    rt.set_resolution_strategy(ResolutionStrategy::ResponseTime);
    rt.set_batched_admission(batched);
    rt.install_components(
        (0..params.arrivals).map(|i| (format!("bundle.b{i:03}"), batch_provider(i, params.cpus))),
    )
    .expect("install batch");
    let report = rt.metrics_report();
    BatchStats {
        rta_passes: counter(&report, "drcr.admission.rta_passes"),
        batches: counter(&report, "drcr.admission.batches"),
        activations: counter(&report, "drcr.activations"),
        rejections: counter(&report, "drcr.admission.rejections"),
    }
}

/// Renders an event stream to one canonical string (used for the
/// byte-identity comparison and the event-count report).
fn render(events: &[(SimTime, DrcrEvent)]) -> String {
    let mut out = String::new();
    for (t, e) in events {
        out.push_str(&format!("[{}] {e}\n", t.as_nanos()));
    }
    out
}

fn stats_json(s: &RunStats) -> String {
    format!(
        concat!(
            "{{\"wiring_checks\": {}, \"graph_builds\": {}, ",
            "\"resolve_rounds\": {}, \"deactivation_sweeps\": {}, ",
            "\"view_rebuilds\": {}}}"
        ),
        s.wiring_checks, s.graph_builds, s.resolve_rounds, s.deactivation_sweeps, s.view_rebuilds
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let params = if smoke {
        Params::smoke()
    } else {
        Params::full()
    };
    let ceilings = Ceilings::for_mode(smoke);

    // ---- Phase 1: identity ------------------------------------------
    println!(
        "resolve_scale phase 1 (identity): {} components ({} hubs x {} consumers), {} churn cycles, mode={}",
        params.components(),
        params.hubs,
        params.consumers,
        params.churn_cycles,
        if smoke { "smoke" } else { "full" },
    );

    let total_clock = bench::timing::WallClock::new();
    let phase1_clock = bench::timing::WallClock::new();
    let incremental = run(ResolutionStrategy::Incremental, &params);
    let phase1_incremental_secs = phase1_clock.elapsed_secs();
    let naive = run(ResolutionStrategy::NaiveReference, &params);
    let phase1_secs = phase1_clock.elapsed_secs();

    let inc_rendered = render(&incremental.events);
    let naive_rendered = render(&naive.events);
    let events_identical =
        incremental.events == naive.events && inc_rendered.as_bytes() == naive_rendered.as_bytes();

    // The naive resolver builds one WiringGraph per constraint check; the
    // reactive engine builds none, so compare builds against builds
    // (floored at 1) for the headline ratio.
    let ratio = naive.graph_builds as f64 / incremental.graph_builds.max(1) as f64;

    println!();
    println!("                         incremental      naive-reference");
    println!(
        "  wiring checks      {:>13} {:>20}",
        incremental.wiring_checks, naive.wiring_checks
    );
    println!(
        "  graph builds       {:>13} {:>20}",
        incremental.graph_builds, naive.graph_builds
    );
    println!(
        "  resolve rounds     {:>13} {:>20}",
        incremental.resolve_rounds, naive.resolve_rounds
    );
    println!(
        "  deactivation sweeps{:>13} {:>20}",
        incremental.deactivation_sweeps, naive.deactivation_sweeps
    );
    println!(
        "  view rebuilds      {:>13} {:>20}",
        incremental.view_rebuilds, naive.view_rebuilds
    );
    println!();
    println!(
        "  events: {} vs {} (identical: {})",
        incremental.events.len(),
        naive.events.len(),
        events_identical
    );
    println!("  graph-build reduction: {ratio:.1}x");
    println!(
        "  phase 1 wall: {phase1_secs:.3} s ({:.0} executive events/s incremental)",
        incremental.events.len() as f64 / phase1_incremental_secs.max(1e-9)
    );

    if check {
        assert!(
            events_identical,
            "event streams diverged between strategies"
        );
        assert_eq!(
            incremental.graph_builds, 0,
            "incremental resolver built wiring graphs"
        );
        assert!(
            ratio >= 10.0,
            "graph-build reduction {ratio:.1}x below the 10x target"
        );
        assert!(
            incremental.wiring_checks <= ceilings.incremental_checks,
            "incremental wiring checks {} exceed ceiling {}",
            incremental.wiring_checks,
            ceilings.incremental_checks
        );
        assert!(
            incremental.deactivation_sweeps <= ceilings.incremental_sweeps,
            "deactivation sweeps {} exceed ceiling {}",
            incremental.deactivation_sweeps,
            ceilings.incremental_sweeps
        );
        assert!(
            incremental.view_rebuilds <= ceilings.view_rebuilds,
            "view rebuilds {} exceed ceiling {}",
            incremental.view_rebuilds,
            ceilings.view_rebuilds
        );
        println!("  phase 1 check: PASS");
    }

    // ---- Phase 2: churn at scale ------------------------------------
    let churn_params = ChurnParams::new();
    println!();
    println!(
        "resolve_scale phase 2 (churn @ scale): {} components ({} hubs x {} consumers), cohort {}, {} churn cycles",
        churn_params.components(),
        churn_params.hubs,
        churn_params.consumers,
        churn_params.cohort(),
        churn_params.churn_cycles,
    );
    let phase2_clock = bench::timing::WallClock::new();
    let churn = run_churn(&churn_params);
    let phase2_secs = phase2_clock.elapsed_secs();
    println!(
        "  phase 2 wall: {phase2_secs:.3} s ({:.1} churn events/s)",
        churn.churn_events as f64 / phase2_secs
    );
    println!(
        "  per churn event: {} wiring checks ({} evaluated), {:.4}x of n",
        churn.checks_per_event,
        churn.evals_per_event,
        churn.checks_per_event as f64 / churn.components as f64,
    );
    println!(
        "  graph builds: {}, consumers active after churn: {}",
        churn.graph_builds, churn.active_after
    );

    if check {
        let churn_ceiling = ceilings.churn_checks_per_cohort * churn.cohort as u64;
        assert_eq!(churn.graph_builds, 0, "reactive engine built wiring graphs");
        assert_eq!(
            churn.active_after, churn_params.consumers,
            "fleet did not fully re-activate after churn"
        );
        assert!(
            churn.checks_per_event <= churn_ceiling,
            "per-churn-event wiring checks {} exceed O(changed) ceiling {} ({}x cohort)",
            churn.checks_per_event,
            churn_ceiling,
            ceilings.churn_checks_per_cohort
        );
        // The O(changed) headline: churn work must be far below fleet size.
        assert!(
            churn.checks_per_event < (churn.components / 10) as u64,
            "per-churn-event work {} is within 10x of fleet size {}",
            churn.checks_per_event,
            churn.components
        );
        println!("  phase 2 check: PASS");
    }

    // ---- Phase 3: batched arrivals ----------------------------------
    let batch_params = BatchParams::new();
    println!();
    println!(
        "resolve_scale phase 3 (batched arrivals): {} arrivals on {} CPUs, response-time admission",
        batch_params.arrivals, batch_params.cpus,
    );
    let phase3_clock = bench::timing::WallClock::new();
    let batched = run_batch(&batch_params, true);
    let sequential = run_batch(&batch_params, false);
    let phase3_secs = phase3_clock.elapsed_secs();
    let total_secs = total_clock.elapsed_secs();
    println!("  phase 3 wall: {phase3_secs:.3} s, total wall: {total_secs:.3} s");
    println!(
        "  batched:    {} RTA passes, {} batches, {} activations, {} rejections",
        batched.rta_passes, batched.batches, batched.activations, batched.rejections
    );
    println!(
        "  sequential: {} RTA passes, {} activations, {} rejections",
        sequential.rta_passes, sequential.activations, sequential.rejections
    );
    println!(
        "  RTA-pass reduction: {:.1}x",
        sequential.rta_passes as f64 / batched.rta_passes.max(1) as f64
    );

    if check {
        assert_eq!(batched.batches, 1, "arrival wave was not batch-admitted");
        assert_eq!(
            batched.rta_passes,
            u64::from(batch_params.cpus),
            "batched admission ran more than one RTA pass per CPU"
        );
        assert_eq!(
            sequential.rta_passes, batch_params.arrivals as u64,
            "sequential baseline should run one RTA pass per arrival"
        );
        assert_eq!(
            batched.activations, sequential.activations,
            "batched and sequential admission disagree on the admitted set"
        );
        assert_eq!(
            batched.activations, batch_params.arrivals as u64,
            "not every arrival was admitted"
        );
        assert_eq!(batched.rejections, 0);
        assert_eq!(sequential.rejections, 0);
        println!("  phase 3 check: PASS");
    }

    if !smoke {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"resolve_scale\",\n",
                "  \"components\": {},\n",
                "  \"hubs\": {},\n",
                "  \"consumers\": {},\n",
                "  \"churn_cycles\": {},\n",
                "  \"events_identical\": {},\n",
                "  \"event_count\": {},\n",
                "  \"graph_build_reduction\": {:.1},\n",
                "  \"incremental\": {},\n",
                "  \"naive_reference\": {},\n",
                "  \"churn_at_scale\": {{\"components\": {}, \"cohort\": {}, ",
                "\"churn_events\": {}, \"checks_per_event\": {}, ",
                "\"evals_per_event\": {}}},\n",
                "  \"batched_arrivals\": {{\"arrivals\": {}, \"cpus\": {}, ",
                "\"batched_rta_passes\": {}, \"sequential_rta_passes\": {}, ",
                "\"activations\": {}}},\n",
                "  \"timing\": {{\"phase1_wall_seconds\": {:.6}, ",
                "\"phase1_events_per_sec\": {:.1}, ",
                "\"phase2_wall_seconds\": {:.6}, \"phase2_churn_events_per_sec\": {:.1}, ",
                "\"phase3_wall_seconds\": {:.6}, \"total_wall_seconds\": {:.6}}}\n",
                "}}\n"
            ),
            params.components(),
            params.hubs,
            params.consumers,
            params.churn_cycles,
            events_identical,
            incremental.events.len(),
            ratio,
            stats_json(&incremental),
            stats_json(&naive),
            churn.components,
            churn.cohort,
            churn.churn_events,
            churn.checks_per_event,
            churn.evals_per_event,
            batch_params.arrivals,
            batch_params.cpus,
            batched.rta_passes,
            sequential.rta_passes,
            batched.activations,
            phase1_secs,
            incremental.events.len() as f64 / phase1_incremental_secs.max(1e-9),
            phase2_secs,
            churn.churn_events as f64 / phase2_secs,
            phase3_secs,
            total_secs,
        );
        std::fs::write("BENCH_resolve.json", &json).expect("write BENCH_resolve.json");
        println!("  wrote BENCH_resolve.json");
    }
}
