//! Resolver scale benchmark: incremental vs naive-reference constraint
//! resolution on a ~1k-component hub/consumer topology with churn.
//!
//! Topology: `HUBS` provider components (`h00`..) each export one shared
//! channel (`p00`..); `CONSUMERS` consumer components (`c0000`..) each
//! import one hub channel round-robin. Consumers are installed *first*, so
//! they pile up Unsatisfied and every subsequent resolve round has a large
//! activation frontier — the worst case for the naive full-rescan
//! resolver. Churn then stops and restarts hub 0, cascading ~1/HUBS of the
//! consumer population each cycle.
//!
//! Both resolution strategies run the identical scenario; the benchmark
//! asserts their `DrcrEvent` streams are byte-identical and reports the
//! wiring-work counters side by side.
//!
//! Usage:
//!   cargo run --release -p bench --bin resolve_scale            # full, writes BENCH_resolve.json
//!   cargo run --release -p bench --bin resolve_scale -- --smoke # small run, stdout only
//!   cargo run --release -p bench --bin resolve_scale -- --check # also assert speedup + ceilings
//!
//! `--smoke --check` is the CI configuration: fast, deterministic, and it
//! fails the build if the incremental resolver regresses (extra graph
//! builds, extra sweeps, or a diverging event stream).

use drcom::drcr::{ComponentProvider, ResolutionStrategy};
use drcom::obs::{DrcrEvent, MetricsReport, TraceSubscriber};
use drcom::prelude::*;
use drcom::resolve::AlwaysAdmit;
use rtos::kernel::KernelConfig;
use rtos::latency::TimerJitterModel;
use std::cell::RefCell;
use std::rc::Rc;

/// Scenario shape. Full mode is the ISSUE's n=1000 configuration; smoke
/// mode is a scaled-down copy for CI.
struct Params {
    hubs: usize,
    consumers: usize,
    churn_cycles: usize,
}

impl Params {
    fn full() -> Self {
        Params {
            hubs: 10,
            consumers: 990,
            churn_cycles: 5,
        }
    }

    fn smoke() -> Self {
        Params {
            hubs: 8,
            consumers: 192,
            churn_cycles: 3,
        }
    }

    fn components(&self) -> usize {
        self.hubs + self.consumers
    }
}

/// Counter ceilings asserted in `--check` mode, with ~25% headroom over
/// the measured values so legitimate scenario tweaks don't trip them.
/// Measured (smoke): incremental checks=46978, sweeps=225, rebuilds=339;
/// naive graph_builds=47962. Measured (full): incremental checks=1056324,
/// sweeps=1040, rebuilds=1528; naive graph_builds=1064748.
struct Ceilings {
    incremental_checks: u64,
    incremental_sweeps: u64,
    view_rebuilds: u64,
}

impl Ceilings {
    fn for_mode(smoke: bool) -> Self {
        if smoke {
            Ceilings {
                incremental_checks: 60_000,
                incremental_sweeps: 300,
                view_rebuilds: 450,
            }
        } else {
            Ceilings {
                incremental_checks: 1_300_000,
                incremental_sweeps: 1_300,
                view_rebuilds: 2_000,
            }
        }
    }
}

struct Collector(Rc<RefCell<Vec<(SimTime, DrcrEvent)>>>);

impl TraceSubscriber<DrcrEvent> for Collector {
    fn on_event(&mut self, time: SimTime, event: &DrcrEvent) {
        self.0.borrow_mut().push((time, event.clone()));
    }
}

fn hub_provider(j: usize) -> ComponentProvider {
    let descriptor = ComponentDescriptor::builder(&format!("h{j:02}"))
        .description("hub provider")
        .periodic(100, 0, 2)
        .cpu_usage(0.001)
        .outport(
            &format!("p{j:02}"),
            PortInterface::Shm,
            DataType::Integer,
            1,
        )
        .build()
        .expect("hub descriptor");
    ComponentProvider::new(descriptor, || {
        Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
    })
}

fn consumer_provider(i: usize, hubs: usize) -> ComponentProvider {
    let descriptor = ComponentDescriptor::builder(&format!("c{i:04}"))
        .description("fan-in consumer")
        .periodic(50, (i % 4) as u32, 5)
        .cpu_usage(0.0005)
        .inport(
            &format!("p{:02}", i % hubs),
            PortInterface::Shm,
            DataType::Integer,
            1,
        )
        .build()
        .expect("consumer descriptor");
    ComponentProvider::new(descriptor, || {
        Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
    })
}

/// Per-strategy outcome: the full event stream plus the wiring-work
/// counters the comparison is about.
struct RunStats {
    events: Vec<(SimTime, DrcrEvent)>,
    wiring_checks: u64,
    graph_builds: u64,
    resolve_rounds: u64,
    deactivation_sweeps: u64,
    view_rebuilds: u64,
}

fn counter(report: &MetricsReport, name: &str) -> u64 {
    report
        .counters()
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

fn histogram_sum(report: &MetricsReport, name: &str) -> u64 {
    report
        .histograms()
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, h)| h.sum())
}

fn run(strategy: ResolutionStrategy, params: &Params) -> RunStats {
    let mut rt = DrtRuntime::with_resolver(
        KernelConfig::new(4).with_timer(TimerJitterModel::ideal()),
        Box::new(AlwaysAdmit),
    );
    rt.set_resolution_strategy(strategy);
    let log = Rc::new(RefCell::new(Vec::new()));
    rt.drcr_mut()
        .add_event_subscriber(Box::new(Collector(log.clone())));

    // Consumers first: each install triggers a resolve round over an
    // ever-growing Unsatisfied population with no providers yet.
    for i in 0..params.consumers {
        rt.install_component(
            &format!("bundle.c{i:04}"),
            consumer_provider(i, params.hubs),
        )
        .expect("install consumer");
    }
    // Hubs next: each arrival activates its whole consumer cohort.
    let mut hub_bundles = Vec::with_capacity(params.hubs);
    for j in 0..params.hubs {
        let b = rt
            .install_component(&format!("bundle.h{j:02}"), hub_provider(j))
            .expect("install hub");
        hub_bundles.push(b);
    }
    // Churn: hub 0 flaps, cascading its cohort down and back up.
    for _ in 0..params.churn_cycles {
        rt.stop_bundle(hub_bundles[0]).expect("stop hub");
        rt.start_bundle(hub_bundles[0]).expect("restart hub");
    }

    let report = rt.metrics_report();
    let events = log.borrow().clone();
    RunStats {
        events,
        wiring_checks: counter(&report, "drcr.wiring.checks"),
        graph_builds: counter(&report, "drcr.wiring.graph_builds"),
        resolve_rounds: counter(&report, "drcr.resolve.rounds"),
        deactivation_sweeps: histogram_sum(&report, "drcr.resolve.sweeps"),
        view_rebuilds: counter(&report, "drcr.view.rebuilds"),
    }
}

/// Renders an event stream to one canonical string (used for the
/// byte-identity comparison and the event-count report).
fn render(events: &[(SimTime, DrcrEvent)]) -> String {
    let mut out = String::new();
    for (t, e) in events {
        out.push_str(&format!("[{}] {e}\n", t.as_nanos()));
    }
    out
}

fn stats_json(s: &RunStats) -> String {
    format!(
        concat!(
            "{{\"wiring_checks\": {}, \"graph_builds\": {}, ",
            "\"resolve_rounds\": {}, \"deactivation_sweeps\": {}, ",
            "\"view_rebuilds\": {}}}"
        ),
        s.wiring_checks, s.graph_builds, s.resolve_rounds, s.deactivation_sweeps, s.view_rebuilds
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let params = if smoke {
        Params::smoke()
    } else {
        Params::full()
    };

    println!(
        "resolve_scale: {} components ({} hubs x {} consumers), {} churn cycles, mode={}",
        params.components(),
        params.hubs,
        params.consumers,
        params.churn_cycles,
        if smoke { "smoke" } else { "full" },
    );

    let incremental = run(ResolutionStrategy::Incremental, &params);
    let naive = run(ResolutionStrategy::NaiveReference, &params);

    let inc_rendered = render(&incremental.events);
    let naive_rendered = render(&naive.events);
    let events_identical =
        incremental.events == naive.events && inc_rendered.as_bytes() == naive_rendered.as_bytes();

    // The naive resolver builds one WiringGraph per constraint check; the
    // incremental resolver builds none, so compare builds against builds
    // (floored at 1) for the headline ratio.
    let ratio = naive.graph_builds as f64 / incremental.graph_builds.max(1) as f64;

    println!();
    println!("                         incremental      naive-reference");
    println!(
        "  wiring checks      {:>13} {:>20}",
        incremental.wiring_checks, naive.wiring_checks
    );
    println!(
        "  graph builds       {:>13} {:>20}",
        incremental.graph_builds, naive.graph_builds
    );
    println!(
        "  resolve rounds     {:>13} {:>20}",
        incremental.resolve_rounds, naive.resolve_rounds
    );
    println!(
        "  deactivation sweeps{:>13} {:>20}",
        incremental.deactivation_sweeps, naive.deactivation_sweeps
    );
    println!(
        "  view rebuilds      {:>13} {:>20}",
        incremental.view_rebuilds, naive.view_rebuilds
    );
    println!();
    println!(
        "  events: {} vs {} (identical: {})",
        incremental.events.len(),
        naive.events.len(),
        events_identical
    );
    println!("  graph-build reduction: {ratio:.1}x");

    if check {
        let ceilings = Ceilings::for_mode(smoke);
        assert!(
            events_identical,
            "event streams diverged between strategies"
        );
        assert_eq!(
            incremental.graph_builds, 0,
            "incremental resolver built wiring graphs"
        );
        assert!(
            ratio >= 10.0,
            "graph-build reduction {ratio:.1}x below the 10x target"
        );
        assert!(
            incremental.wiring_checks <= ceilings.incremental_checks,
            "incremental wiring checks {} exceed ceiling {}",
            incremental.wiring_checks,
            ceilings.incremental_checks
        );
        assert!(
            incremental.deactivation_sweeps <= ceilings.incremental_sweeps,
            "deactivation sweeps {} exceed ceiling {}",
            incremental.deactivation_sweeps,
            ceilings.incremental_sweeps
        );
        assert!(
            incremental.view_rebuilds <= ceilings.view_rebuilds,
            "view rebuilds {} exceed ceiling {}",
            incremental.view_rebuilds,
            ceilings.view_rebuilds
        );
        println!("  check: PASS");
    }

    if !smoke {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"resolve_scale\",\n",
                "  \"components\": {},\n",
                "  \"hubs\": {},\n",
                "  \"consumers\": {},\n",
                "  \"churn_cycles\": {},\n",
                "  \"events_identical\": {},\n",
                "  \"event_count\": {},\n",
                "  \"graph_build_reduction\": {:.1},\n",
                "  \"incremental\": {},\n",
                "  \"naive_reference\": {}\n",
                "}}\n"
            ),
            params.components(),
            params.hubs,
            params.consumers,
            params.churn_cycles,
            events_identical,
            incremental.events.len(),
            ratio,
            stats_json(&incremental),
            stats_json(&naive),
        );
        std::fs::write("BENCH_resolve.json", &json).expect("write BENCH_resolve.json");
        println!("  wrote BENCH_resolve.json");
    }
}
