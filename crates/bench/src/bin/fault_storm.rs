//! Fault-storm benchmark: deterministic fault injection against the
//! supervised executive, measuring containment and recovery.
//!
//! Topology: `pairs` provider/consumer pairs (`s00`→`d00` over SHM channel
//! `k00`, …) plus `workers` standalone periodic components (`w00`, …) and
//! one deliberately *wedged* component (`zz`, panics every instance at
//! cycle 1). Every provider and worker runs under a [`FaultInjector`]
//! executing a per-component [`FaultPlan::storm`]: panics, execution-time
//! spikes, dropped cycles, corrupted outport payloads and bridge stalls,
//! all pure functions of the benchmark seed.
//!
//! Supervision: the fleet default is `Backoff`, so faulted components are
//! re-admitted after an escalating delay and their consumers rewire; the
//! wedged component runs under a sliding-window quarantine rule and must
//! end the run `Disabled` with its reservation released.
//!
//! Reported: faults injected (by kind), faults contained (typed
//! `ComponentFault` events — must equal injected panics: nothing escapes,
//! nothing is double-counted), restarts, quarantines, and recovery latency
//! in task cycles (ComponentFault → next Activated of the same component).
//!
//! Usage:
//!   cargo run --release -p bench --bin fault_storm            # full, writes BENCH_fault.json
//!   cargo run --release -p bench --bin fault_storm -- --smoke # small run, stdout only
//!   cargo run --release -p bench --bin fault_storm -- --check # assert ceilings + determinism
//!
//! `--smoke --check` is the CI configuration: it fails the build if a
//! panic escapes containment, a reservation leaks, recovery latency
//! regresses past the ceiling, or the run stops being deterministic.

use drcom::faults::{FaultInjector, FaultPlan, InjectionLog, StormRates};
use drcom::obs::{DrcrEvent, MetricsReport, TraceSubscriber};
use drcom::prelude::*;
use drcom::supervise::SupervisionConfig;
use rtos::kernel::{KernelConfig, SchedCounters};
use rtos::latency::TimerJitterModel;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Everything runs at 100 Hz: one task cycle is 10 ms of virtual time.
const PERIOD_NS: u64 = 10_000_000;

struct Params {
    pairs: usize,
    workers: usize,
    horizon_ms: u64,
    poll_ms: u64,
    seed: u64,
}

impl Params {
    fn full() -> Self {
        Params {
            pairs: 8,
            workers: 16,
            horizon_ms: 10_000,
            poll_ms: 10,
            seed: 0xF417,
        }
    }

    fn smoke() -> Self {
        Params {
            pairs: 3,
            workers: 6,
            horizon_ms: 2_000,
            poll_ms: 10,
            seed: 0xF417,
        }
    }

    fn components(&self) -> usize {
        self.pairs * 2 + self.workers + 1
    }
}

/// Ceilings asserted in `--check` mode, with headroom over the measured
/// values so legitimate scenario tweaks don't trip them. The recovery
/// ceiling is dominated by the backoff cap (200 ms = 20 cycles) plus one
/// management poll.
/// Measured (smoke): 20 panics contained, max recovery 16 cycles, mean 4.9.
/// Measured (full): 231 panics contained, max recovery 20 cycles, mean 15.0.
struct Ceilings {
    max_recovery_cycles: u64,
    min_panics: u64,
}

impl Ceilings {
    fn for_mode(smoke: bool) -> Self {
        if smoke {
            Ceilings {
                max_recovery_cycles: 22,
                min_panics: 10,
            }
        } else {
            Ceilings {
                max_recovery_cycles: 26,
                min_panics: 100,
            }
        }
    }
}

struct Collector(Rc<RefCell<Vec<(SimTime, DrcrEvent)>>>);

impl TraceSubscriber<DrcrEvent> for Collector {
    fn on_event(&mut self, time: SimTime, event: &DrcrEvent) {
        self.0.borrow_mut().push((time, event.clone()));
    }
}

/// Wraps a logic factory in a fault injector driven by `plan`.
fn injected(
    descriptor: ComponentDescriptor,
    plan: FaultPlan,
    log: Rc<RefCell<InjectionLog>>,
    logic: impl Fn() -> Box<dyn RtLogic> + 'static,
) -> ComponentProvider {
    let plan = Rc::new(plan);
    ComponentProvider::new(descriptor, move || {
        FaultInjector::wrap(plan.clone(), log.clone(), logic())
    })
}

fn storm_rates(outport: Option<(String, usize)>) -> StormRates {
    StormRates {
        panic: 0.004,
        spike: 0.02,
        drop: 0.01,
        corrupt: if outport.is_some() { 0.01 } else { 0.0 },
        corrupt_port: outport,
        stall: 0.005,
        ..StormRates::default()
    }
}

struct RunStats {
    events: Vec<(SimTime, DrcrEvent)>,
    injected: InjectionLog,
    contained: u64,
    restarts: u64,
    quarantines: u64,
    max_recovery_cycles: u64,
    mean_recovery_cycles: f64,
    recoveries: u64,
    leaked_reservations: u64,
    wedge_quarantined: bool,
    sched: SchedCounters,
}

fn counter(report: &MetricsReport, name: &str) -> u64 {
    report
        .counters()
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

fn run(params: &Params) -> RunStats {
    let mut rt =
        DrtRuntime::new(KernelConfig::new(params.seed).with_timer(TimerJitterModel::ideal()));
    let log = Rc::new(RefCell::new(Vec::new()));
    rt.drcr_mut()
        .add_event_subscriber(Box::new(Collector(log.clone())));
    // Fleet default: faulted components come back after an escalating
    // backoff; a generous budget keeps frequent-faulters flapping (and,
    // if they flap hard enough, exhausting the budget into quarantine —
    // also a legitimate, deterministic outcome).
    rt.set_default_supervision(SupervisionConfig::backoff(
        SimDuration::from_millis(20),
        2,
        SimDuration::from_millis(200),
        200,
    ));
    // The wedged component flaps into the sliding-window quarantine.
    rt.set_supervision(
        "zz",
        SupervisionConfig::immediate(u32::MAX).with_quarantine(SimDuration::from_millis(500), 3),
    );

    let horizon_cycles = params.horizon_ms / (PERIOD_NS / 1_000_000);
    let injection = InjectionLog::shared();

    for i in 0..params.pairs {
        let chan = format!("k{i:02}");
        let d = ComponentDescriptor::builder(&format!("s{i:02}"))
            .description("storm provider")
            .periodic(100, 0, 2)
            .cpu_usage(0.02)
            .outport(&chan, PortInterface::Shm, DataType::Integer, 1)
            .build()
            .expect("provider descriptor");
        let plan = FaultPlan::storm(
            params.seed.wrapping_add(i as u64),
            horizon_cycles,
            &storm_rates(Some((chan.clone(), 4))),
        );
        let logic_chan = chan.clone();
        rt.install_component(
            &format!("bundle.s{i:02}"),
            injected(d, plan, injection.clone(), move || {
                let chan = logic_chan.clone();
                Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
                    let _ = io.write(&chan, &7i32.to_le_bytes());
                }))
            }),
        )
        .expect("install provider");
        let d = ComponentDescriptor::builder(&format!("d{i:02}"))
            .description("storm consumer")
            .periodic(100, 0, 4)
            .cpu_usage(0.02)
            .inport(&chan, PortInterface::Shm, DataType::Integer, 1)
            .build()
            .expect("consumer descriptor");
        let logic_chan = chan.clone();
        rt.install_component(
            &format!("bundle.d{i:02}"),
            ComponentProvider::new(d, move || {
                let chan = logic_chan.clone();
                Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
                    let _ = io.read(&chan);
                }))
            }),
        )
        .expect("install consumer");
    }
    for i in 0..params.workers {
        let d = ComponentDescriptor::builder(&format!("w{i:02}"))
            .description("storm worker")
            .periodic(100, 0, 3)
            .cpu_usage(0.01)
            .build()
            .expect("worker descriptor");
        let plan = FaultPlan::storm(
            params.seed.wrapping_add(1_000 + i as u64),
            horizon_cycles,
            &storm_rates(None),
        );
        rt.install_component(
            &format!("bundle.w{i:02}"),
            injected(d, plan, injection.clone(), || {
                Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
            }),
        )
        .expect("install worker");
    }
    let d = ComponentDescriptor::builder("zz")
        .description("wedged component")
        .periodic(100, 0, 5)
        .cpu_usage(0.01)
        .build()
        .expect("wedge descriptor");
    rt.install_component(
        "bundle.zz",
        injected(
            d,
            FaultPlan::new(params.seed).at(1, drcom::faults::FaultKind::Panic),
            injection.clone(),
            || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})),
        ),
    )
    .expect("install wedge");

    // Drive the storm at the management-poll cadence: each `advance` is
    // one fault-reaction window.
    let steps = params.horizon_ms / params.poll_ms;
    for _ in 0..steps {
        rt.advance(SimDuration::from_millis(params.poll_ms));
    }

    // Recovery latency: ComponentFault → next Activated of the same
    // component, in task cycles.
    let events = log.borrow().clone();
    let mut open_fault: HashMap<String, SimTime> = HashMap::new();
    let mut max_recovery = 0u64;
    let mut total_recovery = 0u64;
    let mut recoveries = 0u64;
    for (t, e) in &events {
        match e {
            DrcrEvent::ComponentFault { component, .. } => {
                open_fault.entry(component.clone()).or_insert(*t);
            }
            DrcrEvent::Activated { component } => {
                if let Some(t0) = open_fault.remove(component) {
                    let cycles = t.duration_since(t0).as_nanos().div_ceil(PERIOD_NS);
                    max_recovery = max_recovery.max(cycles);
                    total_recovery += cycles;
                    recoveries += 1;
                }
            }
            _ => {}
        }
    }

    // Reservation consistency: a component holds a reservation iff its
    // state holds admission. Anything else is a leak.
    let drcr = rt.drcr();
    let leaked = drcr
        .component_names()
        .iter()
        .filter(|name| {
            let holds = drcr.state_of(name).is_some_and(|s| s.holds_admission());
            drcr.ledger().reservation(name).is_some() != holds
        })
        .count() as u64;
    let wedge_quarantined =
        drcr.is_quarantined("zz") && drcr.state_of("zz") == Some(ComponentState::Disabled);
    drop(drcr);

    let sched = rt.kernel().counters();
    let report = rt.metrics_report();
    let injected = injection.borrow().clone();
    RunStats {
        events,
        injected,
        contained: counter(&report, "drcr.supervision.faults"),
        restarts: counter(&report, "drcr.supervision.restarts"),
        quarantines: counter(&report, "drcr.supervision.quarantines"),
        max_recovery_cycles: max_recovery,
        mean_recovery_cycles: if recoveries == 0 {
            0.0
        } else {
            total_recovery as f64 / recoveries as f64
        },
        recoveries,
        leaked_reservations: leaked,
        wedge_quarantined,
        sched,
    }
}

/// Renders an event stream to one canonical string (used for the
/// determinism comparison).
fn render(events: &[(SimTime, DrcrEvent)]) -> String {
    let mut out = String::new();
    for (t, e) in events {
        out.push_str(&format!("[{}] {e}\n", t.as_nanos()));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let params = if smoke {
        Params::smoke()
    } else {
        Params::full()
    };

    println!(
        "fault_storm: {} components ({} pairs + {} workers + 1 wedged), {} ms horizon, mode={}",
        params.components(),
        params.pairs,
        params.workers,
        params.horizon_ms,
        if smoke { "smoke" } else { "full" },
    );

    let clock = bench::timing::WallClock::new();
    let stats = run(&params);
    let wall = clock.finish(params.horizon_ms * 1_000_000, stats.sched.dispatches);
    let escaped = stats.injected.panics.saturating_sub(stats.contained);

    println!();
    println!(
        "  injected: {} panics, {} spikes, {} drops, {} corruptions, {} stalls ({} logic instances)",
        stats.injected.panics,
        stats.injected.spikes,
        stats.injected.drops,
        stats.injected.corruptions,
        stats.injected.stalls,
        stats.injected.instances,
    );
    println!(
        "  contained: {} typed faults, {} restarts, {} quarantines, {} escaped",
        stats.contained, stats.restarts, stats.quarantines, escaped,
    );
    println!(
        "  recovery: {} recoveries, max {} cycles, mean {:.1} cycles",
        stats.recoveries, stats.max_recovery_cycles, stats.mean_recovery_cycles,
    );
    println!(
        "  hygiene: {} leaked reservations, wedge quarantined: {}",
        stats.leaked_reservations, stats.wedge_quarantined,
    );
    println!(
        "  kernel: {} dispatches, {} preemptions, {} overruns, {} faults, {} deadline misses",
        stats.sched.dispatches,
        stats.sched.preemptions,
        stats.sched.overruns,
        stats.sched.faults,
        stats.sched.deadline_misses,
    );
    println!("  throughput: {}", wall.summary());

    if check {
        let ceilings = Ceilings::for_mode(smoke);
        assert!(
            stats.injected.panics >= ceilings.min_panics,
            "storm injected only {} panics (< {}): the bench lost its teeth",
            stats.injected.panics,
            ceilings.min_panics
        );
        assert_eq!(
            stats.contained, stats.injected.panics,
            "containment mismatch: {} faults contained vs {} panics injected",
            stats.contained, stats.injected.panics
        );
        assert_eq!(escaped, 0, "{escaped} panics escaped containment");
        assert_eq!(
            stats.leaked_reservations, 0,
            "{} components leaked reservations",
            stats.leaked_reservations
        );
        assert!(stats.wedge_quarantined, "wedged component not quarantined");
        assert!(stats.recoveries > 0, "no component ever recovered");
        assert!(
            stats.max_recovery_cycles <= ceilings.max_recovery_cycles,
            "max recovery latency {} cycles exceeds ceiling {}",
            stats.max_recovery_cycles,
            ceilings.max_recovery_cycles
        );
        // Same seed, same storm, same stream — byte for byte — and the
        // scheduler counters (including the lazily-pruned ready queue's
        // dispatch/preemption totals) must come out identical too.
        let again = run(&params);
        assert_eq!(
            render(&stats.events).as_bytes(),
            render(&again.events).as_bytes(),
            "fault storm is not deterministic"
        );
        assert_eq!(
            stats.sched, again.sched,
            "scheduler counters diverged between identical runs"
        );
        println!("  check: PASS");
    }

    if !smoke {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"fault_storm\",\n",
                "  \"components\": {},\n",
                "  \"horizon_ms\": {},\n",
                "  \"seed\": {},\n",
                "  \"injected\": {{\"panics\": {}, \"spikes\": {}, \"drops\": {}, ",
                "\"corruptions\": {}, \"stalls\": {}, \"instances\": {}}},\n",
                "  \"contained\": {},\n",
                "  \"escaped\": {},\n",
                "  \"restarts\": {},\n",
                "  \"quarantines\": {},\n",
                "  \"recoveries\": {},\n",
                "  \"max_recovery_cycles\": {},\n",
                "  \"mean_recovery_cycles\": {:.2},\n",
                "  \"leaked_reservations\": {},\n",
                "  \"wedge_quarantined\": {},\n",
                "  {}\n",
                "}}\n"
            ),
            params.components(),
            params.horizon_ms,
            params.seed,
            stats.injected.panics,
            stats.injected.spikes,
            stats.injected.drops,
            stats.injected.corruptions,
            stats.injected.stalls,
            stats.injected.instances,
            stats.contained,
            escaped,
            stats.restarts,
            stats.quarantines,
            stats.recoveries,
            stats.max_recovery_cycles,
            stats.mean_recovery_cycles,
            stats.leaked_reservations,
            stats.wedge_quarantined,
            wall.json_fields(),
        );
        std::fs::write("BENCH_fault.json", &json).expect("write BENCH_fault.json");
        println!("  wrote BENCH_fault.json");
    }
}
