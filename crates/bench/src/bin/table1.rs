//! Regenerates the paper's Table 1 (latency test, light & stress mode).
//!
//! Usage: `cargo run --release -p bench --bin table1 [cycles] [seed]`
//! Defaults: 20000 cycles (the paper's scale), seed 42.

use bench::{format_table1, run_table1, PAPER_TABLE1};
use drcom::obs::MetricsRegistry;

fn main() {
    let mut args = std::env::args().skip(1);
    let cycles: u64 = args
        .next()
        .map(|s| s.parse().expect("cycles must be an integer"))
        .unwrap_or(20_000);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(42);

    println!("Table 1 — Latency Test (light & stress mode)");
    println!(
        "{} cycles at 1000 Hz, seed {seed}; all values in nanoseconds\n",
        cycles
    );

    println!("== Reproduced (this implementation) ==");
    let rows = run_table1(cycles, seed);
    print!("{}", format_table1(&rows));

    println!("\n== Paper (Gui et al., Middleware 2008) ==");
    println!(
        "{:<20} {:>12} {:>12} {:>10} {:>10}",
        "", "AVERAGE", "AVEDEV", "MIN", "MAX"
    );
    for (label, avg, avedev, min, max) in PAPER_TABLE1 {
        println!("{label:<20} {avg:>12.2} {avedev:>12.2} {min:>10} {max:>10}");
    }

    println!("\n== Claim checks ==");
    let hrc_light = &rows[0].stats;
    let pure_light = &rows[1].stats;
    let hrc_stress = &rows[2].stats;
    let pure_stress = &rows[3].stats;

    let delta_light = (hrc_light.average() - pure_light.average()).abs();
    println!(
        "HRC vs pure RTAI (light):  |Δavg| = {delta_light:.1} ns  (noise: avedev = {:.1} ns) -> {}",
        pure_light.avedev(),
        verdict(delta_light < pure_light.avedev())
    );
    let delta_stress = (hrc_stress.average() - pure_stress.average()).abs();
    println!(
        "HRC vs pure RTAI (stress): |Δavg| = {delta_stress:.1} ns  (noise: avedev = {:.1} ns) -> {}",
        pure_stress.avedev().max(200.0),
        verdict(delta_stress < pure_stress.avedev().max(200.0) * 3.0)
    );
    let bound_ok = rows
        .iter()
        .all(|r| r.stats.min().unwrap_or(0).abs() < 30_000 && r.stats.max().unwrap_or(0) < 30_000);
    println!(
        "Latency bounded within ~30 us in all modes -> {}",
        verdict(bound_ok)
    );
    let stress_shape =
        hrc_stress.average() < -15_000.0 && hrc_stress.avedev() < pure_light.avedev();
    println!(
        "Stress mode: mean shifts early (~-21 us) while deviation collapses -> {}",
        verdict(stress_shape)
    );

    // Machine-readable summary: deterministic for a given (cycles, seed),
    // byte-identical across runs.
    let mut metrics = MetricsRegistry::new();
    metrics.count("table1.cycles", cycles);
    metrics.count("table1.seed", seed);
    for row in &rows {
        let slug: String = row
            .label
            .chars()
            .filter_map(|c| match c {
                'A'..='Z' => Some(c.to_ascii_lowercase()),
                'a'..='z' | '0'..='9' => Some(c),
                ' ' => Some('_'),
                _ => None,
            })
            .collect();
        metrics.count(&format!("table1.{slug}.samples"), row.stats.count() as u64);
        metrics.gauge(&format!("table1.{slug}.avg_ns"), row.stats.average());
        metrics.gauge(&format!("table1.{slug}.avedev_ns"), row.stats.avedev());
        metrics.gauge(
            &format!("table1.{slug}.min_ns"),
            row.stats.min().unwrap_or(0) as f64,
        );
        metrics.gauge(
            &format!("table1.{slug}.max_ns"),
            row.stats.max().unwrap_or(0) as f64,
        );
    }
    let report = metrics.snapshot();
    println!("\n=== metrics (text) ===");
    print!("{}", report.to_text());
    println!("\n=== metrics (json-lines) ===");
    print!("{}", report.to_json_lines());
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "REPRODUCED"
    } else {
        "MISMATCH"
    }
}
