//! Executor throughput benchmark: the single-threaded deterministic loop
//! vs per-CPU worker threads, on one identical workload.
//!
//! The workload is a 4-CPU machine with several 1 kHz periodic tasks per
//! CPU. Each task body burns real CPU via `SpinBody` (a black-boxed
//! xorshift spin), so wall-clock time measures genuine cycle execution —
//! not just event-loop bookkeeping — and worker threads have something to
//! run concurrently. IPC stays CPU-local, so the workload is quiescent and
//! the parallel mode's merged event stream must linearize to the
//! deterministic stream (checked here with a short traced run).
//!
//! Modes measured: `DeterministicExecutor`, then `ParallelExecutor` at
//! 1, 2 and 4 worker threads (single-epoch — no cross-CPU traffic to
//! exchange). Reported per mode: elapsed wall seconds, simulated-ns/sec,
//! cycles/sec, plus speedups relative to the deterministic baseline.
//!
//! Usage:
//!   cargo run --release -p bench --bin parallel_throughput            # full, writes BENCH_parallel.json
//!   cargo run --release -p bench --bin parallel_throughput -- --smoke # short run, stdout only
//!   cargo run --release -p bench --bin parallel_throughput -- --check # assert equivalence + scaling
//!
//! `--smoke --check` is the CI configuration. The ≥2.5× speedup assertion
//! at 4 workers is conditional on the host actually exposing ≥4 CPUs
//! (`std::thread::available_parallelism`): on smaller hosts — including
//! single-CPU CI containers — real scaling is physically impossible, so
//! the gate degrades to "parallel mode is not catastrophically slower"
//! while still enforcing linearization equivalence and replay determinism
//! unconditionally. `host_parallelism` is recorded in the JSON so a
//! reader can tell which regime a result came from.

use bench::timing::{Throughput, WallClock};
use rtos::exec::{
    linearization_equivalent, DeterministicExecutor, Executor, ParallelExecutor, Workload,
};
use rtos::task::{Priority, SpinBody, TaskConfig};
use rtos::time::SimDuration;

const CPUS: u32 = 4;
const TASKS_PER_CPU: u32 = 6;
/// Spin iterations per cycle — sized so a cycle costs a few microseconds
/// of real CPU, comfortably dominating per-event scheduling overhead.
const SPIN_ITERS: u32 = 4_000;

struct Params {
    horizon: SimDuration,
    equivalence_horizon: SimDuration,
}

impl Params {
    fn full() -> Self {
        Params {
            horizon: SimDuration::from_secs(4),
            equivalence_horizon: SimDuration::from_millis(100),
        }
    }

    fn smoke() -> Self {
        Params {
            horizon: SimDuration::from_millis(400),
            equivalence_horizon: SimDuration::from_millis(50),
        }
    }
}

/// The measured workload: trace recording off, spin bodies on.
fn throughput_workload() -> Workload {
    build_workload(false)
}

/// The equivalence-check workload: identical shape, tracing on.
fn traced_workload() -> Workload {
    build_workload(true)
}

fn build_workload(record_trace: bool) -> Workload {
    let mut w = Workload::new(CPUS, 42).record_trace(record_trace);
    for cpu in 0..CPUS {
        for slot in 0..TASKS_PER_CPU {
            let name = format!("t{cpu}{slot}");
            let cfg = TaskConfig::periodic(
                &name,
                Priority(2 + (slot % 3) as u8),
                SimDuration::from_hz(1000),
            )
            .expect("task name")
            .on_cpu(cpu)
            .with_base_cost(SimDuration::from_micros(40));
            w = w.task(cfg, || Box::new(SpinBody::new(SPIN_ITERS)));
        }
    }
    w
}

struct Mode {
    label: &'static str,
    workers: usize,
    throughput: Throughput,
}

fn measure(executor: &dyn Executor, workload: &Workload, horizon: SimDuration) -> Throughput {
    let clock = WallClock::new();
    let outcome = executor
        .run(workload, horizon)
        .expect("throughput run failed");
    clock.finish(horizon.as_nanos(), outcome.total_cycles)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let params = if smoke {
        Params::smoke()
    } else {
        Params::full()
    };
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("== parallel_throughput: executor scaling ==");
    println!(
        "   {CPUS} simulated CPUs x {TASKS_PER_CPU} tasks at 1 kHz, spin {SPIN_ITERS} iters/cycle"
    );
    println!(
        "   horizon {:.1} ms, host parallelism {host_parallelism}",
        params.horizon.as_secs_f64() * 1e3
    );

    let workload = throughput_workload();
    let mut modes: Vec<Mode> = Vec::new();
    let det = measure(&DeterministicExecutor, &workload, params.horizon);
    println!("   deterministic      : {}", det.summary());
    modes.push(Mode {
        label: "deterministic",
        workers: 1,
        throughput: det,
    });
    for workers in [1usize, 2, 4] {
        let exec = ParallelExecutor::new(workers).single_epoch();
        let t = measure(&exec, &workload, params.horizon);
        let label = match workers {
            1 => "parallel_1",
            2 => "parallel_2",
            _ => "parallel_4",
        };
        println!(
            "   parallel {workers} worker{} : {} ({:.2}x)",
            if workers == 1 { " " } else { "s" },
            t.summary(),
            t.cycles_per_sec / det.cycles_per_sec
        );
        modes.push(Mode {
            label,
            workers,
            throughput: t,
        });
    }

    // Equivalence + replay determinism on a short traced run.
    let traced = traced_workload();
    let det_outcome = DeterministicExecutor
        .run(&traced, params.equivalence_horizon)
        .expect("traced deterministic run");
    let par4 = ParallelExecutor::new(4).single_epoch();
    let par_outcome = par4
        .run(&traced, params.equivalence_horizon)
        .expect("traced parallel run");
    let equivalence = linearization_equivalent(&det_outcome, &par_outcome);
    let replay = par4
        .run(&traced, params.equivalence_horizon)
        .expect("traced parallel replay");
    let deterministic_replay = par_outcome.trace == replay.trace
        && par_outcome.tasks == replay.tasks
        && par_outcome.counters == replay.counters;
    println!(
        "   linearization equivalence: {}",
        if equivalence.is_ok() { "ok" } else { "FAILED" }
    );
    println!(
        "   parallel replay determinism: {}",
        if deterministic_replay { "ok" } else { "FAILED" }
    );

    let speedup_4 = modes
        .iter()
        .find(|m| m.label == "parallel_4")
        .map(|m| m.throughput.cycles_per_sec / det.cycles_per_sec)
        .unwrap_or(0.0);

    if !smoke {
        let mode_json: Vec<String> = modes
            .iter()
            .map(|m| {
                format!(
                    "    {{\"mode\": \"{}\", \"workers\": {}, {}, \"cycles\": {}}}",
                    m.label,
                    m.workers,
                    m.throughput.json_fields(),
                    m.throughput.cycles
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"parallel_throughput\",\n  \"cpus\": {CPUS},\n  \
             \"tasks_per_cpu\": {TASKS_PER_CPU},\n  \"spin_iters\": {SPIN_ITERS},\n  \
             \"horizon_ms\": {:.1},\n  \"host_parallelism\": {host_parallelism},\n  \
             \"modes\": [\n{}\n  ],\n  \"speedup_4_workers\": {:.3},\n  \
             \"linearization_equivalent\": {},\n  \"parallel_replay_deterministic\": {}\n}}\n",
            params.horizon.as_secs_f64() * 1e3,
            mode_json.join(",\n"),
            speedup_4,
            equivalence.is_ok(),
            deterministic_replay,
        );
        std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
        println!("  wrote BENCH_parallel.json");
    }

    if check {
        if let Err(why) = equivalence {
            panic!("CHECK FAILED: parallel stream is not a linearization:\n{why}");
        }
        assert!(
            deterministic_replay,
            "CHECK FAILED: parallel replay diverged between runs"
        );
        if host_parallelism >= 4 {
            assert!(
                speedup_4 >= 2.5,
                "CHECK FAILED: expected >= 2.5x cycles/sec at 4 workers on a \
                 {host_parallelism}-way host, got {speedup_4:.2}x"
            );
        } else {
            println!(
                "   NOTE: host exposes {host_parallelism} CPU(s); the 2.5x scaling \
                 assertion needs >= 4 and degrades to a no-regression bound here"
            );
            assert!(
                speedup_4 >= 0.2,
                "CHECK FAILED: parallel mode catastrophically slower ({speedup_4:.2}x) \
                 even for a {host_parallelism}-way host"
            );
        }
        println!("   CHECK OK");
    }
}
