//! Wall-clock throughput measurement shared by the bench binaries.
//!
//! The simulation itself runs in virtual nanoseconds, so counters alone
//! cannot show whether an optimisation made anything *faster in real
//! time*. Every perf-trajectory bench wraps its run in a [`WallClock`] and
//! reports three numbers: elapsed real seconds, simulated nanoseconds
//! executed per real second, and completed task cycles per real second.

use std::time::Instant;

/// A started wall-clock measurement.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Starts measuring.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }

    /// Elapsed real time in fractional seconds (never zero, so rates are
    /// always finite).
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64().max(1e-9)
    }

    /// Finishes the measurement against work done: `sim_ns` of virtual
    /// time executed and `cycles` task cycles completed.
    pub fn finish(&self, sim_ns: u64, cycles: u64) -> Throughput {
        let wall_seconds = self.elapsed_secs();
        Throughput {
            wall_seconds,
            sim_ns_per_sec: sim_ns as f64 / wall_seconds,
            cycles_per_sec: cycles as f64 / wall_seconds,
            cycles,
        }
    }
}

/// Wall-clock throughput of one bench phase.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Elapsed real seconds.
    pub wall_seconds: f64,
    /// Simulated nanoseconds executed per real second.
    pub sim_ns_per_sec: f64,
    /// Completed task cycles per real second.
    pub cycles_per_sec: f64,
    /// Total completed cycles.
    pub cycles: u64,
}

impl Throughput {
    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "wall {:.3} s | {:.2e} sim-ns/s | {:.0} cycles/s",
            self.wall_seconds, self.sim_ns_per_sec, self.cycles_per_sec
        )
    }

    /// The JSON object fields (no braces), for splicing into a bench's
    /// `BENCH_*.json` output.
    pub fn json_fields(&self) -> String {
        format!(
            "\"wall_seconds\": {:.6}, \"sim_ns_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}",
            self.wall_seconds, self.sim_ns_per_sec, self.cycles_per_sec
        )
    }
}
