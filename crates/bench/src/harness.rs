//! Experiment harness reproducing the paper's evaluation (§4).
//!
//! The central artifact is **Table 1**: scheduling-latency statistics
//! (AVERAGE / AVEDEV / MIN / MAX, nanoseconds) of a 1000 Hz periodic
//! "calculation" task accompanied by a 4 Hz "display" task reading its
//! shared-memory output, measured in four configurations:
//!
//! | implementation | load |
//! |---|---|
//! | Pure RTAI (tasks created directly on the kernel, no middleware) | light / stress |
//! | HRC (the same tasks deployed as DRCR-managed declarative components) | light / stress |
//!
//! [`run_table1_config`] runs one cell; [`run_table1`] produces the whole
//! table. The workload mirrors §4.2: the calculation task does a simulated
//! computing job at 1000 Hz and publishes into shared memory; the display
//! task reads it at 4 Hz.

use drcom::drcr::ComponentProvider;
use drcom::hybrid::BridgeMode;
use drcom::prelude::*;
use rtos::kernel::{Kernel, KernelConfig, TaskCtx};
use rtos::latency::{LatencyStats, LoadMode, TimerJitterModel, TimerMode};
use rtos::load::apply_load;
use rtos::lxrt;
use rtos::task::{FnBody, Priority};
use rtos::time::SimDuration;

/// Which implementation path a Table 1 cell exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplKind {
    /// Tasks created straight on the kernel through the LXRT façade.
    PureRtai,
    /// Tasks deployed as declarative components through the DRCR.
    Hrc,
}

impl std::fmt::Display for ImplKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImplKind::PureRtai => write!(f, "Pure RTAI"),
            ImplKind::Hrc => write!(f, "HRC"),
        }
    }
}

/// Parameters of one Table 1 cell.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Implementation path.
    pub impl_kind: ImplKind,
    /// Load regime.
    pub load: LoadMode,
    /// Number of 1 kHz cycles to record (the paper runs tens of thousands).
    pub cycles: u64,
    /// RNG seed (the experiments are exactly reproducible).
    pub seed: u64,
    /// Bridge mode for the HRC path (ablation hook).
    pub bridge: BridgeMode,
    /// Hardware timer programming mode (ablation hook; the paper uses
    /// periodic mode and discusses its drift).
    pub timer_mode: TimerMode,
}

impl Table1Config {
    /// The paper's configuration for a given cell.
    pub fn paper(impl_kind: ImplKind, load: LoadMode, seed: u64) -> Self {
        Table1Config {
            impl_kind,
            load,
            cycles: 20_000,
            seed,
            bridge: BridgeMode::AsyncPoll,
            timer_mode: TimerMode::Periodic,
        }
    }
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row label, e.g. `HRC (light)`.
    pub label: String,
    /// The recorded statistics.
    pub stats: LatencyStats,
}

impl Table1Row {
    /// Formats the row the way the paper prints it.
    pub fn format(&self) -> String {
        format!(
            "{:<20} {:>12.2} {:>12.2} {:>10} {:>10}",
            self.label,
            self.stats.average(),
            self.stats.avedev(),
            self.stats.min().unwrap_or(0),
            self.stats.max().unwrap_or(0),
        )
    }
}

fn kernel_config(seed: u64, timer_mode: TimerMode) -> KernelConfig {
    KernelConfig::new(seed).with_timer(TimerJitterModel::calibrated(timer_mode))
}

/// Runs one Table 1 cell and returns the calculation task's latency stats.
pub fn run_table1_config(cfg: &Table1Config) -> LatencyStats {
    match cfg.impl_kind {
        ImplKind::PureRtai => run_pure_rtai(cfg),
        ImplKind::Hrc => run_hrc(cfg),
    }
}

/// The pure-RTAI baseline: the latency test pair created directly with the
/// LXRT-style API, no middleware in the loop.
fn run_pure_rtai(cfg: &Table1Config) -> LatencyStats {
    let mut kernel = Kernel::new(kernel_config(cfg.seed, cfg.timer_mode).with_load_mode(cfg.load));
    apply_load(&mut kernel, cfg.load, 3).expect("load setup");
    lxrt::rt_shm_alloc(&mut kernel, "latdat", DataType::Integer, 1).expect("shm");

    let calc = lxrt::rt_task_init(
        &mut kernel,
        "calc",
        Priority(2),
        0,
        Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
            // The simulated computing job of §4.2.
            ctx.compute(SimDuration::from_micros(100));
            let v = (ctx.cycle() as i32).to_le_bytes();
            ctx.shm_write("latdat", &v).expect("write latdat");
        })),
    )
    .expect("calc init");
    kernel.set_latency_tracking(calc, true).expect("tracking");
    lxrt::rt_task_make_periodic(&mut kernel, calc, SimDuration::from_hz(1000)).expect("periodic");

    let disp = lxrt::rt_task_init(
        &mut kernel,
        "disp",
        Priority(5),
        0,
        Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
            let _ = ctx.shm_read("latdat").expect("read latdat");
            ctx.compute(SimDuration::from_micros(20));
        })),
    )
    .expect("disp init");
    lxrt::rt_task_make_periodic(&mut kernel, disp, SimDuration::from_hz(4)).expect("periodic");

    kernel.run_for(SimDuration::from_millis(cfg.cycles + 2));
    kernel.task_stats(calc).expect("stats").clone()
}

/// The declarative path: the same pair deployed as DRCom components and
/// managed by the DRCR.
fn run_hrc(cfg: &Table1Config) -> LatencyStats {
    let mut rt = DrtRuntime::new(kernel_config(cfg.seed, cfg.timer_mode).with_load_mode(cfg.load));
    rt.drcr_mut().set_bridge_mode(cfg.bridge);
    apply_load(&mut rt.kernel_mut(), cfg.load, 3).expect("load setup");

    let calc_desc = ComponentDescriptor::builder("calc")
        .description("simulated computing job, 1 kHz")
        .periodic(1000, 0, 2)
        .cpu_usage(0.15)
        .outport("latdat", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .expect("calc descriptor");
    rt.install_component(
        "demo.calc",
        ComponentProvider::new(calc_desc, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                io.compute(SimDuration::from_micros(100));
                let v = (io.cycle() as i32).to_le_bytes();
                io.write("latdat", &v).expect("write latdat");
            }))
        }),
    )
    .expect("install calc");

    let disp_desc = ComponentDescriptor::builder("disp")
        .description("latency display, 4 Hz")
        .periodic(4, 0, 5)
        .cpu_usage(0.01)
        .inport("latdat", PortInterface::Shm, DataType::Integer, 1)
        .build()
        .expect("disp descriptor");
    rt.install_component(
        "demo.disp",
        ComponentProvider::new(disp_desc, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let _ = io.read("latdat").expect("read latdat");
                io.compute(SimDuration::from_micros(20));
            }))
        }),
    )
    .expect("install disp");

    assert_eq!(rt.component_state("calc"), Some(ComponentState::Active));
    assert_eq!(rt.component_state("disp"), Some(ComponentState::Active));

    rt.advance(SimDuration::from_millis(cfg.cycles + 2));
    let task = rt.drcr().task_of("calc").expect("calc task");
    let stats = rt.kernel().task_stats(task).expect("stats").clone();
    stats
}

/// Runs all four Table 1 rows with the given cycle count.
pub fn run_table1(cycles: u64, seed: u64) -> Vec<Table1Row> {
    let cells = [
        (ImplKind::Hrc, LoadMode::Light),
        (ImplKind::PureRtai, LoadMode::Light),
        (ImplKind::Hrc, LoadMode::Stress),
        (ImplKind::PureRtai, LoadMode::Stress),
    ];
    cells
        .iter()
        .map(|&(impl_kind, load)| {
            let cfg = Table1Config {
                cycles,
                ..Table1Config::paper(impl_kind, load, seed)
            };
            Table1Row {
                label: format!("{impl_kind} ({load})"),
                stats: run_table1_config(&cfg),
            }
        })
        .collect()
}

/// Renders the table with the paper's header.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>12} {:>12} {:>10} {:>10}\n",
        "", "AVERAGE", "AVEDEV", "MIN", "MAX"
    ));
    for row in rows {
        out.push_str(&row.format());
        out.push('\n');
    }
    out
}

/// The paper's published Table 1, for side-by-side comparison:
/// `(label, average, avedev, min, max)`.
pub const PAPER_TABLE1: [(&str, f64, f64, i64, i64); 4] = [
    ("HRC (light)", -1334.9, 3760.03, -24125, 21489),
    ("Pure RTAI (light)", -633.8, 3682.82, -25436, 23798),
    ("HRC (stress)", -21083.74, 338.89, -23314, -17956),
    ("Pure RTAI (stress)", -21184.52, 385.41, -25233, -18834),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(impl_kind: ImplKind, load: LoadMode) -> LatencyStats {
        run_table1_config(&Table1Config {
            cycles: 3_000,
            ..Table1Config::paper(impl_kind, load, 7)
        })
    }

    #[test]
    fn light_mode_shapes_match_the_paper() {
        for kind in [ImplKind::PureRtai, ImplKind::Hrc] {
            let s = quick(kind, LoadMode::Light);
            assert!(s.count() >= 2_990, "{kind}: {}", s.count());
            assert!(
                (-3_000.0..=500.0).contains(&s.average()),
                "{kind} avg {}",
                s.average()
            );
            assert!(
                (2_500.0..=5_000.0).contains(&s.avedev()),
                "{kind} avedev {}",
                s.avedev()
            );
        }
    }

    #[test]
    fn stress_mode_shapes_match_the_paper() {
        for kind in [ImplKind::PureRtai, ImplKind::Hrc] {
            let s = quick(kind, LoadMode::Stress);
            assert!(
                (-23_000.0..=-19_000.0).contains(&s.average()),
                "{kind} avg {}",
                s.average()
            );
            assert!(s.avedev() < 1_000.0, "{kind} avedev {}", s.avedev());
            assert!(s.max().unwrap() < 0, "{kind} max {:?}", s.max());
        }
    }

    #[test]
    fn hrc_overhead_is_within_noise() {
        // The paper's core claim: the declarative runtime adds no meaningful
        // scheduling latency over pure RTAI.
        let pure = quick(ImplKind::PureRtai, LoadMode::Light);
        let hrc = quick(ImplKind::Hrc, LoadMode::Light);
        let delta = (hrc.average() - pure.average()).abs();
        assert!(
            delta < pure.avedev(),
            "HRC delta {delta} exceeds noise ({})",
            pure.avedev()
        );
    }

    #[test]
    fn table_formatting_is_stable() {
        let rows = run_table1(500, 3);
        let text = format_table1(&rows);
        assert!(text.contains("AVERAGE"));
        assert!(text.contains("HRC (light)"));
        assert!(text.contains("Pure RTAI (stress)"));
        assert_eq!(text.lines().count(), 5);
    }
}
