//! Minimal wall-clock timing harness for the `benches/` targets.
//!
//! The offline build carries no external benchmarking framework, so the
//! `[[bench]]` targets (all `harness = false`) drive this loop instead: a
//! warmup pass, then a fixed number of timed iterations, reported as
//! min/median/mean per-iteration time. Intended for relative comparisons
//! between configurations, not absolute measurement.

use std::time::{Duration, Instant};

/// Runs and reports a group of named timing cases.
pub struct Runner {
    group: String,
    warmup: u32,
    iterations: u32,
}

impl Runner {
    /// A runner printing under the given group label.
    pub fn new(group: &str) -> Self {
        Runner {
            group: group.to_string(),
            warmup: 3,
            iterations: 20,
        }
    }

    /// Overrides the number of timed iterations (default 20).
    pub fn iterations(mut self, n: u32) -> Self {
        self.iterations = n.max(1);
        self
    }

    /// Times `f`, preventing the result from being optimized away, and
    /// prints one line: `group/label  min .. median .. mean`.
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.iterations as usize);
        for _ in 0..self.iterations {
            let start = Instant::now();
            std::hint::black_box(f());
            samples.push(start.elapsed());
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        println!(
            "{}/{label}: min {} | median {} | mean {} ({} iters)",
            self.group,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            self.iterations,
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0u32;
        Runner::new("test").iterations(5).bench("count", || {
            calls += 1;
            calls
        });
        // 3 warmup + 5 timed.
        assert_eq!(calls, 8);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
