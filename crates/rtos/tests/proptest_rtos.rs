//! Property-based tests of the kernel's core invariants: determinism,
//! statistics laws, priority isolation, and budget accounting.

use proptest::prelude::*;
use rtos::kernel::{Kernel, KernelConfig};
use rtos::latency::{LatencyStats, LoadMode, TimerJitterModel, TimerMode};
use rtos::task::{IdleBody, Priority, TaskConfig};
use rtos::time::SimDuration;

fn ideal_kernel(seed: u64, cpus: u32) -> Kernel {
    Kernel::new(
        KernelConfig::new(seed)
            .with_timer(TimerJitterModel::ideal())
            .with_cpus(cpus),
    )
}

proptest! {
    /// AVEDEV is non-negative, at most the full range, and min ≤ avg ≤ max.
    #[test]
    fn stats_laws(samples in proptest::collection::vec(-1_000_000i64..1_000_000, 1..200)) {
        let mut s = LatencyStats::new();
        for &x in &samples {
            s.record(x);
        }
        let (min, max) = (s.min().unwrap(), s.max().unwrap());
        prop_assert!(min as f64 <= s.average() + 1e-9);
        prop_assert!(s.average() <= max as f64 + 1e-9);
        prop_assert!(s.avedev() >= 0.0);
        prop_assert!(s.avedev() <= (max - min) as f64 + 1e-9);
        prop_assert_eq!(s.count(), samples.len());
        // Percentile endpoints are the order statistics.
        prop_assert_eq!(s.percentile(0.0), Some(min));
        prop_assert_eq!(s.percentile(100.0), Some(max));
        // Histograms conserve mass.
        let h = s.histogram(min, max + 1, 7);
        prop_assert_eq!(h.iter().sum::<usize>(), samples.len());
    }

    /// Merging recorders equals recording the concatenation.
    #[test]
    fn stats_merge_is_concat(
        a in proptest::collection::vec(-1_000i64..1_000, 0..50),
        b in proptest::collection::vec(-1_000i64..1_000, 0..50),
    ) {
        let mut left = LatencyStats::new();
        for &x in &a { left.record(x); }
        let mut right = LatencyStats::new();
        for &x in &b { right.record(x); }
        left.merge(&right);
        let mut all = LatencyStats::new();
        for &x in a.iter().chain(b.iter()) { all.record(x); }
        prop_assert_eq!(left.count(), all.count());
        prop_assert_eq!(left.min(), all.min());
        prop_assert_eq!(left.max(), all.max());
        prop_assert!((left.average() - all.average()).abs() < 1e-9);
    }

    /// The calibrated model is deterministic per seed: two kernels with the
    /// same configuration produce bit-identical latency streams.
    #[test]
    fn kernel_determinism(seed in 0u64..1_000, load in prop_oneof![Just(LoadMode::Light), Just(LoadMode::Stress)]) {
        let run = |seed| {
            let mut k = Kernel::new(
                KernelConfig::new(seed)
                    .with_timer(TimerJitterModel::calibrated(TimerMode::Periodic))
                    .with_load_mode(load),
            );
            let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1))
                .unwrap()
                .with_latency_tracking();
            let t = k.create_task(cfg, Box::new(IdleBody)).unwrap();
            k.start_task(t).unwrap();
            k.run_for(SimDuration::from_millis(50));
            k.task_stats(t).unwrap().samples().to_vec()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Priority isolation: with an ideal timer, a strictly-highest-priority
    /// task is never delayed, whatever mix of lower-priority tasks runs.
    #[test]
    fn highest_priority_never_delayed(
        others in proptest::collection::vec((2u8..20, 1u64..5, 50u64..2_000), 0..5),
    ) {
        let mut k = ideal_kernel(3, 1);
        for (i, &(prio, period_ms, cost_us)) in others.iter().enumerate() {
            let cfg = TaskConfig::periodic(
                &format!("low{i:02}"),
                Priority(prio),
                SimDuration::from_millis(period_ms),
            )
            .unwrap()
            .with_base_cost(SimDuration::from_micros(cost_us));
            let t = k.create_task(cfg, Box::new(IdleBody)).unwrap();
            k.start_task(t).unwrap();
        }
        let cfg = TaskConfig::periodic("top", Priority(1), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(100))
            .with_latency_tracking();
        let top = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(top).unwrap();
        k.run_for(SimDuration::from_millis(100));
        let stats = k.task_stats(top).unwrap();
        prop_assert!(stats.count() > 0);
        prop_assert_eq!(stats.max().unwrap(), 0, "top task delayed");
    }

    /// CPU time accounting: RT + Linux busy fractions never exceed 1 per
    /// CPU, and a single task's cycle count matches elapsed/period.
    #[test]
    fn utilization_accounting(cost_us in 10u64..900, seed in 0u64..50) {
        let mut k = ideal_kernel(seed, 1);
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(cost_us));
        let t = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(t).unwrap();
        k.run_for(SimDuration::from_millis(200));
        let rt_util = k.cpu_rt_utilization(0);
        let linux_util = k.cpu_linux_utilization(0);
        prop_assert!(rt_util + linux_util <= 1.0 + 1e-9);
        // Expected utilization ≈ cost/period (+ the 1 µs default floor is
        // included in base_cost here, so exact).
        let expected = cost_us as f64 / 1_000.0;
        prop_assert!((rt_util - expected).abs() < 0.02, "util {rt_util} vs {expected}");
        let cycles = k.task_cycles(t).unwrap();
        prop_assert!((198..=200).contains(&cycles), "cycles {cycles}");
    }

    /// Suspend/resume conserves work: total cycles after a suspend window
    /// equal active-time / period, regardless of when the suspend happens.
    #[test]
    fn suspend_conserves_cycles(suspend_at_ms in 5u64..50) {
        let mut k = ideal_kernel(9, 1);
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(10));
        let t = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(t).unwrap();
        k.run_for(SimDuration::from_millis(suspend_at_ms));
        k.suspend_task(t).unwrap();
        k.run_for(SimDuration::from_millis(30));
        let frozen = k.task_cycles(t).unwrap();
        // At most one in-flight cycle completes after the suspend call.
        prop_assert!(frozen <= suspend_at_ms, "frozen {frozen}");
        prop_assert!(frozen + 1 >= suspend_at_ms, "frozen {frozen}");
        k.resume_task(t).unwrap();
        k.run_for(SimDuration::from_millis(20));
        let total = k.task_cycles(t).unwrap();
        prop_assert!((19..=20).contains(&(total - frozen)), "resumed {}", total - frozen);
    }

    /// Names are exclusive while alive and reusable after deletion.
    #[test]
    fn task_name_exclusivity(name in "[a-z][a-z0-9]{0,5}") {
        let mut k = ideal_kernel(1, 1);
        let cfg = TaskConfig::periodic(&name, Priority(2), SimDuration::from_millis(1)).unwrap();
        let t = k.create_task(cfg.clone(), Box::new(IdleBody)).unwrap();
        prop_assert!(k.create_task(cfg.clone(), Box::new(IdleBody)).is_err());
        k.delete_task(t).unwrap();
        prop_assert!(k.create_task(cfg, Box::new(IdleBody)).is_ok());
    }
}
