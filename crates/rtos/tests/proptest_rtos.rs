//! Property-based tests of the kernel's core invariants: determinism,
//! statistics laws, priority isolation, and budget accounting.
//!
//! Cases are generated from the in-repo seeded [`SimRng`] (no external
//! property-testing crate), so every run explores the same corpus and a
//! failure reproduces from the case index alone.

use rtos::kernel::{Kernel, KernelConfig};
use rtos::latency::{LatencyStats, LoadMode, TimerJitterModel, TimerMode};
use rtos::rng::SimRng;
use rtos::task::{IdleBody, Priority, TaskConfig};
use rtos::time::SimDuration;

const CASES: usize = 64;

fn ideal_kernel(seed: u64, cpus: u32) -> Kernel {
    Kernel::new(
        KernelConfig::new(seed)
            .with_timer(TimerJitterModel::ideal())
            .with_cpus(cpus),
    )
}

fn sample_i64(rng: &mut SimRng, lo: i64, hi: i64) -> i64 {
    lo + rng.uniform_u64(0, (hi - lo) as u64) as i64
}

/// AVEDEV is non-negative, at most the full range, and min ≤ avg ≤ max.
#[test]
fn stats_laws() {
    let mut rng = SimRng::from_seed(0xA11CE);
    for case in 0..CASES {
        let len = rng.uniform_u64(1, 200) as usize;
        let samples: Vec<i64> = (0..len)
            .map(|_| sample_i64(&mut rng, -1_000_000, 1_000_000))
            .collect();
        let mut s = LatencyStats::new();
        for &x in &samples {
            s.record(x);
        }
        let (min, max) = (s.min().unwrap(), s.max().unwrap());
        assert!(min as f64 <= s.average() + 1e-9, "case {case}");
        assert!(s.average() <= max as f64 + 1e-9, "case {case}");
        assert!(s.avedev() >= 0.0, "case {case}");
        assert!(s.avedev() <= (max - min) as f64 + 1e-9, "case {case}");
        assert_eq!(s.count(), samples.len(), "case {case}");
        // Percentile endpoints are the order statistics.
        assert_eq!(s.percentile(0.0), Some(min), "case {case}");
        assert_eq!(s.percentile(100.0), Some(max), "case {case}");
        // Histograms conserve mass.
        let h = s.histogram(min, max + 1, 7);
        assert_eq!(h.iter().sum::<usize>(), samples.len(), "case {case}");
    }
}

/// Merging recorders equals recording the concatenation.
#[test]
fn stats_merge_is_concat() {
    let mut rng = SimRng::from_seed(0xB0B);
    for case in 0..CASES {
        let a: Vec<i64> = (0..rng.uniform_u64(0, 50))
            .map(|_| sample_i64(&mut rng, -1_000, 1_000))
            .collect();
        let b: Vec<i64> = (0..rng.uniform_u64(0, 50))
            .map(|_| sample_i64(&mut rng, -1_000, 1_000))
            .collect();
        let mut left = LatencyStats::new();
        for &x in &a {
            left.record(x);
        }
        let mut right = LatencyStats::new();
        for &x in &b {
            right.record(x);
        }
        left.merge(&right);
        let mut all = LatencyStats::new();
        for &x in a.iter().chain(b.iter()) {
            all.record(x);
        }
        assert_eq!(left.count(), all.count(), "case {case}");
        assert_eq!(left.min(), all.min(), "case {case}");
        assert_eq!(left.max(), all.max(), "case {case}");
        assert!((left.average() - all.average()).abs() < 1e-9, "case {case}");
    }
}

/// The calibrated model is deterministic per seed: two kernels with the
/// same configuration produce bit-identical latency streams.
#[test]
fn kernel_determinism() {
    let mut rng = SimRng::from_seed(0xDE7);
    for case in 0..24 {
        let seed = rng.uniform_u64(0, 1_000);
        let load = if rng.chance(0.5) {
            LoadMode::Light
        } else {
            LoadMode::Stress
        };
        let run = |seed| {
            let mut k = Kernel::new(
                KernelConfig::new(seed)
                    .with_timer(TimerJitterModel::calibrated(TimerMode::Periodic))
                    .with_load_mode(load),
            );
            let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1))
                .unwrap()
                .with_latency_tracking();
            let t = k.create_task(cfg, Box::new(IdleBody)).unwrap();
            k.start_task(t).unwrap();
            k.run_for(SimDuration::from_millis(50));
            k.task_stats(t).unwrap().samples().to_vec()
        };
        assert_eq!(run(seed), run(seed), "case {case}");
    }
}

/// Priority isolation: with an ideal timer, a strictly-highest-priority
/// task is never delayed, whatever mix of lower-priority tasks runs.
#[test]
fn highest_priority_never_delayed() {
    let mut rng = SimRng::from_seed(0x1507);
    for case in 0..32 {
        let mut k = ideal_kernel(3, 1);
        let others = rng.uniform_u64(0, 5);
        for i in 0..others {
            let prio = rng.uniform_u64(2, 20) as u8;
            let period_ms = rng.uniform_u64(1, 5);
            let cost_us = rng.uniform_u64(50, 2_000);
            let cfg = TaskConfig::periodic(
                &format!("low{i:02}"),
                Priority(prio),
                SimDuration::from_millis(period_ms),
            )
            .unwrap()
            .with_base_cost(SimDuration::from_micros(cost_us));
            let t = k.create_task(cfg, Box::new(IdleBody)).unwrap();
            k.start_task(t).unwrap();
        }
        let cfg = TaskConfig::periodic("top", Priority(1), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(100))
            .with_latency_tracking();
        let top = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(top).unwrap();
        k.run_for(SimDuration::from_millis(100));
        let stats = k.task_stats(top).unwrap();
        assert!(stats.count() > 0, "case {case}");
        assert_eq!(stats.max().unwrap(), 0, "case {case}: top task delayed");
    }
}

/// CPU time accounting: RT + Linux busy fractions never exceed 1 per
/// CPU, and a single task's cycle count matches elapsed/period.
#[test]
fn utilization_accounting() {
    let mut rng = SimRng::from_seed(0xACC7);
    for case in 0..32 {
        let cost_us = rng.uniform_u64(10, 900);
        let seed = rng.uniform_u64(0, 50);
        let mut k = ideal_kernel(seed, 1);
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(cost_us));
        let t = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(t).unwrap();
        k.run_for(SimDuration::from_millis(200));
        let rt_util = k.cpu_rt_utilization(0);
        let linux_util = k.cpu_linux_utilization(0);
        assert!(rt_util + linux_util <= 1.0 + 1e-9, "case {case}");
        // Expected utilization ≈ cost/period (+ the 1 µs default floor is
        // included in base_cost here, so exact).
        let expected = cost_us as f64 / 1_000.0;
        assert!(
            (rt_util - expected).abs() < 0.02,
            "case {case}: util {rt_util} vs {expected}"
        );
        let cycles = k.task_cycles(t).unwrap();
        assert!(
            (198..=200).contains(&cycles),
            "case {case}: cycles {cycles}"
        );
    }
}

/// Suspend/resume conserves work: total cycles after a suspend window
/// equal active-time / period, regardless of when the suspend happens.
#[test]
fn suspend_conserves_cycles() {
    let mut rng = SimRng::from_seed(0x5105);
    for case in 0..32 {
        let suspend_at_ms = rng.uniform_u64(5, 50);
        let mut k = ideal_kernel(9, 1);
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(10));
        let t = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(t).unwrap();
        k.run_for(SimDuration::from_millis(suspend_at_ms));
        k.suspend_task(t).unwrap();
        k.run_for(SimDuration::from_millis(30));
        let frozen = k.task_cycles(t).unwrap();
        // At most one in-flight cycle completes after the suspend call.
        assert!(frozen <= suspend_at_ms, "case {case}: frozen {frozen}");
        assert!(frozen + 1 >= suspend_at_ms, "case {case}: frozen {frozen}");
        k.resume_task(t).unwrap();
        k.run_for(SimDuration::from_millis(20));
        let total = k.task_cycles(t).unwrap();
        assert!(
            (19..=20).contains(&(total - frozen)),
            "case {case}: resumed {}",
            total - frozen
        );
    }
}

/// Names are exclusive while alive and reusable after deletion.
#[test]
fn task_name_exclusivity() {
    let mut rng = SimRng::from_seed(0x8A8E);
    for case in 0..32 {
        let len = rng.uniform_u64(1, 7) as usize;
        let name: String = (0..len)
            .map(|i| {
                let set: &[u8] = if i == 0 {
                    b"abcdefghijklmnopqrstuvwxyz"
                } else {
                    b"abcdefghijklmnopqrstuvwxyz0123456789"
                };
                set[rng.uniform_u64(0, set.len() as u64) as usize] as char
            })
            .collect();
        let mut k = ideal_kernel(1, 1);
        let cfg = TaskConfig::periodic(&name, Priority(2), SimDuration::from_millis(1)).unwrap();
        let t = k.create_task(cfg.clone(), Box::new(IdleBody)).unwrap();
        assert!(
            k.create_task(cfg.clone(), Box::new(IdleBody)).is_err(),
            "case {case}"
        );
        k.delete_task(t).unwrap();
        assert!(
            k.create_task(cfg, Box::new(IdleBody)).is_ok(),
            "case {case}"
        );
    }
}
