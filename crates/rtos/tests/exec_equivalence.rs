//! Hand-rolled property test for the executor linearization-equivalence
//! guarantee (`rtos::exec`).
//!
//! Cases are generated from the in-repo seeded `SimRng` (no external
//! property-testing crate). For each generated **quiescent** workload —
//! ideal timer, deterministic bodies (fixed compute costs, local-only
//! IPC) — the properties are:
//!
//! 1. **Linearization**: the deterministic executor's event stream,
//!    projected onto any single CPU, is identical to the parallel
//!    executor's merged stream projected onto the same CPU — at every
//!    worker count from 1 to the CPU count. (The deterministic total
//!    order is therefore a linearization of the parallel partial order.)
//! 2. **State equivalence**: per-task cycles/overruns/faults, aggregate
//!    scheduler counters, and final SHM images agree across modes — the
//!    same events cannot hide different final states.
//! 3. **Replay determinism**: running the parallel executor twice yields
//!    byte-identical merged traces (OS thread scheduling never leaks into
//!    results).
//! 4. **Serial degeneration**: with one worker, even the *total* merged
//!    order equals the deterministic executor's canonical stream.

use rtos::exec::{
    linearization_equivalent, DeterministicExecutor, Executor, ParallelExecutor, Workload,
};
use rtos::kernel::TaskCtx;
use rtos::rng::SimRng;
use rtos::shm::DataType;
use rtos::task::{FnBody, Priority, SpinBody, TaskConfig};
use rtos::time::SimDuration;

/// Builds a random quiescent workload: 2–4 CPUs, 1–4 tasks per CPU with
/// mixed periods/priorities/budgets, a per-CPU SHM segment some tasks
/// write (CPU-local IPC only), and a sprinkling of aperiodic tasks driven
/// by scripted triggers.
fn arb_workload(rng: &mut SimRng) -> Workload {
    let cpus = rng.uniform_u64(2, 5) as u32;
    let seed = rng.next_u64();
    let mut w = Workload::new(cpus, seed);
    for cpu in 0..cpus {
        w = w.shm(&format!("s{cpu}"), DataType::Byte, 8);
    }
    let periods_ms = [1u64, 2, 4, 5, 10];
    for cpu in 0..cpus {
        let tasks = rng.uniform_u64(1, 5);
        for slot in 0..tasks {
            let name = format!("t{cpu}{slot}");
            let priority = Priority(1 + rng.uniform_u64(0, 8) as u8);
            let cost = SimDuration::from_micros(rng.uniform_u64(50, 800));
            let aperiodic = rng.chance(0.2);
            let mut cfg = if aperiodic {
                TaskConfig::aperiodic(&name, priority).unwrap()
            } else {
                let period = periods_ms[rng.uniform_u64(0, periods_ms.len() as u64) as usize];
                TaskConfig::periodic(&name, priority, SimDuration::from_millis(period)).unwrap()
            }
            .on_cpu(cpu)
            .with_base_cost(cost);
            if !aperiodic && rng.chance(0.5) {
                cfg = cfg.with_latency_tracking();
            }
            if rng.chance(0.25) {
                cfg = cfg.with_exec_budget(SimDuration::from_micros(900));
            }
            let triggers = if aperiodic {
                (0..rng.uniform_u64(1, 6))
                    .map(|_| {
                        rtos::time::SimTime::ZERO
                            + SimDuration::from_micros(rng.uniform_u64(100, 45_000))
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let writes_shm = rng.chance(0.5);
            let seg = format!("s{cpu}");
            let spin = rng.uniform_u64(4, 32) as u32;
            let spec = rtos::exec::TaskSpec {
                config: cfg,
                factory: std::sync::Arc::new(move || {
                    let seg = seg.clone();
                    if writes_shm {
                        Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                            let cycle = ctx.cycle();
                            let mut image = [0u8; 8];
                            image[..8].copy_from_slice(&cycle.to_le_bytes());
                            let _ = ctx.shm_write(&seg, &image);
                        }))
                    } else {
                        Box::new(SpinBody::new(spin))
                    }
                }),
                autostart: true,
                wake_on: None,
                triggers,
            };
            w = w.task_spec(spec);
        }
    }
    w
}

#[test]
fn parallel_merged_stream_linearizes_to_deterministic_order() {
    let mut rng = SimRng::from_seed(0x9E37_79B9);
    let horizon = SimDuration::from_millis(50);
    for case in 0..24 {
        let w = arb_workload(&mut rng);
        let det = DeterministicExecutor
            .run(&w, horizon)
            .unwrap_or_else(|e| panic!("case {case}: deterministic run failed: {e}"));
        assert!(det.total_cycles > 0, "case {case}: degenerate workload");
        for workers in 1..=(w.cpus() as usize) {
            let par = ParallelExecutor::new(workers)
                .run(&w, horizon)
                .unwrap_or_else(|e| panic!("case {case}/{workers}w: parallel run failed: {e}"));
            if let Err(why) = linearization_equivalent(&det, &par) {
                panic!(
                    "case {case}: {workers}-worker merged stream is not a linearization \
                     of the deterministic order:\n{why}"
                );
            }
            // Final SHM images converge to the same bytes.
            for (a, b) in det.shm.iter().zip(&par.shm) {
                assert_eq!(
                    a, b,
                    "case {case}/{workers}w: SHM image diverged for '{}'",
                    a.name
                );
            }
        }
    }
}

#[test]
fn parallel_replay_is_deterministic() {
    let mut rng = SimRng::from_seed(0xC0FF_EE11);
    let horizon = SimDuration::from_millis(40);
    for case in 0..8 {
        let w = arb_workload(&mut rng);
        let workers = (case % w.cpus() as usize).max(1);
        let exec = ParallelExecutor::new(workers);
        let a = exec.run(&w, horizon).unwrap();
        let b = exec.run(&w, horizon).unwrap();
        assert_eq!(a.trace, b.trace, "case {case}: replay diverged");
        assert_eq!(a.tasks, b.tasks, "case {case}: task outcomes diverged");
        assert_eq!(a.counters, b.counters, "case {case}: counters diverged");
    }
}

#[test]
fn one_worker_degenerates_to_the_serial_schedule() {
    let mut rng = SimRng::from_seed(0xDEAD_10CC);
    let horizon = SimDuration::from_millis(30);
    for case in 0..6 {
        let w = arb_workload(&mut rng);
        let det = DeterministicExecutor.run(&w, horizon).unwrap();
        let par = ParallelExecutor::new(1).run(&w, horizon).unwrap();
        let a: Vec<_> = det.trace.iter().map(|e| &e.entry).collect();
        let b: Vec<_> = par.trace.iter().map(|e| &e.entry).collect();
        assert_eq!(a, b, "case {case}: single-worker total order diverged");
    }
}
