//! # rtos — a deterministic RTAI-like real-time kernel simulator
//!
//! This crate simulates the real-time substrate of the paper *"A framework
//! for adaptive real-time applications: the declarative real-time OSGi
//! component model"* (Gui et al., Middleware 2008): an RTAI-patched Linux
//! machine with a **dual-kernel** architecture where hard-real-time tasks
//! always preempt ordinary Linux work.
//!
//! Everything runs in virtual nanosecond time inside a discrete-event
//! engine, so experiments are fast and exactly reproducible from a seed.
//! Two execution modes share one task model (see [`exec`]): the classic
//! single-threaded lockstep loop ([`exec::DeterministicExecutor`]), and a
//! per-CPU worker-thread mode ([`exec::ParallelExecutor`]) whose merged
//! event stream is provably a linearization of the serial order on
//! quiescent workloads. The pieces:
//!
//! * [`kernel`] — the event engine: per-CPU fixed-priority preemptive
//!   scheduling with round-robin among equal priorities, task lifecycle,
//!   latency capture.
//! * [`exec`] — the executor layer: thread-shippable [`exec::Workload`]
//!   specs, the two executors, and the linearization-equivalence check.
//! * [`task`] — task names (6-character OS limit), priorities (lower is more
//!   urgent), configuration, and the [`task::TaskBody`] behaviour trait.
//! * [`shm`] / [`mailbox`] / [`fifo`] — the `RTAI.SHM`, `RTAI.Mailbox` and
//!   `RTAI.FIFO` IPC carriers used by component ports.
//! * [`lxrt`] — an RTAI-LXRT-shaped function façade (`rt_task_init`,
//!   `rt_task_make_periodic`, `rt_mbx_send_if`, ...).
//! * [`latency`] — Table-1 statistics (AVERAGE/AVEDEV/MIN/MAX) and the
//!   calibrated hardware-timer error model.
//! * [`load`] — the light/stress background-load regimes of the evaluation.
//!
//! ## Quick start
//!
//! ```
//! use rtos::kernel::{Kernel, KernelConfig, TaskCtx};
//! use rtos::task::{FnBody, Priority, TaskConfig};
//! use rtos::time::SimDuration;
//!
//! # fn main() -> Result<(), rtos::error::KernelError> {
//! let mut kernel = Kernel::new(KernelConfig::new(7));
//! let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_hz(1000))?
//!     .with_latency_tracking();
//! let task = kernel.create_task(
//!     cfg,
//!     Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
//!         ctx.compute(SimDuration::from_micros(50));
//!     })),
//! )?;
//! kernel.start_task(task)?;
//! kernel.run_for(SimDuration::from_secs(1));
//! let stats = kernel.task_stats(task).unwrap();
//! // Timer jitter may push the final release just past the horizon.
//! assert!((999..=1000).contains(&stats.count()));
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod exec;
pub mod fifo;
pub mod kernel;
pub mod latency;
pub mod load;
pub mod lxrt;
pub mod mailbox;
pub mod rng;
pub mod shm;
pub mod task;
pub mod time;
pub mod trace;

pub use error::{IpcError, KernelError, NameError};
pub use exec::{
    executor_from_env, linearization_equivalent, DeterministicExecutor, ExecOutcome, Executor,
    Lockstep, ParallelExecutor, Workload,
};
pub use kernel::{Kernel, KernelConfig, TaskCtx};
pub use latency::{LatencyStats, LoadMode, TimerJitterModel, TimerMode};
pub use task::{ObjName, Priority, TaskBody, TaskConfig, TaskId, TaskState};
pub use time::{LatencyNs, SimDuration, SimTime};
pub use trace::{EventSink, KernelEvent, Timestamped, TraceRing, TraceSubscriber};
