//! Scheduling-latency capture and the hardware timer/jitter model.
//!
//! The paper's Table 1 reports, for each configuration, four statistics over
//! the observed scheduling latency of a 1000 Hz periodic task: AVERAGE,
//! AVEDEV (mean absolute deviation), MIN and MAX, all in nanoseconds.
//! [`LatencyStats`] reproduces exactly those columns; [`TimerJitterModel`]
//! generates the per-release timer error that, combined with the *measured*
//! queueing/dispatch delay computed by the scheduler, forms a latency sample.
//!
//! # Calibration
//!
//! The model parameters are calibrated against the paper's testbed (HP
//! nc6400, RTAI 3.5, periodic hardware timer):
//!
//! * **Light mode** — the timer error is dominated by occasional cache/TLB
//!   disturbances from the mostly idle Linux domain: a wide Gaussian centred
//!   slightly early (periodic-mode calibration bias), σ ≈ 4.7 µs, giving
//!   AVEDEV ≈ 3.7 µs and extrema near ±25 µs over 20 000 cycles.
//! * **Stress mode** — with the Linux domain saturated the caches are
//!   *consistently* cold, so the periodic timer's calibration offset shifts
//!   strongly early (≈ −21 µs) while the spread collapses (σ ≈ 0.45 µs,
//!   AVEDEV ≈ 0.35 µs): every cycle pays the same worst-ish cost.
//!
//! These shapes — not the absolute numbers — are the reproduction target.

use crate::rng::SimRng;
use crate::time::LatencyNs;

/// Online + retained-sample statistics matching the paper's Table 1 columns.
///
/// Samples are retained (an experiment is tens of thousands of cycles) so the
/// exact two-pass AVEDEV the paper's spreadsheet used can be computed, plus
/// percentiles and histograms for richer reporting.
///
/// ```
/// use rtos::latency::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for sample in [-10, 0, 10, 20] {
///     stats.record(sample);
/// }
/// assert_eq!(stats.average(), 5.0);
/// assert_eq!(stats.avedev(), 10.0);
/// assert_eq!(stats.min(), Some(-10));
/// assert_eq!(stats.max(), Some(20));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<LatencyNs>,
    min: Option<LatencyNs>,
    max: Option<LatencyNs>,
    sum: i128,
}

impl LatencyStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: LatencyNs) {
        self.samples.push(sample);
        self.sum += sample as i128;
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (the paper's AVERAGE column). Zero when empty.
    pub fn average(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.samples.len() as f64
        }
    }

    /// Mean absolute deviation around the mean (the paper's AVEDEV column).
    pub fn avedev(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mean = self.average();
        self.samples
            .iter()
            .map(|&s| (s as f64 - mean).abs())
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Smallest sample (the paper's MIN column).
    pub fn min(&self) -> Option<LatencyNs> {
        self.min
    }

    /// Largest sample (the paper's MAX column).
    pub fn max(&self) -> Option<LatencyNs> {
        self.max
    }

    /// The `p`-th percentile (0.0 ..= 100.0) by nearest-rank.
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<LatencyNs> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Immutable view of the raw samples, in arrival order.
    pub fn samples(&self) -> &[LatencyNs] {
        &self.samples
    }

    /// Fixed-width histogram over `[lo, hi)` with `bins` buckets.
    ///
    /// Out-of-range samples are clamped into the first/last bucket. Returns
    /// the bucket counts.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn histogram(&self, lo: LatencyNs, hi: LatencyNs, bins: usize) -> Vec<usize> {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "empty range");
        let mut counts = vec![0usize; bins];
        let width = (hi - lo) as f64 / bins as f64;
        for &s in &self.samples {
            let idx = (((s - lo) as f64 / width).floor() as i64).clamp(0, bins as i64 - 1);
            counts[idx as usize] += 1;
        }
        counts
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        for &s in &other.samples {
            self.record(s);
        }
    }
}

/// System load regime for an experiment (Table 1's "light" vs "stress").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadMode {
    /// Linux domain mostly idle; only the RT tasks and the OSGi platform run.
    Light,
    /// Linux domain saturated (~100 % CPU) by hog processes.
    Stress,
}

impl std::fmt::Display for LoadMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadMode::Light => write!(f, "light"),
            LoadMode::Stress => write!(f, "stress"),
        }
    }
}

/// Hardware timer programming mode (RTAI `rt_set_periodic_mode` /
/// `rt_set_oneshot_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerMode {
    /// Interrupts on a fixed grid; cheap but subject to calibration drift
    /// (the source of the negative averages in Table 1).
    Periodic,
    /// Timer reprogrammed per release; no drift bias but a per-shot
    /// programming cost.
    Oneshot,
}

/// Parameters of the per-release timer-error distribution for one load mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterParams {
    /// Mean timer error in ns (negative = fires early).
    pub bias_ns: f64,
    /// Gaussian spread of the error in ns.
    pub sigma_ns: f64,
    /// Probability of an extra disturbance spike on any given release.
    pub spike_prob: f64,
    /// Half-width of the uniform spike magnitude in ns.
    pub spike_ns: f64,
}

/// The calibrated timer/jitter model.
///
/// Produces the *timer error* component of a latency sample; the scheduler
/// adds the measured dispatch/queueing delay on top.
#[derive(Debug, Clone, PartialEq)]
pub struct TimerJitterModel {
    mode: TimerMode,
    light: JitterParams,
    stress: JitterParams,
    /// Per-shot programming cost in oneshot mode (always-late component).
    oneshot_cost_ns: f64,
}

impl TimerJitterModel {
    /// Model calibrated against the paper's testbed (see module docs).
    pub fn calibrated(mode: TimerMode) -> Self {
        TimerJitterModel {
            mode,
            light: JitterParams {
                bias_ns: -1_000.0,
                sigma_ns: 4_650.0,
                spike_prob: 0.0005,
                spike_ns: 9_000.0,
            },
            stress: JitterParams {
                bias_ns: -21_150.0,
                sigma_ns: 450.0,
                spike_prob: 0.002,
                spike_ns: 2_400.0,
            },
            oneshot_cost_ns: 2_300.0,
        }
    }

    /// A model with explicit parameters (for ablations and tests).
    pub fn with_params(mode: TimerMode, light: JitterParams, stress: JitterParams) -> Self {
        TimerJitterModel {
            mode,
            light,
            stress,
            oneshot_cost_ns: 2_300.0,
        }
    }

    /// A perfectly ideal timer (zero error); useful in unit tests that assert
    /// on exact virtual-time arithmetic.
    pub fn ideal() -> Self {
        let zero = JitterParams {
            bias_ns: 0.0,
            sigma_ns: 0.0,
            spike_prob: 0.0,
            spike_ns: 0.0,
        };
        TimerJitterModel {
            mode: TimerMode::Periodic,
            light: zero,
            stress: zero,
            oneshot_cost_ns: 0.0,
        }
    }

    /// The timer programming mode of this model.
    pub fn mode(&self) -> TimerMode {
        self.mode
    }

    /// Samples the timer error for one release under the given load.
    pub fn sample_error(&self, rng: &mut SimRng, load: LoadMode) -> LatencyNs {
        let p = match load {
            LoadMode::Light => &self.light,
            LoadMode::Stress => &self.stress,
        };
        let mut err = match self.mode {
            TimerMode::Periodic => rng.gaussian(p.bias_ns, p.sigma_ns),
            // Oneshot has no calibration drift: centred at the programming
            // cost, same load-dependent spread.
            TimerMode::Oneshot => rng.gaussian(self.oneshot_cost_ns, p.sigma_ns),
        };
        if p.spike_prob > 0.0 && rng.chance(p.spike_prob) {
            err += rng.uniform_range(-p.spike_ns, p.spike_ns);
        }
        err.round() as LatencyNs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(samples: &[LatencyNs]) -> LatencyStats {
        let mut s = LatencyStats::new();
        for &x in samples {
            s.record(x);
        }
        s
    }

    #[test]
    fn empty_stats_are_well_behaved() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.average(), 0.0);
        assert_eq!(s.avedev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.percentile(50.0), None);
    }

    #[test]
    fn basic_columns_match_hand_computation() {
        let s = stats_of(&[-10, 0, 10, 20]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.average(), 5.0);
        // |−15| + |−5| + |5| + |15| over 4 = 10
        assert_eq!(s.avedev(), 10.0);
        assert_eq!(s.min(), Some(-10));
        assert_eq!(s.max(), Some(20));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let s = stats_of(&[5, 1, 4, 2, 3]);
        assert_eq!(s.percentile(0.0), Some(1));
        assert_eq!(s.percentile(50.0), Some(3));
        assert_eq!(s.percentile(100.0), Some(5));
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let s = stats_of(&[-100, 0, 5, 9, 100]);
        let h = s.histogram(0, 10, 2);
        assert_eq!(h, vec![2, 3]); // −100 clamps low, 100 clamps high
        assert_eq!(h.iter().sum::<usize>(), s.count());
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = stats_of(&[1, 2]);
        let b = stats_of(&[-5, 10]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), Some(-5));
        assert_eq!(a.max(), Some(10));
        assert_eq!(a.average(), 2.0);
    }

    #[test]
    fn calibrated_light_mode_has_table1_shape() {
        let model = TimerJitterModel::calibrated(TimerMode::Periodic);
        let mut rng = SimRng::from_seed(1);
        let mut s = LatencyStats::new();
        for _ in 0..20_000 {
            s.record(model.sample_error(&mut rng, LoadMode::Light));
        }
        // Paper (pure RTAI, light): avg −633.8, avedev 3682, min −25436, max 23798.
        assert!(
            (-2_500.0..=500.0).contains(&s.average()),
            "avg {}",
            s.average()
        );
        assert!(
            (3_000.0..=4_500.0).contains(&s.avedev()),
            "avedev {}",
            s.avedev()
        );
        assert!(s.min().unwrap() < -12_000, "min {:?}", s.min());
        assert!(s.max().unwrap() > 12_000, "max {:?}", s.max());
    }

    #[test]
    fn calibrated_stress_mode_shifts_early_and_tightens() {
        let model = TimerJitterModel::calibrated(TimerMode::Periodic);
        let mut rng = SimRng::from_seed(2);
        let mut s = LatencyStats::new();
        for _ in 0..20_000 {
            s.record(model.sample_error(&mut rng, LoadMode::Stress));
        }
        // Paper (pure RTAI, stress): avg −21184, avedev 385, min −25233, max −18834.
        assert!(
            (-22_500.0..=-19_500.0).contains(&s.average()),
            "avg {}",
            s.average()
        );
        assert!(s.avedev() < 800.0, "avedev {}", s.avedev());
        assert!(s.max().unwrap() < 0, "max {:?}", s.max());
    }

    #[test]
    fn ideal_model_is_exact_zero() {
        let model = TimerJitterModel::ideal();
        let mut rng = SimRng::from_seed(3);
        for _ in 0..100 {
            assert_eq!(model.sample_error(&mut rng, LoadMode::Light), 0);
            assert_eq!(model.sample_error(&mut rng, LoadMode::Stress), 0);
        }
    }

    #[test]
    fn oneshot_mode_has_no_early_bias() {
        let model = TimerJitterModel::calibrated(TimerMode::Oneshot);
        let mut rng = SimRng::from_seed(4);
        let mut s = LatencyStats::new();
        for _ in 0..20_000 {
            s.record(model.sample_error(&mut rng, LoadMode::Light));
        }
        assert!(
            s.average() > 0.0,
            "oneshot should pay programming cost, avg {}",
            s.average()
        );
    }
}
