//! Background-load generation (the paper's "light" vs "stress" regimes).
//!
//! The paper's stress test saturates the Linux side with CPU hogs while the
//! RT tasks run; the dual-kernel design keeps RT latency bounded because
//! RTAI tasks always preempt Linux processes. [`apply_load`] reproduces
//! that: it switches the kernel's timer-model regime (cache/TLB pressure is
//! what actually moves the latency distribution) *and* spawns mechanistic
//! Linux-domain hog tasks that soak up whatever CPU the RT side leaves idle
//! — demonstrating, not just asserting, that Linux work cannot delay RT
//! dispatch.

use crate::error::KernelError;
use crate::kernel::Kernel;
use crate::latency::LoadMode;
use crate::task::{IdleBody, Priority, TaskConfig, TaskId};
use crate::time::SimDuration;

/// Handle to the spawned load tasks, used to unload later.
#[derive(Debug, Default)]
pub struct LoadHandle {
    hogs: Vec<TaskId>,
}

impl LoadHandle {
    /// The spawned Linux-domain hog tasks.
    pub fn tasks(&self) -> &[TaskId] {
        &self.hogs
    }

    /// True when no load tasks are running.
    pub fn is_empty(&self) -> bool {
        self.hogs.is_empty()
    }
}

/// Puts the kernel into the given load regime.
///
/// In [`LoadMode::Stress`], spawns `hogs_per_cpu` Linux-domain tasks per CPU
/// (each demanding a full period of CPU every millisecond, i.e. ~100 %
/// aggregate demand) and flips the timer model's regime. In
/// [`LoadMode::Light`] it only sets the regime; pair with [`remove_load`] to
/// tear down a previous stress setup.
///
/// # Errors
///
/// Propagates kernel task-creation errors.
pub fn apply_load(
    kernel: &mut Kernel,
    mode: LoadMode,
    hogs_per_cpu: u32,
) -> Result<LoadHandle, KernelError> {
    kernel.set_load_mode(mode);
    let mut handle = LoadHandle::default();
    if mode == LoadMode::Stress {
        let cpus = kernel_cpu_count(kernel);
        for cpu in 0..cpus {
            for i in 0..hogs_per_cpu {
                let name = format!("hg{cpu}{i:02}");
                // A `while (1)` CPU hog: aperiodic + continuous, kicked once.
                let cfg = TaskConfig::aperiodic(&name, Priority(0))?
                    .on_cpu(cpu)
                    .in_linux_domain()
                    .continuous()
                    .with_base_cost(SimDuration::from_millis(1));
                let id = kernel.create_task(cfg, Box::new(IdleBody))?;
                kernel.start_task(id)?;
                kernel.trigger(id)?;
                handle.hogs.push(id);
            }
        }
    }
    Ok(handle)
}

/// Tears down load tasks and returns the kernel to the light regime.
///
/// # Errors
///
/// Propagates kernel task-deletion errors.
pub fn remove_load(kernel: &mut Kernel, handle: LoadHandle) -> Result<(), KernelError> {
    for id in handle.hogs {
        kernel.delete_task(id)?;
    }
    kernel.set_load_mode(LoadMode::Light);
    Ok(())
}

fn kernel_cpu_count(kernel: &Kernel) -> u32 {
    // Probe: CPUs are dense from 0; utilization queries panic past the end,
    // so track via configuration. The kernel does not expose its config, so
    // we count by probing task placement instead.
    // (Kept simple: the kernel config is available to callers; this helper
    // only needs a safe upper bound.)
    kernel.cpu_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::latency::TimerJitterModel;
    use crate::task::TaskState;

    #[test]
    fn stress_load_saturates_linux_domain() {
        let mut k = Kernel::new(
            KernelConfig::new(21)
                .with_timer(TimerJitterModel::ideal())
                .with_cpus(2),
        );
        let handle = apply_load(&mut k, LoadMode::Stress, 3).unwrap();
        assert_eq!(handle.tasks().len(), 6);
        k.run_for(SimDuration::from_millis(50));
        assert!(k.cpu_linux_utilization(0) > 0.9);
        assert!(k.cpu_linux_utilization(1) > 0.9);
        assert_eq!(k.load_mode(), LoadMode::Stress);
    }

    #[test]
    fn remove_load_returns_to_light() {
        let mut k = Kernel::new(KernelConfig::new(22).with_timer(TimerJitterModel::ideal()));
        let handle = apply_load(&mut k, LoadMode::Stress, 2).unwrap();
        let ids: Vec<_> = handle.tasks().to_vec();
        k.run_for(SimDuration::from_millis(10));
        remove_load(&mut k, handle).unwrap();
        assert_eq!(k.load_mode(), LoadMode::Light);
        for id in ids {
            assert_eq!(k.task_state(id), Some(TaskState::Deleted));
        }
    }

    #[test]
    fn light_load_spawns_nothing() {
        let mut k = Kernel::new(KernelConfig::new(23).with_timer(TimerJitterModel::ideal()));
        let handle = apply_load(&mut k, LoadMode::Light, 3).unwrap();
        assert!(handle.is_empty());
    }
}
