//! LXRT-style user-space façade over the kernel.
//!
//! The paper's prototype uses the RTAI **LXRT** module, "which allows the
//! use of the RTAI system calls from within standard user space". This
//! module mirrors that API surface: thin free functions named after their
//! RTAI counterparts, operating on a [`Kernel`]. Higher layers (the hybrid
//! component runtime) can be read side-by-side with RTAI user-model code.
//!
//! ```
//! use rtos::lxrt;
//! use rtos::kernel::{Kernel, KernelConfig};
//! use rtos::task::{IdleBody, Priority};
//! use rtos::time::SimDuration;
//!
//! # fn main() -> Result<(), rtos::error::KernelError> {
//! let mut kernel = Kernel::new(KernelConfig::new(42));
//! let task = lxrt::rt_task_init(&mut kernel, "calc", Priority(2), 0, Box::new(IdleBody))?;
//! lxrt::rt_task_make_periodic(&mut kernel, task, SimDuration::from_hz(1000))?;
//! kernel.run_for(SimDuration::from_millis(10));
//! assert!(kernel.task_cycles(task).unwrap() > 0);
//! # Ok(())
//! # }
//! ```

use crate::error::{IpcError, KernelError};
use crate::kernel::Kernel;
use crate::shm::DataType;
use crate::task::{Priority, ReleasePolicy, TaskBody, TaskConfig, TaskId};
use crate::time::SimDuration;

/// Creates a real-time task in the dormant state (`rt_task_init_schmod`).
///
/// The task is aperiodic until [`rt_task_make_periodic`] is called.
///
/// # Errors
///
/// Propagates [`KernelError`] for bad names, duplicate tasks or bad CPUs.
pub fn rt_task_init(
    kernel: &mut Kernel,
    name: &str,
    priority: Priority,
    cpu: u32,
    body: Box<dyn TaskBody>,
) -> Result<TaskId, KernelError> {
    let cfg = TaskConfig::aperiodic(name, priority)?.on_cpu(cpu);
    kernel.create_task(cfg, body)
}

/// Makes a dormant task periodic and starts it (`rt_task_make_periodic`).
///
/// # Errors
///
/// [`KernelError::NoSuchTask`] / [`KernelError::InvalidState`] if the task
/// is not dormant.
pub fn rt_task_make_periodic(
    kernel: &mut Kernel,
    task: TaskId,
    period: SimDuration,
) -> Result<(), KernelError> {
    kernel.set_release_policy(task, ReleasePolicy::Periodic { period })?;
    kernel.start_task(task)
}

/// Starts an aperiodic task so it can be woken with [`rt_task_resume`]-style
/// triggers.
///
/// # Errors
///
/// Propagates [`KernelError`].
pub fn rt_task_start(kernel: &mut Kernel, task: TaskId) -> Result<(), KernelError> {
    kernel.start_task(task)
}

/// Suspends a task (`rt_task_suspend`).
///
/// # Errors
///
/// Propagates [`KernelError`].
pub fn rt_task_suspend(kernel: &mut Kernel, task: TaskId) -> Result<(), KernelError> {
    kernel.suspend_task(task)
}

/// Resumes a suspended task (`rt_task_resume`).
///
/// # Errors
///
/// Propagates [`KernelError`].
pub fn rt_task_resume(kernel: &mut Kernel, task: TaskId) -> Result<(), KernelError> {
    kernel.resume_task(task)
}

/// Deletes a task (`rt_task_delete`).
///
/// # Errors
///
/// Propagates [`KernelError`].
pub fn rt_task_delete(kernel: &mut Kernel, task: TaskId) -> Result<(), KernelError> {
    kernel.delete_task(task)
}

/// Allocates or attaches a named shared-memory segment (`rt_shm_alloc`).
///
/// # Errors
///
/// Propagates [`IpcError`].
pub fn rt_shm_alloc(
    kernel: &mut Kernel,
    name: &str,
    data_type: DataType,
    elements: usize,
) -> Result<(), IpcError> {
    kernel.shm_mut().alloc(name, data_type, elements)
}

/// Detaches from a named shared-memory segment (`rt_shm_free`).
///
/// # Errors
///
/// Propagates [`IpcError`].
pub fn rt_shm_free(kernel: &mut Kernel, name: &str) -> Result<(), IpcError> {
    kernel.shm_mut().free(name)
}

/// Creates a mailbox (`rt_mbx_init`).
///
/// # Errors
///
/// Propagates [`IpcError`].
pub fn rt_mbx_init(kernel: &mut Kernel, name: &str, capacity: usize) -> Result<(), IpcError> {
    kernel.mailboxes_mut().create(name, capacity)
}

/// Deletes a mailbox (`rt_mbx_delete`).
///
/// # Errors
///
/// Propagates [`IpcError`].
pub fn rt_mbx_delete(kernel: &mut Kernel, name: &str) -> Result<(), IpcError> {
    kernel.mailboxes_mut().delete(name)
}

/// Non-blocking send from the non-RT side (`rt_mbx_send_if`).
///
/// Returns `Ok(true)` if queued, `Ok(false)` if the mailbox was full.
///
/// # Errors
///
/// Propagates [`IpcError`].
pub fn rt_mbx_send_if(kernel: &mut Kernel, name: &str, msg: &[u8]) -> Result<bool, IpcError> {
    kernel.mailboxes_mut().send(name, msg)
}

/// Non-blocking receive from the non-RT side (`rt_mbx_receive_if`).
///
/// # Errors
///
/// Propagates [`IpcError`].
pub fn rt_mbx_receive_if(kernel: &mut Kernel, name: &str) -> Result<Option<Vec<u8>>, IpcError> {
    kernel.mailboxes_mut().recv(name)
}

/// Creates a FIFO (`rtf_create`).
///
/// # Errors
///
/// Propagates [`IpcError`].
pub fn rtf_create(kernel: &mut Kernel, name: &str, capacity: usize) -> Result<(), IpcError> {
    kernel.fifos_mut().create(name, capacity)
}

/// Destroys a FIFO (`rtf_destroy`).
///
/// # Errors
///
/// Propagates [`IpcError`].
pub fn rtf_destroy(kernel: &mut Kernel, name: &str) -> Result<(), IpcError> {
    kernel.fifos_mut().destroy(name)
}

/// Non-blocking FIFO append from the non-RT side (`rtf_put`).
///
/// # Errors
///
/// Propagates [`IpcError`].
pub fn rtf_put(kernel: &mut Kernel, name: &str, data: &[u8]) -> Result<usize, IpcError> {
    kernel.fifos_mut().put(name, data)
}

/// Non-blocking FIFO drain from the non-RT side (`rtf_get`).
///
/// # Errors
///
/// Propagates [`IpcError`].
pub fn rtf_get(kernel: &mut Kernel, name: &str, max: usize) -> Result<Vec<u8>, IpcError> {
    kernel.fifos_mut().get(name, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::latency::TimerJitterModel;
    use crate::task::{IdleBody, TaskState};

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig::new(31).with_timer(TimerJitterModel::ideal()))
    }

    #[test]
    fn init_then_make_periodic_runs() {
        let mut k = kernel();
        let t = rt_task_init(&mut k, "calc", Priority(2), 0, Box::new(IdleBody)).unwrap();
        assert_eq!(k.task_state(t), Some(TaskState::Dormant));
        rt_task_make_periodic(&mut k, t, SimDuration::from_hz(1000)).unwrap();
        k.run_for(SimDuration::from_millis(5) + SimDuration::from_micros(100));
        assert_eq!(k.task_cycles(t), Some(5));
    }

    #[test]
    fn make_periodic_requires_dormant() {
        let mut k = kernel();
        let t = rt_task_init(&mut k, "calc", Priority(2), 0, Box::new(IdleBody)).unwrap();
        rt_task_make_periodic(&mut k, t, SimDuration::from_hz(100)).unwrap();
        assert!(matches!(
            rt_task_make_periodic(&mut k, t, SimDuration::from_hz(100)),
            Err(KernelError::InvalidState { .. })
        ));
    }

    #[test]
    fn suspend_resume_delete_facade() {
        let mut k = kernel();
        let t = rt_task_init(&mut k, "calc", Priority(2), 0, Box::new(IdleBody)).unwrap();
        rt_task_make_periodic(&mut k, t, SimDuration::from_hz(1000)).unwrap();
        k.run_for(SimDuration::from_millis(2));
        rt_task_suspend(&mut k, t).unwrap();
        assert_eq!(k.task_state(t), Some(TaskState::Suspended));
        rt_task_resume(&mut k, t).unwrap();
        rt_task_delete(&mut k, t).unwrap();
        assert_eq!(k.task_state(t), Some(TaskState::Deleted));
    }

    #[test]
    fn ipc_facade_roundtrip() {
        let mut k = kernel();
        rt_shm_alloc(&mut k, "seg", DataType::Byte, 4).unwrap();
        rt_mbx_init(&mut k, "mbx", 2).unwrap();
        assert!(rt_mbx_send_if(&mut k, "mbx", b"hi").unwrap());
        assert_eq!(rt_mbx_receive_if(&mut k, "mbx").unwrap().unwrap(), b"hi");
        rt_mbx_delete(&mut k, "mbx").unwrap();
        rt_shm_free(&mut k, "seg").unwrap();
    }

    #[test]
    fn fifo_facade_roundtrip() {
        let mut k = kernel();
        rtf_create(&mut k, "fifo", 16).unwrap();
        assert_eq!(rtf_put(&mut k, "fifo", b"stream").unwrap(), 6);
        assert_eq!(rtf_get(&mut k, "fifo", 4).unwrap(), b"stre");
        assert_eq!(rtf_get(&mut k, "fifo", 4).unwrap(), b"am");
        rtf_destroy(&mut k, "fifo").unwrap();
    }
}
