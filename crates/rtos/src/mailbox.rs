//! Bounded message mailboxes (the simulated `RTAI.Mailbox` interface).
//!
//! Mailboxes carry discrete messages between tasks and — crucially for the
//! paper's hybrid component model — between the non-real-time management
//! part and the real-time task. All operations are **non-blocking**: a full
//! mailbox rejects the send, an empty one returns `None`. That is the §3.2
//! asynchrony discipline: the RT side must never wait on management traffic.

use crate::error::IpcError;
use crate::task::ObjName;
use std::collections::{HashMap, VecDeque};

/// One bounded mailbox.
#[derive(Debug, Clone)]
pub struct Mailbox {
    name: ObjName,
    capacity: usize,
    queue: VecDeque<Vec<u8>>,
    sent: u64,
    received: u64,
    rejected: u64,
}

impl Mailbox {
    fn new(name: ObjName, capacity: usize) -> Self {
        Mailbox {
            name,
            capacity,
            queue: VecDeque::new(),
            sent: 0,
            received: 0,
            rejected: 0,
        }
    }

    /// The mailbox name.
    pub fn name(&self) -> &ObjName {
        &self.name
    }

    /// Maximum number of queued messages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Messages accepted so far.
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Messages delivered so far.
    pub fn received_count(&self) -> u64 {
        self.received
    }

    /// Sends rejected because the mailbox was full.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }
}

/// Registry of all mailboxes inside a kernel.
#[derive(Debug, Default)]
pub struct MailboxRegistry {
    boxes: HashMap<ObjName, Mailbox>,
}

impl MailboxRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a mailbox with the given capacity.
    ///
    /// # Errors
    ///
    /// [`IpcError::Incompatible`] if a mailbox with the same name but a
    /// different capacity exists; [`IpcError::ZeroSize`] for capacity 0.
    pub fn create(&mut self, name: &str, capacity: usize) -> Result<(), IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        if capacity == 0 {
            return Err(IpcError::ZeroSize(name));
        }
        match self.boxes.get(&name) {
            Some(mb) if mb.capacity != capacity => Err(IpcError::Incompatible {
                name,
                expected: format!("capacity {}", mb.capacity),
                found: format!("capacity {capacity}"),
            }),
            Some(_) => Ok(()), // idempotent attach
            None => {
                self.boxes
                    .insert(name.clone(), Mailbox::new(name, capacity));
                Ok(())
            }
        }
    }

    /// Deletes a mailbox, dropping any queued messages.
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if no such mailbox exists.
    pub fn delete(&mut self, name: &str) -> Result<(), IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        self.boxes
            .remove(&name)
            .map(|_| ())
            .ok_or(IpcError::NotFound(name))
    }

    /// Non-blocking send. Returns `Ok(true)` if the message was queued,
    /// `Ok(false)` if the mailbox was full (message dropped, counted).
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if no such mailbox exists.
    pub fn send(&mut self, name: &str, msg: &[u8]) -> Result<bool, IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        let mb = self.boxes.get_mut(&name).ok_or(IpcError::NotFound(name))?;
        if mb.queue.len() >= mb.capacity {
            mb.rejected += 1;
            return Ok(false);
        }
        mb.queue.push_back(msg.to_vec());
        mb.sent += 1;
        Ok(true)
    }

    /// Non-blocking receive. Returns `None` when the mailbox is empty.
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if no such mailbox exists.
    pub fn recv(&mut self, name: &str) -> Result<Option<Vec<u8>>, IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        let mb = self.boxes.get_mut(&name).ok_or(IpcError::NotFound(name))?;
        let msg = mb.queue.pop_front();
        if msg.is_some() {
            mb.received += 1;
        }
        Ok(msg)
    }

    /// Reverses one [`MailboxRegistry::send`] outcome: pops the newest
    /// queued message when the send was accepted, or un-counts the
    /// rejection otherwise. Only called by the kernel when rolling back a
    /// faulted cycle; the newest message is necessarily the journaled one
    /// because body execution is atomic at the dispatch instant.
    pub(crate) fn undo_send(&mut self, name: &ObjName, accepted: bool) {
        if let Some(mb) = self.boxes.get_mut(name) {
            if accepted {
                if mb.queue.pop_back().is_some() {
                    mb.sent = mb.sent.saturating_sub(1);
                }
            } else {
                mb.rejected = mb.rejected.saturating_sub(1);
            }
        }
    }

    /// Looks up a mailbox by name.
    pub fn get(&self, name: &str) -> Option<&Mailbox> {
        let name = ObjName::new(name).ok()?;
        self.boxes.get(&name)
    }

    /// Number of live mailboxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True when no mailboxes exist.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Iterates over live mailboxes.
    pub fn iter(&self) -> impl Iterator<Item = &Mailbox> {
        self.boxes.values()
    }
}

/// A lock-free multi-producer single-consumer channel (Treiber stack with
/// drain-all consumption).
///
/// The parallel executor uses one of these per cross-CPU mailbox: every
/// worker thread pushes message envelopes as its tasks send, and at the
/// epoch barrier the mailbox's *home* worker drains the channel in one
/// atomic swap. Because the consumer re-sorts the drained envelopes by a
/// deterministic key (virtual send time, producer rank, per-producer
/// sequence number), the LIFO order a Treiber stack yields — and the
/// arbitrary cross-producer interleaving — never leaks into simulation
/// results.
///
/// This is the one primitive in the crate that needs `unsafe`: nodes are
/// heap-allocated and linked through raw pointers. The invariants are
/// small and local — a node is owned by exactly one party at a time
/// (producer before the CAS publishes it, the draining consumer after the
/// swap unlinks the whole list), and `drain` turns every node back into a
/// `Box` exactly once.
#[derive(Debug)]
pub struct MpscChannel<T> {
    head: std::sync::atomic::AtomicPtr<MpscNode<T>>,
}

#[derive(Debug)]
struct MpscNode<T> {
    value: T,
    next: *mut MpscNode<T>,
}

// SAFETY: the channel only moves owned `T` values across threads (push on
// one thread, drain on another); the raw pointers never alias once a node
// is published, so `T: Send` is the only requirement.
unsafe impl<T: Send> Send for MpscChannel<T> {}
unsafe impl<T: Send> Sync for MpscChannel<T> {}

impl<T> Default for MpscChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MpscChannel<T> {
    /// Creates an empty channel.
    pub fn new() -> Self {
        MpscChannel {
            head: std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Pushes a value; callable from any thread, lock-free.
    pub fn push(&self, value: T) {
        use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
        let node = Box::into_raw(Box::new(MpscNode {
            value,
            next: std::ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Acquire);
            // SAFETY: `node` came from Box::into_raw above and is not yet
            // published, so we have exclusive access to it.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange_weak(head, node, Release, Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Unlinks everything in one swap and returns the values in push order
    /// (oldest first). Intended for the single consumer, but safe from any
    /// thread — the swap makes drains disjoint.
    pub fn drain(&self) -> Vec<T> {
        use std::sync::atomic::Ordering::AcqRel;
        let mut node = self.head.swap(std::ptr::null_mut(), AcqRel);
        let mut out = Vec::new();
        while !node.is_null() {
            // SAFETY: the swap above transferred ownership of the whole
            // list to this call; each node is boxed back exactly once.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            out.push(boxed.value);
        }
        out.reverse();
        out
    }

    /// True when nothing is queued at this instant.
    pub fn is_empty(&self) -> bool {
        self.head
            .load(std::sync::atomic::Ordering::Acquire)
            .is_null()
    }
}

impl<T> Drop for MpscChannel<T> {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo_order() {
        let mut reg = MailboxRegistry::new();
        reg.create("cmd", 4).unwrap();
        assert!(reg.send("cmd", b"one").unwrap());
        assert!(reg.send("cmd", b"two").unwrap());
        assert_eq!(reg.recv("cmd").unwrap().unwrap(), b"one");
        assert_eq!(reg.recv("cmd").unwrap().unwrap(), b"two");
        assert_eq!(reg.recv("cmd").unwrap(), None);
    }

    #[test]
    fn full_mailbox_rejects_without_blocking() {
        let mut reg = MailboxRegistry::new();
        reg.create("cmd", 2).unwrap();
        assert!(reg.send("cmd", b"a").unwrap());
        assert!(reg.send("cmd", b"b").unwrap());
        assert!(!reg.send("cmd", b"c").unwrap());
        let mb = reg.get("cmd").unwrap();
        assert_eq!(mb.sent_count(), 2);
        assert_eq!(mb.rejected_count(), 1);
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn create_is_idempotent_for_same_capacity() {
        let mut reg = MailboxRegistry::new();
        reg.create("cmd", 4).unwrap();
        reg.create("cmd", 4).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(matches!(
            reg.create("cmd", 8),
            Err(IpcError::Incompatible { .. })
        ));
    }

    #[test]
    fn zero_capacity_is_refused() {
        let mut reg = MailboxRegistry::new();
        assert!(matches!(reg.create("cmd", 0), Err(IpcError::ZeroSize(_))));
    }

    #[test]
    fn delete_drops_messages() {
        let mut reg = MailboxRegistry::new();
        reg.create("cmd", 4).unwrap();
        reg.send("cmd", b"x").unwrap();
        reg.delete("cmd").unwrap();
        assert!(reg.is_empty());
        assert!(matches!(reg.recv("cmd"), Err(IpcError::NotFound(_))));
        assert!(matches!(reg.delete("cmd"), Err(IpcError::NotFound(_))));
    }

    #[test]
    fn bad_names_are_rejected() {
        let mut reg = MailboxRegistry::new();
        assert!(matches!(
            reg.create("way-too-long", 1),
            Err(IpcError::BadName(_))
        ));
    }

    #[test]
    fn mpsc_drain_preserves_push_order() {
        let chan = MpscChannel::new();
        assert!(chan.is_empty());
        for i in 0..10 {
            chan.push(i);
        }
        assert!(!chan.is_empty());
        assert_eq!(chan.drain(), (0..10).collect::<Vec<_>>());
        assert!(chan.is_empty());
        assert!(chan.drain().is_empty());
    }

    #[test]
    fn mpsc_concurrent_producers_lose_nothing() {
        use std::sync::Arc;
        const PER_PRODUCER: u64 = 500;
        let chan = Arc::new(MpscChannel::new());
        std::thread::scope(|scope| {
            for producer in 0..4u64 {
                let chan = Arc::clone(&chan);
                scope.spawn(move || {
                    for seq in 0..PER_PRODUCER {
                        chan.push((producer, seq));
                    }
                });
            }
        });
        let mut drained = chan.drain();
        assert_eq!(drained.len(), 4 * PER_PRODUCER as usize);
        // Per-producer order survives the interleaving...
        for producer in 0..4u64 {
            let seqs: Vec<u64> = drained
                .iter()
                .filter(|(p, _)| *p == producer)
                .map(|(_, s)| *s)
                .collect();
            assert_eq!(seqs, (0..PER_PRODUCER).collect::<Vec<_>>());
        }
        // ...and sorting by (producer, seq) makes the batch deterministic,
        // which is exactly what the executor's barrier exchange does.
        drained.sort_unstable();
        assert_eq!(drained[0], (0, 0));
        assert_eq!(drained[drained.len() - 1], (3, PER_PRODUCER - 1));
    }

    #[test]
    fn mpsc_drop_releases_queued_nodes() {
        // Miri-style sanity: dropping a non-empty channel must not leak.
        let chan = MpscChannel::new();
        for i in 0..32 {
            chan.push(vec![i; 8]);
        }
        drop(chan);
    }
}
