//! Executor abstraction: run one simulated task set either on the classic
//! single-threaded lockstep loop ([`DeterministicExecutor`]) or on real OS
//! worker threads, one per group of simulated CPUs ([`ParallelExecutor`]).
//!
//! # The model
//!
//! A [`Workload`] is a self-contained, thread-shippable description of a
//! machine: CPU count, seed, timer model, IPC port declarations and a list
//! of [`TaskSpec`]s whose bodies are built from `Send + Sync` *factories*
//! (the bodies themselves stay `!Send`; each executor constructs them on
//! the thread that will run them). An [`Executor`] turns a workload plus a
//! virtual-time horizon into an [`ExecOutcome`]: final task/port state,
//! aggregate scheduler counters and a merged, deterministically ordered
//! event trace.
//!
//! # Parallel execution
//!
//! [`ParallelExecutor`] shards the machine: CPUs are assigned round-robin
//! to `workers` OS threads, and each worker owns a private [`Kernel`]
//! holding only the tasks pinned to its CPUs (but configured with the full
//! CPU count, so global CPU ids appear unchanged in events). Workers run
//! in lockstep *epochs*: each advances its kernel to the epoch boundary
//! independently, then all meet at a [`std::sync::Barrier`] to exchange
//! cross-CPU traffic through lock-free carriers:
//!
//! * SHM segments — published through [`SeqlockCell`]s; competing writers
//!   converge by highest `(epoch, worker rank)` version, never by OS
//!   scheduling order.
//! * Mailboxes — envelopes pushed into per-mailbox [`MpscChannel`]s and
//!   drained by the declared *home* worker, which re-sorts them by
//!   `(producer rank, sequence)` before posting, so delivery order is
//!   deterministic.
//! * FIFO byte streams — per-producer [`SpscRing`]s drained in worker-rank
//!   order at the home worker.
//!
//! Per-thread trace buffers are tagged `(cpu, seq)` and merged into one
//! deterministic total order at each barrier ([`merge_tagged`]).
//!
//! # The equivalence guarantee
//!
//! On a **quiescent** workload — ideal timer model, deterministic task
//! bodies (fixed [`TaskCtx::compute`](crate::kernel::TaskCtx::compute)
//! costs, no `compute_about`), and IPC that stays within one CPU — the
//! deterministic executor's event stream is a *linearization* of the
//! parallel executor's merged stream: projected onto any single CPU, the
//! two streams are identical event for event
//! ([`linearization_equivalent`]). The property test
//! `crates/rtos/tests/exec_equivalence.rs` enforces this across randomly
//! generated workloads; with one worker the parallel executor degenerates
//! to the serial schedule and the *full* streams match. Cross-CPU IPC is
//! still deterministic in parallel mode (same inputs → same merged trace),
//! but delivery lands at epoch barriers rather than mid-epoch, so the two
//! modes are then deliberately allowed to differ.

use crate::error::KernelError;
use crate::fifo::SpscRing;
use crate::kernel::{Kernel, KernelConfig, SchedCounters};
use crate::latency::{LoadMode, TimerJitterModel};
use crate::mailbox::MpscChannel;
use crate::shm::{DataType, SeqlockCell, ShmRegistry};
use crate::task::{ObjName, TaskBody, TaskConfig, TaskId, TaskState};
use crate::time::{SimDuration, SimTime};
use crate::trace::{merge_tagged, KernelEvent, TaggedEvent, Timestamped, TraceSubscriber};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::{Arc, Barrier, Mutex};

/// Builds a task body on whichever thread will run it. Factories are the
/// `Send + Sync` half of a task; the produced [`TaskBody`] never crosses a
/// thread boundary.
pub type BodyFactory = Arc<dyn Fn() -> Box<dyn TaskBody> + Send + Sync>;

/// Wraps a plain closure-producing function as a [`BodyFactory`].
pub fn body_factory(f: impl Fn() -> Box<dyn TaskBody> + Send + Sync + 'static) -> BodyFactory {
    Arc::new(f)
}

/// One task in a [`Workload`]: its kernel configuration, the factory for
/// its body, and executor-level behaviour (autostart, mailbox wakeup
/// binding, scripted aperiodic triggers).
#[derive(Clone)]
pub struct TaskSpec {
    /// Kernel-level task configuration (name, CPU, priority, release...).
    pub config: TaskConfig,
    /// Builds the body on the executing thread.
    pub factory: BodyFactory,
    /// Start the task at time zero (before the first event).
    pub autostart: bool,
    /// Bind the task to wake on messages arriving at this mailbox.
    /// The mailbox's declared home CPU must equal the task's CPU.
    pub wake_on: Option<String>,
    /// Scripted external triggers (aperiodic releases) at these instants.
    pub triggers: Vec<SimTime>,
}

#[derive(Clone)]
struct ShmDecl {
    name: String,
    data_type: DataType,
    elements: usize,
}

#[derive(Clone)]
struct MailboxDecl {
    name: String,
    capacity: usize,
    home_cpu: u32,
}

#[derive(Clone)]
struct FifoDecl {
    name: String,
    capacity: usize,
    home_cpu: u32,
}

/// A self-contained, executor-independent description of a simulated
/// machine and its task set. `Send + Sync`, so the parallel executor can
/// hand it to worker threads.
#[derive(Clone)]
pub struct Workload {
    cpus: u32,
    seed: u64,
    timer: TimerJitterModel,
    load_mode: LoadMode,
    record_trace: bool,
    shms: Vec<ShmDecl>,
    mailboxes: Vec<MailboxDecl>,
    fifos: Vec<FifoDecl>,
    tasks: Vec<TaskSpec>,
}

impl Workload {
    /// A workload for a `cpus`-CPU machine with the ideal (zero-error)
    /// timer model — the quiescent baseline the equivalence guarantee is
    /// stated for. Install a calibrated model with [`Workload::timer`].
    pub fn new(cpus: u32, seed: u64) -> Self {
        Workload {
            cpus,
            seed,
            timer: TimerJitterModel::ideal(),
            load_mode: LoadMode::Light,
            record_trace: true,
            shms: Vec::new(),
            mailboxes: Vec::new(),
            fifos: Vec::new(),
            tasks: Vec::new(),
        }
    }

    /// Sets the hardware-timer error model.
    pub fn timer(mut self, timer: TimerJitterModel) -> Self {
        self.timer = timer;
        self
    }

    /// Sets the background-load regime.
    pub fn load_mode(mut self, mode: LoadMode) -> Self {
        self.load_mode = mode;
        self
    }

    /// Enables or disables event-trace recording (on by default). Disable
    /// for pure throughput runs; tracing is observer-effect-free either
    /// way, so this never changes scheduling.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Declares a shared-memory segment.
    pub fn shm(mut self, name: &str, data_type: DataType, elements: usize) -> Self {
        self.shms.push(ShmDecl {
            name: name.to_string(),
            data_type,
            elements,
        });
        self
    }

    /// Declares a mailbox whose consumers live on `home_cpu` (the CPU
    /// whose worker applies cross-CPU deliveries at barriers).
    pub fn mailbox(mut self, name: &str, capacity: usize, home_cpu: u32) -> Self {
        self.mailboxes.push(MailboxDecl {
            name: name.to_string(),
            capacity,
            home_cpu,
        });
        self
    }

    /// Declares a FIFO byte stream consumed on `home_cpu`.
    pub fn fifo(mut self, name: &str, capacity: usize, home_cpu: u32) -> Self {
        self.fifos.push(FifoDecl {
            name: name.to_string(),
            capacity,
            home_cpu,
        });
        self
    }

    /// Adds an autostarted task with no wakeup binding or triggers.
    pub fn task(
        self,
        config: TaskConfig,
        factory: impl Fn() -> Box<dyn TaskBody> + Send + Sync + 'static,
    ) -> Self {
        self.task_spec(TaskSpec {
            config,
            factory: Arc::new(factory),
            autostart: true,
            wake_on: None,
            triggers: Vec::new(),
        })
    }

    /// Adds a fully specified task.
    pub fn task_spec(mut self, spec: TaskSpec) -> Self {
        self.tasks.push(spec);
        self
    }

    /// Number of simulated CPUs.
    pub fn cpus(&self) -> u32 {
        self.cpus
    }

    /// Number of declared tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Checks executor-independent invariants: valid names, CPUs in
    /// range, unique task names, wakeup bindings pointing at declared
    /// mailboxes homed on the task's own CPU.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found. Executors
    /// validate before spawning threads, so a bad workload fails fast on
    /// the calling thread instead of wedging a barrier.
    pub fn validate(&self) -> Result<(), ExecError> {
        if self.cpus == 0 {
            return Err(ExecError::new("workload needs at least one CPU"));
        }
        let mut probe = ShmRegistry::new();
        for decl in &self.shms {
            probe
                .alloc(&decl.name, decl.data_type, decl.elements)
                .map_err(|e| ExecError::new(format!("shm '{}': {e}", decl.name)))?;
        }
        for decl in &self.mailboxes {
            ObjName::new(&decl.name)
                .map_err(|e| ExecError::new(format!("mailbox '{}': {e}", decl.name)))?;
            if decl.home_cpu >= self.cpus {
                return Err(ExecError::new(format!(
                    "mailbox '{}' homed on CPU {} of {}",
                    decl.name, decl.home_cpu, self.cpus
                )));
            }
        }
        for decl in &self.fifos {
            ObjName::new(&decl.name)
                .map_err(|e| ExecError::new(format!("fifo '{}': {e}", decl.name)))?;
            if decl.home_cpu >= self.cpus {
                return Err(ExecError::new(format!(
                    "fifo '{}' homed on CPU {} of {}",
                    decl.name, decl.home_cpu, self.cpus
                )));
            }
        }
        let mut names = std::collections::HashSet::new();
        for spec in &self.tasks {
            let name = spec.config.name.as_str();
            if !names.insert(name.to_string()) {
                return Err(ExecError::new(format!("duplicate task name '{name}'")));
            }
            if spec.config.cpu >= self.cpus {
                return Err(ExecError::new(format!(
                    "task '{name}' pinned to CPU {} of {}",
                    spec.config.cpu, self.cpus
                )));
            }
            if let Some(mbx) = &spec.wake_on {
                let Some(decl) = self.mailboxes.iter().find(|d| &d.name == mbx) else {
                    return Err(ExecError::new(format!(
                        "task '{name}' wakes on undeclared mailbox '{mbx}'"
                    )));
                };
                if decl.home_cpu != spec.config.cpu {
                    return Err(ExecError::new(format!(
                        "task '{name}' (CPU {}) wakes on mailbox '{mbx}' homed on CPU {}",
                        spec.config.cpu, decl.home_cpu
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Final state of one task after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskOutcome {
    /// Task name.
    pub name: String,
    /// CPU the task was pinned to.
    pub cpu: u32,
    /// Final lifecycle state.
    pub state: TaskState,
    /// Completed cycles.
    pub cycles: u64,
    /// Discarded releases.
    pub overruns: u64,
    /// Contained body panics.
    pub faults: u64,
    /// Late cycles (latency-tracked tasks).
    pub deadline_misses: u64,
}

/// Final state of one IPC port after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortOutcome {
    /// Port name.
    pub name: String,
    /// SHM: final image. Mailbox/FIFO: undelivered payload bytes
    /// (mailboxes concatenate queued messages).
    pub bytes: Vec<u8>,
}

/// Everything an executor run produces.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Executor that produced this outcome (`"deterministic"`/`"parallel"`).
    pub mode: &'static str,
    /// Worker threads used (1 for the deterministic executor).
    pub workers: usize,
    /// Simulated CPU count (bound for per-CPU trace projections).
    pub cpus: u32,
    /// Scheduler counters summed across all CPUs.
    pub counters: SchedCounters,
    /// Per-task final state, sorted by task name.
    pub tasks: Vec<TaskOutcome>,
    /// Final SHM images in declaration order.
    pub shm: Vec<PortOutcome>,
    /// Undelivered mailbox payloads in declaration order.
    pub mailboxes: Vec<PortOutcome>,
    /// Undelivered FIFO bytes in declaration order.
    pub fifos: Vec<PortOutcome>,
    /// The merged event trace in deterministic total order (empty when the
    /// workload disabled trace recording).
    pub trace: Vec<TaggedEvent<KernelEvent>>,
    /// Total completed cycles across all tasks.
    pub total_cycles: u64,
}

impl ExecOutcome {
    /// The trace projected onto one CPU: `(time, event)` pairs in stream
    /// order. `u32::MAX` selects CPU-less global events.
    pub fn events_on_cpu(&self, cpu: u32) -> Vec<&Timestamped<KernelEvent>> {
        self.trace
            .iter()
            .filter(|e| e.cpu == cpu)
            .map(|e| &e.entry)
            .collect()
    }

    /// Final state of a task by name.
    pub fn task(&self, name: &str) -> Option<&TaskOutcome> {
        self.tasks.iter().find(|t| t.name == name)
    }
}

/// An executor failure: workload validation or kernel setup went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(String);

impl ExecError {
    fn new(msg: impl Into<String>) -> Self {
        ExecError(msg.into())
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "executor error: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

impl From<KernelError> for ExecError {
    fn from(e: KernelError) -> Self {
        ExecError::new(e.to_string())
    }
}

/// Runs a [`Workload`] for a span of virtual time.
pub trait Executor {
    /// Stable mode name (`"deterministic"` / `"parallel"`).
    fn name(&self) -> &'static str;

    /// Runs the workload from time zero to `horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the workload fails validation or kernel
    /// setup.
    fn run(&self, workload: &Workload, horizon: SimDuration) -> Result<ExecOutcome, ExecError>;
}

/// Selects an executor from the `RTOS_EXECUTOR` environment variable:
/// `parallel` (optionally `parallel:<workers>`) for [`ParallelExecutor`],
/// anything else — including unset — for [`DeterministicExecutor`].
pub fn executor_from_env() -> Box<dyn Executor> {
    match std::env::var("RTOS_EXECUTOR") {
        Ok(value) => {
            let value = value.trim().to_ascii_lowercase();
            if let Some(rest) = value.strip_prefix("parallel") {
                let workers = rest
                    .strip_prefix(':')
                    .and_then(|n| n.parse::<usize>().ok())
                    .unwrap_or_else(|| {
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1)
                    });
                Box::new(ParallelExecutor::new(workers.max(1)))
            } else {
                Box::new(DeterministicExecutor)
            }
        }
        Err(_) => Box::new(DeterministicExecutor),
    }
}

// ---------------------------------------------------------------------------
// Shared machinery
// ---------------------------------------------------------------------------

/// Trace tap that copies every event out of the kernel.
struct Collector(Rc<RefCell<Vec<Timestamped<KernelEvent>>>>);

impl TraceSubscriber<KernelEvent> for Collector {
    fn on_event(&mut self, time: SimTime, event: &KernelEvent) {
        self.0.borrow_mut().push(Timestamped {
            time,
            event: event.clone(),
        });
    }
}

/// The CPU an event is attributed to in merged traces (`u32::MAX` for
/// machine-global events).
fn event_cpu(event: &KernelEvent, cpu_of: &HashMap<ObjName, u32>) -> u32 {
    let by_task = |task: &ObjName| cpu_of.get(task).copied().unwrap_or(u32::MAX);
    match event {
        KernelEvent::TaskCreated { cpu, .. }
        | KernelEvent::Dispatch { cpu, .. }
        | KernelEvent::Preempt { cpu, .. }
        | KernelEvent::Timeslice { cpu, .. } => *cpu,
        KernelEvent::TaskStarted { task }
        | KernelEvent::TaskSuspended { task, .. }
        | KernelEvent::TaskResumed { task }
        | KernelEvent::TaskDeleted { task }
        | KernelEvent::Release { task, .. }
        | KernelEvent::Overrun { task }
        | KernelEvent::DeadlineMiss { task, .. }
        | KernelEvent::BudgetClamp { task, .. }
        | KernelEvent::TaskFault { task, .. }
        | KernelEvent::MailboxWake { task, .. }
        | KernelEvent::UserLog { task, .. } => by_task(task),
        KernelEvent::LoadModeChanged { .. } => u32::MAX,
    }
}

/// A kernel plus the bookkeeping needed to drive it: which workload tasks
/// it hosts (by declaration index) and the scripted trigger tape.
struct Instance {
    kernel: Kernel,
    /// Task id per workload declaration index (`None` = hosted elsewhere).
    ids: Vec<Option<TaskId>>,
    /// `(time, declaration index)` sorted ascending; the index keeps
    /// same-instant triggers in declaration order on every executor.
    triggers: Vec<(SimTime, usize)>,
    cursor: usize,
    events: Rc<RefCell<Vec<Timestamped<KernelEvent>>>>,
    /// Task name → CPU for event attribution.
    cpu_of: HashMap<ObjName, u32>,
    /// Per-stream sequence counter for trace tagging.
    next_seq: u64,
}

impl Instance {
    /// Builds a kernel hosting the workload tasks selected by `hosts`.
    /// All port declarations exist in every instance (they are pure state,
    /// cheap to replicate); only tasks are sharded.
    fn build(w: &Workload, hosts: impl Fn(&TaskSpec) -> bool) -> Result<Instance, ExecError> {
        let cfg = KernelConfig::new(w.seed)
            .with_cpus(w.cpus)
            .with_timer(w.timer.clone())
            .with_load_mode(w.load_mode);
        let mut kernel = Kernel::new(cfg);
        let events = Rc::new(RefCell::new(Vec::new()));
        if w.record_trace {
            kernel.add_trace_subscriber(Box::new(Collector(Rc::clone(&events))));
        }
        for decl in &w.shms {
            kernel
                .shm_mut()
                .alloc(&decl.name, decl.data_type, decl.elements)
                .map_err(|e| ExecError::new(e.to_string()))?;
        }
        for decl in &w.mailboxes {
            kernel
                .mailboxes_mut()
                .create(&decl.name, decl.capacity)
                .map_err(|e| ExecError::new(e.to_string()))?;
        }
        for decl in &w.fifos {
            kernel
                .fifos_mut()
                .create(&decl.name, decl.capacity)
                .map_err(|e| ExecError::new(e.to_string()))?;
        }
        let mut ids = vec![None; w.tasks.len()];
        let mut cpu_of = HashMap::new();
        for (idx, spec) in w.tasks.iter().enumerate() {
            cpu_of.insert(spec.config.name.clone(), spec.config.cpu);
            if !hosts(spec) {
                continue;
            }
            let id = kernel.create_task(spec.config.clone(), (spec.factory)())?;
            if let Some(mbx) = &spec.wake_on {
                kernel.bind_mailbox_wakeup(mbx, id)?;
            }
            ids[idx] = Some(id);
        }
        for (idx, spec) in w.tasks.iter().enumerate() {
            if spec.autostart {
                if let Some(id) = ids[idx] {
                    kernel.start_task(id)?;
                }
            }
        }
        let mut triggers: Vec<(SimTime, usize)> = w
            .tasks
            .iter()
            .enumerate()
            .flat_map(|(idx, spec)| spec.triggers.iter().map(move |t| (*t, idx)))
            .collect();
        triggers.sort();
        Ok(Instance {
            kernel,
            ids,
            triggers,
            cursor: 0,
            events,
            cpu_of,
            next_seq: 0,
        })
    }

    /// Advances to `end`, firing scripted triggers on the way. Triggers on
    /// tasks hosted elsewhere are skipped; trigger errors (task deleted,
    /// wrong state) are deliberately ignored, matching external-interrupt
    /// semantics.
    fn run_to(&mut self, end: SimTime) {
        while self.cursor < self.triggers.len() && self.triggers[self.cursor].0 <= end {
            let (at, idx) = self.triggers[self.cursor];
            self.kernel.run_until(at);
            if let Some(id) = self.ids[idx] {
                let _ = self.kernel.trigger(id);
            }
            self.cursor += 1;
        }
        self.kernel.run_until(end);
    }

    /// Drains events collected since the last call, tagged for merging.
    fn drain_tagged(&mut self) -> Vec<TaggedEvent<KernelEvent>> {
        let mut out = Vec::new();
        for entry in self.events.borrow_mut().drain(..) {
            out.push(TaggedEvent {
                cpu: event_cpu(&entry.event, &self.cpu_of),
                seq: self.next_seq,
                entry,
            });
            self.next_seq += 1;
        }
        out
    }

    /// Final state of the hosted tasks, unsorted.
    fn task_outcomes(&self, w: &Workload) -> Vec<TaskOutcome> {
        let mut out = Vec::new();
        for (idx, spec) in w.tasks.iter().enumerate() {
            let Some(id) = self.ids[idx] else { continue };
            out.push(TaskOutcome {
                name: spec.config.name.as_str().to_string(),
                cpu: spec.config.cpu,
                state: self.kernel.task_state(id).unwrap_or(TaskState::Dormant),
                cycles: self.kernel.task_cycles(id).unwrap_or(0),
                overruns: self.kernel.task_overruns(id).unwrap_or(0),
                faults: self.kernel.task_faults(id).unwrap_or(0),
                deadline_misses: self.kernel.task_deadline_misses(id).unwrap_or(0),
            });
        }
        out
    }

    fn shm_outcomes(&mut self, w: &Workload) -> Vec<PortOutcome> {
        w.shms
            .iter()
            .map(|decl| PortOutcome {
                name: decl.name.clone(),
                bytes: self.kernel.shm_mut().read(&decl.name).unwrap_or_default(),
            })
            .collect()
    }

    fn mailbox_outcome(&mut self, name: &str) -> PortOutcome {
        let mut bytes = Vec::new();
        while let Ok(Some(msg)) = self.kernel.mailboxes_mut().recv(name) {
            bytes.extend(msg);
        }
        PortOutcome {
            name: name.to_string(),
            bytes,
        }
    }

    fn fifo_outcome(&mut self, name: &str) -> PortOutcome {
        PortOutcome {
            name: name.to_string(),
            bytes: self
                .kernel
                .fifos_mut()
                .get(name, usize::MAX)
                .unwrap_or_default(),
        }
    }
}

fn finalize_tasks(mut tasks: Vec<TaskOutcome>) -> (Vec<TaskOutcome>, u64) {
    tasks.sort_by(|a, b| a.name.cmp(&b.name));
    let total = tasks.iter().map(|t| t.cycles).sum();
    (tasks, total)
}

// ---------------------------------------------------------------------------
// Deterministic executor
// ---------------------------------------------------------------------------

/// The classic mode: every simulated CPU is multiplexed through one
/// single-threaded event loop, exactly as the kernel has always run. All
/// seeded experiments, proptests and Table-1 benches use this mode; its
/// event stream defines the reference order the parallel mode is checked
/// against.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeterministicExecutor;

impl Executor for DeterministicExecutor {
    fn name(&self) -> &'static str {
        "deterministic"
    }

    fn run(&self, workload: &Workload, horizon: SimDuration) -> Result<ExecOutcome, ExecError> {
        workload.validate()?;
        let mut inst = Instance::build(workload, |_| true)?;
        inst.run_to(SimTime::ZERO + horizon);
        // Present the trace in the same canonical (time, cpu, seq) order
        // the parallel merge produces, so same-instant events on different
        // CPUs — whose serial interleaving is an implementation accident —
        // compare equal across modes.
        let trace = merge_tagged(vec![inst.drain_tagged()]);
        let counters = inst.kernel.counters();
        let (tasks, total_cycles) = finalize_tasks(inst.task_outcomes(workload));
        let shm = inst.shm_outcomes(workload);
        let mailboxes = workload
            .mailboxes
            .iter()
            .map(|d| inst.mailbox_outcome(&d.name))
            .collect();
        let fifos = workload
            .fifos
            .iter()
            .map(|d| inst.fifo_outcome(&d.name))
            .collect();
        Ok(ExecOutcome {
            mode: "deterministic",
            workers: 1,
            cpus: workload.cpus,
            counters,
            tasks,
            shm,
            mailboxes,
            fifos,
            trace,
            total_cycles,
        })
    }
}

// ---------------------------------------------------------------------------
// Parallel executor
// ---------------------------------------------------------------------------

/// Cross-worker mailbox envelope. Sorting by `(producer, seq)` restores a
/// deterministic delivery order out of the arbitrary interleaving the
/// lock-free channel permits.
struct Envelope {
    producer: u32,
    seq: u64,
    bytes: Vec<u8>,
}

/// Per-CPU worker threads in lockstep epochs. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    workers: usize,
    epoch: Option<SimDuration>,
}

impl ParallelExecutor {
    /// `workers` threads with the default 10 ms exchange epoch (cross-CPU
    /// IPC latency bound). Workers are clamped to the CPU count at run
    /// time; extra workers would own no tasks.
    pub fn new(workers: usize) -> Self {
        ParallelExecutor {
            workers: workers.max(1),
            epoch: Some(SimDuration::from_millis(10)),
        }
    }

    /// Sets the barrier epoch: cross-CPU SHM/mailbox/FIFO traffic becomes
    /// visible to other CPUs at multiples of this span.
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        assert!(!epoch.is_zero(), "epoch must be non-zero");
        self.epoch = Some(epoch);
        self
    }

    /// One epoch spanning the whole horizon — minimal synchronization, for
    /// workloads whose IPC stays within single CPUs.
    pub fn single_epoch(mut self) -> Self {
        self.epoch = None;
        self
    }

    /// The worker count this executor was built with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn epoch_ends(&self, horizon: SimDuration) -> Vec<SimTime> {
        let end = SimTime::ZERO + horizon;
        let Some(epoch) = self.epoch else {
            return vec![end];
        };
        let mut ends = Vec::new();
        let mut at = SimTime::ZERO;
        while at < end {
            at = (at + epoch).min(end);
            ends.push(at);
        }
        if ends.is_empty() {
            ends.push(end);
        }
        ends
    }
}

impl Executor for ParallelExecutor {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn run(&self, workload: &Workload, horizon: SimDuration) -> Result<ExecOutcome, ExecError> {
        workload.validate()?;
        let workers = self.workers.min(workload.cpus as usize).max(1);
        let shard_of = |cpu: u32| (cpu as usize) % workers;
        let epoch_ends = self.epoch_ends(horizon);

        // Cross-worker carriers, one set per port declaration.
        let mut probe = ShmRegistry::new();
        let shm_cells: Vec<SeqlockCell> = workload
            .shms
            .iter()
            .map(|d| {
                probe
                    .alloc(&d.name, d.data_type, d.elements)
                    .map_err(|e| ExecError::new(e.to_string()))?;
                Ok(SeqlockCell::new(
                    probe.get(&d.name).map(|s| s.byte_len()).unwrap_or(0),
                ))
            })
            .collect::<Result<_, ExecError>>()?;
        let mbx_channels: Vec<MpscChannel<Envelope>> = workload
            .mailboxes
            .iter()
            .map(|_| MpscChannel::new())
            .collect();
        // One ring per (fifo, producing worker); generously sized so an
        // epoch's worth of traffic is not truncated before the home FIFO
        // gets to apply its own bounded-capacity policy.
        let fifo_rings: Vec<Vec<SpscRing>> = workload
            .fifos
            .iter()
            .map(|d| {
                (0..workers)
                    .map(|_| SpscRing::new(d.capacity.max(4096)))
                    .collect()
            })
            .collect();

        let barrier = Barrier::new(workers);
        let epoch_chunks: Mutex<Vec<Vec<TaggedEvent<KernelEvent>>>> = Mutex::new(Vec::new());
        let merged: Mutex<Vec<TaggedEvent<KernelEvent>>> = Mutex::new(Vec::new());
        type ShardReport = (
            SchedCounters,
            Vec<TaskOutcome>,
            Vec<(usize, PortOutcome)>, // mailboxes homed here (decl idx)
            Vec<(usize, PortOutcome)>, // fifos homed here (decl idx)
            Vec<PortOutcome>,          // SHM images (worker 0 only)
        );
        let reports: Mutex<Vec<Option<ShardReport>>> =
            Mutex::new((0..workers).map(|_| None).collect());
        let setup_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for me in 0..workers {
                let barrier = &barrier;
                let epoch_chunks = &epoch_chunks;
                let merged = &merged;
                let reports = &reports;
                let setup_errors = &setup_errors;
                let shm_cells = &shm_cells;
                let mbx_channels = &mbx_channels;
                let fifo_rings = &fifo_rings;
                let epoch_ends = &epoch_ends;
                scope.spawn(move || {
                    // Validation ran on the calling thread, so setup can
                    // only fail on kernel invariants already checked;
                    // record and bail through the barriers if it somehow
                    // does, keeping the other workers deadlock-free.
                    let built = Instance::build(workload, |spec| shard_of(spec.config.cpu) == me);
                    let mut inst = match built {
                        Ok(inst) => inst,
                        Err(e) => {
                            setup_errors.lock().unwrap().push(e.to_string());
                            for _ in epoch_ends.iter() {
                                barrier.wait();
                                barrier.wait();
                            }
                            return;
                        }
                    };
                    // Per-decl publication bookkeeping.
                    let mut shm_published: Vec<u64> = vec![0; workload.shms.len()];
                    let mut shm_seen: Vec<u64> = vec![0; workload.shms.len()];
                    let mut mbx_seq: u64 = 0;

                    for (epoch_idx, end) in epoch_ends.iter().enumerate() {
                        inst.run_to(*end);

                        // --- exchange out (lock-free, pre-barrier) ---
                        for (i, decl) in workload.shms.iter().enumerate() {
                            let seg = inst.kernel.shm().get(&decl.name);
                            let writes = seg.map(|s| s.write_count()).unwrap_or(0);
                            if writes > shm_published[i] {
                                shm_published[i] = writes;
                                let image =
                                    inst.kernel.shm_mut().read(&decl.name).unwrap_or_default();
                                let version =
                                    SeqlockCell::pack_version(epoch_idx as u64 + 1, me as u32);
                                if shm_cells[i].publish(version, &image) {
                                    shm_seen[i] = version;
                                }
                            }
                        }
                        for (i, decl) in workload.mailboxes.iter().enumerate() {
                            if shard_of(decl.home_cpu) == me {
                                continue; // local sends stay local
                            }
                            while let Ok(Some(bytes)) = inst.kernel.mailboxes_mut().recv(&decl.name)
                            {
                                mbx_channels[i].push(Envelope {
                                    producer: me as u32,
                                    seq: mbx_seq,
                                    bytes,
                                });
                                mbx_seq += 1;
                            }
                        }
                        for (i, decl) in workload.fifos.iter().enumerate() {
                            if shard_of(decl.home_cpu) == me {
                                continue;
                            }
                            let bytes = inst
                                .kernel
                                .fifos_mut()
                                .get(&decl.name, usize::MAX)
                                .unwrap_or_default();
                            if !bytes.is_empty() {
                                fifo_rings[i][me].push(&bytes);
                            }
                        }
                        let chunk = inst.drain_tagged();
                        if !chunk.is_empty() {
                            epoch_chunks.lock().unwrap().push(chunk);
                        }

                        barrier.wait();

                        // --- merge (worker 0) + exchange in ---
                        if me == 0 {
                            let chunks = std::mem::take(&mut *epoch_chunks.lock().unwrap());
                            if !chunks.is_empty() {
                                merged.lock().unwrap().extend(merge_tagged(chunks));
                            }
                        }
                        for (i, decl) in workload.shms.iter().enumerate() {
                            if let Some((version, bytes)) = shm_cells[i].read() {
                                if version > shm_seen[i] {
                                    shm_seen[i] = version;
                                    inst.kernel.shm_mut().overwrite(&decl.name, &bytes);
                                }
                            }
                        }
                        for (i, decl) in workload.mailboxes.iter().enumerate() {
                            if shard_of(decl.home_cpu) != me {
                                continue;
                            }
                            let mut envelopes = mbx_channels[i].drain();
                            envelopes.sort_by_key(|e| (e.producer, e.seq));
                            for envelope in envelopes {
                                let _ = inst.kernel.post(&decl.name, &envelope.bytes);
                            }
                        }
                        for (i, decl) in workload.fifos.iter().enumerate() {
                            if shard_of(decl.home_cpu) != me {
                                continue;
                            }
                            for ring in fifo_rings[i].iter() {
                                let bytes = ring.pop_all();
                                if !bytes.is_empty() {
                                    let _ = inst.kernel.fifos_mut().put(&decl.name, &bytes);
                                }
                            }
                        }

                        barrier.wait();
                    }

                    // Post-barrier deliveries may have emitted events
                    // (mailbox wakes); fold the tail chunk in via the
                    // shared merge path.
                    let tail = inst.drain_tagged();
                    if !tail.is_empty() {
                        merged.lock().unwrap().extend(merge_tagged(vec![tail]));
                    }

                    let counters = inst.kernel.counters();
                    let tasks = inst.task_outcomes(workload);
                    let mailboxes: Vec<(usize, PortOutcome)> = workload
                        .mailboxes
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| shard_of(d.home_cpu) == me)
                        .map(|(i, d)| (i, inst.mailbox_outcome(&d.name)))
                        .collect();
                    let fifos: Vec<(usize, PortOutcome)> = workload
                        .fifos
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| shard_of(d.home_cpu) == me)
                        .map(|(i, d)| (i, inst.fifo_outcome(&d.name)))
                        .collect();
                    let shm = if me == 0 {
                        inst.shm_outcomes(workload)
                    } else {
                        Vec::new()
                    };
                    reports.lock().unwrap()[me] = Some((counters, tasks, mailboxes, fifos, shm));
                });
            }
        });

        let errors = setup_errors.into_inner().unwrap();
        if let Some(e) = errors.into_iter().next() {
            return Err(ExecError::new(e));
        }

        // Merge the final-epoch tail chunks deterministically: the tails
        // were appended in whatever order workers finished, so re-sort the
        // whole stream (stable; keyed identically to merge_tagged).
        let mut trace = merged.into_inner().unwrap();
        trace = merge_tagged(vec![trace]);

        let mut counters = SchedCounters::default();
        let mut tasks = Vec::new();
        let mut mailbox_slots: Vec<Option<PortOutcome>> =
            (0..workload.mailboxes.len()).map(|_| None).collect();
        let mut fifo_slots: Vec<Option<PortOutcome>> =
            (0..workload.fifos.len()).map(|_| None).collect();
        let mut shm = Vec::new();
        for report in reports.into_inner().unwrap().into_iter().flatten() {
            let (c, t, mbx, ff, s) = report;
            counters.dispatches += c.dispatches;
            counters.preemptions += c.preemptions;
            counters.timeslices += c.timeslices;
            counters.overruns += c.overruns;
            counters.faults += c.faults;
            counters.deadline_misses += c.deadline_misses;
            tasks.extend(t);
            for (i, outcome) in mbx {
                mailbox_slots[i] = Some(outcome);
            }
            for (i, outcome) in ff {
                fifo_slots[i] = Some(outcome);
            }
            if !s.is_empty() {
                shm = s;
            }
        }
        let (tasks, total_cycles) = finalize_tasks(tasks);
        let mailboxes = mailbox_slots.into_iter().flatten().collect();
        let fifos = fifo_slots.into_iter().flatten().collect();
        Ok(ExecOutcome {
            mode: "parallel",
            workers,
            cpus: workload.cpus,
            counters,
            tasks,
            shm,
            mailboxes,
            fifos,
            trace,
            total_cycles,
        })
    }
}

// ---------------------------------------------------------------------------
// Equivalence
// ---------------------------------------------------------------------------

/// Checks that `reference` (the deterministic stream) is a linearization
/// of `candidate` (the parallel merged stream): projected onto every CPU,
/// the `(time, event)` sequences must be identical. Also requires matching
/// per-task outcomes and aggregate counters, so "the same events" cannot
/// hide different final states.
///
/// # Errors
///
/// Returns a human-readable description of the first divergence.
pub fn linearization_equivalent(
    reference: &ExecOutcome,
    candidate: &ExecOutcome,
) -> Result<(), String> {
    if reference.cpus != candidate.cpus {
        return Err(format!(
            "cpu counts differ: {} vs {}",
            reference.cpus, candidate.cpus
        ));
    }
    let cpu_ids = (0..reference.cpus).chain(std::iter::once(u32::MAX));
    for cpu in cpu_ids {
        let a = reference.events_on_cpu(cpu);
        let b = candidate.events_on_cpu(cpu);
        if a.len() != b.len() {
            return Err(format!(
                "cpu {cpu}: {} events in {} mode vs {} in {} mode",
                a.len(),
                reference.mode,
                b.len(),
                candidate.mode
            ));
        }
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if x != y {
                return Err(format!(
                    "cpu {cpu} diverges at projected index {i}:\n  {} mode: {:?} @ {:?}\n  {} mode: {:?} @ {:?}",
                    reference.mode, x.event, x.time, candidate.mode, y.event, y.time
                ));
            }
        }
    }
    if reference.tasks != candidate.tasks {
        return Err(format!(
            "task outcomes differ:\n  {:?}\nvs\n  {:?}",
            reference.tasks, candidate.tasks
        ));
    }
    if reference.counters != candidate.counters {
        return Err(format!(
            "scheduler counters differ: {:?} vs {:?}",
            reference.counters, candidate.counters
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Multi-kernel lockstep
// ---------------------------------------------------------------------------

/// Epoch coordinator for a *fleet of kernels* advancing in lockstep — the
/// multi-machine counterpart of the in-process epoch barrier the
/// [`ParallelExecutor`] runs its CPU shards on. Each participant (one
/// simulated node's [`Kernel`]) is advanced to a common barrier instant
/// per epoch via [`Kernel::run_until`]; the coordinator tracks who reached
/// the barrier, freezes dead participants at the instant they were killed,
/// and reports drift — a kernel already past the barrier means something
/// advanced it outside the coordinator, which would silently break the
/// determinism of any cross-kernel exchange layered on top.
///
/// The coordinator deliberately does not own the kernels: an orchestration
/// layer (e.g. a federation of DRCR shards) interleaves its own message
/// exchange between epochs, exactly as the parallel executor exchanges IPC
/// at its barriers.
#[derive(Debug, Default)]
pub struct Lockstep {
    barrier: SimTime,
    participants: Vec<LockstepSlot>,
}

#[derive(Debug)]
struct LockstepSlot {
    label: String,
    alive: bool,
    reached: SimTime,
    ran_this_epoch: bool,
}

impl Lockstep {
    /// A coordinator with the barrier at time zero and no participants.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a participant; the returned id names it in every later
    /// call.
    pub fn register(&mut self, label: &str) -> usize {
        self.participants.push(LockstepSlot {
            label: label.to_string(),
            alive: true,
            reached: SimTime::ZERO,
            ran_this_epoch: false,
        });
        self.participants.len() - 1
    }

    /// The current barrier instant.
    pub fn barrier(&self) -> SimTime {
        self.barrier
    }

    /// Opens the next epoch: moves the barrier forward by `span` and
    /// clears the per-epoch progress flags. Returns the new barrier.
    pub fn begin_epoch(&mut self, span: SimDuration) -> SimTime {
        self.barrier += span;
        for slot in &mut self.participants {
            slot.ran_this_epoch = false;
        }
        self.barrier
    }

    /// Advances one participant's kernel to the barrier.
    ///
    /// # Errors
    ///
    /// [`ExecError`] when the participant is dead, unknown, or its kernel
    /// sits *past* the barrier already (drift: it was advanced outside the
    /// coordinator).
    pub fn run_to_barrier(&mut self, id: usize, kernel: &mut Kernel) -> Result<SimTime, ExecError> {
        let barrier = self.barrier;
        let slot = self
            .participants
            .get_mut(id)
            .ok_or_else(|| ExecError::new(format!("no lockstep participant {id}")))?;
        if !slot.alive {
            return Err(ExecError::new(format!(
                "participant '{}' is dead (frozen at {:?})",
                slot.label, slot.reached
            )));
        }
        if kernel.now() > barrier {
            return Err(ExecError::new(format!(
                "participant '{}' drifted past the barrier: kernel at {:?}, barrier {:?}",
                slot.label,
                kernel.now(),
                barrier
            )));
        }
        kernel.run_until(barrier);
        slot.reached = kernel.now();
        slot.ran_this_epoch = true;
        Ok(slot.reached)
    }

    /// Kills a participant: its kernel is frozen where it stands and every
    /// later [`Lockstep::run_to_barrier`] for it errors.
    pub fn mark_dead(&mut self, id: usize) {
        if let Some(slot) = self.participants.get_mut(id) {
            slot.alive = false;
            slot.ran_this_epoch = true;
        }
    }

    /// Whether a participant is still advancing.
    pub fn is_alive(&self, id: usize) -> bool {
        self.participants.get(id).is_some_and(|s| s.alive)
    }

    /// Number of live participants.
    pub fn alive_count(&self) -> usize {
        self.participants.iter().filter(|s| s.alive).count()
    }

    /// Closes the epoch: every live participant must have been advanced
    /// to the barrier since [`Lockstep::begin_epoch`].
    ///
    /// # Errors
    ///
    /// [`ExecError`] naming the first laggard or drifted participant.
    pub fn finish_epoch(&self) -> Result<(), ExecError> {
        for slot in &self.participants {
            if !slot.alive {
                continue;
            }
            if !slot.ran_this_epoch {
                return Err(ExecError::new(format!(
                    "participant '{}' never ran this epoch (barrier {:?})",
                    slot.label, self.barrier
                )));
            }
            if slot.reached != self.barrier {
                return Err(ExecError::new(format!(
                    "participant '{}' stopped at {:?}, barrier {:?}",
                    slot.label, slot.reached, self.barrier
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{FnBody, Priority, SpinBody, TaskConfig};

    fn two_cpu_workload() -> Workload {
        let mut w = Workload::new(2, 42);
        for cpu in 0..2u32 {
            for slot in 0..2u32 {
                let name = format!("t{cpu}{slot}");
                let cfg = TaskConfig::periodic(
                    &name,
                    Priority(2 + slot as u8),
                    SimDuration::from_millis(1 + slot as u64),
                )
                .unwrap()
                .on_cpu(cpu)
                .with_base_cost(SimDuration::from_micros(100))
                .with_latency_tracking();
                w = w.task(cfg, || Box::new(SpinBody::new(8)));
            }
        }
        w
    }

    #[test]
    fn deterministic_executor_matches_itself() {
        let w = two_cpu_workload();
        let a = DeterministicExecutor
            .run(&w, SimDuration::from_millis(50))
            .unwrap();
        let b = DeterministicExecutor
            .run(&w, SimDuration::from_millis(50))
            .unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.tasks, b.tasks);
        assert!(a.total_cycles > 0);
    }

    #[test]
    fn parallel_run_is_deterministic_across_runs() {
        let w = two_cpu_workload();
        let exec = ParallelExecutor::new(2);
        let a = exec.run(&w, SimDuration::from_millis(50)).unwrap();
        let b = exec.run(&w, SimDuration::from_millis(50)).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn parallel_matches_deterministic_on_quiescent_workload() {
        let w = two_cpu_workload();
        let det = DeterministicExecutor
            .run(&w, SimDuration::from_millis(50))
            .unwrap();
        for workers in [1, 2] {
            let par = ParallelExecutor::new(workers)
                .run(&w, SimDuration::from_millis(50))
                .unwrap();
            linearization_equivalent(&det, &par).unwrap();
        }
    }

    #[test]
    fn single_worker_parallel_reproduces_full_serial_order() {
        // With one worker the shard is the whole machine; even the total
        // (not just per-CPU) event order must match the serial loop.
        let w = two_cpu_workload();
        let det = DeterministicExecutor
            .run(&w, SimDuration::from_millis(20))
            .unwrap();
        let par = ParallelExecutor::new(1)
            .run(&w, SimDuration::from_millis(20))
            .unwrap();
        let a: Vec<_> = det.trace.iter().map(|e| &e.entry).collect();
        let b: Vec<_> = par.trace.iter().map(|e| &e.entry).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn cross_cpu_mailbox_delivers_at_barriers() {
        let producer_cfg = TaskConfig::periodic("prod", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .on_cpu(0)
            .with_base_cost(SimDuration::from_micros(50));
        let consumer_cfg = TaskConfig::aperiodic("cons", Priority(2))
            .unwrap()
            .on_cpu(1)
            .with_base_cost(SimDuration::from_micros(50));
        let w = Workload::new(2, 7)
            .mailbox("evtq", 64, 1)
            .task(producer_cfg, || {
                Box::new(FnBody(|ctx: &mut crate::kernel::TaskCtx<'_>| {
                    let cycle = ctx.cycle();
                    let _ = ctx.mailbox_send("evtq", &cycle.to_le_bytes());
                }))
            })
            .task_spec(TaskSpec {
                config: consumer_cfg,
                factory: Arc::new(|| {
                    Box::new(FnBody(
                        |ctx: &mut crate::kernel::TaskCtx<'_>| {
                            while let Ok(Some(_)) = ctx.mailbox_recv("evtq") {}
                        },
                    ))
                }),
                autostart: true,
                wake_on: Some("evtq".to_string()),
                triggers: Vec::new(),
            });
        let outcome = ParallelExecutor::new(2)
            .with_epoch(SimDuration::from_millis(5))
            .run(&w, SimDuration::from_millis(40))
            .unwrap();
        let consumer = outcome.task("cons").unwrap();
        assert!(
            consumer.cycles > 0,
            "cross-CPU mailbox wakeups should fire at barriers: {consumer:?}"
        );
        // The deterministic mode also delivers (immediately); both drain.
        let det = DeterministicExecutor
            .run(&w, SimDuration::from_millis(40))
            .unwrap();
        assert!(det.task("cons").unwrap().cycles > 0);
    }

    #[test]
    fn workload_validation_rejects_bad_bindings() {
        let cfg = TaskConfig::aperiodic("a", Priority(2)).unwrap().on_cpu(1);
        let w = Workload::new(2, 0).mailbox("m", 4, 0).task_spec(TaskSpec {
            config: cfg,
            factory: Arc::new(|| Box::new(crate::task::IdleBody)),
            autostart: true,
            wake_on: Some("m".to_string()),
            triggers: Vec::new(),
        });
        let err = w.validate().unwrap_err();
        assert!(err.to_string().contains("homed on CPU"));
        assert!(ParallelExecutor::new(2)
            .run(&w, SimDuration::from_millis(1))
            .is_err());
    }

    #[test]
    fn executor_from_env_defaults_to_deterministic() {
        // Only checks the unset path (mutating the environment would race
        // with other tests); the parallel path is covered by parsing in CI
        // via the RTOS_EXECUTOR job step.
        if std::env::var("RTOS_EXECUTOR").is_err() {
            assert_eq!(executor_from_env().name(), "deterministic");
        }
    }

    fn ticking_kernel(seed: u64) -> Kernel {
        let mut kernel = Kernel::new(KernelConfig::new(seed).with_timer(TimerJitterModel::ideal()));
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1)).unwrap();
        let id = kernel
            .create_task(
                cfg,
                Box::new(FnBody(|_ctx: &mut crate::kernel::TaskCtx<'_>| {})),
            )
            .unwrap();
        kernel.start_task(id).unwrap();
        kernel
    }

    #[test]
    fn lockstep_advances_a_kernel_fleet_to_common_barriers() {
        let mut step = Lockstep::new();
        let mut kernels: Vec<Kernel> = (0..3).map(ticking_kernel).collect();
        let ids: Vec<usize> = (0..3).map(|i| step.register(&format!("n{i}"))).collect();
        for _ in 0..5 {
            let barrier = step.begin_epoch(SimDuration::from_millis(10));
            for (id, kernel) in ids.iter().zip(kernels.iter_mut()) {
                let reached = step.run_to_barrier(*id, kernel).unwrap();
                assert_eq!(reached, barrier);
            }
            step.finish_epoch().unwrap();
        }
        for kernel in &kernels {
            assert_eq!(kernel.now(), SimTime::ZERO + SimDuration::from_millis(50));
            // 50 ms at 1 kHz: the fleet really ran, it didn't just warp.
            assert!(kernel.counters().dispatches >= 49);
        }
    }

    #[test]
    fn lockstep_freezes_dead_participants_and_reports_drift() {
        let mut step = Lockstep::new();
        let mut a = ticking_kernel(1);
        let mut b = ticking_kernel(2);
        let ia = step.register("a");
        let ib = step.register("b");
        step.begin_epoch(SimDuration::from_millis(10));
        step.run_to_barrier(ia, &mut a).unwrap();
        step.run_to_barrier(ib, &mut b).unwrap();
        step.finish_epoch().unwrap();

        // Kill b: it freezes at the last barrier and later epochs reject it.
        step.mark_dead(ib);
        assert!(!step.is_alive(ib));
        assert_eq!(step.alive_count(), 1);
        step.begin_epoch(SimDuration::from_millis(10));
        step.run_to_barrier(ia, &mut a).unwrap();
        assert!(step.run_to_barrier(ib, &mut b).is_err());
        step.finish_epoch().unwrap();
        assert_eq!(b.now(), SimTime::ZERO + SimDuration::from_millis(10));

        // A kernel advanced outside the coordinator is drift, not silence.
        a.run_for(SimDuration::from_millis(25));
        step.begin_epoch(SimDuration::from_millis(10));
        let err = step.run_to_barrier(ia, &mut a).unwrap_err();
        assert!(err.to_string().contains("drifted"), "{err}");
    }

    #[test]
    fn lockstep_finish_epoch_catches_laggards() {
        let mut step = Lockstep::new();
        let mut a = ticking_kernel(3);
        let ia = step.register("a");
        let _ib = step.register("b");
        step.begin_epoch(SimDuration::from_millis(5));
        step.run_to_barrier(ia, &mut a).unwrap();
        let err = step.finish_epoch().unwrap_err();
        assert!(err.to_string().contains("'b'"), "{err}");
    }
}
