//! The discrete-event real-time kernel.
//!
//! [`Kernel`] simulates an RTAI-like dual-kernel machine in virtual time:
//! per-CPU fixed-priority preemptive scheduling with round-robin among equal
//! priorities, a periodic/oneshot hardware-timer model with calibrated error
//! (see [`crate::latency`]), named shared memory, bounded mailboxes, and a
//! Linux domain whose tasks run only when no real-time task is runnable.
//!
//! A `Kernel` instance is deterministic and runs on the calling thread:
//! all randomness comes from one seeded generator, so an experiment is
//! reproducible from its configuration alone. Multi-threaded execution is
//! layered *above* this type — [`crate::exec::ParallelExecutor`] runs one
//! kernel shard per worker thread and synchronizes them at epoch barriers,
//! while [`crate::exec::DeterministicExecutor`] drives a single kernel
//! exactly as the executive does.
//!
//! # Execution model
//!
//! Task behaviour is supplied as a [`TaskBody`]. When a release is
//! dispatched, the body runs *logically at the dispatch instant*; the CPU
//! time it charges (via [`TaskCtx::compute`] plus fixed per-operation IPC
//! costs) then occupies the CPU in virtual time, during which the task can
//! be preempted by more urgent releases. Release→dispatch latency — the
//! quantity in the paper's Table 1 — is recorded for tasks created with
//! latency tracking.

use crate::error::KernelError;
use crate::fifo::FifoRegistry;
use crate::latency::{LatencyStats, LoadMode, TimerJitterModel, TimerMode};
use crate::mailbox::MailboxRegistry;
use crate::rng::SimRng;
use crate::shm::ShmRegistry;
use crate::task::{
    Domain, ObjName, Priority, ReleasePolicy, TaskBody, TaskConfig, TaskId, TaskState,
};
use crate::time::{LatencyNs, SimDuration, SimTime};
use crate::trace::{EventSink, KernelEvent, TraceRing, TraceSubscriber};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

/// Static configuration of a [`Kernel`].
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Number of CPUs.
    pub cpus: u32,
    /// Seed for all stochastic models.
    pub seed: u64,
    /// Hardware-timer error model.
    pub timer: TimerJitterModel,
    /// Initial system load regime.
    pub load_mode: LoadMode,
    /// Round-robin quantum among equal-priority tasks.
    pub rr_quantum: SimDuration,
    /// CPU cost charged per shared-memory read/write.
    pub shm_op_cost: SimDuration,
    /// CPU cost charged per mailbox send/receive (including empty polls).
    pub mbx_op_cost: SimDuration,
    /// Capacity of the in-kernel trace ring buffer (0 disables tracing).
    pub trace_capacity: usize,
}

impl KernelConfig {
    /// A single-CPU kernel with the calibrated periodic-mode timer.
    pub fn new(seed: u64) -> Self {
        KernelConfig {
            cpus: 1,
            seed,
            timer: TimerJitterModel::calibrated(TimerMode::Periodic),
            load_mode: LoadMode::Light,
            rr_quantum: SimDuration::from_millis(1),
            shm_op_cost: SimDuration::from_nanos(120),
            mbx_op_cost: SimDuration::from_nanos(180),
            trace_capacity: 0,
        }
    }

    /// Sets the CPU count.
    pub fn with_cpus(mut self, cpus: u32) -> Self {
        assert!(cpus > 0, "need at least one CPU");
        self.cpus = cpus;
        self
    }

    /// Sets the timer model.
    pub fn with_timer(mut self, timer: TimerJitterModel) -> Self {
        self.timer = timer;
        self
    }

    /// Sets the load regime.
    pub fn with_load_mode(mut self, mode: LoadMode) -> Self {
        self.load_mode = mode;
        self
    }

    /// Enables the trace ring buffer.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::new(0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Hardware-timer interrupt releasing a task. The *ideal* release time is
    /// stored on the task; the event time includes the sampled timer error.
    Release { task: TaskId, ideal: SimTime },
    /// The running task's charged execution time is exhausted.
    Finish { task: TaskId, gen: u64 },
    /// Round-robin quantum expiry for the task dispatched with `gen`.
    Timeslice { task: TaskId, gen: u64 },
    /// Deferred scheduling decision for one CPU. Releases enqueue and then
    /// post this, so all releases at the same instant are queued before any
    /// dispatch happens — priority order is respected even among
    /// simultaneous releases.
    Dispatch { cpu: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventEntry {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Task {
    cfg: TaskConfig,
    state: TaskState,
    body: Option<Box<dyn TaskBody>>,
    /// Ideal release time of the cycle currently queued/running.
    pending_ideal: Option<SimTime>,
    /// A mailbox wakeup has queued a Release event that has not been
    /// processed yet. Stops same-instant cycle ends elsewhere from
    /// double-waking (and spuriously overrunning) the task for one message.
    wake_queued: bool,
    /// First ideal release of the periodic grid (set at start). Resuming
    /// re-anchors on `grid_anchor + k·period` so a suspend/resume pair
    /// never shifts the task's release phase.
    grid_anchor: SimTime,
    /// Remaining execution when preempted mid-cycle.
    remaining: SimDuration,
    /// Dispatch generation; cancels stale Finish/Timeslice events.
    run_gen: u64,
    /// Ready-queue generation: each heap entry is stamped with the value at
    /// push time, and invalidation (suspend/delete) just bumps it. Stale
    /// entries are skipped when they surface at the head — O(1) removal
    /// instead of a linear heap rebuild.
    ready_gen: u64,
    /// Whether a round-robin quantum is armed for the current slice.
    quantum_armed: bool,
    /// When the current execution slice started (valid while Running).
    slice_start: SimTime,
    /// Time at which the current cycle would finish if undisturbed.
    finish_at: SimTime,
    cycles: u64,
    overruns: u64,
    budget_overruns: u64,
    /// Hook panics contained by the kernel (lifetime count).
    faults: u64,
    /// Rendered payload of the most recent contained panic.
    fault_cause: Option<String>,
    cpu_time: SimDuration,
    stats: LatencyStats,
    /// Response time (release → finish) samples, when tracking is on.
    response_stats: LatencyStats,
    /// Cycles whose response time exceeded the period (implicit deadline).
    deadline_misses: u64,
    started: bool,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("name", &self.cfg.name)
            .field("state", &self.state)
            .field("cycles", &self.cycles)
            .finish()
    }
}

#[derive(Debug, Default)]
struct Cpu {
    running: Option<TaskId>,
    /// Min-heap on (priority, enqueue seq): FIFO among equal priorities.
    /// The trailing field is the task's ready-queue generation at push time
    /// (lazy deletion; it never affects ordering — seq is unique).
    ready: BinaryHeap<Reverse<(Priority, u64, TaskId, u64)>>,
    busy_rt: SimDuration,
    busy_linux: SimDuration,
}

/// Aggregate scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Number of body dispatches (fresh cycles).
    pub dispatches: u64,
    /// Number of preemptions (a running task was displaced).
    pub preemptions: u64,
    /// Number of round-robin rotations.
    pub timeslices: u64,
    /// Releases discarded because the previous cycle had not finished.
    pub overruns: u64,
    /// Body panics contained by the kernel (tasks parked in `Faulted`).
    pub faults: u64,
    /// Cycles finishing past their implicit deadline (latency-tracked
    /// periodic tasks), across all tasks including deleted ones.
    pub deadline_misses: u64,
}

/// The simulated real-time kernel. See the [module docs](self).
pub struct Kernel {
    cfg: KernelConfig,
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<EventEntry>>,
    tasks: HashMap<TaskId, Task>,
    names: HashMap<ObjName, TaskId>,
    next_task_id: u64,
    cpus: Vec<Cpu>,
    shm: ShmRegistry,
    mailboxes: MailboxRegistry,
    fifos: FifoRegistry,
    rng: SimRng,
    trace: EventSink<KernelEvent>,
    counters: SchedCounters,
    /// Aperiodic tasks to release when a mailbox receives a message,
    /// indexed by mailbox name (bind/unbind are O(log + bindings-per-box)
    /// instead of a linear scan of every binding).
    wakeups: BTreeMap<ObjName, Vec<TaskId>>,
    /// Tasks currently parked in [`TaskState::Faulted`], so supervision
    /// layers can poll for faults without scanning every task.
    faulted: BTreeSet<TaskId>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("tasks", &self.tasks.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

impl Kernel {
    /// Boots a kernel from its configuration.
    pub fn new(cfg: KernelConfig) -> Self {
        let rng = SimRng::from_seed(cfg.seed);
        let cpus = (0..cfg.cpus).map(|_| Cpu::default()).collect();
        Kernel {
            trace: EventSink::new(cfg.trace_capacity),
            rng,
            cpus,
            cfg,
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            tasks: HashMap::new(),
            names: HashMap::new(),
            next_task_id: 1,
            shm: ShmRegistry::new(),
            mailboxes: MailboxRegistry::new(),
            fifos: FifoRegistry::new(),
            counters: SchedCounters::default(),
            wakeups: BTreeMap::new(),
            faulted: BTreeSet::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of CPUs on this kernel.
    pub fn cpu_count(&self) -> u32 {
        self.cpus.len() as u32
    }

    /// The active load regime.
    pub fn load_mode(&self) -> LoadMode {
        self.cfg.load_mode
    }

    /// Switches the load regime mid-run (scenario support).
    pub fn set_load_mode(&mut self, mode: LoadMode) {
        self.cfg.load_mode = mode;
        self.emit(KernelEvent::LoadModeChanged { mode });
    }

    /// Shared-memory registry (read access).
    pub fn shm(&self) -> &ShmRegistry {
        &self.shm
    }

    /// Shared-memory registry (management access from the non-RT side).
    pub fn shm_mut(&mut self) -> &mut ShmRegistry {
        &mut self.shm
    }

    /// Mailbox registry (read access).
    pub fn mailboxes(&self) -> &MailboxRegistry {
        &self.mailboxes
    }

    /// Mailbox registry (management access from the non-RT side).
    pub fn mailboxes_mut(&mut self) -> &mut MailboxRegistry {
        &mut self.mailboxes
    }

    /// FIFO registry (read access).
    pub fn fifos(&self) -> &FifoRegistry {
        &self.fifos
    }

    /// FIFO registry (management access from the non-RT side).
    pub fn fifos_mut(&mut self) -> &mut FifoRegistry {
        &mut self.fifos
    }

    /// Aggregate scheduler counters.
    pub fn counters(&self) -> SchedCounters {
        self.counters
    }

    /// The trace ring buffer: typed [`KernelEvent`]s, oldest first.
    pub fn trace(&self) -> &TraceRing<KernelEvent> {
        self.trace.ring()
    }

    /// Attaches a live tap that sees every kernel event at emission time,
    /// before ring eviction (and even with a zero-capacity ring).
    pub fn add_trace_subscriber(&mut self, subscriber: Box<dyn TraceSubscriber<KernelEvent>>) {
        self.trace.subscribe(subscriber);
    }

    fn emit(&mut self, event: KernelEvent) {
        self.trace.emit(self.now, event);
    }

    // ------------------------------------------------------------------
    // Task management
    // ------------------------------------------------------------------

    /// Creates a task in the `Dormant` state.
    ///
    /// # Errors
    ///
    /// [`KernelError::DuplicateTask`] if the name is taken,
    /// [`KernelError::NoSuchCpu`] if the pinned CPU does not exist.
    pub fn create_task(
        &mut self,
        cfg: TaskConfig,
        body: Box<dyn TaskBody>,
    ) -> Result<TaskId, KernelError> {
        if self.names.contains_key(&cfg.name) {
            return Err(KernelError::DuplicateTask(cfg.name));
        }
        if cfg.cpu as usize >= self.cpus.len() {
            return Err(KernelError::NoSuchCpu(cfg.cpu));
        }
        let id = TaskId(self.next_task_id);
        self.next_task_id += 1;
        self.names.insert(cfg.name.clone(), id);
        self.emit(KernelEvent::TaskCreated {
            task: cfg.name.clone(),
            cpu: cfg.cpu,
            priority: cfg.priority,
        });
        self.tasks.insert(
            id,
            Task {
                cfg,
                state: TaskState::Dormant,
                body: Some(body),
                pending_ideal: None,
                wake_queued: false,
                grid_anchor: SimTime::ZERO,
                remaining: SimDuration::ZERO,
                run_gen: 0,
                ready_gen: 0,
                quantum_armed: false,
                slice_start: SimTime::ZERO,
                finish_at: SimTime::ZERO,
                cycles: 0,
                overruns: 0,
                budget_overruns: 0,
                faults: 0,
                fault_cause: None,
                cpu_time: SimDuration::ZERO,
                stats: LatencyStats::new(),
                response_stats: LatencyStats::new(),
                deadline_misses: 0,
                started: false,
            },
        );
        Ok(id)
    }

    /// Changes a dormant task's release policy (LXRT's
    /// `rt_task_make_periodic` path).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] / [`KernelError::InvalidState`] if the
    /// task has already started.
    pub fn set_release_policy(
        &mut self,
        id: TaskId,
        policy: ReleasePolicy,
    ) -> Result<(), KernelError> {
        let task = self.tasks.get_mut(&id).ok_or(KernelError::NoSuchTask(id))?;
        if task.state != TaskState::Dormant {
            return Err(KernelError::InvalidState {
                task: id,
                operation: "change release policy of",
                state: task.state,
            });
        }
        task.cfg.release = policy;
        Ok(())
    }

    /// Enables or disables latency tracking on an existing task.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] if the id is unknown.
    pub fn set_latency_tracking(&mut self, id: TaskId, on: bool) -> Result<(), KernelError> {
        let task = self.tasks.get_mut(&id).ok_or(KernelError::NoSuchTask(id))?;
        task.cfg.track_latency = on;
        Ok(())
    }

    /// Starts a dormant task. Periodic tasks get their first release one
    /// period from now; aperiodic tasks wait for [`Kernel::trigger`].
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] / [`KernelError::InvalidState`].
    pub fn start_task(&mut self, id: TaskId) -> Result<(), KernelError> {
        let task = self.tasks.get_mut(&id).ok_or(KernelError::NoSuchTask(id))?;
        if task.state != TaskState::Dormant {
            return Err(KernelError::InvalidState {
                task: id,
                operation: "start",
                state: task.state,
            });
        }
        task.state = TaskState::Waiting;
        let release = task.cfg.release;
        let name = task.cfg.name.clone();
        let outcome = self.run_hook(id, Hook::Start);
        if outcome.faulted {
            // `on_start` panicked: the task is parked in `Faulted` and its
            // release chain is never begun.
            return Ok(());
        }
        self.emit(KernelEvent::TaskStarted { task: name });
        if let ReleasePolicy::Periodic { period } = release {
            let ideal = self.now + period;
            if let Some(task) = self.tasks.get_mut(&id) {
                task.grid_anchor = ideal;
            }
            self.schedule_release(id, ideal);
        }
        Ok(())
    }

    /// Suspends a task: queued work completes its current cycle, further
    /// releases are discarded until [`Kernel::resume_task`].
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] / [`KernelError::InvalidState`].
    pub fn suspend_task(&mut self, id: TaskId) -> Result<(), KernelError> {
        let task = self.tasks.get_mut(&id).ok_or(KernelError::NoSuchTask(id))?;
        match task.state {
            TaskState::Deleted | TaskState::Dormant | TaskState::Faulted => {
                Err(KernelError::InvalidState {
                    task: id,
                    operation: "suspend",
                    state: task.state,
                })
            }
            TaskState::Suspended => Ok(()),
            TaskState::Running => {
                // Takes effect at cycle end: the Finish handler checks state.
                task.state = TaskState::Suspended;
                let name = task.cfg.name.clone();
                self.emit(KernelEvent::TaskSuspended {
                    task: name,
                    deferred: true,
                });
                Ok(())
            }
            TaskState::Ready => {
                task.state = TaskState::Suspended;
                task.pending_ideal = None;
                task.remaining = SimDuration::ZERO;
                let name = task.cfg.name.clone();
                self.remove_from_ready(id);
                self.emit(KernelEvent::TaskSuspended {
                    task: name,
                    deferred: false,
                });
                Ok(())
            }
            TaskState::Waiting => {
                task.state = TaskState::Suspended;
                let name = task.cfg.name.clone();
                self.emit(KernelEvent::TaskSuspended {
                    task: name,
                    deferred: false,
                });
                Ok(())
            }
        }
    }

    /// Resumes a suspended task. Periodic tasks rejoin their original
    /// release grid: the next release is the first grid point
    /// `start + k·period` strictly after now, so a suspend/resume pair (or
    /// a supervisor restart built on it) preserves the declared phase
    /// instead of shifting the grid to "now + period".
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] / [`KernelError::InvalidState`].
    pub fn resume_task(&mut self, id: TaskId) -> Result<(), KernelError> {
        let task = self.tasks.get_mut(&id).ok_or(KernelError::NoSuchTask(id))?;
        if task.state != TaskState::Suspended {
            return Err(KernelError::InvalidState {
                task: id,
                operation: "resume",
                state: task.state,
            });
        }
        task.state = TaskState::Waiting;
        let release = task.cfg.release;
        let anchor = task.grid_anchor;
        let name = task.cfg.name.clone();
        self.emit(KernelEvent::TaskResumed { task: name });
        if let ReleasePolicy::Periodic { period } = release {
            let ideal = next_grid_point(anchor, period, self.now);
            self.schedule_release(id, ideal);
        }
        Ok(())
    }

    /// Deletes a task, running its `on_stop` hook and freeing its name.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] if the id is unknown or already deleted.
    pub fn delete_task(&mut self, id: TaskId) -> Result<(), KernelError> {
        let state = self
            .tasks
            .get(&id)
            .map(|t| t.state)
            .ok_or(KernelError::NoSuchTask(id))?;
        if state == TaskState::Deleted {
            return Err(KernelError::NoSuchTask(id));
        }
        self.run_hook(id, Hook::Stop);
        let task = self.tasks.get_mut(&id).expect("checked above");
        let cpu = task.cfg.cpu;
        let name = task.cfg.name.clone();
        task.state = TaskState::Deleted;
        task.run_gen += 1; // cancels any in-flight Finish/Timeslice
        task.body = None;
        self.names.remove(&name);
        self.faulted.remove(&id);
        self.drop_wakeup_bindings(id);
        self.remove_from_ready(id);
        if self.cpus[cpu as usize].running == Some(id) {
            self.cpus[cpu as usize].running = None;
            self.try_dispatch(cpu);
        }
        self.emit(KernelEvent::TaskDeleted { task: name });
        Ok(())
    }

    /// Triggers one release of an aperiodic task.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] / [`KernelError::InvalidState`] (e.g.
    /// triggering a periodic or suspended task).
    pub fn trigger(&mut self, id: TaskId) -> Result<(), KernelError> {
        let task = self.tasks.get(&id).ok_or(KernelError::NoSuchTask(id))?;
        if !matches!(task.cfg.release, ReleasePolicy::Aperiodic) {
            return Err(KernelError::InvalidState {
                task: id,
                operation: "trigger (periodic task)",
                state: task.state,
            });
        }
        match task.state {
            TaskState::Waiting => {
                let ideal = self.now;
                self.push_event(self.now, Event::Release { task: id, ideal });
                Ok(())
            }
            TaskState::Ready | TaskState::Running => {
                // Release while busy: counted as overrun, matching periodic
                // semantics.
                let t = self.tasks.get_mut(&id).expect("present");
                t.overruns += 1;
                let name = t.cfg.name.clone();
                self.counters.overruns += 1;
                self.emit(KernelEvent::Overrun { task: name });
                Ok(())
            }
            other => Err(KernelError::InvalidState {
                task: id,
                operation: "trigger",
                state: other,
            }),
        }
    }

    /// Arranges for `task` (aperiodic) to be released whenever the named
    /// mailbox receives a message — event-driven task semantics.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] / [`KernelError::BadName`].
    pub fn bind_mailbox_wakeup(&mut self, mailbox: &str, task: TaskId) -> Result<(), KernelError> {
        if !self.tasks.contains_key(&task) {
            return Err(KernelError::NoSuchTask(task));
        }
        let name = ObjName::new(mailbox)?;
        let bound = self.wakeups.entry(name).or_default();
        if !bound.contains(&task) {
            bound.push(task);
        }
        Ok(())
    }

    /// Removes all mailbox wakeups bound to `task`.
    pub fn unbind_mailbox_wakeups(&mut self, task: TaskId) {
        self.drop_wakeup_bindings(task);
    }

    fn drop_wakeup_bindings(&mut self, task: TaskId) {
        self.wakeups.retain(|_, bound| {
            bound.retain(|t| *t != task);
            !bound.is_empty()
        });
    }

    /// Posts a message into a mailbox from the non-RT side, waking any
    /// bound aperiodic tasks. Returns `false` when the mailbox was full.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::IpcError`] as a kernel error.
    pub fn post(&mut self, mailbox: &str, msg: &[u8]) -> Result<bool, KernelError> {
        let queued = self.mailboxes.send(mailbox, msg)?;
        if queued {
            self.service_wakeups();
        }
        Ok(queued)
    }

    /// Releases every wakeup-bound waiting task whose mailbox has pending
    /// messages.
    fn service_wakeups(&mut self) {
        let due: Vec<(ObjName, TaskId)> = self
            .wakeups
            .iter()
            .filter(|(mbx, _)| {
                // Skip mailboxes without pending messages wholesale.
                self.mailboxes
                    .get(mbx.as_str())
                    .map(|m| !m.is_empty())
                    .unwrap_or(false)
            })
            .flat_map(|(mbx, bound)| bound.iter().map(move |t| (mbx, *t)))
            .filter(|(_, task)| {
                self.tasks
                    .get(task)
                    .map(|t| t.state == TaskState::Waiting && !t.wake_queued)
                    .unwrap_or(false)
            })
            .map(|(mbx, t)| (mbx.clone(), t))
            .collect();
        for (mailbox, task) in due {
            if self.trace.is_enabled() {
                if let Some(name) = self.tasks.get(&task).map(|t| t.cfg.name.clone()) {
                    self.emit(KernelEvent::MailboxWake {
                        mailbox,
                        task: name,
                    });
                }
            }
            if let Some(t) = self.tasks.get_mut(&task) {
                t.wake_queued = true;
            }
            let ideal = self.now;
            self.push_event(self.now, Event::Release { task, ideal });
        }
    }

    /// Looks up a task by name.
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        let name = ObjName::new(name).ok()?;
        self.names.get(&name).copied()
    }

    /// Current state of a task.
    pub fn task_state(&self, id: TaskId) -> Option<TaskState> {
        self.tasks.get(&id).map(|t| t.state)
    }

    /// Completed cycles of a task.
    pub fn task_cycles(&self, id: TaskId) -> Option<u64> {
        self.tasks.get(&id).map(|t| t.cycles)
    }

    /// Releases discarded because the task was still busy.
    pub fn task_overruns(&self, id: TaskId) -> Option<u64> {
        self.tasks.get(&id).map(|t| t.overruns)
    }

    /// Cycles whose execution was clamped to the configured budget.
    pub fn task_budget_overruns(&self, id: TaskId) -> Option<u64> {
        self.tasks.get(&id).map(|t| t.budget_overruns)
    }

    /// Hook panics the kernel contained for this task.
    pub fn task_faults(&self, id: TaskId) -> Option<u64> {
        self.tasks.get(&id).map(|t| t.faults)
    }

    /// Tasks currently parked in [`TaskState::Faulted`], ascending id.
    ///
    /// A task leaves the set only when deleted; supervision layers poll
    /// this instead of scanning every task for its state.
    pub fn faulted_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.faulted.iter().copied()
    }

    /// Rendered payload of the task's most recent contained panic, if any.
    pub fn task_fault_cause(&self, id: TaskId) -> Option<&str> {
        self.tasks.get(&id).and_then(|t| t.fault_cause.as_deref())
    }

    /// Total CPU time the task has consumed.
    pub fn task_cpu_time(&self, id: TaskId) -> Option<SimDuration> {
        self.tasks.get(&id).map(|t| t.cpu_time)
    }

    /// Latency statistics of a task (empty unless created with tracking).
    pub fn task_stats(&self, id: TaskId) -> Option<&LatencyStats> {
        self.tasks.get(&id).map(|t| &t.stats)
    }

    /// Response-time (release → completion) statistics of a task (empty
    /// unless created with tracking).
    pub fn task_response_stats(&self, id: TaskId) -> Option<&LatencyStats> {
        self.tasks.get(&id).map(|t| &t.response_stats)
    }

    /// Cycles whose response time exceeded the period (implicit-deadline
    /// misses), for tracked periodic tasks.
    pub fn task_deadline_misses(&self, id: TaskId) -> Option<u64> {
        self.tasks.get(&id).map(|t| t.deadline_misses)
    }

    /// Name of a task.
    pub fn task_name(&self, id: TaskId) -> Option<&ObjName> {
        self.tasks.get(&id).map(|t| &t.cfg.name)
    }

    /// Fraction of elapsed time CPU `cpu` spent running RT-domain work.
    pub fn cpu_rt_utilization(&self, cpu: u32) -> f64 {
        let elapsed = self.now.as_nanos();
        if elapsed == 0 {
            return 0.0;
        }
        self.cpus[cpu as usize].busy_rt.as_nanos() as f64 / elapsed as f64
    }

    /// Fraction of elapsed time CPU `cpu` spent running Linux-domain work.
    pub fn cpu_linux_utilization(&self, cpu: u32) -> f64 {
        let elapsed = self.now.as_nanos();
        if elapsed == 0 {
            return 0.0;
        }
        self.cpus[cpu as usize].busy_linux.as_nanos() as f64 / elapsed as f64
    }

    // ------------------------------------------------------------------
    // Event engine
    // ------------------------------------------------------------------

    fn push_event(&mut self, time: SimTime, event: Event) {
        let time = time.max(self.now);
        self.seq += 1;
        self.events.push(Reverse(EventEntry {
            time,
            seq: self.seq,
            event,
        }));
    }

    fn schedule_release(&mut self, id: TaskId, ideal: SimTime) {
        let error: LatencyNs = self
            .cfg
            .timer
            .sample_error(&mut self.rng, self.cfg.load_mode);
        let actual = ideal.offset(error);
        self.push_event(actual, Event::Release { task: id, ideal });
    }

    /// Runs the simulation until `deadline` (inclusive of events at it).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(entry)) = self.events.peek().copied() {
            if entry.time > deadline {
                break;
            }
            self.events.pop();
            debug_assert!(entry.time >= self.now, "time went backwards");
            self.now = entry.time;
            self.handle(entry.event);
        }
        self.now = self.now.max(deadline);
    }

    /// Runs the simulation for a span of virtual time.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Processes a single event. Returns `false` when the event queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.events.pop() {
            Some(Reverse(entry)) => {
                self.now = entry.time;
                self.handle(entry.event);
                true
            }
            None => false,
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Release { task, ideal } => self.on_release(task, ideal),
            Event::Finish { task, gen } => self.on_finish(task, gen),
            Event::Timeslice { task, gen } => self.on_timeslice(task, gen),
            Event::Dispatch { cpu } => self.try_dispatch(cpu),
        }
    }

    fn on_release(&mut self, id: TaskId, ideal: SimTime) {
        let Some(task) = self.tasks.get_mut(&id) else {
            return;
        };
        task.wake_queued = false;
        // Schedule the next periodic release first so the grid never stalls
        // (suspended/deleted tasks break the chain deliberately).
        let reschedule = match (task.state, task.cfg.release) {
            (
                TaskState::Deleted | TaskState::Suspended | TaskState::Dormant | TaskState::Faulted,
                _,
            ) => None,
            (_, ReleasePolicy::Periodic { period }) => Some(ideal + period),
            (_, ReleasePolicy::Aperiodic) => None,
        };
        match task.state {
            TaskState::Waiting => {
                task.state = TaskState::Ready;
                task.pending_ideal = Some(ideal);
                let cpu = task.cfg.cpu;
                let prio = task.cfg.priority;
                let gen = task.ready_gen;
                let name = self.trace.is_enabled().then(|| task.cfg.name.clone());
                self.seq += 1;
                let seq = self.seq;
                self.cpus[cpu as usize]
                    .ready
                    .push(Reverse((prio, seq, id, gen)));
                if let Some(task) = name {
                    self.emit(KernelEvent::Release { task, ideal });
                }
                if let Some(next) = reschedule {
                    self.schedule_release(id, next);
                }
                self.push_event(self.now, Event::Dispatch { cpu });
            }
            TaskState::Ready | TaskState::Running => {
                task.overruns += 1;
                self.counters.overruns += 1;
                let name = self.trace.is_enabled().then(|| task.cfg.name.clone());
                if let Some(task) = name {
                    self.emit(KernelEvent::Overrun { task });
                }
                if let Some(next) = reschedule {
                    self.schedule_release(id, next);
                }
            }
            TaskState::Suspended | TaskState::Dormant | TaskState::Deleted | TaskState::Faulted => {
                // Release discarded; chain intentionally broken.
            }
        }
    }

    fn on_finish(&mut self, id: TaskId, gen: u64) {
        let Some(task) = self.tasks.get_mut(&id) else {
            return;
        };
        if task.run_gen != gen || task.state == TaskState::Deleted {
            return; // stale event from a cancelled slice
        }
        let cpu = task.cfg.cpu;
        let domain = task.cfg.domain;
        let slice = self.now.duration_since(task.slice_start);
        task.cpu_time += slice;
        task.cycles += 1;
        task.remaining = SimDuration::ZERO;
        task.run_gen += 1;
        let mut missed = false;
        let mut deadline_missed = None;
        if task.cfg.track_latency {
            if let Some(ideal) = task.pending_ideal {
                let response = self.now.signed_delta(ideal);
                task.response_stats.record(response);
                if let ReleasePolicy::Periodic { period } = task.cfg.release {
                    if response > period.as_nanos() as i64 {
                        task.deadline_misses += 1;
                        // The aggregate counter must tick regardless of
                        // tracing — admission validation reads it from
                        // `counters()` with the trace ring disabled.
                        missed = true;
                        if self.trace.is_enabled() {
                            deadline_missed = Some((task.cfg.name.clone(), response));
                        }
                    }
                }
            }
        }
        task.pending_ideal = None;
        let mut rerelease = false;
        if task.state == TaskState::Running {
            task.state = TaskState::Waiting;
            rerelease = task.cfg.continuous;
        }
        // If state is Suspended the suspend was requested mid-cycle and is
        // now effective: stay Suspended, no further releases are queued.
        self.account_busy(cpu, domain, slice);
        self.cpus[cpu as usize].running = None;
        if missed {
            self.counters.deadline_misses += 1;
        }
        if let Some((task, response)) = deadline_missed {
            self.emit(KernelEvent::DeadlineMiss { task, response });
        }
        if rerelease {
            let ideal = self.now;
            self.push_event(self.now, Event::Release { task: id, ideal });
        }
        self.try_dispatch(cpu);
    }

    fn on_timeslice(&mut self, id: TaskId, gen: u64) {
        let Some(task) = self.tasks.get(&id) else {
            return;
        };
        if task.run_gen != gen || task.state != TaskState::Running {
            return;
        }
        let cpu = task.cfg.cpu;
        let prio = task.cfg.priority;
        let name = self.trace.is_enabled().then(|| task.cfg.name.clone());
        // Rotate only if an equal-priority peer is waiting; more urgent peers
        // would already have preempted and less urgent ones must keep waiting.
        self.prune_ready_head(cpu);
        let head_prio = self.cpus[cpu as usize]
            .ready
            .peek()
            .map(|Reverse((p, _, _, _))| *p);
        if head_prio == Some(prio) {
            self.counters.timeslices += 1;
            if let Some(task) = name {
                self.emit(KernelEvent::Timeslice { task, cpu });
            }
            self.preempt_running(cpu);
            self.try_dispatch(cpu);
        }
    }

    /// Displaces the running task on `cpu` back into the ready queue,
    /// preserving its remaining execution time.
    fn preempt_running(&mut self, cpu: u32) {
        let Some(running_id) = self.cpus[cpu as usize].running.take() else {
            return;
        };
        let task = self
            .tasks
            .get_mut(&running_id)
            .expect("running task exists");
        let progressed = self.now.duration_since(task.slice_start);
        task.cpu_time += progressed;
        let domain = task.cfg.domain;
        task.remaining = task.finish_at.duration_since(self.now);
        task.run_gen += 1; // cancels its Finish/Timeslice events
        task.state = TaskState::Ready;
        let prio = task.cfg.priority;
        let gen = task.ready_gen;
        self.seq += 1;
        let seq = self.seq;
        self.cpus[cpu as usize]
            .ready
            .push(Reverse((prio, seq, running_id, gen)));
        self.account_busy(cpu, domain, progressed);
    }

    fn account_busy(&mut self, cpu: u32, domain: Domain, span: SimDuration) {
        match domain {
            Domain::RealTime => self.cpus[cpu as usize].busy_rt += span,
            Domain::Linux => self.cpus[cpu as usize].busy_linux += span,
        }
    }

    /// Invalidates any queued ready entry for `id` — O(1) lazy deletion.
    /// Bumping the task's ready generation orphans the heap entry, which is
    /// discarded when it surfaces at the head ([`Kernel::prune_ready_head`]).
    /// The supervisor's restart path suspends and deletes tasks routinely,
    /// so this must not be a linear heap rebuild.
    fn remove_from_ready(&mut self, id: TaskId) {
        if let Some(task) = self.tasks.get_mut(&id) {
            task.ready_gen = task.ready_gen.wrapping_add(1);
        }
    }

    /// Pops stale entries (deleted/suspended/re-queued tasks) off the head
    /// of `cpu`'s ready queue so callers can trust `peek()`. Every heap
    /// entry is popped at most once across the run, so the amortized cost
    /// of lazy deletion is O(log n) per push, same as eager removal's pop.
    fn prune_ready_head(&mut self, cpu: u32) {
        while let Some(Reverse((_, _, id, gen))) = self.cpus[cpu as usize].ready.peek() {
            let live = self
                .tasks
                .get(id)
                .is_some_and(|t| t.state == TaskState::Ready && t.ready_gen == *gen);
            if live {
                return;
            }
            self.cpus[cpu as usize].ready.pop();
        }
    }

    /// Core dispatch decision for one CPU.
    fn try_dispatch(&mut self, cpu: u32) {
        loop {
            self.prune_ready_head(cpu);
            let head = self.cpus[cpu as usize]
                .ready
                .peek()
                .map(|Reverse((p, s, t, _))| (*p, *s, *t));
            let Some((head_prio, _, head_id)) = head else {
                return;
            };
            if let Some(running_id) = self.cpus[cpu as usize].running {
                let running_prio = self.tasks[&running_id].cfg.priority;
                if head_prio.preempts(running_prio) {
                    self.counters.preemptions += 1;
                    if self.trace.is_enabled() {
                        let task = self.tasks[&running_id].cfg.name.clone();
                        self.emit(KernelEvent::Preempt { task, cpu });
                    }
                    self.preempt_running(cpu);
                    continue; // re-evaluate with the CPU now free
                }
                // An equal-priority peer arrived while another runs: arm the
                // round-robin quantum if it is not already ticking.
                if head_prio == running_prio {
                    let running = self.tasks.get_mut(&running_id).expect("running exists");
                    if !running.quantum_armed {
                        running.quantum_armed = true;
                        let gen = running.run_gen;
                        let slice_end = self.now + self.cfg.rr_quantum;
                        self.push_event(
                            slice_end,
                            Event::Timeslice {
                                task: running_id,
                                gen,
                            },
                        );
                    }
                }
                return;
            }
            // CPU idle: dispatch the head.
            self.cpus[cpu as usize].ready.pop();
            let task = self.tasks.get_mut(&head_id).expect("queued task exists");
            if task.state != TaskState::Ready {
                continue; // stale entry (suspended/deleted after queuing)
            }
            task.state = TaskState::Running;
            task.slice_start = self.now;
            task.run_gen += 1;
            let gen = task.run_gen;
            self.cpus[cpu as usize].running = Some(head_id);

            let exec = if !task.remaining.is_zero() {
                // Resuming a preempted cycle: the body already ran.
                let rem = task.remaining;
                task.remaining = SimDuration::ZERO;
                rem
            } else {
                // Fresh cycle: record latency, run the body, charge its cost.
                self.counters.dispatches += 1;
                let latency = task
                    .pending_ideal
                    .map(|ideal| self.now.signed_delta(ideal))
                    .unwrap_or(0);
                if task.cfg.track_latency && task.pending_ideal.is_some() {
                    task.stats.record(latency);
                }
                let base = task.cfg.base_cost;
                let budget = task.cfg.exec_budget;
                if self.trace.is_enabled() {
                    let task = self.tasks[&head_id].cfg.name.clone();
                    self.emit(KernelEvent::Dispatch { task, cpu, latency });
                }
                let outcome = self.run_body_cycle(head_id);
                if outcome.faulted {
                    // The body panicked at the dispatch instant: the unwind
                    // was contained, partial port writes rolled back, and
                    // the task parked in `Faulted` by `run_hook`. The cycle
                    // never consumes virtual CPU time; free the CPU and
                    // look at the next ready task.
                    let task = self.tasks.get_mut(&head_id).expect("still exists");
                    task.pending_ideal = None;
                    task.remaining = SimDuration::ZERO;
                    task.run_gen += 1;
                    task.quantum_armed = false;
                    self.cpus[cpu as usize].running = None;
                    continue;
                }
                let mut exec = base + outcome.charged;
                if let Some(budget) = budget {
                    if exec > budget {
                        let demanded = exec;
                        exec = budget;
                        let task = self.tasks.get_mut(&head_id).expect("still exists");
                        task.budget_overruns += 1;
                        if self.trace.is_enabled() {
                            let task = self.tasks[&head_id].cfg.name.clone();
                            self.emit(KernelEvent::BudgetClamp {
                                task,
                                demanded,
                                budget,
                            });
                        }
                    }
                }
                exec
            };
            let exec = if exec.is_zero() {
                SimDuration::from_nanos(1)
            } else {
                exec
            };
            let task = self.tasks.get_mut(&head_id).expect("still exists");
            task.finish_at = self.now + exec;
            let finish_at = task.finish_at;
            self.push_event(finish_at, Event::Finish { task: head_id, gen });

            // Round-robin: arm a quantum if an equal-priority peer waits.
            self.prune_ready_head(cpu);
            let peer_same_prio = self.cpus[cpu as usize]
                .ready
                .peek()
                .map(|Reverse((p, _, _, _))| *p == head_prio)
                .unwrap_or(false);
            let task = self.tasks.get_mut(&head_id).expect("still exists");
            task.quantum_armed = peer_same_prio;
            if peer_same_prio {
                let slice_end = self.now + self.cfg.rr_quantum;
                self.push_event(slice_end, Event::Timeslice { task: head_id, gen });
            }
            return;
        }
    }

    /// Runs the task body's `on_cycle`, returning the CPU time it charged
    /// and whether the body panicked out of the hook.
    fn run_body_cycle(&mut self, id: TaskId) -> HookOutcome {
        let outcome = self.run_hook(id, Hook::Cycle);
        // The body may have sent into wakeup-bound mailboxes — but a
        // faulted cycle's sends were rolled back, so nothing to service.
        if !outcome.faulted && !self.wakeups.is_empty() {
            self.service_wakeups();
        }
        outcome
    }

    /// Dispatches one body hook under fault containment.
    ///
    /// The hook runs inside `catch_unwind`; every mutating port operation
    /// the body performs is journaled by [`TaskCtx`], and on a panic the
    /// journal is replayed in reverse so the faulting cycle's partial
    /// writes are never published (reads/receives are *not* undone —
    /// consumed input is at-most-once, like a crash after a real dequeue).
    /// The task is parked in [`TaskState::Faulted`] (except on the stop
    /// hook, where deletion proceeds regardless) and a
    /// [`KernelEvent::TaskFault`] is emitted.
    fn run_hook(&mut self, id: TaskId, hook: Hook) -> HookOutcome {
        let Some(task) = self.tasks.get_mut(&id) else {
            return HookOutcome::default();
        };
        let Some(mut body) = task.body.take() else {
            return HookOutcome::default();
        };
        let name = task.cfg.name.clone();
        let cycle = task.cycles;
        let started = task.started;
        if hook == Hook::Start || hook == Hook::Cycle {
            task.started = true;
        }
        let mut journal: Vec<UndoEntry> = Vec::new();
        let result = {
            let mut ctx = TaskCtx {
                now: self.now,
                task: id,
                name: name.clone(),
                cycle,
                charged: SimDuration::ZERO,
                journal: &mut journal,
                shm: &mut self.shm,
                mailboxes: &mut self.mailboxes,
                fifos: &mut self.fifos,
                rng: &mut self.rng,
                trace: &mut self.trace,
                shm_op_cost: self.cfg.shm_op_cost,
                mbx_op_cost: self.cfg.mbx_op_cost,
            };
            catch_unwind_quietly(move || {
                match hook {
                    Hook::Start => body.on_start(&mut ctx),
                    Hook::Cycle => {
                        if !started {
                            body.on_start(&mut ctx);
                        }
                        body.on_cycle(&mut ctx)
                    }
                    Hook::Stop => body.on_stop(&mut ctx),
                }
                (body, ctx.charged)
            })
        };
        match result {
            Ok((body, charged)) => {
                if let Some(task) = self.tasks.get_mut(&id) {
                    task.body = Some(body);
                }
                HookOutcome {
                    charged,
                    faulted: false,
                }
            }
            Err(payload) => {
                // Reverse-replay the journal: later writes are undone first
                // so overlapping operations restore the pre-cycle image.
                for entry in journal.drain(..).rev() {
                    match entry {
                        UndoEntry::ShmWrite { name, prior } => self.shm.undo_write(&name, &prior),
                        UndoEntry::MailboxSend { name, accepted } => {
                            self.mailboxes.undo_send(&name, accepted)
                        }
                        UndoEntry::FifoPut {
                            name,
                            accepted,
                            truncated,
                        } => self.fifos.undo_put(&name, accepted, truncated),
                    }
                }
                let cause = render_panic(payload.as_ref());
                if let Some(task) = self.tasks.get_mut(&id) {
                    // The body went down with the unwind; the task can
                    // never run again, only be deleted.
                    task.faults += 1;
                    task.fault_cause = Some(cause.clone());
                    if hook != Hook::Stop {
                        task.state = TaskState::Faulted;
                        self.faulted.insert(id);
                    }
                }
                self.counters.faults += 1;
                self.emit(KernelEvent::TaskFault {
                    task: name,
                    cycle,
                    cause,
                });
                HookOutcome {
                    charged: SimDuration::ZERO,
                    faulted: true,
                }
            }
        }
    }
}

/// First grid point `anchor + k·period` strictly after `now` (`k ≥ 0`).
fn next_grid_point(anchor: SimTime, period: SimDuration, now: SimTime) -> SimTime {
    if now < anchor {
        return anchor;
    }
    let p = period.as_nanos().max(1);
    let k = now.duration_since(anchor).as_nanos() / p + 1;
    anchor + SimDuration::from_nanos(k * p)
}

/// Renders a caught panic payload to readable text.
fn render_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

std::thread_local! {
    /// True while this thread is inside the kernel's contained hook call;
    /// the global panic hook stays silent so an *injected* fault does not
    /// spam stderr (real, uncontained panics still print).
    static SUPPRESS_PANIC_REPORT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: std::sync::Once = std::sync::Once::new();

/// `catch_unwind` with the default panic report suppressed for the
/// duration of the call. The replacement hook chains to the previous one
/// and is installed once per process; the suppression flag is thread-local
/// so parallel test threads never silence each other.
fn catch_unwind_quietly<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn std::any::Any + Send>> {
    QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_REPORT.with(std::cell::Cell::get) {
                previous(info);
            }
        }));
    });
    SUPPRESS_PANIC_REPORT.with(|flag| flag.set(true));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    SUPPRESS_PANIC_REPORT.with(|flag| flag.set(false));
    result
}

/// What one hook dispatch produced: the charged CPU time, and whether the
/// body panicked (in which case nothing was charged or published).
#[derive(Debug, Default, Clone, Copy)]
struct HookOutcome {
    charged: SimDuration,
    faulted: bool,
}

/// One reversible port mutation recorded while a body hook runs.
#[derive(Debug)]
enum UndoEntry {
    /// A successful SHM write; `prior` is the pre-write segment image.
    ShmWrite { name: ObjName, prior: Vec<u8> },
    /// A mailbox send attempt (`accepted == false` counted a rejection).
    MailboxSend { name: ObjName, accepted: bool },
    /// A FIFO append that took `accepted` bytes.
    FifoPut {
        name: ObjName,
        accepted: usize,
        truncated: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hook {
    Start,
    Cycle,
    Stop,
}

/// Execution context handed to a [`TaskBody`] while it runs.
///
/// All IPC operations charge their fixed CPU cost automatically; additional
/// computation is charged explicitly with [`TaskCtx::compute`].
pub struct TaskCtx<'a> {
    now: SimTime,
    task: TaskId,
    name: ObjName,
    cycle: u64,
    charged: SimDuration,
    /// Reversible-mutation log for fault containment; replayed in reverse
    /// by [`Kernel::run_hook`] when the body panics.
    journal: &'a mut Vec<UndoEntry>,
    shm: &'a mut ShmRegistry,
    mailboxes: &'a mut MailboxRegistry,
    fifos: &'a mut FifoRegistry,
    rng: &'a mut SimRng,
    trace: &'a mut EventSink<KernelEvent>,
    shm_op_cost: SimDuration,
    mbx_op_cost: SimDuration,
}

impl std::fmt::Debug for TaskCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskCtx")
            .field("task", &self.name)
            .field("now", &self.now)
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl TaskCtx<'_> {
    /// Virtual time at dispatch.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This task's id.
    pub fn task_id(&self) -> TaskId {
        self.task
    }

    /// This task's name.
    pub fn task_name(&self) -> &ObjName {
        &self.name
    }

    /// Zero-based index of the current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// CPU time charged so far this cycle.
    pub fn charged(&self) -> SimDuration {
        self.charged
    }

    /// Charges `span` of CPU time (the task's computation).
    pub fn compute(&mut self, span: SimDuration) {
        self.charged += span;
    }

    /// Charges a randomized computation in `[mean/2, mean*3/2)`.
    pub fn compute_about(&mut self, mean: SimDuration) {
        let ns = mean.as_nanos();
        if ns == 0 {
            return;
        }
        let sampled = self.rng.uniform_u64(ns / 2, ns + ns / 2 + 1);
        self.charged += SimDuration::from_nanos(sampled);
    }

    /// Writes a whole shared-memory segment; charges the SHM op cost.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::IpcError`] from the registry.
    pub fn shm_write(&mut self, name: &str, buf: &[u8]) -> Result<(), crate::error::IpcError> {
        self.charged += self.shm_op_cost;
        let obj = ObjName::new(name).map_err(crate::error::IpcError::BadName)?;
        let prior = self.shm.peek(&obj);
        let result = self.shm.write(name, buf);
        if result.is_ok() {
            if let Some(prior) = prior {
                self.journal.push(UndoEntry::ShmWrite { name: obj, prior });
            }
        }
        result
    }

    /// Reads a whole shared-memory segment; charges the SHM op cost.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::IpcError`] from the registry.
    pub fn shm_read(&mut self, name: &str) -> Result<Vec<u8>, crate::error::IpcError> {
        self.charged += self.shm_op_cost;
        self.shm.read(name)
    }

    /// Non-blocking mailbox send; charges the mailbox op cost.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::IpcError`] from the registry.
    pub fn mailbox_send(&mut self, name: &str, msg: &[u8]) -> Result<bool, crate::error::IpcError> {
        self.charged += self.mbx_op_cost;
        let obj = ObjName::new(name).map_err(crate::error::IpcError::BadName)?;
        let result = self.mailboxes.send(name, msg);
        if let Ok(accepted) = result {
            self.journal.push(UndoEntry::MailboxSend {
                name: obj,
                accepted,
            });
        }
        result
    }

    /// Non-blocking mailbox receive; charges the mailbox op cost (polling an
    /// empty mailbox still costs — that is the price of the §3.2 poll).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::IpcError`] from the registry.
    pub fn mailbox_recv(&mut self, name: &str) -> Result<Option<Vec<u8>>, crate::error::IpcError> {
        self.charged += self.mbx_op_cost;
        self.mailboxes.recv(name)
    }

    /// Non-blocking FIFO append; charges the mailbox op cost. Returns how
    /// many bytes were accepted (the stream may be near-full).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::IpcError`] from the registry.
    pub fn fifo_put(&mut self, name: &str, data: &[u8]) -> Result<usize, crate::error::IpcError> {
        self.charged += self.mbx_op_cost;
        let obj = ObjName::new(name).map_err(crate::error::IpcError::BadName)?;
        let result = self.fifos.put(name, data);
        if let Ok(accepted) = result {
            self.journal.push(UndoEntry::FifoPut {
                name: obj,
                accepted,
                truncated: accepted < data.len(),
            });
        }
        result
    }

    /// Non-blocking FIFO drain of up to `max` bytes; charges the mailbox
    /// op cost.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::IpcError`] from the registry.
    pub fn fifo_get(&mut self, name: &str, max: usize) -> Result<Vec<u8>, crate::error::IpcError> {
        self.charged += self.mbx_op_cost;
        self.fifos.get(name, max)
    }

    /// Appends a line to the kernel trace (a [`KernelEvent::UserLog`]).
    pub fn log(&mut self, what: impl Into<String>) {
        if self.trace.is_enabled() {
            let event = KernelEvent::UserLog {
                task: self.name.clone(),
                message: what.into(),
            };
            self.trace.emit(self.now, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::DataType;
    use crate::task::{FnBody, IdleBody};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn quiet_kernel(seed: u64) -> Kernel {
        Kernel::new(
            KernelConfig::new(seed)
                .with_timer(TimerJitterModel::ideal())
                .with_cpus(2),
        )
    }

    #[test]
    fn periodic_task_runs_on_its_grid() {
        let mut k = quiet_kernel(1);
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(10))
            .with_latency_tracking();
        let times: Rc<RefCell<Vec<u64>>> = Rc::default();
        let t2 = times.clone();
        let id = k
            .create_task(
                cfg,
                Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                    t2.borrow_mut().push(ctx.now().as_nanos());
                })),
            )
            .unwrap();
        k.start_task(id).unwrap();
        k.run_for(SimDuration::from_millis(10));
        let times = times.borrow();
        assert_eq!(times.len(), 10);
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(t, (i as u64 + 1) * 1_000_000, "cycle {i}");
        }
        let stats = k.task_stats(id).unwrap();
        assert_eq!(stats.count(), 10);
        assert_eq!(stats.average(), 0.0); // ideal timer, idle CPU
    }

    #[test]
    fn higher_priority_preempts_lower() {
        let mut k = quiet_kernel(2);
        // Low-priority task with a long cycle on CPU 0.
        let low_cfg = TaskConfig::periodic("low", Priority(10), SimDuration::from_millis(10))
            .unwrap()
            .with_base_cost(SimDuration::from_millis(5));
        let low = k.create_task(low_cfg, Box::new(IdleBody)).unwrap();
        // High-priority 1 kHz task with latency tracking.
        let high_cfg = TaskConfig::periodic("high", Priority(1), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(100))
            .with_latency_tracking();
        let high = k.create_task(high_cfg, Box::new(IdleBody)).unwrap();
        k.start_task(low).unwrap();
        k.start_task(high).unwrap();
        k.run_for(SimDuration::from_millis(50));
        let stats = k.task_stats(high).unwrap();
        assert!(stats.count() >= 45);
        // High-priority task is never delayed by the low one.
        assert_eq!(stats.max().unwrap(), 0);
        assert!(k.counters().preemptions > 0, "low task was never preempted");
        // Low task still makes progress despite preemption.
        assert!(k.task_cycles(low).unwrap() >= 4);
    }

    #[test]
    fn lower_priority_waits_for_higher() {
        let mut k = quiet_kernel(3);
        let high_cfg = TaskConfig::periodic("high", Priority(1), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(600));
        let low_cfg = TaskConfig::periodic("low", Priority(5), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(100))
            .with_latency_tracking();
        let high = k.create_task(high_cfg, Box::new(IdleBody)).unwrap();
        let low = k.create_task(low_cfg, Box::new(IdleBody)).unwrap();
        k.start_task(high).unwrap();
        k.start_task(low).unwrap();
        k.run_for(SimDuration::from_millis(20));
        let stats = k.task_stats(low).unwrap();
        // Low releases together with high, so it waits ~600 µs every cycle.
        assert!(stats.average() >= 590_000.0, "avg {}", stats.average());
    }

    #[test]
    fn equal_priority_round_robin_shares_cpu() {
        let mut k = Kernel::new(
            KernelConfig::new(4)
                .with_timer(TimerJitterModel::ideal())
                .with_cpus(1),
        );
        // Two CPU-hungry equal-priority tasks; each wants 8 ms every 10 ms.
        let mk = |name: &str| {
            TaskConfig::periodic(name, Priority(3), SimDuration::from_millis(10))
                .unwrap()
                .with_base_cost(SimDuration::from_millis(8))
        };
        let a = k.create_task(mk("taska"), Box::new(IdleBody)).unwrap();
        let b = k.create_task(mk("taskb"), Box::new(IdleBody)).unwrap();
        k.start_task(a).unwrap();
        k.start_task(b).unwrap();
        k.run_for(SimDuration::from_millis(100));
        // Demand is 160% of one CPU: both progress, neither starves.
        assert!(k.task_cycles(a).unwrap() >= 3, "a {:?}", k.task_cycles(a));
        assert!(k.task_cycles(b).unwrap() >= 3, "b {:?}", k.task_cycles(b));
        assert!(k.counters().timeslices > 0, "round robin never rotated");
    }

    #[test]
    fn linux_domain_runs_only_when_rt_idle() {
        let mut k = quiet_kernel(5);
        let hog_cfg = TaskConfig::aperiodic("hog", Priority(0))
            .unwrap()
            .in_linux_domain()
            .continuous()
            .with_base_cost(SimDuration::from_millis(1));
        let rt_cfg = TaskConfig::periodic("rt", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(200))
            .with_latency_tracking();
        let hog = k.create_task(hog_cfg, Box::new(IdleBody)).unwrap();
        let rt = k.create_task(rt_cfg, Box::new(IdleBody)).unwrap();
        k.start_task(hog).unwrap();
        k.trigger(hog).unwrap();
        k.start_task(rt).unwrap();
        k.run_for(SimDuration::from_millis(100));
        // The RT task is never delayed by the Linux hog.
        let stats = k.task_stats(rt).unwrap();
        assert_eq!(stats.max().unwrap(), 0, "RT delayed by Linux work");
        // The hog still consumed the leftover CPU.
        assert!(k.cpu_linux_utilization(0) > 0.5);
        assert!(k.cpu_rt_utilization(0) > 0.15);
    }

    #[test]
    fn suspend_discards_releases_and_resume_restarts() {
        let mut k = quiet_kernel(6);
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(10));
        let id = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(id).unwrap();
        // Half-millisecond slack so the cycle released exactly at the window
        // edge also finishes.
        k.run_for(SimDuration::from_millis(5) + SimDuration::from_micros(500));
        let cycles_before = k.task_cycles(id).unwrap();
        assert_eq!(cycles_before, 5);
        k.suspend_task(id).unwrap();
        k.run_for(SimDuration::from_millis(10));
        assert_eq!(k.task_cycles(id).unwrap(), cycles_before);
        assert_eq!(k.task_state(id), Some(TaskState::Suspended));
        k.resume_task(id).unwrap();
        k.run_for(SimDuration::from_millis(5) + SimDuration::from_micros(500));
        assert_eq!(k.task_cycles(id).unwrap(), cycles_before + 5);
    }

    #[test]
    fn delete_frees_name_and_stops_cycles() {
        let mut k = quiet_kernel(7);
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1)).unwrap();
        let id = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(id).unwrap();
        k.run_for(SimDuration::from_millis(3));
        k.delete_task(id).unwrap();
        let cycles = k.task_cycles(id).unwrap();
        k.run_for(SimDuration::from_millis(5));
        assert_eq!(k.task_cycles(id).unwrap(), cycles);
        assert_eq!(k.task_state(id), Some(TaskState::Deleted));
        assert_eq!(k.task_by_name("tick"), None);
        // The name can be reused.
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1)).unwrap();
        k.create_task(cfg, Box::new(IdleBody)).unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut k = quiet_kernel(8);
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1)).unwrap();
        k.create_task(cfg.clone(), Box::new(IdleBody)).unwrap();
        assert!(matches!(
            k.create_task(cfg, Box::new(IdleBody)),
            Err(KernelError::DuplicateTask(_))
        ));
    }

    #[test]
    fn bad_cpu_rejected() {
        let mut k = quiet_kernel(9);
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .on_cpu(7);
        assert!(matches!(
            k.create_task(cfg, Box::new(IdleBody)),
            Err(KernelError::NoSuchCpu(7))
        ));
    }

    #[test]
    fn aperiodic_task_runs_on_trigger() {
        let mut k = quiet_kernel(10);
        let hits: Rc<RefCell<u32>> = Rc::default();
        let h = hits.clone();
        let cfg = TaskConfig::aperiodic("event", Priority(1)).unwrap();
        let id = k
            .create_task(
                cfg,
                Box::new(FnBody(move |_ctx: &mut TaskCtx<'_>| {
                    *h.borrow_mut() += 1;
                })),
            )
            .unwrap();
        k.start_task(id).unwrap();
        k.run_for(SimDuration::from_millis(5));
        assert_eq!(*hits.borrow(), 0);
        k.trigger(id).unwrap();
        k.run_for(SimDuration::from_millis(1));
        assert_eq!(*hits.borrow(), 1);
        k.trigger(id).unwrap();
        k.run_for(SimDuration::from_millis(1));
        assert_eq!(*hits.borrow(), 2);
    }

    #[test]
    fn tasks_communicate_through_shm() {
        let mut k = quiet_kernel(11);
        k.shm_mut()
            .alloc("data", crate::shm::DataType::Integer, 1)
            .unwrap();
        let prod_cfg =
            TaskConfig::periodic("prod", Priority(1), SimDuration::from_millis(1)).unwrap();
        let prod = k
            .create_task(
                prod_cfg,
                Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                    let v = (ctx.cycle() + 1) as i32;
                    ctx.shm_write("data", &v.to_le_bytes()).unwrap();
                })),
            )
            .unwrap();
        let seen: Rc<RefCell<Vec<i32>>> = Rc::default();
        let s = seen.clone();
        let cons_cfg =
            TaskConfig::periodic("cons", Priority(2), SimDuration::from_millis(4)).unwrap();
        let cons = k
            .create_task(
                cons_cfg,
                Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                    let buf = ctx.shm_read("data").unwrap();
                    s.borrow_mut()
                        .push(i32::from_le_bytes(buf.try_into().unwrap()));
                })),
            )
            .unwrap();
        k.start_task(prod).unwrap();
        k.start_task(cons).unwrap();
        k.run_for(SimDuration::from_millis(12) + SimDuration::from_micros(100));
        let seen = seen.borrow();
        assert_eq!(seen.len(), 3);
        // Consumer at the 4 ms grid runs after the higher-priority producer
        // released at the same instant: it sees the 4th, 8th, 12th values.
        assert_eq!(*seen, vec![4, 8, 12]);
    }

    #[test]
    fn overruns_are_counted_not_queued() {
        let mut k = quiet_kernel(12);
        // Demands 3 ms of CPU every 1 ms: must overrun.
        let cfg = TaskConfig::periodic("greedy", Priority(1), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_millis(3));
        let id = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(id).unwrap();
        k.run_for(SimDuration::from_millis(30));
        assert!(k.task_overruns(id).unwrap() >= 15);
        assert!(k.task_cycles(id).unwrap() <= 11);
    }

    #[test]
    fn same_instant_cycle_ends_wake_a_bound_task_once() {
        // Two posters on different CPUs finish cycles at the same instants;
        // each cycle end runs the wakeup service. The bound consumer must be
        // woken once per instant — not once per same-instant cycle end,
        // which would spuriously overrun it.
        let mut k = Kernel::new(
            KernelConfig::new(31)
                .with_timer(TimerJitterModel::ideal())
                .with_cpus(2)
                .with_trace(512),
        );
        k.mailboxes_mut().create("inbox", 16).unwrap();
        for (name, cpu) in [("post0", 0), ("post1", 1)] {
            let cfg = TaskConfig::periodic(name, Priority(3), SimDuration::from_millis(1))
                .unwrap()
                .on_cpu(cpu);
            let id = k
                .create_task(
                    cfg,
                    Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                        let _ = ctx.mailbox_send("inbox", b"go");
                    })),
                )
                .unwrap();
            k.start_task(id).unwrap();
        }
        let consumer_cfg = TaskConfig::aperiodic("sink", Priority(2)).unwrap();
        let consumer = k
            .create_task(
                consumer_cfg,
                Box::new(FnBody(
                    |ctx: &mut TaskCtx<'_>| {
                        while let Ok(Some(_)) = ctx.mailbox_recv("inbox") {}
                    },
                )),
            )
            .unwrap();
        k.start_task(consumer).unwrap();
        k.bind_mailbox_wakeup("inbox", consumer).unwrap();
        k.run_for(SimDuration::from_millis(10));
        assert!(k.task_cycles(consumer).unwrap() >= 9);
        assert_eq!(k.task_overruns(consumer), Some(0));
        // Posting instants are the 10 cycle-end ticks: one wake each, even
        // though two cycle ends (one per CPU) land on every tick.
        let wakes = k
            .trace()
            .iter()
            .filter(|e| matches!(&e.event, KernelEvent::MailboxWake { task, .. } if task.as_str() == "sink"))
            .count();
        assert_eq!(wakes, 10);
    }

    #[test]
    fn trace_records_lifecycle() {
        let mut k = Kernel::new(
            KernelConfig::new(13)
                .with_timer(TimerJitterModel::ideal())
                .with_trace(64),
        );
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1)).unwrap();
        let id = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(id).unwrap();
        k.run_for(SimDuration::from_millis(2));
        k.delete_task(id).unwrap();
        let text: Vec<String> = k.trace().iter().map(|e| e.event.to_string()).collect();
        assert!(text.iter().any(|s| s.contains("create task `tick`")));
        assert!(text.iter().any(|s| s.contains("start task `tick`")));
        assert!(text.iter().any(|s| s.contains("delete task `tick`")));
        // Typed events are also matchable structurally.
        assert!(k.trace().iter().any(
            |e| matches!(&e.event, KernelEvent::Dispatch { task, .. } if task.as_str() == "tick")
        ));
        assert!(k
            .trace()
            .iter()
            .any(|e| matches!(&e.event, KernelEvent::Release { .. })));
    }

    #[test]
    fn trace_subscriber_sees_all_events_despite_tiny_ring() {
        use crate::trace::CountingSubscriber;
        use std::cell::Cell;

        struct SharedCount(Rc<Cell<u64>>);
        impl TraceSubscriber<KernelEvent> for SharedCount {
            fn on_event(&mut self, _time: SimTime, _event: &KernelEvent) {
                self.0.set(self.0.get() + 1);
            }
        }

        let mut k = Kernel::new(
            KernelConfig::new(13)
                .with_timer(TimerJitterModel::ideal())
                .with_trace(2),
        );
        let count = Rc::new(Cell::new(0));
        k.add_trace_subscriber(Box::new(SharedCount(count.clone())));
        let _ = CountingSubscriber::new(); // exercised in trace unit tests
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1)).unwrap();
        let id = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(id).unwrap();
        k.run_for(SimDuration::from_millis(5));
        k.delete_task(id).unwrap();
        // The ring held only 2 events but the tap saw the whole stream.
        assert_eq!(k.trace().len(), 2);
        assert_eq!(count.get(), k.trace().total_recorded());
        assert!(count.get() > 10);
        assert_eq!(
            k.trace().dropped(),
            k.trace().total_recorded() - k.trace().len() as u64
        );
    }

    #[test]
    fn response_times_and_deadline_misses_are_tracked() {
        let mut k = quiet_kernel(17);
        // 600 µs of work per 1 ms period: meets deadlines when alone.
        let cfg = TaskConfig::periodic("meets", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(600))
            .with_latency_tracking();
        let meets = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(meets).unwrap();
        k.run_for(SimDuration::from_millis(20));
        let resp = k.task_response_stats(meets).unwrap();
        assert!(resp.count() >= 19);
        assert_eq!(resp.min().unwrap(), 600_000);
        assert_eq!(k.task_deadline_misses(meets), Some(0));
        // Add a higher-priority 700 µs task: the 600 µs task now needs
        // 1.3 ms per period and misses every deadline.
        let cfg = TaskConfig::periodic("bully", Priority(1), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(700));
        let bully = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(bully).unwrap();
        k.run_for(SimDuration::from_millis(20));
        assert!(k.task_deadline_misses(meets).unwrap() > 5);
        assert!(k.task_response_stats(meets).unwrap().max().unwrap() > 1_000_000);
    }

    #[test]
    fn exec_budget_clamps_and_counts() {
        let mut k = quiet_kernel(15);
        // Demands 800 µs/cycle but is budgeted to 200 µs.
        let cfg = TaskConfig::periodic("greedy", Priority(1), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(800))
            .with_exec_budget(SimDuration::from_micros(200));
        let greedy = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        // A lower-priority observer that would starve without the clamp.
        let cfg = TaskConfig::periodic("obs", Priority(5), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(100))
            .with_latency_tracking();
        let obs = k.create_task(cfg, Box::new(IdleBody)).unwrap();
        k.start_task(greedy).unwrap();
        k.start_task(obs).unwrap();
        k.run_for(SimDuration::from_millis(50));
        assert!(k.task_budget_overruns(greedy).unwrap() >= 48);
        // The observer sees only the clamped 200 µs of interference.
        let worst = k.task_stats(obs).unwrap().max().unwrap();
        assert!(worst <= 210_000, "worst {worst}");
        // And the greedy task's CPU time reflects the clamp.
        let cpu = k.task_cpu_time(greedy).unwrap().as_nanos();
        assert!(cpu <= 51 * 200_000, "cpu {cpu}");
    }

    #[test]
    fn cpu_time_accounts_across_preemption() {
        let mut k = quiet_kernel(16);
        let low_cfg = TaskConfig::periodic("low", Priority(10), SimDuration::from_millis(10))
            .unwrap()
            .with_base_cost(SimDuration::from_millis(4));
        let low = k.create_task(low_cfg, Box::new(IdleBody)).unwrap();
        let high_cfg = TaskConfig::periodic("high", Priority(1), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(300));
        let high = k.create_task(high_cfg, Box::new(IdleBody)).unwrap();
        k.start_task(low).unwrap();
        k.start_task(high).unwrap();
        k.run_for(SimDuration::from_millis(100));
        // Despite constant preemption, low's accumulated CPU time matches
        // its completed cycles × 4 ms within one in-flight cycle.
        let cycles = k.task_cycles(low).unwrap();
        let cpu_ms = k.task_cpu_time(low).unwrap().as_nanos() / 1_000_000;
        assert!(cpu_ms >= cycles * 4, "cpu {cpu_ms} cycles {cycles}");
        assert!(cpu_ms <= (cycles + 1) * 4, "cpu {cpu_ms} cycles {cycles}");
        assert!(k.counters().preemptions > 0);
    }

    #[test]
    fn cross_cpu_tasks_do_not_interfere() {
        let mut k = quiet_kernel(14);
        let cfg0 = TaskConfig::periodic("cpu0", Priority(1), SimDuration::from_millis(1))
            .unwrap()
            .on_cpu(0)
            .with_base_cost(SimDuration::from_micros(900));
        let cfg1 = TaskConfig::periodic("cpu1", Priority(5), SimDuration::from_millis(1))
            .unwrap()
            .on_cpu(1)
            .with_base_cost(SimDuration::from_micros(100))
            .with_latency_tracking();
        let a = k.create_task(cfg0, Box::new(IdleBody)).unwrap();
        let b = k.create_task(cfg1, Box::new(IdleBody)).unwrap();
        k.start_task(a).unwrap();
        k.start_task(b).unwrap();
        k.run_for(SimDuration::from_millis(20));
        // Task on CPU 1 never queues behind the busy CPU 0 task.
        assert_eq!(k.task_stats(b).unwrap().max().unwrap(), 0);
    }

    // ------------------------------------------------------------------
    // Fault containment
    // ------------------------------------------------------------------

    #[test]
    fn panicking_body_faults_task_without_disturbing_peers() {
        let mut k = Kernel::new(
            KernelConfig::new(21)
                .with_timer(TimerJitterModel::ideal())
                .with_trace(64),
        );
        let bad_cfg = TaskConfig::periodic("bad", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(10));
        let bad = k
            .create_task(
                bad_cfg,
                Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                    if ctx.cycle() == 3 {
                        panic!("injected fault");
                    }
                })),
            )
            .unwrap();
        let good_cfg = TaskConfig::periodic("good", Priority(5), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(10));
        let good = k.create_task(good_cfg, Box::new(IdleBody)).unwrap();
        k.start_task(bad).unwrap();
        k.start_task(good).unwrap();
        k.run_for(SimDuration::from_millis(10) + SimDuration::from_micros(500));
        assert_eq!(k.task_state(bad), Some(TaskState::Faulted));
        assert_eq!(k.task_cycles(bad), Some(3), "faulting cycle not counted");
        assert_eq!(k.task_faults(bad), Some(1));
        assert_eq!(k.task_fault_cause(bad), Some("injected fault"));
        assert_eq!(k.counters().faults, 1);
        // The peer on the same CPU kept its full grid.
        assert_eq!(k.task_cycles(good), Some(10));
        let fault_events: Vec<String> = k
            .trace()
            .iter()
            .filter(|e| matches!(e.event, KernelEvent::TaskFault { .. }))
            .map(|e| e.event.to_string())
            .collect();
        assert_eq!(fault_events, vec!["fault `bad` at cycle 3: injected fault"]);
    }

    #[test]
    fn faulted_cycle_rolls_back_partial_port_writes() {
        let mut k = quiet_kernel(22);
        k.shm_mut().alloc("seg", DataType::Integer, 1).unwrap();
        k.mailboxes_mut().create("outbox", 4).unwrap();
        k.fifos_mut().create("stream", 16).unwrap();
        let cfg = TaskConfig::periodic("wrt", Priority(2), SimDuration::from_millis(1)).unwrap();
        let id = k
            .create_task(
                cfg,
                Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                    let value = (ctx.cycle() as i32 + 1).to_le_bytes();
                    ctx.shm_write("seg", &value).unwrap();
                    ctx.mailbox_send("outbox", &value).unwrap();
                    ctx.fifo_put("stream", &value).unwrap();
                    if ctx.cycle() == 2 {
                        panic!("mid-cycle crash");
                    }
                })),
            )
            .unwrap();
        k.start_task(id).unwrap();
        k.run_for(SimDuration::from_millis(5));
        assert_eq!(k.task_state(id), Some(TaskState::Faulted));
        // Cycles 0 and 1 published; cycle 2's writes were rolled back.
        assert_eq!(k.shm().get("seg").unwrap().write_count(), 2);
        assert_eq!(k.shm_mut().read("seg").unwrap(), 2i32.to_le_bytes());
        let mbx = k.mailboxes().get("outbox").unwrap();
        assert_eq!(mbx.len(), 2);
        assert_eq!(mbx.sent_count(), 2);
        let fifo = k.fifos().lookup("stream").unwrap();
        assert_eq!(fifo.written_bytes(), 8);
        assert_eq!(fifo.len(), 8);
    }

    #[test]
    fn panic_in_on_start_parks_the_task_before_any_release() {
        struct BadStart;
        impl TaskBody for BadStart {
            fn on_start(&mut self, _ctx: &mut TaskCtx<'_>) {
                panic!("bad start");
            }
            fn on_cycle(&mut self, _ctx: &mut TaskCtx<'_>) {}
        }
        let mut k = quiet_kernel(23);
        let cfg = TaskConfig::periodic("boom", Priority(2), SimDuration::from_millis(1)).unwrap();
        let id = k.create_task(cfg, Box::new(BadStart)).unwrap();
        k.start_task(id).unwrap();
        assert_eq!(k.task_state(id), Some(TaskState::Faulted));
        k.run_for(SimDuration::from_millis(5));
        assert_eq!(k.task_cycles(id), Some(0));
        assert_eq!(k.task_fault_cause(id), Some("bad start"));
    }

    #[test]
    fn faulted_task_rejects_suspend_but_deletes_cleanly() {
        let mut k = quiet_kernel(24);
        let cfg = TaskConfig::periodic("flaky", Priority(2), SimDuration::from_millis(1)).unwrap();
        let id = k
            .create_task(
                cfg,
                Box::new(FnBody(|_ctx: &mut TaskCtx<'_>| panic!("die"))),
            )
            .unwrap();
        k.start_task(id).unwrap();
        k.run_for(SimDuration::from_millis(3));
        assert_eq!(k.task_state(id), Some(TaskState::Faulted));
        assert!(matches!(
            k.suspend_task(id),
            Err(KernelError::InvalidState { .. })
        ));
        assert!(matches!(
            k.resume_task(id),
            Err(KernelError::InvalidState { .. })
        ));
        // Supervisors recover by deleting and re-creating the task.
        k.delete_task(id).unwrap();
        assert_eq!(k.task_state(id), Some(TaskState::Deleted));
        assert_eq!(k.task_by_name("flaky"), None);
        k.run_for(SimDuration::from_millis(3));
        assert_eq!(k.task_cycles(id), Some(0));
    }

    #[test]
    fn resume_rejoins_the_declared_release_grid() {
        let mut k = quiet_kernel(25);
        let cfg = TaskConfig::periodic("tick", Priority(2), SimDuration::from_millis(1))
            .unwrap()
            .with_base_cost(SimDuration::from_micros(10));
        let times: Rc<RefCell<Vec<u64>>> = Rc::default();
        let t2 = times.clone();
        let id = k
            .create_task(
                cfg,
                Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                    t2.borrow_mut().push(ctx.now().as_nanos());
                })),
            )
            .unwrap();
        k.start_task(id).unwrap();
        // Suspend off-grid at 2.3 ms, resume off-grid at 4.7 ms.
        k.run_for(SimDuration::from_micros(2300));
        k.suspend_task(id).unwrap();
        k.run_for(SimDuration::from_micros(2400));
        k.resume_task(id).unwrap();
        k.run_for(SimDuration::from_millis(5));
        let times = times.borrow();
        assert!(times.len() >= 6, "releases: {times:?}");
        for &t in times.iter() {
            assert_eq!(t % 1_000_000, 0, "off-grid release at {t} ns: {times:?}");
        }
        // First post-resume release is the next grid point after 4.7 ms.
        assert_eq!(times[2], 5_000_000, "{times:?}");
    }
}
