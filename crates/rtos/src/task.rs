//! Real-time task model: names, priorities, configuration, state and the
//! [`TaskBody`] behaviour trait.

use crate::error::NameError;
use crate::time::SimDuration;
use std::fmt;

/// Maximum length of a kernel object name (RTAI heritage; see the paper's
/// descriptor section: "the underlying real time OS use the six character
/// name to refer to the real time tasks").
pub const MAX_OBJ_NAME: usize = 6;

/// A validated kernel object name: 1–6 ASCII alphanumeric characters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjName(String);

impl ObjName {
    /// Validates and wraps a name.
    ///
    /// # Errors
    ///
    /// Returns [`NameError`] when the name is empty, longer than
    /// [`MAX_OBJ_NAME`], or contains non-alphanumeric ASCII.
    pub fn new(name: impl Into<String>) -> Result<Self, NameError> {
        let name = name.into();
        if name.is_empty() {
            return Err(NameError::new(name, "name is empty"));
        }
        if name.len() > MAX_OBJ_NAME {
            return Err(NameError::new(name, "name exceeds 6 characters"));
        }
        if !name.bytes().all(|b| b.is_ascii_alphanumeric()) {
            return Err(NameError::new(name, "name must be ASCII alphanumeric"));
        }
        Ok(ObjName(name))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for ObjName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::str::FromStr for ObjName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ObjName::new(s)
    }
}

/// Unique task identifier assigned by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

impl TaskId {
    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Fixed task priority. **Lower values are more urgent** (RTAI convention;
/// priority 0 is the most urgent RT priority).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Priority(pub u8);

impl Priority {
    /// The most urgent priority.
    pub const HIGHEST: Priority = Priority(0);
    /// The least urgent real-time priority.
    pub const LOWEST_RT: Priority = Priority(254);
    /// The pseudo-priority of Linux-domain work: always below any RT task.
    pub const LINUX: Priority = Priority(255);

    /// True if this priority preempts `other`.
    pub fn preempts(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Which of the two kernels of the dual-kernel architecture a task belongs
/// to. RT tasks always preempt Linux-domain work on the same CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Scheduled by the RT kernel (RTAI side).
    RealTime,
    /// Ordinary Linux work; runs only when the CPU has no runnable RT task.
    Linux,
}

/// Release pattern of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReleasePolicy {
    /// Released on a fixed period by the hardware timer.
    Periodic {
        /// The task period.
        period: SimDuration,
    },
    /// Released only when explicitly triggered (event-driven).
    Aperiodic,
}

/// Lifecycle state of a task inside the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Created but not yet started.
    Dormant,
    /// Waiting for its next release.
    Waiting,
    /// Released and queued for a CPU.
    Ready,
    /// Currently executing on a CPU.
    Running,
    /// Suspended by management action; releases are discarded.
    Suspended,
    /// The body panicked out of a hook; the task is parked until deleted.
    /// Releases are discarded and the scheduler never dispatches it again.
    Faulted,
    /// Deleted; the id is dead.
    Deleted,
}

/// Static configuration of a task, built with [`TaskConfig::periodic`] /
/// [`TaskConfig::aperiodic`] and refined with the builder-style setters.
#[derive(Debug, Clone)]
pub struct TaskConfig {
    /// Task name (unique per kernel).
    pub name: ObjName,
    /// Scheduling priority.
    pub priority: Priority,
    /// CPU the task is pinned to (`runoncpu` in the descriptor).
    pub cpu: u32,
    /// Release pattern.
    pub release: ReleasePolicy,
    /// Scheduling domain.
    pub domain: Domain,
    /// Fixed CPU cost charged per cycle *in addition to* whatever the body
    /// charges via [`TaskCtx::compute`](crate::kernel::TaskCtx::compute).
    pub base_cost: SimDuration,
    /// Whether the kernel records release→dispatch latency for this task.
    pub track_latency: bool,
    /// Whether the task re-releases itself immediately after every cycle
    /// (a `while (1)` worker — used to model Linux-domain CPU hogs).
    pub continuous: bool,
    /// Per-cycle execution budget. When set, a cycle that charges more CPU
    /// than this is clamped to the budget and counted as a budget overrun —
    /// the kernel-level half of enforceable contracts.
    pub exec_budget: Option<SimDuration>,
}

impl TaskConfig {
    /// Configuration for a periodic RT task.
    ///
    /// # Errors
    ///
    /// Returns [`NameError`] if the name is invalid.
    pub fn periodic(
        name: &str,
        priority: Priority,
        period: SimDuration,
    ) -> Result<Self, NameError> {
        Ok(TaskConfig {
            name: ObjName::new(name)?,
            priority,
            cpu: 0,
            release: ReleasePolicy::Periodic { period },
            domain: Domain::RealTime,
            base_cost: SimDuration::from_nanos(1_000),
            track_latency: false,
            continuous: false,
            exec_budget: None,
        })
    }

    /// Configuration for an aperiodic (event-triggered) RT task.
    ///
    /// # Errors
    ///
    /// Returns [`NameError`] if the name is invalid.
    pub fn aperiodic(name: &str, priority: Priority) -> Result<Self, NameError> {
        Ok(TaskConfig {
            name: ObjName::new(name)?,
            priority,
            cpu: 0,
            release: ReleasePolicy::Aperiodic,
            domain: Domain::RealTime,
            base_cost: SimDuration::from_nanos(1_000),
            track_latency: false,
            continuous: false,
            exec_budget: None,
        })
    }

    /// Pins the task to a CPU.
    pub fn on_cpu(mut self, cpu: u32) -> Self {
        self.cpu = cpu;
        self
    }

    /// Marks the task as Linux-domain background work.
    pub fn in_linux_domain(mut self) -> Self {
        self.domain = Domain::Linux;
        self.priority = Priority::LINUX;
        self
    }

    /// Sets the fixed per-cycle CPU cost.
    pub fn with_base_cost(mut self, cost: SimDuration) -> Self {
        self.base_cost = cost;
        self
    }

    /// Enables release→dispatch latency tracking.
    pub fn with_latency_tracking(mut self) -> Self {
        self.track_latency = true;
        self
    }

    /// Makes the task re-release itself immediately after every cycle.
    pub fn continuous(mut self) -> Self {
        self.continuous = true;
        self
    }

    /// Sets a per-cycle execution budget (kernel-enforced).
    pub fn with_exec_budget(mut self, budget: SimDuration) -> Self {
        self.exec_budget = Some(budget);
        self
    }

    /// The period, if periodic.
    pub fn period(&self) -> Option<SimDuration> {
        match self.release {
            ReleasePolicy::Periodic { period } => Some(period),
            ReleasePolicy::Aperiodic => None,
        }
    }
}

/// Behaviour of a task, invoked by the kernel on each release.
///
/// Implementations receive a [`TaskCtx`](crate::kernel::TaskCtx) giving
/// access to virtual time, IPC, and CPU-cost charging. The kernel calls
/// `on_start` once before the first cycle, `on_cycle` at every release, and
/// `on_stop` when the task is deleted.
pub trait TaskBody {
    /// Called once, at task start, in task context.
    fn on_start(&mut self, _ctx: &mut crate::kernel::TaskCtx<'_>) {}

    /// Called at every release, in task context.
    fn on_cycle(&mut self, ctx: &mut crate::kernel::TaskCtx<'_>);

    /// Called once when the task is deleted, in task context.
    fn on_stop(&mut self, _ctx: &mut crate::kernel::TaskCtx<'_>) {}
}

/// Adapter turning a closure into a [`TaskBody`] (cycle-only).
pub struct FnBody<F>(pub F);

impl<F: FnMut(&mut crate::kernel::TaskCtx<'_>)> TaskBody for FnBody<F> {
    fn on_cycle(&mut self, ctx: &mut crate::kernel::TaskCtx<'_>) {
        (self.0)(ctx)
    }
}

/// A body that does nothing but burn its configured base cost — used for
/// load generators and scheduler tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleBody;

impl TaskBody for IdleBody {
    fn on_cycle(&mut self, _ctx: &mut crate::kernel::TaskCtx<'_>) {}
}

/// A body that burns *real* wall-clock CPU on every cycle, in addition to
/// the virtual-time base cost the kernel charges.
///
/// Virtual-time simulation makes simulated cycles nearly free in wall
/// time, so a throughput bench comparing the serial and parallel executors
/// on [`IdleBody`] tasks would measure event-loop bookkeeping rather than
/// cycle execution. `SpinBody` stands in for a real component body: each
/// cycle runs `iters` rounds of an xorshift mixer through
/// [`std::hint::black_box`], giving the worker threads genuine work to
/// execute concurrently. The mixed value feeds back into the next cycle,
/// so the loop cannot be hoisted or folded away — and the body stays fully
/// deterministic (no clock, no RNG draws, no shared state).
#[derive(Debug, Clone, Copy)]
pub struct SpinBody {
    iters: u32,
    acc: u64,
}

impl SpinBody {
    /// A body spinning `iters` mixer rounds per cycle.
    pub fn new(iters: u32) -> Self {
        SpinBody {
            iters,
            acc: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl TaskBody for SpinBody {
    fn on_cycle(&mut self, _ctx: &mut crate::kernel::TaskCtx<'_>) {
        let mut x = std::hint::black_box(self.acc);
        for _ in 0..self.iters {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x = std::hint::black_box(x);
        }
        self.acc = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_name_accepts_valid() {
        for ok in ["a", "calc", "disp01", "ABC123"] {
            assert!(ObjName::new(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn obj_name_rejects_invalid() {
        for bad in ["", "toolong7", "has space", "dash-x", "日本"] {
            assert!(ObjName::new(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn obj_name_parses_from_str() {
        let n: ObjName = "camera".parse().unwrap();
        assert_eq!(n.as_str(), "camera");
        assert!("too_long".parse::<ObjName>().is_err());
    }

    #[test]
    fn priority_ordering_is_rtai_style() {
        assert!(Priority(0).preempts(Priority(1)));
        assert!(!Priority(5).preempts(Priority(5)));
        assert!(Priority::HIGHEST.preempts(Priority::LINUX));
        assert!(Priority::LOWEST_RT.preempts(Priority::LINUX));
    }

    #[test]
    fn periodic_config_builder() {
        let cfg = TaskConfig::periodic("calc", Priority(2), SimDuration::from_hz(1000))
            .unwrap()
            .on_cpu(0)
            .with_base_cost(SimDuration::from_micros(50))
            .with_latency_tracking();
        assert_eq!(cfg.period(), Some(SimDuration::from_millis(1)));
        assert_eq!(cfg.cpu, 0);
        assert!(cfg.track_latency);
        assert_eq!(cfg.domain, Domain::RealTime);
    }

    #[test]
    fn linux_domain_forces_linux_priority() {
        let cfg = TaskConfig::aperiodic("hog", Priority(1))
            .unwrap()
            .in_linux_domain();
        assert_eq!(cfg.priority, Priority::LINUX);
        assert_eq!(cfg.domain, Domain::Linux);
        assert_eq!(cfg.period(), None);
    }
}
