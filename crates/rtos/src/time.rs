//! Virtual time for the simulated kernel.
//!
//! All simulation time is expressed in integer nanoseconds. Two newtypes keep
//! points in time ([`SimTime`]) and spans ([`SimDuration`]) statically
//! distinct (C-NEWTYPE); scheduling *latency* — which can be negative when a
//! periodic hardware timer fires early — is a plain signed [`LatencyNs`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Signed scheduling latency in nanoseconds.
///
/// Negative values mean the task was dispatched *before* its ideal release
/// point, which genuinely happens on periodic-mode hardware timers whose
/// calibration drifts (see Table 1 of the paper, where the stress-mode
/// average is about −21 µs).
pub type LatencyNs = i64;

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point `ns` nanoseconds after the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference `self - other` in nanoseconds.
    ///
    /// This is the primitive from which scheduling latency is computed:
    /// `dispatch.signed_delta(ideal_release)`.
    pub fn signed_delta(self, other: SimTime) -> LatencyNs {
        self.0 as i64 - other.0 as i64
    }

    /// Adds a signed offset, saturating at the epoch.
    pub fn offset(self, delta: LatencyNs) -> SimTime {
        if delta >= 0 {
            SimTime(self.0.saturating_add(delta as u64))
        } else {
            SimTime(self.0.saturating_sub(delta.unsigned_abs()))
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// The period of a task running at `hz` cycles per second.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be positive");
        SimDuration(1_000_000_000 / hz)
    }

    /// Length of the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length of the span in (fractional) seconds — for wall-clock
    /// throughput reporting (simulated-ns per real second and the like).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if the span is zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by an integer factor.
    pub const fn mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", self.0 / 1_000_000_000)
        } else if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}ms", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}us", self.0 / 1_000)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<SimDuration> for u64 {
    fn from(d: SimDuration) -> u64 {
        d.as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_nanos(500);
        assert_eq!((t + d).as_nanos(), 1_500);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn signed_delta_is_signed() {
        let early = SimTime::from_nanos(100);
        let late = SimTime::from_nanos(300);
        assert_eq!(late.signed_delta(early), 200);
        assert_eq!(early.signed_delta(late), -200);
    }

    #[test]
    fn offset_handles_negative_saturation() {
        let t = SimTime::from_nanos(100);
        assert_eq!(t.offset(-500), SimTime::ZERO);
        assert_eq!(t.offset(50).as_nanos(), 150);
        assert_eq!(t.offset(-40).as_nanos(), 60);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_hz(1000).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_hz(4).as_nanos(), 250_000_000);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn from_hz_rejects_zero() {
        let _ = SimDuration::from_hz(0);
    }

    #[test]
    fn duration_saturating_sub() {
        let a = SimDuration::from_nanos(100);
        let b = SimDuration::from_nanos(300);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a).as_nanos(), 200);
    }

    #[test]
    fn display_picks_best_unit() {
        assert_eq!(SimDuration::from_millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_nanos(13).to_string(), "13ns");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2s");
    }
}
