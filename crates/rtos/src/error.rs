//! Error types of the simulated kernel.

use crate::task::TaskId;
use std::fmt;

/// An invalid kernel object name.
///
/// The simulated OS inherits RTAI's restriction that task and IPC object
/// names are at most six characters (the paper's descriptor format calls
/// this out explicitly), non-empty, and ASCII alphanumeric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameError {
    name: String,
    reason: &'static str,
}

impl NameError {
    pub(crate) fn new(name: impl Into<String>, reason: &'static str) -> Self {
        NameError {
            name: name.into(),
            reason,
        }
    }

    /// The offending name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid object name `{}`: {}", self.name, self.reason)
    }
}

impl std::error::Error for NameError {}

/// Errors from the IPC layer (shared memory and mailboxes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpcError {
    /// The object name violates the OS naming rules.
    BadName(NameError),
    /// No object with that name exists.
    NotFound(crate::task::ObjName),
    /// An object with the same name but a different shape already exists.
    Incompatible {
        /// The contested name.
        name: crate::task::ObjName,
        /// Shape of the existing object.
        expected: String,
        /// Shape that was requested.
        found: String,
    },
    /// A buffer of the wrong length was supplied.
    SizeMismatch {
        /// The object name.
        name: crate::task::ObjName,
        /// Required length in bytes.
        expected: usize,
        /// Supplied length in bytes.
        found: usize,
    },
    /// Zero-sized objects cannot be allocated.
    ZeroSize(crate::task::ObjName),
}

impl fmt::Display for IpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpcError::BadName(e) => write!(f, "{e}"),
            IpcError::NotFound(name) => write!(f, "no IPC object named `{name}`"),
            IpcError::Incompatible {
                name,
                expected,
                found,
            } => write!(
                f,
                "IPC object `{name}` exists with shape {expected}, requested {found}"
            ),
            IpcError::SizeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "buffer for `{name}` must be {expected} bytes, got {found}"
            ),
            IpcError::ZeroSize(name) => write!(f, "IPC object `{name}` would be zero-sized"),
        }
    }
}

impl std::error::Error for IpcError {}

impl From<NameError> for IpcError {
    fn from(e: NameError) -> Self {
        IpcError::BadName(e)
    }
}

/// Errors from kernel task management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The task name violates the OS naming rules.
    BadName(NameError),
    /// A task with the same name already exists.
    DuplicateTask(crate::task::ObjName),
    /// No task with the given id exists.
    NoSuchTask(TaskId),
    /// The requested CPU does not exist on this kernel.
    NoSuchCpu(u32),
    /// The operation is invalid in the task's current state.
    InvalidState {
        /// The task.
        task: TaskId,
        /// What was attempted.
        operation: &'static str,
        /// The state it was in.
        state: crate::task::TaskState,
    },
    /// An IPC operation inside the kernel failed.
    Ipc(IpcError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadName(e) => write!(f, "{e}"),
            KernelError::DuplicateTask(name) => write!(f, "task `{name}` already exists"),
            KernelError::NoSuchTask(id) => write!(f, "no task with id {id:?}"),
            KernelError::NoSuchCpu(cpu) => write!(f, "no CPU {cpu} on this kernel"),
            KernelError::InvalidState {
                task,
                operation,
                state,
            } => write!(f, "cannot {operation} task {task:?} in state {state:?}"),
            KernelError::Ipc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Ipc(e) => Some(e),
            KernelError::BadName(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IpcError> for KernelError {
    fn from(e: IpcError) -> Self {
        KernelError::Ipc(e)
    }
}

impl From<NameError> for KernelError {
    fn from(e: NameError) -> Self {
        KernelError::BadName(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ObjName;

    #[test]
    fn errors_display_meaningfully() {
        let name = ObjName::new("calc").unwrap();
        let e = IpcError::NotFound(name.clone());
        assert!(e.to_string().contains("calc"));
        let e = KernelError::DuplicateTask(name);
        assert!(e.to_string().contains("already exists"));
        let e = KernelError::NoSuchCpu(3);
        assert!(e.to_string().contains("CPU 3"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NameError>();
        assert_err::<IpcError>();
        assert_err::<KernelError>();
    }

    #[test]
    fn ipc_error_sources_chain() {
        use std::error::Error;
        let ke = KernelError::Ipc(IpcError::ZeroSize(ObjName::new("x").unwrap()));
        assert!(ke.source().is_some());
    }
}
