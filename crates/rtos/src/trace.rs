//! Typed kernel tracing: the event model, the bounded ring buffer that
//! carries it, and the subscriber trait for live taps.
//!
//! Everything the scheduler does that an observer could care about is
//! described by a [`KernelEvent`] value instead of a free-form string, so
//! benches, adaptation policies and tests can match on events structurally.
//! Events flow into an [`EventSink`]: a bounded drop-oldest ring
//! ([`TraceRing`]) plus any number of [`TraceSubscriber`] live taps.
//!
//! **Observer-effect freedom.** Emission never touches the kernel's random
//! stream and never schedules simulation events, so enabling or disabling
//! tracing cannot change a scheduling decision. The property test
//! `observer_effect.rs` (root test suite) checks this end to end.

use crate::latency::LoadMode;
use crate::task::{ObjName, Priority};
use crate::time::{LatencyNs, SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// A scheduling-relevant occurrence inside the kernel.
///
/// The `Display` rendering is the human-readable trace line (the strings
/// the pre-typed trace produced), so text logs migrate mechanically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelEvent {
    /// A task object was created (`Dormant`).
    TaskCreated {
        /// Task name.
        task: ObjName,
        /// CPU the task is pinned to.
        cpu: u32,
        /// Scheduling priority.
        priority: Priority,
    },
    /// A dormant task was started.
    TaskStarted {
        /// Task name.
        task: ObjName,
    },
    /// A task was suspended.
    TaskSuspended {
        /// Task name.
        task: ObjName,
        /// True when the task was running and the suspend takes effect at
        /// cycle end.
        deferred: bool,
    },
    /// A suspended task was resumed.
    TaskResumed {
        /// Task name.
        task: ObjName,
    },
    /// A task was deleted.
    TaskDeleted {
        /// Task name.
        task: ObjName,
    },
    /// A release arrived and the task was queued for its CPU.
    Release {
        /// Task name.
        task: ObjName,
        /// The ideal (jitter-free) release instant.
        ideal: SimTime,
    },
    /// A fresh cycle was dispatched onto a CPU.
    Dispatch {
        /// Task name.
        task: ObjName,
        /// The CPU it runs on.
        cpu: u32,
        /// Release→dispatch latency in nanoseconds.
        latency: LatencyNs,
    },
    /// A running task was displaced by a more urgent release.
    Preempt {
        /// The displaced task.
        task: ObjName,
        /// The CPU involved.
        cpu: u32,
    },
    /// Round-robin rotation among equal-priority peers.
    Timeslice {
        /// The rotated-out task.
        task: ObjName,
        /// The CPU involved.
        cpu: u32,
    },
    /// A release was discarded because the previous cycle had not finished.
    Overrun {
        /// Task name.
        task: ObjName,
    },
    /// A tracked cycle finished later than its implicit deadline (period).
    DeadlineMiss {
        /// Task name.
        task: ObjName,
        /// Release→finish response time in nanoseconds.
        response: LatencyNs,
    },
    /// A cycle demanded more CPU than its execution budget; the kernel
    /// clamped it (the enforcement half of contracts).
    BudgetClamp {
        /// Task name.
        task: ObjName,
        /// What the cycle asked for.
        demanded: SimDuration,
        /// The budget it was clamped to.
        budget: SimDuration,
    },
    /// A task body panicked out of a hook; the kernel contained the unwind,
    /// rolled back the cycle's partial port writes and parked the task in
    /// `Faulted`.
    TaskFault {
        /// Task name.
        task: ObjName,
        /// Zero-based cycle index of the faulting cycle.
        cycle: u64,
        /// The panic payload, rendered to text.
        cause: String,
    },
    /// A mailbox message released a wakeup-bound aperiodic task.
    MailboxWake {
        /// The mailbox that received the message.
        mailbox: ObjName,
        /// The released task.
        task: ObjName,
    },
    /// The background-load regime changed mid-run.
    LoadModeChanged {
        /// The new regime.
        mode: LoadMode,
    },
    /// A task body logged a free-form line via `TaskCtx::log`.
    UserLog {
        /// The logging task.
        task: ObjName,
        /// The message.
        message: String,
    },
}

impl fmt::Display for KernelEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelEvent::TaskCreated {
                task,
                cpu,
                priority,
            } => {
                write!(f, "create task `{task}` (cpu {cpu}, prio {priority})")
            }
            KernelEvent::TaskStarted { task } => write!(f, "start task `{task}`"),
            KernelEvent::TaskSuspended {
                task,
                deferred: false,
            } => {
                write!(f, "suspend task `{task}`")
            }
            KernelEvent::TaskSuspended {
                task,
                deferred: true,
            } => {
                write!(f, "suspend task `{task}` (running; effective at cycle end)")
            }
            KernelEvent::TaskResumed { task } => write!(f, "resume task `{task}`"),
            KernelEvent::TaskDeleted { task } => write!(f, "delete task `{task}`"),
            KernelEvent::Release { task, ideal } => {
                write!(f, "release `{task}` (ideal {} ns)", ideal.as_nanos())
            }
            KernelEvent::Dispatch { task, cpu, latency } => {
                write!(f, "dispatch `{task}` on cpu {cpu} (latency {latency} ns)")
            }
            KernelEvent::Preempt { task, cpu } => {
                write!(f, "preempt `{task}` on cpu {cpu}")
            }
            KernelEvent::Timeslice { task, cpu } => {
                write!(f, "timeslice `{task}` on cpu {cpu}")
            }
            KernelEvent::Overrun { task } => {
                write!(f, "overrun `{task}` (release discarded)")
            }
            KernelEvent::DeadlineMiss { task, response } => {
                write!(f, "deadline miss `{task}` (response {response} ns)")
            }
            KernelEvent::BudgetClamp {
                task,
                demanded,
                budget,
            } => write!(
                f,
                "budget clamp `{task}` ({} ns -> {} ns)",
                demanded.as_nanos(),
                budget.as_nanos()
            ),
            KernelEvent::TaskFault { task, cycle, cause } => {
                write!(f, "fault `{task}` at cycle {cycle}: {cause}")
            }
            KernelEvent::MailboxWake { mailbox, task } => {
                write!(f, "mailbox `{mailbox}` wakes `{task}`")
            }
            KernelEvent::LoadModeChanged { mode } => write!(f, "load mode -> {mode}"),
            KernelEvent::UserLog { task, message } => write!(f, "[{task}] {message}"),
        }
    }
}

/// An event paired with the virtual time it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timestamped<E> {
    /// When the event happened.
    pub time: SimTime,
    /// The event payload.
    pub event: E,
}

/// An event tagged with the CPU it belongs to and a per-stream sequence
/// number, used when merging the parallel executor's per-thread buffers
/// into one deterministic total order.
///
/// `seq` breaks ties among same-time same-CPU events and preserves each
/// source stream's internal order; its absolute value is executor-specific
/// (a global index in deterministic mode, a per-shard index in parallel
/// mode), so equivalence checks compare `(time, cpu, event)` and treat
/// `seq` as ordering metadata only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedEvent<E> {
    /// CPU the event is attributed to (`u32::MAX` = global/no CPU).
    pub cpu: u32,
    /// Position within the source stream.
    pub seq: u64,
    /// The event and its virtual timestamp.
    pub entry: Timestamped<E>,
}

/// Merges per-thread event streams into a single deterministic total
/// order, keyed by `(time, cpu, seq)`.
///
/// Each input stream must be internally ordered by `(time, seq)` (which
/// per-worker kernel buffers are by construction); the merge is a stable
/// sort, so the result is a linearization of the union that depends only
/// on the events themselves — never on which OS thread flushed first.
pub fn merge_tagged<E>(streams: Vec<Vec<TaggedEvent<E>>>) -> Vec<TaggedEvent<E>> {
    let mut all: Vec<TaggedEvent<E>> = streams.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.entry.time, e.cpu, e.seq));
    all
}

/// A bounded drop-oldest ring buffer of timestamped events.
///
/// Capacity 0 records nothing (but still counts). When full, the oldest
/// entry is dropped and [`TraceRing::dropped`] is incremented, so a reader
/// always knows whether the window is complete.
#[derive(Debug, Clone)]
pub struct TraceRing<E> {
    capacity: usize,
    events: VecDeque<Timestamped<E>>,
    dropped: u64,
    total: u64,
}

impl<E> TraceRing<E> {
    /// An empty ring with the given capacity.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
            total: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events recorded over the ring's lifetime, including dropped ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events evicted to make room (oldest-first eviction).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.total += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Timestamped { time, event });
    }

    /// Iterates over held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Timestamped<E>> {
        self.events.iter()
    }

    /// Discards all held events (counters are preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// A live tap on an event stream.
///
/// Subscribers see every event at emission time, before ring eviction, so
/// they observe the complete stream even when the ring is small.
/// Implementations must not have side effects on the system under
/// observation (they receive `&E` and no kernel handle, which enforces
/// this structurally).
pub trait TraceSubscriber<E> {
    /// Called for every emitted event.
    fn on_event(&mut self, time: SimTime, event: &E);
}

/// A subscriber that just counts events — useful as a cheap liveness tap.
#[derive(Debug, Default)]
pub struct CountingSubscriber {
    count: u64,
}

impl CountingSubscriber {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<E> TraceSubscriber<E> for CountingSubscriber {
    fn on_event(&mut self, _time: SimTime, _event: &E) {
        self.count += 1;
    }
}

/// Ring buffer plus live subscribers: the full sink for one event stream.
pub struct EventSink<E> {
    ring: TraceRing<E>,
    subscribers: Vec<Box<dyn TraceSubscriber<E>>>,
}

impl<E: fmt::Debug> fmt::Debug for EventSink<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventSink")
            .field("ring", &self.ring)
            .field("subscribers", &self.subscribers.len())
            .finish()
    }
}

impl<E> EventSink<E> {
    /// A sink whose ring holds `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventSink {
            ring: TraceRing::new(capacity),
            subscribers: Vec::new(),
        }
    }

    /// True when emitting has any observable effect (ring or taps). Use to
    /// skip event construction entirely on the disabled path.
    pub fn is_enabled(&self) -> bool {
        self.ring.capacity() > 0 || !self.subscribers.is_empty()
    }

    /// Attaches a live tap.
    pub fn subscribe(&mut self, subscriber: Box<dyn TraceSubscriber<E>>) {
        self.subscribers.push(subscriber);
    }

    /// Emits an event to all subscribers and the ring.
    pub fn emit(&mut self, time: SimTime, event: E) {
        for sub in &mut self.subscribers {
            sub.on_event(time, &event);
        }
        self.ring.push(time, event);
    }

    /// Emits lazily: the event is only constructed when the sink is
    /// enabled. Call this on hot paths.
    pub fn emit_with(&mut self, time: SimTime, make: impl FnOnce() -> E) {
        if self.is_enabled() {
            self.emit(time, make());
        }
    }

    /// The underlying ring (read access).
    pub fn ring(&self) -> &TraceRing<E> {
        &self.ring
    }

    /// Iterates over held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Timestamped<E>> {
        self.ring.iter()
    }

    /// Discards held events (counters and subscribers are preserved).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    #[test]
    fn merge_tagged_is_a_deterministic_linearization() {
        let tag = |cpu: u32, seq: u64, ns: u64, ev: u32| TaggedEvent {
            cpu,
            seq,
            entry: Timestamped {
                time: t(ns),
                event: ev,
            },
        };
        // Two per-worker streams, each internally time-ordered; the merge
        // must interleave by (time, cpu, seq) regardless of stream order.
        let cpu0 = vec![tag(0, 0, 10, 1), tag(0, 1, 10, 2), tag(0, 2, 30, 3)];
        let cpu1 = vec![tag(1, 0, 10, 4), tag(1, 1, 20, 5)];
        let ab = merge_tagged(vec![cpu0.clone(), cpu1.clone()]);
        let ba = merge_tagged(vec![cpu1, cpu0]);
        assert_eq!(ab, ba);
        let order: Vec<u32> = ab.iter().map(|e| e.entry.event).collect();
        assert_eq!(order, vec![1, 2, 4, 5, 3]);
    }

    #[test]
    fn ring_keeps_newest_and_counts_dropped() {
        let mut ring: TraceRing<u32> = TraceRing::new(3);
        for i in 0..10u32 {
            ring.push(t(i as u64), i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.total_recorded(), 10);
        let held: Vec<u32> = ring.iter().map(|e| e.event).collect();
        assert_eq!(held, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut ring: TraceRing<u32> = TraceRing::new(0);
        ring.push(t(1), 1);
        assert!(ring.is_empty());
        assert_eq!(ring.total_recorded(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn subscribers_see_events_before_eviction() {
        let mut sink: EventSink<u32> = EventSink::new(1);
        sink.subscribe(Box::new(CountingSubscriber::new()));
        assert!(sink.is_enabled());
        for i in 0..5u32 {
            sink.emit(t(i as u64), i);
        }
        assert_eq!(sink.ring().len(), 1);
        // The ring only holds the newest event, but the tap saw all five —
        // verified indirectly through total_recorded.
        assert_eq!(sink.ring().total_recorded(), 5);
    }

    #[test]
    fn disabled_sink_skips_event_construction() {
        let mut sink: EventSink<u32> = EventSink::new(0);
        let mut built = false;
        sink.emit_with(t(0), || {
            built = true;
            1
        });
        assert!(!built, "event constructed on the disabled path");
    }

    #[test]
    fn display_matches_legacy_trace_lines() {
        let task = ObjName::new("tick").unwrap();
        assert_eq!(
            KernelEvent::TaskStarted { task: task.clone() }.to_string(),
            "start task `tick`"
        );
        assert_eq!(
            KernelEvent::TaskSuspended {
                task: task.clone(),
                deferred: true
            }
            .to_string(),
            "suspend task `tick` (running; effective at cycle end)"
        );
        assert_eq!(
            KernelEvent::UserLog {
                task,
                message: "hello".into()
            }
            .to_string(),
            "[tick] hello"
        );
    }
}
