//! Byte-stream FIFOs (the simulated `RTAI.FIFO` interface).
//!
//! RTAI's third IPC primitive next to shared memory and mailboxes:
//! a named, bounded byte stream (`rtf_create` / `rtf_put` / `rtf_get`).
//! Where SHM carries *state* (last value wins) and mailboxes carry
//! *messages* (whole or not at all), a FIFO carries a *stream*: writes
//! append as many bytes as fit, reads drain up to a requested count —
//! both strictly non-blocking, both possibly partial. The paper's
//! prototype supports only SHM and mailboxes; FIFOs are provided as the
//! documented extension the future work asks for ("limited communication
//! support between real-time tasks").

use crate::error::IpcError;
use crate::task::ObjName;
use std::collections::{HashMap, VecDeque};

/// One named byte-stream FIFO.
#[derive(Debug, Clone)]
pub struct Fifo {
    name: ObjName,
    capacity: usize,
    buffer: VecDeque<u8>,
    written: u64,
    read: u64,
    truncated_writes: u64,
}

impl Fifo {
    fn new(name: ObjName, capacity: usize) -> Self {
        Fifo {
            name,
            capacity,
            buffer: VecDeque::new(),
            written: 0,
            read: 0,
            truncated_writes: 0,
        }
    }

    /// The FIFO name.
    pub fn name(&self) -> &ObjName {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Total bytes accepted.
    pub fn written_bytes(&self) -> u64 {
        self.written
    }

    /// Total bytes drained.
    pub fn read_bytes(&self) -> u64 {
        self.read
    }

    /// Writes that could not be accepted in full.
    pub fn truncated_writes(&self) -> u64 {
        self.truncated_writes
    }
}

/// Registry of all FIFOs inside a kernel.
#[derive(Debug, Default)]
pub struct FifoRegistry {
    fifos: HashMap<ObjName, Fifo>,
}

impl FifoRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a FIFO (`rtf_create`); attaching to an existing one with the
    /// same capacity is idempotent.
    ///
    /// # Errors
    ///
    /// [`IpcError::Incompatible`] on capacity mismatch,
    /// [`IpcError::ZeroSize`] for capacity 0.
    pub fn create(&mut self, name: &str, capacity: usize) -> Result<(), IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        if capacity == 0 {
            return Err(IpcError::ZeroSize(name));
        }
        match self.fifos.get(&name) {
            Some(f) if f.capacity != capacity => Err(IpcError::Incompatible {
                name,
                expected: format!("capacity {}", f.capacity),
                found: format!("capacity {capacity}"),
            }),
            Some(_) => Ok(()),
            None => {
                self.fifos.insert(name.clone(), Fifo::new(name, capacity));
                Ok(())
            }
        }
    }

    /// Destroys a FIFO, dropping buffered bytes (`rtf_destroy`).
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if no such FIFO exists.
    pub fn destroy(&mut self, name: &str) -> Result<(), IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        self.fifos
            .remove(&name)
            .map(|_| ())
            .ok_or(IpcError::NotFound(name))
    }

    /// Non-blocking append (`rtf_put`): accepts as many bytes as fit,
    /// returning how many were taken.
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if no such FIFO exists.
    pub fn put(&mut self, name: &str, data: &[u8]) -> Result<usize, IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        let fifo = self.fifos.get_mut(&name).ok_or(IpcError::NotFound(name))?;
        let room = fifo.capacity - fifo.buffer.len();
        let taken = room.min(data.len());
        fifo.buffer.extend(&data[..taken]);
        fifo.written += taken as u64;
        if taken < data.len() {
            fifo.truncated_writes += 1;
        }
        Ok(taken)
    }

    /// Non-blocking drain (`rtf_get`): returns up to `max` bytes.
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if no such FIFO exists.
    pub fn get(&mut self, name: &str, max: usize) -> Result<Vec<u8>, IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        let fifo = self.fifos.get_mut(&name).ok_or(IpcError::NotFound(name))?;
        let take = max.min(fifo.buffer.len());
        let out: Vec<u8> = fifo.buffer.drain(..take).collect();
        fifo.read += out.len() as u64;
        Ok(out)
    }

    /// Reverses one [`FifoRegistry::put`]: truncates the accepted bytes off
    /// the tail and un-counts them (and the truncation, if the write was
    /// partial). Only called by the kernel when rolling back a faulted
    /// cycle; the tail bytes are necessarily the journaled ones because
    /// body execution is atomic at the dispatch instant.
    pub(crate) fn undo_put(&mut self, name: &ObjName, accepted: usize, truncated: bool) {
        if let Some(fifo) = self.fifos.get_mut(name) {
            let keep = fifo.buffer.len().saturating_sub(accepted);
            fifo.buffer.truncate(keep);
            fifo.written = fifo.written.saturating_sub(accepted as u64);
            if truncated {
                fifo.truncated_writes = fifo.truncated_writes.saturating_sub(1);
            }
        }
    }

    /// Looks up a FIFO by name.
    pub fn lookup(&self, name: &str) -> Option<&Fifo> {
        let name = ObjName::new(name).ok()?;
        self.fifos.get(&name)
    }

    /// Number of live FIFOs.
    pub fn len(&self) -> usize {
        self.fifos.len()
    }

    /// True when no FIFOs exist.
    pub fn is_empty(&self) -> bool {
        self.fifos.is_empty()
    }
}

/// A lock-free single-producer single-consumer byte ring.
///
/// The parallel executor allocates one ring per (producer worker,
/// cross-CPU FIFO) pair: the producing worker appends the bytes its tasks
/// wrote during the epoch, and at the barrier the FIFO's home worker
/// drains each producer's ring *in worker-rank order*, so the merged byte
/// stream is deterministic even though the rings fill concurrently.
///
/// `head`/`tail` are monotonically increasing byte counts (never wrapped),
/// indexed modulo the buffer length; the payload is `AtomicU8` so the ring
/// is entirely safe code — no torn reads are possible byte-wise, and the
/// acquire/release pair on `tail`/`head` orders payload access.
#[derive(Debug)]
pub struct SpscRing {
    buf: Box<[std::sync::atomic::AtomicU8]>,
    /// Total bytes consumed (advanced only by the consumer).
    head: std::sync::atomic::AtomicUsize,
    /// Total bytes produced (advanced only by the producer).
    tail: std::sync::atomic::AtomicUsize,
}

impl SpscRing {
    /// Creates a ring holding up to `capacity` in-flight bytes.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        use std::sync::atomic::{AtomicU8, AtomicUsize};
        assert!(capacity > 0, "SpscRing capacity must be non-zero");
        SpscRing {
            buf: (0..capacity).map(|_| AtomicU8::new(0)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Bytes currently in flight.
    pub fn len(&self) -> usize {
        use std::sync::atomic::Ordering::Acquire;
        self.tail.load(Acquire) - self.head.load(Acquire)
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends as much of `data` as fits; returns the accepted byte count.
    /// Producer-side only.
    pub fn push(&self, data: &[u8]) -> usize {
        use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
        let head = self.head.load(Acquire);
        let tail = self.tail.load(Relaxed); // own counter
        let room = self.buf.len() - (tail - head);
        let take = room.min(data.len());
        for (i, byte) in data[..take].iter().enumerate() {
            self.buf[(tail + i) % self.buf.len()].store(*byte, Relaxed);
        }
        self.tail.store(tail + take, Release);
        take
    }

    /// Drains every buffered byte in FIFO order. Consumer-side only.
    pub fn pop_all(&self) -> Vec<u8> {
        use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
        let tail = self.tail.load(Acquire);
        let head = self.head.load(Relaxed); // own counter
        let mut out = Vec::with_capacity(tail - head);
        for pos in head..tail {
            out.push(self.buf[pos % self.buf.len()].load(Relaxed));
        }
        self.head.store(tail, Release);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_semantics_roundtrip() {
        let mut reg = FifoRegistry::new();
        reg.create("stream", 8).unwrap();
        assert_eq!(reg.put("stream", b"hello").unwrap(), 5);
        assert_eq!(reg.put("stream", b"world").unwrap(), 3); // only 3 fit
        let fifo = reg.lookup("stream").unwrap();
        assert_eq!(fifo.len(), 8);
        assert_eq!(fifo.truncated_writes(), 1);
        // Reads drain in order, possibly partially.
        assert_eq!(reg.get("stream", 6).unwrap(), b"hellow");
        assert_eq!(reg.get("stream", 100).unwrap(), b"or");
        assert!(reg.get("stream", 10).unwrap().is_empty());
    }

    #[test]
    fn create_is_idempotent_with_matching_capacity() {
        let mut reg = FifoRegistry::new();
        reg.create("f", 16).unwrap();
        reg.create("f", 16).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(matches!(
            reg.create("f", 32),
            Err(IpcError::Incompatible { .. })
        ));
        assert!(matches!(reg.create("g", 0), Err(IpcError::ZeroSize(_))));
    }

    #[test]
    fn destroy_and_missing_errors() {
        let mut reg = FifoRegistry::new();
        reg.create("f", 4).unwrap();
        reg.put("f", b"ab").unwrap();
        reg.destroy("f").unwrap();
        assert!(reg.is_empty());
        assert!(matches!(reg.put("f", b"x"), Err(IpcError::NotFound(_))));
        assert!(matches!(reg.get("f", 1), Err(IpcError::NotFound(_))));
        assert!(matches!(reg.destroy("f"), Err(IpcError::NotFound(_))));
    }

    #[test]
    fn counters_track_traffic() {
        let mut reg = FifoRegistry::new();
        reg.create("f", 100).unwrap();
        reg.put("f", &[1; 30]).unwrap();
        reg.get("f", 10).unwrap();
        let f = reg.lookup("f").unwrap();
        assert_eq!(f.written_bytes(), 30);
        assert_eq!(f.read_bytes(), 10);
        assert_eq!(f.len(), 20);
    }

    #[test]
    fn spsc_roundtrip_and_backpressure() {
        let ring = SpscRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.push(b"hello"), 5);
        assert_eq!(ring.push(b"world"), 3); // only 3 fit
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.pop_all(), b"hellowor");
        assert!(ring.is_empty());
        // Wrap-around after drain.
        assert_eq!(ring.push(b"again"), 5);
        assert_eq!(ring.pop_all(), b"again");
    }

    #[test]
    fn spsc_concurrent_stream_arrives_in_order() {
        use std::sync::Arc;
        let ring = Arc::new(SpscRing::new(64));
        let mut received = Vec::new();
        std::thread::scope(|scope| {
            let producer = Arc::clone(&ring);
            scope.spawn(move || {
                let mut sent = 0u32;
                while sent < 1000 {
                    let byte = (sent % 251) as u8;
                    if producer.push(&[byte]) == 1 {
                        sent += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
            while received.len() < 1000 {
                received.extend(ring.pop_all());
            }
        });
        let expected: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(received, expected);
    }
}
