//! Deterministic random-number plumbing for the simulator.
//!
//! Everything stochastic in the kernel (timer drift, dispatch jitter, load
//! bursts) draws from one seeded generator so that a whole experiment is
//! reproducible from a single `--seed` value. The generator is an in-repo
//! xoshiro256++ (seeded through SplitMix64) so the simulator builds with no
//! external crates; the Gaussian sampler (Box–Muller) lives here too.

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded random source used by the kernel and the latency model.
///
/// Implements xoshiro256++ 1.0 (Blackman & Vigna). The state is expanded
/// from the seed with SplitMix64, the standard recommendation, so that
/// nearby seeds still yield uncorrelated streams.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_gaussian: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            spare_gaussian: None,
        }
    }

    /// Next raw 64-bit output of the generator.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        // Rejection sampling over the largest multiple of `span` to keep
        // the draw exactly uniform (a bare modulo would bias small values).
        let rem = (u64::MAX % span + 1) % span; // 2^64 mod span
        let zone = u64::MAX - rem;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1 = loop {
            let u = self.uniform();
            if u > f64::EPSILON {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn gaussian(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.standard_gaussian()
    }

    /// Exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.uniform();
            if u > f64::EPSILON {
                break u;
            }
        };
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::from_seed(123);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = SimRng::from_seed(7);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sigma {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::from_seed(9);
        let n = 40_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn chance_respects_probability() {
        let mut rng = SimRng::from_seed(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..1_000 {
            let x = rng.uniform_range(-4.0, 9.0);
            assert!((-4.0..9.0).contains(&x));
            let y = rng.uniform_u64(10, 20);
            assert!((10..20).contains(&y));
        }
    }

    #[test]
    fn uniform_u64_covers_range() {
        let mut rng = SimRng::from_seed(17);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.uniform_u64(0, 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
