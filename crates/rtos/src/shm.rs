//! Named shared-memory segments (the simulated `RTAI.SHM` interface).
//!
//! Real-time components in the paper exchange periodic data through RTAI
//! shared memory identified by short names (the underlying OS limits task
//! and IPC object names to six characters — the descriptor format inherits
//! that restriction). A segment has a fixed element type and element count;
//! reads and writes are whole-buffer and bounds-checked.

use crate::error::{IpcError, NameError};
use crate::task::ObjName;
use std::collections::HashMap;

/// Element type carried by a segment or mailbox (`type` attribute of a
/// descriptor port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 4-byte little-endian signed integers.
    Integer,
    /// Raw bytes.
    Byte,
}

impl DataType {
    /// Size of one element in bytes.
    pub const fn element_size(self) -> usize {
        match self {
            DataType::Integer => 4,
            DataType::Byte => 1,
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataType::Integer => write!(f, "Integer"),
            DataType::Byte => write!(f, "Byte"),
        }
    }
}

impl std::str::FromStr for DataType {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "integer" | "int" => Ok(DataType::Integer),
            "byte" | "bytes" => Ok(DataType::Byte),
            other => Err(format!("unknown data type `{other}`")),
        }
    }
}

/// One named shared-memory segment.
#[derive(Debug, Clone)]
pub struct ShmSegment {
    name: ObjName,
    data_type: DataType,
    elements: usize,
    data: Vec<u8>,
    writes: u64,
    reads: u64,
    /// Reference count of attached tasks; the segment is reclaimed when it
    /// drops to zero (RTAI `rt_shm_alloc`/`rt_shm_free` semantics).
    attached: usize,
}

impl ShmSegment {
    fn new(name: ObjName, data_type: DataType, elements: usize) -> Self {
        let bytes = data_type.element_size() * elements;
        ShmSegment {
            name,
            data_type,
            elements,
            data: vec![0; bytes],
            writes: 0,
            reads: 0,
            attached: 1,
        }
    }

    /// The segment name.
    pub fn name(&self) -> &ObjName {
        &self.name
    }

    /// Element type of the segment.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Total size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Number of completed writes.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of completed reads.
    pub fn read_count(&self) -> u64 {
        self.reads
    }
}

/// Registry of all live segments inside a kernel.
#[derive(Debug, Default)]
pub struct ShmRegistry {
    segments: HashMap<ObjName, ShmSegment>,
}

impl ShmRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a segment, or attaches to an existing one.
    ///
    /// Mirrors `rt_shm_alloc`: allocating an existing name attaches to the
    /// same memory, but only if type and size agree — a mismatch is a wiring
    /// bug the kernel refuses.
    ///
    /// # Errors
    ///
    /// [`IpcError::Incompatible`] if a segment with the same name but a
    /// different shape already exists; [`IpcError::ZeroSize`] for an empty
    /// segment request.
    pub fn alloc(
        &mut self,
        name: &str,
        data_type: DataType,
        elements: usize,
    ) -> Result<(), IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        if elements == 0 {
            return Err(IpcError::ZeroSize(name));
        }
        match self.segments.get_mut(&name) {
            Some(seg) => {
                if seg.data_type != data_type || seg.elements != elements {
                    return Err(IpcError::Incompatible {
                        name,
                        expected: format!("{} x{}", seg.data_type, seg.elements),
                        found: format!("{data_type} x{elements}"),
                    });
                }
                seg.attached += 1;
                Ok(())
            }
            None => {
                self.segments
                    .insert(name.clone(), ShmSegment::new(name, data_type, elements));
                Ok(())
            }
        }
    }

    /// Detaches from a segment, freeing it when the last user leaves.
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if no such segment exists.
    pub fn free(&mut self, name: &str) -> Result<(), IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        let seg = self
            .segments
            .get_mut(&name)
            .ok_or_else(|| IpcError::NotFound(name.clone()))?;
        seg.attached -= 1;
        if seg.attached == 0 {
            self.segments.remove(&name);
        }
        Ok(())
    }

    /// Writes the whole buffer into the segment.
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if the segment does not exist;
    /// [`IpcError::SizeMismatch`] if `buf` is not exactly the segment size.
    pub fn write(&mut self, name: &str, buf: &[u8]) -> Result<(), IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        let seg = self
            .segments
            .get_mut(&name)
            .ok_or_else(|| IpcError::NotFound(name.clone()))?;
        if buf.len() != seg.data.len() {
            return Err(IpcError::SizeMismatch {
                name,
                expected: seg.data.len(),
                found: buf.len(),
            });
        }
        seg.data.copy_from_slice(buf);
        seg.writes += 1;
        Ok(())
    }

    /// Reads the whole segment into a fresh buffer.
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if the segment does not exist.
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        let seg = self
            .segments
            .get_mut(&name)
            .ok_or_else(|| IpcError::NotFound(name.clone()))?;
        seg.reads += 1;
        Ok(seg.data.clone())
    }

    /// Clones a segment's current bytes without counting a read. Used by
    /// the kernel's fault-containment journal to snapshot the pre-write
    /// image before a body write goes through.
    pub(crate) fn peek(&self, name: &ObjName) -> Option<Vec<u8>> {
        self.segments.get(name).map(|seg| seg.data.clone())
    }

    /// Reverses one successful [`ShmRegistry::write`]: restores the
    /// snapshot taken by [`ShmRegistry::peek`] and un-counts the write.
    /// Only called by the kernel when rolling back a faulted cycle.
    pub(crate) fn undo_write(&mut self, name: &ObjName, prior: &[u8]) {
        if let Some(seg) = self.segments.get_mut(name) {
            if seg.data.len() == prior.len() {
                seg.data.copy_from_slice(prior);
                seg.writes = seg.writes.saturating_sub(1);
            }
        }
    }

    /// Replaces a segment's bytes without counting a write or a read.
    ///
    /// This is a management-plane operation for the parallel executor's
    /// barrier exchange: when a [`SeqlockCell`] publication from another
    /// worker wins, the local replica is overwritten with the converged
    /// image. Task-visible write counters stay untouched so per-shard
    /// publication detection (`write_count` deltas) keeps working.
    /// Length mismatches are ignored (the replicas were allocated from the
    /// same declaration, so they cannot differ in a well-formed workload).
    pub fn overwrite(&mut self, name: &str, bytes: &[u8]) {
        let Ok(name) = ObjName::new(name) else {
            return;
        };
        if let Some(seg) = self.segments.get_mut(&name) {
            if seg.data.len() == bytes.len() {
                seg.data.copy_from_slice(bytes);
            }
        }
    }

    /// Looks up a segment by name.
    pub fn get(&self, name: &str) -> Option<&ShmSegment> {
        let name = ObjName::new(name).ok()?;
        self.segments.get(&name)
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segments are allocated.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Iterates over live segments.
    pub fn iter(&self) -> impl Iterator<Item = &ShmSegment> {
        self.segments.values()
    }
}

/// Validates a port/segment/task name against the 6-character OS limit.
///
/// Exposed for descriptor validation in higher layers.
pub fn validate_obj_name(name: &str) -> Result<(), NameError> {
    ObjName::new(name).map(|_| ())
}

/// A lock-free single-slot publication cell for cross-thread SHM exchange.
///
/// The parallel executor gives every worker thread its own [`ShmRegistry`]
/// replica; at each epoch barrier a worker that wrote a shared segment
/// publishes the segment image through one of these cells, and every other
/// worker reads the winning image back into its replica (via
/// [`ShmRegistry::overwrite`]).
///
/// The cell is a classic seqlock over a byte payload:
///
/// * `seq` is odd while a writer is mid-copy; readers retry until they
///   observe the same even value before and after copying the payload out.
/// * `version` orders competing publications deterministically. The
///   executor packs it as `(epoch << 32) | (writer_rank + 1)` (see
///   [`SeqlockCell::pack_version`]), so within one epoch the
///   highest-ranked writer wins no matter which thread reaches the cell
///   first — the converged value never depends on OS scheduling.
/// * The payload lives in `Box<[AtomicU8]>` and is copied byte-atomically,
///   so the whole cell is safe code: a torn read is *detected* (seq
///   mismatch) rather than being undefined behaviour.
///
/// Version `0` means "never published".
#[derive(Debug)]
pub struct SeqlockCell {
    seq: std::sync::atomic::AtomicU64,
    version: std::sync::atomic::AtomicU64,
    len: std::sync::atomic::AtomicUsize,
    data: Box<[std::sync::atomic::AtomicU8]>,
}

impl SeqlockCell {
    /// Creates a cell able to hold payloads up to `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize};
        let data: Box<[AtomicU8]> = (0..capacity).map(|_| AtomicU8::new(0)).collect();
        SeqlockCell {
            seq: AtomicU64::new(0),
            version: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            data,
        }
    }

    /// Packs a deterministic publication version: epochs dominate, and
    /// within an epoch the higher writer rank wins. `rank` is offset by 1
    /// so version `0` stays reserved for "never published".
    pub fn pack_version(epoch: u64, writer_rank: u32) -> u64 {
        (epoch << 32) | (u64::from(writer_rank) + 1)
    }

    /// Maximum payload size in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Publishes `bytes` under `version` if it is newer than what the cell
    /// holds. Returns `true` if this call's payload became the cell value.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the cell capacity.
    pub fn publish(&self, version: u64, bytes: &[u8]) -> bool {
        use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
        assert!(
            bytes.len() <= self.data.len(),
            "SeqlockCell payload {} exceeds capacity {}",
            bytes.len(),
            self.data.len()
        );
        loop {
            if self.version.load(Acquire) >= version {
                return false;
            }
            let seq = self.seq.load(Acquire);
            if seq & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            if self
                .seq
                .compare_exchange(seq, seq + 1, AcqRel, Acquire)
                .is_err()
            {
                continue;
            }
            // Write lock held (seq is odd). A competing writer may have
            // published a higher version before we took the lock.
            if self.version.load(Acquire) >= version {
                self.seq.store(seq + 2, Release);
                return false;
            }
            for (slot, byte) in self.data.iter().zip(bytes) {
                slot.store(*byte, Relaxed);
            }
            self.len.store(bytes.len(), Relaxed);
            self.version.store(version, Release);
            self.seq.store(seq + 2, Release);
            return true;
        }
    }

    /// Reads the current payload, retrying across concurrent writers.
    /// Returns `None` if nothing was ever published.
    pub fn read(&self) -> Option<(u64, Vec<u8>)> {
        use std::sync::atomic::Ordering::{Acquire, Relaxed};
        loop {
            let before = self.seq.load(Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let version = self.version.load(Acquire);
            if version == 0 {
                return None;
            }
            let len = self.len.load(Relaxed).min(self.data.len());
            let mut out = vec![0u8; len];
            for (byte, slot) in out.iter_mut().zip(self.data.iter()) {
                *byte = slot.load(Relaxed);
            }
            if self.seq.load(Acquire) == before {
                return Some((version, out));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_char_names_are_accepted() {
        let mut reg = ShmRegistry::new();
        reg.alloc("images", DataType::Byte, 4).unwrap();
        reg.write("images", &[1, 2, 3, 4]).unwrap();
        assert_eq!(reg.read("images").unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(reg.get("images").unwrap().write_count(), 1);
        assert_eq!(reg.get("images").unwrap().read_count(), 1);
    }

    #[test]
    fn long_names_are_rejected() {
        let mut reg = ShmRegistry::new();
        let err = reg.alloc("toolongname", DataType::Byte, 1).unwrap_err();
        assert!(matches!(err, IpcError::BadName(_)));
    }

    #[test]
    fn integer_segment_size_is_element_scaled() {
        let mut reg = ShmRegistry::new();
        reg.alloc("xysize", DataType::Integer, 3).unwrap();
        assert_eq!(reg.get("xysize").unwrap().byte_len(), 12);
        let err = reg.write("xysize", &[0u8; 4]).unwrap_err();
        assert!(matches!(err, IpcError::SizeMismatch { .. }));
    }

    #[test]
    fn double_alloc_attaches_when_compatible() {
        let mut reg = ShmRegistry::new();
        reg.alloc("data", DataType::Byte, 8).unwrap();
        reg.alloc("data", DataType::Byte, 8).unwrap();
        assert_eq!(reg.len(), 1);
        // First free keeps it alive, second reclaims.
        reg.free("data").unwrap();
        assert_eq!(reg.len(), 1);
        reg.free("data").unwrap();
        assert!(reg.is_empty());
    }

    #[test]
    fn incompatible_realloc_is_refused() {
        let mut reg = ShmRegistry::new();
        reg.alloc("data", DataType::Byte, 8).unwrap();
        let err = reg.alloc("data", DataType::Integer, 8).unwrap_err();
        assert!(matches!(err, IpcError::Incompatible { .. }));
        let err = reg.alloc("data", DataType::Byte, 9).unwrap_err();
        assert!(matches!(err, IpcError::Incompatible { .. }));
    }

    #[test]
    fn zero_size_is_refused() {
        let mut reg = ShmRegistry::new();
        assert!(matches!(
            reg.alloc("data", DataType::Byte, 0),
            Err(IpcError::ZeroSize(_))
        ));
    }

    #[test]
    fn missing_segment_errors() {
        let mut reg = ShmRegistry::new();
        assert!(matches!(reg.read("nosuch"), Err(IpcError::NotFound(_))));
        assert!(matches!(
            reg.write("nosuch", &[]),
            Err(IpcError::NotFound(_))
        ));
        assert!(matches!(reg.free("nosuch"), Err(IpcError::NotFound(_))));
    }

    #[test]
    fn data_type_parsing() {
        assert_eq!("Integer".parse::<DataType>().unwrap(), DataType::Integer);
        assert_eq!("byte".parse::<DataType>().unwrap(), DataType::Byte);
        assert!("float".parse::<DataType>().is_err());
    }

    #[test]
    fn overwrite_replaces_bytes_without_counting() {
        let mut reg = ShmRegistry::new();
        reg.alloc("seg", DataType::Byte, 4).unwrap();
        reg.write("seg", &[1, 2, 3, 4]).unwrap();
        reg.overwrite("seg", &[9, 9, 9, 9]);
        let seg = reg.get("seg").unwrap();
        assert_eq!(seg.write_count(), 1);
        assert_eq!(reg.read("seg").unwrap(), vec![9, 9, 9, 9]);
        // Length mismatches and unknown names are silently ignored.
        reg.overwrite("seg", &[1]);
        reg.overwrite("nosuch", &[1, 2, 3, 4]);
        assert_eq!(reg.read("seg").unwrap(), vec![9, 9, 9, 9]);
    }

    #[test]
    fn seqlock_empty_then_publish_then_read() {
        let cell = SeqlockCell::new(8);
        assert_eq!(cell.read(), None);
        let v1 = SeqlockCell::pack_version(1, 0);
        assert!(cell.publish(v1, &[1, 2, 3]));
        assert_eq!(cell.read(), Some((v1, vec![1, 2, 3])));
    }

    #[test]
    fn seqlock_highest_version_wins_regardless_of_order() {
        let cell = SeqlockCell::new(4);
        let low = SeqlockCell::pack_version(1, 0);
        let high = SeqlockCell::pack_version(1, 3);
        assert!(cell.publish(high, &[7]));
        // A lower version arriving later is rejected.
        assert!(!cell.publish(low, &[1]));
        assert_eq!(cell.read(), Some((high, vec![7])));
        // A later epoch beats any rank from an earlier one.
        let next = SeqlockCell::pack_version(2, 0);
        assert!(cell.publish(next, &[2, 2]));
        assert_eq!(cell.read(), Some((next, vec![2, 2])));
    }

    #[test]
    fn seqlock_concurrent_publishers_converge_deterministically() {
        use std::sync::Arc;
        let cell = Arc::new(SeqlockCell::new(8));
        std::thread::scope(|scope| {
            for rank in 0..4u32 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let payload = [rank as u8; 8];
                    cell.publish(SeqlockCell::pack_version(1, rank), &payload);
                });
            }
        });
        // Whatever the interleaving, rank 3 holds the cell afterwards.
        let (version, bytes) = cell.read().unwrap();
        assert_eq!(version, SeqlockCell::pack_version(1, 3));
        assert_eq!(bytes, vec![3u8; 8]);
    }

    #[test]
    fn seqlock_reader_never_observes_torn_payloads() {
        use std::sync::Arc;
        let cell = Arc::new(SeqlockCell::new(16));
        std::thread::scope(|scope| {
            let writer = Arc::clone(&cell);
            scope.spawn(move || {
                for epoch in 1..200u64 {
                    let byte = (epoch % 251) as u8;
                    writer.publish(SeqlockCell::pack_version(epoch, 0), &[byte; 16]);
                }
            });
            let reader = Arc::clone(&cell);
            scope.spawn(move || {
                for _ in 0..2000 {
                    if let Some((_, bytes)) = reader.read() {
                        // Every published payload is uniform; a torn read
                        // would mix bytes from two epochs.
                        assert!(bytes.iter().all(|b| *b == bytes[0]));
                    }
                }
            });
        });
    }
}
