//! Named shared-memory segments (the simulated `RTAI.SHM` interface).
//!
//! Real-time components in the paper exchange periodic data through RTAI
//! shared memory identified by short names (the underlying OS limits task
//! and IPC object names to six characters — the descriptor format inherits
//! that restriction). A segment has a fixed element type and element count;
//! reads and writes are whole-buffer and bounds-checked.

use crate::error::{IpcError, NameError};
use crate::task::ObjName;
use std::collections::HashMap;

/// Element type carried by a segment or mailbox (`type` attribute of a
/// descriptor port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 4-byte little-endian signed integers.
    Integer,
    /// Raw bytes.
    Byte,
}

impl DataType {
    /// Size of one element in bytes.
    pub const fn element_size(self) -> usize {
        match self {
            DataType::Integer => 4,
            DataType::Byte => 1,
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataType::Integer => write!(f, "Integer"),
            DataType::Byte => write!(f, "Byte"),
        }
    }
}

impl std::str::FromStr for DataType {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "integer" | "int" => Ok(DataType::Integer),
            "byte" | "bytes" => Ok(DataType::Byte),
            other => Err(format!("unknown data type `{other}`")),
        }
    }
}

/// One named shared-memory segment.
#[derive(Debug, Clone)]
pub struct ShmSegment {
    name: ObjName,
    data_type: DataType,
    elements: usize,
    data: Vec<u8>,
    writes: u64,
    reads: u64,
    /// Reference count of attached tasks; the segment is reclaimed when it
    /// drops to zero (RTAI `rt_shm_alloc`/`rt_shm_free` semantics).
    attached: usize,
}

impl ShmSegment {
    fn new(name: ObjName, data_type: DataType, elements: usize) -> Self {
        let bytes = data_type.element_size() * elements;
        ShmSegment {
            name,
            data_type,
            elements,
            data: vec![0; bytes],
            writes: 0,
            reads: 0,
            attached: 1,
        }
    }

    /// The segment name.
    pub fn name(&self) -> &ObjName {
        &self.name
    }

    /// Element type of the segment.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Total size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Number of completed writes.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of completed reads.
    pub fn read_count(&self) -> u64 {
        self.reads
    }
}

/// Registry of all live segments inside a kernel.
#[derive(Debug, Default)]
pub struct ShmRegistry {
    segments: HashMap<ObjName, ShmSegment>,
}

impl ShmRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a segment, or attaches to an existing one.
    ///
    /// Mirrors `rt_shm_alloc`: allocating an existing name attaches to the
    /// same memory, but only if type and size agree — a mismatch is a wiring
    /// bug the kernel refuses.
    ///
    /// # Errors
    ///
    /// [`IpcError::Incompatible`] if a segment with the same name but a
    /// different shape already exists; [`IpcError::ZeroSize`] for an empty
    /// segment request.
    pub fn alloc(
        &mut self,
        name: &str,
        data_type: DataType,
        elements: usize,
    ) -> Result<(), IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        if elements == 0 {
            return Err(IpcError::ZeroSize(name));
        }
        match self.segments.get_mut(&name) {
            Some(seg) => {
                if seg.data_type != data_type || seg.elements != elements {
                    return Err(IpcError::Incompatible {
                        name,
                        expected: format!("{} x{}", seg.data_type, seg.elements),
                        found: format!("{data_type} x{elements}"),
                    });
                }
                seg.attached += 1;
                Ok(())
            }
            None => {
                self.segments
                    .insert(name.clone(), ShmSegment::new(name, data_type, elements));
                Ok(())
            }
        }
    }

    /// Detaches from a segment, freeing it when the last user leaves.
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if no such segment exists.
    pub fn free(&mut self, name: &str) -> Result<(), IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        let seg = self
            .segments
            .get_mut(&name)
            .ok_or_else(|| IpcError::NotFound(name.clone()))?;
        seg.attached -= 1;
        if seg.attached == 0 {
            self.segments.remove(&name);
        }
        Ok(())
    }

    /// Writes the whole buffer into the segment.
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if the segment does not exist;
    /// [`IpcError::SizeMismatch`] if `buf` is not exactly the segment size.
    pub fn write(&mut self, name: &str, buf: &[u8]) -> Result<(), IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        let seg = self
            .segments
            .get_mut(&name)
            .ok_or_else(|| IpcError::NotFound(name.clone()))?;
        if buf.len() != seg.data.len() {
            return Err(IpcError::SizeMismatch {
                name,
                expected: seg.data.len(),
                found: buf.len(),
            });
        }
        seg.data.copy_from_slice(buf);
        seg.writes += 1;
        Ok(())
    }

    /// Reads the whole segment into a fresh buffer.
    ///
    /// # Errors
    ///
    /// [`IpcError::NotFound`] if the segment does not exist.
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, IpcError> {
        let name = ObjName::new(name).map_err(IpcError::BadName)?;
        let seg = self
            .segments
            .get_mut(&name)
            .ok_or_else(|| IpcError::NotFound(name.clone()))?;
        seg.reads += 1;
        Ok(seg.data.clone())
    }

    /// Clones a segment's current bytes without counting a read. Used by
    /// the kernel's fault-containment journal to snapshot the pre-write
    /// image before a body write goes through.
    pub(crate) fn peek(&self, name: &ObjName) -> Option<Vec<u8>> {
        self.segments.get(name).map(|seg| seg.data.clone())
    }

    /// Reverses one successful [`ShmRegistry::write`]: restores the
    /// snapshot taken by [`ShmRegistry::peek`] and un-counts the write.
    /// Only called by the kernel when rolling back a faulted cycle.
    pub(crate) fn undo_write(&mut self, name: &ObjName, prior: &[u8]) {
        if let Some(seg) = self.segments.get_mut(name) {
            if seg.data.len() == prior.len() {
                seg.data.copy_from_slice(prior);
                seg.writes = seg.writes.saturating_sub(1);
            }
        }
    }

    /// Looks up a segment by name.
    pub fn get(&self, name: &str) -> Option<&ShmSegment> {
        let name = ObjName::new(name).ok()?;
        self.segments.get(&name)
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segments are allocated.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Iterates over live segments.
    pub fn iter(&self) -> impl Iterator<Item = &ShmSegment> {
        self.segments.values()
    }
}

/// Validates a port/segment/task name against the 6-character OS limit.
///
/// Exposed for descriptor validation in higher layers.
pub fn validate_obj_name(name: &str) -> Result<(), NameError> {
    ObjName::new(name).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_char_names_are_accepted() {
        let mut reg = ShmRegistry::new();
        reg.alloc("images", DataType::Byte, 4).unwrap();
        reg.write("images", &[1, 2, 3, 4]).unwrap();
        assert_eq!(reg.read("images").unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(reg.get("images").unwrap().write_count(), 1);
        assert_eq!(reg.get("images").unwrap().read_count(), 1);
    }

    #[test]
    fn long_names_are_rejected() {
        let mut reg = ShmRegistry::new();
        let err = reg.alloc("toolongname", DataType::Byte, 1).unwrap_err();
        assert!(matches!(err, IpcError::BadName(_)));
    }

    #[test]
    fn integer_segment_size_is_element_scaled() {
        let mut reg = ShmRegistry::new();
        reg.alloc("xysize", DataType::Integer, 3).unwrap();
        assert_eq!(reg.get("xysize").unwrap().byte_len(), 12);
        let err = reg.write("xysize", &[0u8; 4]).unwrap_err();
        assert!(matches!(err, IpcError::SizeMismatch { .. }));
    }

    #[test]
    fn double_alloc_attaches_when_compatible() {
        let mut reg = ShmRegistry::new();
        reg.alloc("data", DataType::Byte, 8).unwrap();
        reg.alloc("data", DataType::Byte, 8).unwrap();
        assert_eq!(reg.len(), 1);
        // First free keeps it alive, second reclaims.
        reg.free("data").unwrap();
        assert_eq!(reg.len(), 1);
        reg.free("data").unwrap();
        assert!(reg.is_empty());
    }

    #[test]
    fn incompatible_realloc_is_refused() {
        let mut reg = ShmRegistry::new();
        reg.alloc("data", DataType::Byte, 8).unwrap();
        let err = reg.alloc("data", DataType::Integer, 8).unwrap_err();
        assert!(matches!(err, IpcError::Incompatible { .. }));
        let err = reg.alloc("data", DataType::Byte, 9).unwrap_err();
        assert!(matches!(err, IpcError::Incompatible { .. }));
    }

    #[test]
    fn zero_size_is_refused() {
        let mut reg = ShmRegistry::new();
        assert!(matches!(
            reg.alloc("data", DataType::Byte, 0),
            Err(IpcError::ZeroSize(_))
        ));
    }

    #[test]
    fn missing_segment_errors() {
        let mut reg = ShmRegistry::new();
        assert!(matches!(reg.read("nosuch"), Err(IpcError::NotFound(_))));
        assert!(matches!(
            reg.write("nosuch", &[]),
            Err(IpcError::NotFound(_))
        ));
        assert!(matches!(reg.free("nosuch"), Err(IpcError::NotFound(_))));
    }

    #[test]
    fn data_type_parsing() {
        assert_eq!("Integer".parse::<DataType>().unwrap(), DataType::Integer);
        assert_eq!("byte".parse::<DataType>().unwrap(), DataType::Byte);
        assert!("float".parse::<DataType>().is_err());
    }
}
