//! # xmlite — a small, dependency-free XML subset parser
//!
//! Shared by the `drcom` descriptor layer (the paper's Figure 2 component
//! meta-data) and the `osgi` Declarative Services runtime (the
//! `OSGI-INF/component.xml` grammar). Covers elements with attributes,
//! nesting, self-closing tags, text content, XML declarations, comments,
//! and the five predefined entities plus numeric character references.
//! Namespace prefixes (`drt:component`, `scr:component`) are preserved
//! verbatim in element names.
//!
//! No external XML crate is in the allowed offline dependency set, which is
//! why this lives in-repo; the parser is deliberately strict — these
//! documents are configuration, and a typo should fail loudly at
//! deployment time.

use std::fmt;

/// An XML parse failure with line/column location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    line: usize,
    column: usize,
    reason: String,
}

impl XmlError {
    /// 1-based line of the failure.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the failure.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML error at line {}, column {}: {}",
            self.line, self.column, self.reason
        )
    }
}

impl std::error::Error for XmlError {}

/// A child of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Text content (entity-decoded, whitespace preserved).
    Text(String),
}

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name, including any namespace prefix (`drt:component`).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Children in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// The value of an attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The tag name without a namespace prefix.
    pub fn local_name(&self) -> &str {
        self.name.rsplit(':').next().unwrap_or(&self.name)
    }

    /// Child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Child elements whose local name equals `name`.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements()
            .filter(move |e| e.local_name() == name)
    }

    /// The first child element with the given local name.
    pub fn child_named(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.local_name() == name)
    }

    /// Concatenated text content of direct text children, trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }
}

/// Parses a document and returns its root element.
///
/// # Errors
///
/// Returns [`XmlError`] with the location of the first problem.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = XmlParser::new(input);
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.error("content after root element"));
    }
    Ok(root)
}

struct XmlParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn new(input: &'a str) -> Self {
        XmlParser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, reason: impl Into<String>) -> XmlError {
        let mut line = 1;
        let mut column = 1;
        for b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if *b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        XmlError {
            line,
            column,
            reason: reason.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, declarations and processing instructions.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match self.input[self.pos + 4..].find("-->") {
                    Some(end) => self.pos += 4 + end + 3,
                    None => return Err(self.error("unterminated comment")),
                }
            } else if self.starts_with("<?") {
                match self.input[self.pos + 2..].find("?>") {
                    Some(end) => self.pos += 2 + end + 2,
                    None => return Err(self.error("unterminated declaration")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b':' | b'_' | b'-' | b'.');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        let name = &self.input[start..self.pos];
        if !name
            .bytes()
            .next()
            .map(|b| b.is_ascii_alphabetic() || b == b'_')
            .unwrap_or(false)
        {
            return Err(self.error(format!("name `{name}` must start with a letter")));
        }
        Ok(name.to_string())
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{s}`")))
        }
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut element = Element {
            name,
            attributes: Vec::new(),
            children: Vec::new(),
        };
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    if element.attributes.iter().any(|(k, _)| *k == key) {
                        return Err(self.error(format!("duplicate attribute `{key}`")));
                    }
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    element.attributes.push((key, value));
                }
                None => return Err(self.error("unexpected end inside tag")),
            }
        }
        // Content until matching close tag.
        loop {
            if self.at_end() {
                return Err(self.error(format!("unclosed element `{}`", element.name)));
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != element.name {
                    return Err(self.error(format!(
                        "mismatched close tag `{close}` for `{}`",
                        element.name
                    )));
                }
                self.skip_ws();
                self.expect(">")?;
                return Ok(element);
            }
            if self.starts_with("<!--") || self.starts_with("<?") {
                self.skip_misc()?;
                continue;
            }
            if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(Node::Element(child));
                continue;
            }
            let text = self.parse_text()?;
            if !text.trim().is_empty() {
                element.children.push(Node::Text(text));
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        // Descriptors in the wild (including the paper's Figure 2, which
        // uses typographic quotes) are forgiving about quote characters;
        // we accept ' and ".
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.error("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = &self.input[start..self.pos];
                self.pos += 1;
                return decode_entities(raw).map_err(|r| self.error(r));
            }
            if b == b'<' {
                return Err(self.error("`<` in attribute value"));
            }
            self.pos += 1;
        }
        Err(self.error("unterminated attribute value"))
    }

    fn parse_text(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        decode_entities(&self.input[start..self.pos]).map_err(|r| self.error(r))
    }
}

fn decode_entities(raw: &str) -> Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let end = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity in `{raw}`"))?;
        let entity = &rest[1..end];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad numeric entity `&{entity};`"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid codepoint `&{entity};`"))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code = entity[1..]
                    .parse::<u32>()
                    .map_err(|_| format!("bad numeric entity `&{entity};`"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid codepoint `&{entity};`"))?,
                );
            }
            _ => return Err(format!("unknown entity `&{entity};`")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_camera_descriptor() {
        let xml = r#"<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="camera" desc="this is a smart camera controller"
    type="periodic" enabled="true" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="images" interface="RTAI.SHM" type="Byte" size="400" />
  <inport name="xysize" interface="RTAI.SHM" type="Integer" size="400"/>
  <property name="prox00" type="Integer" value="6" />
</drt:component>"#;
        let root = parse(xml).unwrap();
        assert_eq!(root.name, "drt:component");
        assert_eq!(root.local_name(), "component");
        assert_eq!(root.attr("name"), Some("camera"));
        assert_eq!(root.attr("cpuusage"), Some("0.1"));
        assert_eq!(root.child_elements().count(), 5);
        let task = root.child_named("periodictask").unwrap();
        assert_eq!(task.attr("frequence"), Some("100"));
        assert_eq!(root.children_named("outport").count(), 1);
        assert_eq!(root.children_named("inport").count(), 1);
        let imp = root.child_named("implementation").unwrap();
        assert_eq!(
            imp.attr("bincode"),
            Some("ua.pats.demo.smartcamera.RTComponent")
        );
    }

    #[test]
    fn nested_elements_and_text() {
        let root = parse("<a><b>hello</b><b>world</b><c/></a>").unwrap();
        let texts: Vec<String> = root.children_named("b").map(|b| b.text()).collect();
        assert_eq!(texts, vec!["hello", "world"]);
        assert!(root.child_named("c").unwrap().children.is_empty());
    }

    #[test]
    fn entities_decode_everywhere() {
        let root = parse(r#"<a t="&lt;x&gt; &amp; &quot;y&quot;">&#65;&#x42;&apos;</a>"#).unwrap();
        assert_eq!(root.attr("t"), Some(r#"<x> & "y""#));
        assert_eq!(root.text(), "AB'");
    }

    #[test]
    fn comments_and_declarations_are_skipped() {
        let root = parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>").unwrap();
        assert_eq!(root.child_elements().count(), 1);
    }

    #[test]
    fn single_quoted_attributes() {
        let root = parse("<a k='v'/>").unwrap();
        assert_eq!(root.attr("k"), Some("v"));
    }

    #[test]
    fn errors_carry_location() {
        let err = parse("<a>\n  <b>\n</a>").unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("mismatched close tag"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "<",
            "<a",
            "<a>",
            "<a></b>",
            "<a x=1/>",
            "<a x=\"1/>",
            "<a x=\"1\" x=\"2\"/>",
            "<a/><b/>",
            "<a>&nope;</a>",
            "<1a/>",
            "<a><!-- unterminated </a>",
        ] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let root = parse("<a>\n   <b/>\n   </a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn local_name_strips_prefix_only() {
        let root = parse("<ns:x.y-z_1/>").unwrap();
        assert_eq!(root.local_name(), "x.y-z_1");
    }
}
