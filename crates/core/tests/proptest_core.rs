//! Property-based tests of the DRCom layer: descriptor XML roundtrips, the
//! intra-component wire protocol, lifecycle laws, admission accounting, and
//! resolver bounds.
//!
//! Cases are generated from the in-repo seeded [`SimRng`] (no external
//! property-testing crate).

use drcom::admission::AdmissionLedger;
use drcom::descriptor::ComponentDescriptor;
use drcom::hybrid::{Command, Reply};
use drcom::lifecycle::ComponentState;
use drcom::model::{PortInterface, PropertyValue};
use drcom::resolve::RmBoundResolver;
use drcom::xml;
use rtos::rng::SimRng;
use rtos::shm::DataType;

const CASES: usize = 96;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn string_from(rng: &mut SimRng, first: &[u8], rest: &[u8], min: usize, max: usize) -> String {
    let len = rng.uniform_u64(min as u64, max as u64 + 1) as usize;
    (0..len)
        .map(|i| {
            let set = if i == 0 { first } else { rest };
            set[rng.uniform_u64(0, set.len() as u64) as usize] as char
        })
        .collect()
}

const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const LOWER_NUM: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";

fn obj_name(rng: &mut SimRng) -> String {
    string_from(rng, LOWER, LOWER_NUM, 1, 6)
}

fn printable(rng: &mut SimRng, max: usize) -> String {
    let len = rng.uniform_u64(0, max as u64 + 1) as usize;
    (0..len)
        .map(|_| rng.uniform_u64(0x20, 0x7F) as u8 as char)
        .collect()
}

/// Printable ASCII without XML-attribute specials (`"&<>'`).
fn xml_safe_text(rng: &mut SimRng, max: usize) -> String {
    let len = rng.uniform_u64(0, max as u64 + 1) as usize;
    let mut s = String::new();
    while s.len() < len {
        let c = rng.uniform_u64(0x20, 0x7F) as u8 as char;
        if !matches!(c, '"' | '&' | '<' | '>' | '\'') {
            s.push(c);
        }
    }
    s
}

fn property_value(rng: &mut SimRng) -> PropertyValue {
    match rng.uniform_u64(0, 4) {
        0 => PropertyValue::Integer(rng.next_u64() as i64),
        1 => PropertyValue::Float(rng.uniform_range(-1.0e6, 1.0e6)),
        // Strings roundtrip through XML attributes: printable only; XML
        // specials are escaped by to_xml.
        2 => PropertyValue::Text(printable(rng, 20)),
        _ => PropertyValue::Boolean(rng.chance(0.5)),
    }
}

fn port_interface(rng: &mut SimRng) -> PortInterface {
    if rng.chance(0.5) {
        PortInterface::Shm
    } else {
        PortInterface::Mailbox
    }
}

fn data_type(rng: &mut SimRng) -> DataType {
    if rng.chance(0.5) {
        DataType::Integer
    } else {
        DataType::Byte
    }
}

#[derive(Debug, Clone)]
struct DescriptorSpec {
    name: String,
    desc: String,
    enabled: bool,
    periodic: Option<(u32, u32, u8)>,
    cpu_usage: f64,
    outports: Vec<(String, PortInterface, DataType, usize)>,
    inports: Vec<(String, PortInterface, DataType, usize)>,
    properties: Vec<(String, PropertyValue)>,
    modes: Vec<(String, u32, f64, u8)>,
}

/// Generates a spec with unique port/property/mode names; retries until
/// uniqueness holds (mirrors the prop_filter_map of the original test).
fn descriptor_spec(rng: &mut SimRng) -> DescriptorSpec {
    loop {
        let name = obj_name(rng);
        let desc = xml_safe_text(rng, 24);
        let enabled = rng.chance(0.5);
        let periodic = rng.chance(0.7).then(|| {
            (
                rng.uniform_u64(1, 10_000) as u32,
                0u32,
                rng.uniform_u64(0, 255) as u8,
            )
        });
        let cpu_usage = rng.uniform_range(0.01, 1.0);
        let ports = |rng: &mut SimRng| -> Vec<(String, PortInterface, DataType, usize)> {
            (0..rng.uniform_u64(0, 4))
                .map(|_| {
                    (
                        obj_name(rng),
                        port_interface(rng),
                        data_type(rng),
                        rng.uniform_u64(1, 64) as usize,
                    )
                })
                .collect()
        };
        let outports = ports(rng);
        let inports = ports(rng);
        let properties: Vec<(String, PropertyValue)> = (0..rng.uniform_u64(0, 4))
            .map(|_| {
                (
                    string_from(
                        rng,
                        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ",
                        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
                        1,
                        11,
                    ),
                    property_value(rng),
                )
            })
            .collect();
        // Modes only on periodic components, unique non-reserved names.
        let modes: Vec<(String, u32, f64, u8)> = if periodic.is_some() {
            (0..rng.uniform_u64(0, 3))
                .map(|_| {
                    (
                        string_from(rng, LOWER, LOWER_NUM, 1, 9),
                        rng.uniform_u64(1, 10_000) as u32,
                        rng.uniform_range(0.01, 1.0),
                        rng.uniform_u64(0, 255) as u8,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };

        let mut port_names: Vec<&String> = outports
            .iter()
            .map(|(n, ..)| n)
            .chain(inports.iter().map(|(n, ..)| n))
            .collect();
        port_names.sort();
        port_names.dedup();
        if port_names.len() != outports.len() + inports.len() {
            continue;
        }
        let mut prop_names: Vec<&String> = properties.iter().map(|(n, _)| n).collect();
        prop_names.sort();
        prop_names.dedup();
        if prop_names.len() != properties.len() {
            continue;
        }
        let mut mode_names: Vec<&String> = modes.iter().map(|(n, ..)| n).collect();
        mode_names.sort();
        mode_names.dedup();
        if mode_names.len() != modes.len() || modes.iter().any(|(n, ..)| n == "normal") {
            continue;
        }
        return DescriptorSpec {
            name,
            desc,
            enabled,
            periodic,
            cpu_usage,
            outports,
            inports,
            properties,
            modes,
        };
    }
}

fn build(spec: &DescriptorSpec) -> ComponentDescriptor {
    let mut b = ComponentDescriptor::builder(&spec.name)
        .description(&spec.desc)
        .enabled(spec.enabled)
        .cpu_usage(spec.cpu_usage);
    b = match spec.periodic {
        Some((hz, cpu, prio)) => b.periodic(hz, cpu, prio),
        None => b.aperiodic(0, 100),
    };
    for (n, i, t, s) in &spec.outports {
        b = b.outport(n, *i, *t, *s);
    }
    for (n, i, t, s) in &spec.inports {
        b = b.inport(n, *i, *t, *s);
    }
    for (n, v) in &spec.properties {
        b = b.property(n, v.clone());
    }
    for (n, hz, usage, prio) in &spec.modes {
        b = b.mode(n, *hz, *usage, *prio);
    }
    b.build().expect("generated descriptors are valid")
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

/// Any valid descriptor serializes to XML that parses back to an equal
/// descriptor (modulo float text formatting, which is exact for the
/// generated range).
#[test]
fn descriptor_xml_roundtrip() {
    let mut rng = SimRng::from_seed(0xD35C);
    for case in 0..CASES {
        let spec = descriptor_spec(&mut rng);
        let d = build(&spec);
        let xml_text = d.to_xml();
        let reparsed = ComponentDescriptor::parse_xml(&xml_text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{xml_text}"));
        assert_eq!(reparsed.name, d.name, "case {case}");
        assert_eq!(reparsed.description, d.description, "case {case}");
        assert_eq!(reparsed.enabled, d.enabled, "case {case}");
        assert_eq!(reparsed.task, d.task, "case {case}");
        assert!(
            (reparsed.cpu_usage.fraction() - d.cpu_usage.fraction()).abs() < 1e-12,
            "case {case}"
        );
        assert_eq!(reparsed.inports, d.inports, "case {case}");
        assert_eq!(reparsed.outports, d.outports, "case {case}");
        // Properties: compare name + rendered value (float text identity).
        assert_eq!(reparsed.properties.len(), d.properties.len(), "case {case}");
        for ((n1, v1), (n2, v2)) in reparsed.properties.iter().zip(d.properties.iter()) {
            assert_eq!(n1, n2, "case {case}");
            assert_eq!(v1.to_string(), v2.to_string(), "case {case}");
        }
        // Modes survive, including their claims.
        assert_eq!(reparsed.modes.len(), d.modes.len(), "case {case}");
        for (m1, m2) in reparsed.modes.iter().zip(d.modes.iter()) {
            assert_eq!(&m1.name, &m2.name, "case {case}");
            assert_eq!(m1.frequency_hz, m2.frequency_hz, "case {case}");
            assert_eq!(m1.priority, m2.priority, "case {case}");
            assert!((m1.cpu_usage - m2.cpu_usage).abs() < 1e-12, "case {case}");
        }
    }
}

/// The XML parser never panics on arbitrary input.
#[test]
fn xml_parse_never_panics() {
    let mut rng = SimRng::from_seed(0x9A21C);
    for _ in 0..CASES {
        let len = rng.uniform_u64(0, 121) as usize;
        let s: String = (0..len)
            .map(|_| match rng.uniform_u64(0, 12) {
                0 => '\n',
                1 => '\t',
                2 => '<',
                3 => '>',
                4 => '"',
                5 => '&',
                _ => rng.uniform_u64(0x20, 0x7F) as u8 as char,
            })
            .collect();
        let _ = xml::parse(&s);
    }
}

/// Commands survive the §3.2 wire format.
#[test]
fn command_wire_roundtrip() {
    let mut rng = SimRng::from_seed(0xC0DE);
    for case in 0..CASES {
        let name = printable(&mut rng, 24);
        let value = property_value(&mut rng);
        let token = rng.next_u64() as u32;
        let cmd = match rng.uniform_u64(0, 4) {
            0 => Command::SetProperty { name, value },
            1 => Command::GetProperty { token, name },
            2 => Command::QueryStatus { token },
            _ => Command::Ping { token },
        };
        let bytes = cmd.encode().expect("encode");
        assert_eq!(Command::decode(&bytes).expect("decode"), cmd, "case {case}");
    }
}

/// Replies survive the wire format, and decode never panics on noise.
#[test]
fn reply_wire_roundtrip() {
    let mut rng = SimRng::from_seed(0x4E71);
    for case in 0..CASES {
        let name = printable(&mut rng, 24);
        let value = rng.chance(0.5).then(|| property_value(&mut rng));
        let token = rng.next_u64() as u32;
        let cycles = rng.next_u64();
        let at_ns = rng.next_u64();
        let reply = match rng.uniform_u64(0, 3) {
            0 => Reply::Property { token, name, value },
            1 => Reply::Status {
                token,
                cycles,
                at_ns,
            },
            _ => Reply::Pong { token },
        };
        let bytes = reply.encode().expect("encode");
        assert_eq!(Reply::decode(&bytes).expect("decode"), reply, "case {case}");
        let noise: Vec<u8> = (0..rng.uniform_u64(0, 48))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let _ = Reply::decode(&noise);
        let _ = Command::decode(&noise);
    }
}

/// Lifecycle laws over random walks: admission-holding states are only
/// reachable through Unsatisfied→Active, and Destroyed is absorbing.
#[test]
fn lifecycle_random_walk() {
    let mut rng = SimRng::from_seed(0x11FE);
    for case in 0..CASES {
        let states = ComponentState::ALL;
        let mut current = ComponentState::Installed;
        let mut was_active = false;
        let steps = rng.uniform_u64(1, 40);
        for _ in 0..steps {
            let target = states[rng.uniform_u64(0, states.len() as u64) as usize];
            if current.can_transition(target) {
                // Law: you can only *become* admission-holding from
                // Unsatisfied (activation) or between Active/Suspended.
                if target.holds_admission() && !current.holds_admission() {
                    assert_eq!(current, ComponentState::Unsatisfied, "case {case}");
                    assert_eq!(target, ComponentState::Active, "case {case}");
                }
                if target == ComponentState::Active {
                    was_active = true;
                }
                current = target;
            }
            if current.is_terminal() {
                break;
            }
        }
        // Suspended implies it was active at some point.
        if current == ComponentState::Suspended {
            assert!(was_active, "case {case}");
        }
    }
}

/// The ledger's per-CPU totals always equal the sum of live reservations,
/// through arbitrary reserve/release interleavings.
#[test]
fn ledger_accounting() {
    let mut rng = SimRng::from_seed(0x1ED6);
    for case in 0..CASES {
        let mut ledger = AdmissionLedger::new(2);
        let mut model: std::collections::HashMap<String, (u32, f64)> = Default::default();
        let ops = rng.uniform_u64(1, 60);
        for _ in 0..ops {
            let op = rng.uniform_u64(0, 2);
            let name = format!("c{}", rng.uniform_u64(0, 8));
            let cpu = rng.uniform_u64(0, 2) as u32;
            let usage = rng.uniform_range(0.01, 0.5);
            if op == 0 {
                match ledger.reserve(&name, cpu, usage) {
                    Ok(()) => {
                        assert!(!model.contains_key(&name), "case {case}");
                        model.insert(name, (cpu, usage));
                    }
                    Err(_) => assert!(model.contains_key(&name), "case {case}"),
                }
            } else {
                let released = ledger.release(&name);
                assert_eq!(
                    released.is_ok(),
                    model.remove(&name).is_some(),
                    "case {case}"
                );
            }
            for c in 0..2u32 {
                let expect: f64 = model
                    .values()
                    .filter(|(mc, _)| *mc == c)
                    .map(|(_, u)| u)
                    .sum();
                assert!((ledger.utilization(c) - expect).abs() < 1e-9, "case {case}");
            }
            assert_eq!(ledger.len(), model.len(), "case {case}");
        }
    }
}

/// Liu–Layland bound: decreasing in n, bounded by (ln 2, 1].
#[test]
fn rm_bound_laws() {
    for n in 1usize..200 {
        let b = RmBoundResolver::bound(n);
        assert!(b > std::f64::consts::LN_2 - 1e-9);
        assert!(b <= 1.0 + 1e-9);
        assert!(RmBoundResolver::bound(n + 1) <= b + 1e-12);
    }
}
