//! Property-based tests of the DRCom layer: descriptor XML roundtrips, the
//! intra-component wire protocol, lifecycle laws, admission accounting, and
//! resolver bounds.

use drcom::admission::AdmissionLedger;
use drcom::descriptor::ComponentDescriptor;
use drcom::hybrid::{Command, Reply};
use drcom::lifecycle::ComponentState;
use drcom::model::{PortInterface, PropertyValue};
use drcom::resolve::RmBoundResolver;
use drcom::xml;
use proptest::prelude::*;
use rtos::shm::DataType;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn obj_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}"
}

fn property_value() -> impl Strategy<Value = PropertyValue> {
    prop_oneof![
        any::<i64>().prop_map(PropertyValue::Integer),
        (-1.0e6f64..1.0e6).prop_map(PropertyValue::Float),
        // Strings roundtrip through XML attributes: printable, no control
        // chars; XML specials are escaped by to_xml.
        "[ -~]{0,20}".prop_map(PropertyValue::Text),
        any::<bool>().prop_map(PropertyValue::Boolean),
    ]
}

fn port_interface() -> impl Strategy<Value = PortInterface> {
    prop_oneof![Just(PortInterface::Shm), Just(PortInterface::Mailbox)]
}

fn data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![Just(DataType::Integer), Just(DataType::Byte)]
}

#[derive(Debug, Clone)]
struct DescriptorSpec {
    name: String,
    desc: String,
    enabled: bool,
    periodic: Option<(u32, u32, u8)>,
    cpu_usage: f64,
    outports: Vec<(String, PortInterface, DataType, usize)>,
    inports: Vec<(String, PortInterface, DataType, usize)>,
    properties: Vec<(String, PropertyValue)>,
    modes: Vec<(String, u32, f64, u8)>,
}

fn descriptor_spec() -> impl Strategy<Value = DescriptorSpec> {
    (
        obj_name(),
        "[ -~&&[^\"&<>']]{0,24}",
        any::<bool>(),
        proptest::option::of((1u32..10_000, 0u32..1, 0u8..=254)),
        0.01f64..1.0,
        proptest::collection::vec((obj_name(), port_interface(), data_type(), 1usize..64), 0..4),
        proptest::collection::vec((obj_name(), port_interface(), data_type(), 1usize..64), 0..4),
        proptest::collection::vec(("[a-zA-Z][a-zA-Z0-9_]{0,10}", property_value()), 0..4),
        proptest::collection::vec(
            ("[a-z][a-z0-9]{0,8}", 1u32..10_000, 0.01f64..1.0, 0u8..=254),
            0..3,
        ),
    )
        .prop_filter_map(
            "unique port and property names",
            |(name, desc, enabled, periodic, cpu_usage, outports, inports, properties, modes)| {
                let mut port_names: Vec<&String> = outports
                    .iter()
                    .map(|(n, ..)| n)
                    .chain(inports.iter().map(|(n, ..)| n))
                    .collect();
                port_names.sort();
                port_names.dedup();
                if port_names.len() != outports.len() + inports.len() {
                    return None;
                }
                let mut prop_names: Vec<&String> = properties.iter().map(|(n, _)| n).collect();
                prop_names.sort();
                prop_names.dedup();
                if prop_names.len() != properties.len() {
                    return None;
                }
                // Modes only on periodic components, unique non-reserved names.
                let modes = if periodic.is_some() { modes } else { Vec::new() };
                let mut mode_names: Vec<&String> = modes.iter().map(|(n, ..)| n).collect();
                mode_names.sort();
                mode_names.dedup();
                if mode_names.len() != modes.len()
                    || modes.iter().any(|(n, ..)| n == "normal")
                {
                    return None;
                }
                Some(DescriptorSpec {
                    name,
                    desc,
                    enabled,
                    periodic,
                    cpu_usage,
                    outports,
                    inports,
                    properties,
                    modes,
                })
            },
        )
}

fn build(spec: &DescriptorSpec) -> ComponentDescriptor {
    let mut b = ComponentDescriptor::builder(&spec.name)
        .description(&spec.desc)
        .enabled(spec.enabled)
        .cpu_usage(spec.cpu_usage);
    b = match spec.periodic {
        Some((hz, cpu, prio)) => b.periodic(hz, cpu, prio),
        None => b.aperiodic(0, 100),
    };
    for (n, i, t, s) in &spec.outports {
        b = b.outport(n, *i, *t, *s);
    }
    for (n, i, t, s) in &spec.inports {
        b = b.inport(n, *i, *t, *s);
    }
    for (n, v) in &spec.properties {
        b = b.property(n, v.clone());
    }
    for (n, hz, usage, prio) in &spec.modes {
        b = b.mode(n, *hz, *usage, *prio);
    }
    b.build().expect("generated descriptors are valid")
}

proptest! {
    /// Any valid descriptor serializes to XML that parses back to an equal
    /// descriptor (modulo float text formatting, which is exact for the
    /// generated range).
    #[test]
    fn descriptor_xml_roundtrip(spec in descriptor_spec()) {
        let d = build(&spec);
        let xml_text = d.to_xml();
        let reparsed = ComponentDescriptor::parse_xml(&xml_text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml_text}"));
        prop_assert_eq!(reparsed.name, d.name);
        prop_assert_eq!(reparsed.description, d.description);
        prop_assert_eq!(reparsed.enabled, d.enabled);
        prop_assert_eq!(reparsed.task, d.task);
        prop_assert!((reparsed.cpu_usage.fraction() - d.cpu_usage.fraction()).abs() < 1e-12);
        prop_assert_eq!(reparsed.inports, d.inports);
        prop_assert_eq!(reparsed.outports, d.outports);
        // Properties: compare name + rendered value (float text identity).
        prop_assert_eq!(reparsed.properties.len(), d.properties.len());
        for ((n1, v1), (n2, v2)) in reparsed.properties.iter().zip(d.properties.iter()) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(v1.to_string(), v2.to_string());
        }
        // Modes survive, including their claims.
        prop_assert_eq!(reparsed.modes.len(), d.modes.len());
        for (m1, m2) in reparsed.modes.iter().zip(d.modes.iter()) {
            prop_assert_eq!(&m1.name, &m2.name);
            prop_assert_eq!(m1.frequency_hz, m2.frequency_hz);
            prop_assert_eq!(m1.priority, m2.priority);
            prop_assert!((m1.cpu_usage - m2.cpu_usage).abs() < 1e-12);
        }
    }

    /// The XML parser never panics on arbitrary input.
    #[test]
    fn xml_parse_never_panics(s in "[ -~\\n\\t]{0,120}") {
        let _ = xml::parse(&s);
    }

    /// Commands survive the §3.2 wire format.
    #[test]
    fn command_wire_roundtrip(
        name in "[ -~]{0,24}",
        value in property_value(),
        token in any::<u32>(),
        which in 0u8..4,
    ) {
        let cmd = match which {
            0 => Command::SetProperty { name, value },
            1 => Command::GetProperty { token, name },
            2 => Command::QueryStatus { token },
            _ => Command::Ping { token },
        };
        let bytes = cmd.encode();
        prop_assert_eq!(Command::decode(&bytes).expect("decode"), cmd);
    }

    /// Replies survive the wire format, and decode never panics on noise.
    #[test]
    fn reply_wire_roundtrip(
        name in "[ -~]{0,24}",
        value in proptest::option::of(property_value()),
        token in any::<u32>(),
        cycles in any::<u64>(),
        at_ns in any::<u64>(),
        which in 0u8..3,
        noise in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let reply = match which {
            0 => Reply::Property { token, name, value },
            1 => Reply::Status { token, cycles, at_ns },
            _ => Reply::Pong { token },
        };
        let bytes = reply.encode();
        prop_assert_eq!(Reply::decode(&bytes).expect("decode"), reply);
        let _ = Reply::decode(&noise);
        let _ = Command::decode(&noise);
    }

    /// Lifecycle laws over random walks: admission-holding states are only
    /// reachable through Unsatisfied→Active, and Destroyed is absorbing.
    #[test]
    fn lifecycle_random_walk(steps in proptest::collection::vec(0usize..6, 1..40)) {
        let states = ComponentState::ALL;
        let mut current = ComponentState::Installed;
        let mut was_active = false;
        for &s in &steps {
            let target = states[s];
            if current.can_transition(target) {
                // Law: you can only *become* admission-holding from
                // Unsatisfied (activation) or between Active/Suspended.
                if target.holds_admission() && !current.holds_admission() {
                    prop_assert_eq!(current, ComponentState::Unsatisfied);
                    prop_assert_eq!(target, ComponentState::Active);
                }
                if target == ComponentState::Active {
                    was_active = true;
                }
                current = target;
            }
            if current.is_terminal() {
                break;
            }
        }
        // Suspended implies it was active at some point.
        if current == ComponentState::Suspended {
            prop_assert!(was_active);
        }
    }

    /// The ledger's per-CPU totals always equal the sum of live
    /// reservations, through arbitrary reserve/release interleavings.
    #[test]
    fn ledger_accounting(ops in proptest::collection::vec(
        (0u8..2, 0usize..8, 0u32..2, 0.01f64..0.5),
        1..60,
    )) {
        let mut ledger = AdmissionLedger::new(2);
        let mut model: std::collections::HashMap<String, (u32, f64)> = Default::default();
        for (op, comp, cpu, usage) in ops {
            let name = format!("c{comp}");
            if op == 0 {
                match ledger.reserve(&name, cpu, usage) {
                    Ok(()) => {
                        prop_assert!(!model.contains_key(&name));
                        model.insert(name, (cpu, usage));
                    }
                    Err(_) => prop_assert!(model.contains_key(&name)),
                }
            } else {
                let released = ledger.release(&name);
                prop_assert_eq!(released.is_some(), model.remove(&name).is_some());
            }
            for c in 0..2u32 {
                let expect: f64 = model.values().filter(|(mc, _)| *mc == c).map(|(_, u)| u).sum();
                prop_assert!((ledger.utilization(c) - expect).abs() < 1e-9);
            }
            prop_assert_eq!(ledger.len(), model.len());
        }
    }

    /// Liu–Layland bound: decreasing in n, bounded by (ln 2, 1].
    #[test]
    fn rm_bound_laws(n in 1usize..200) {
        let b = RmBoundResolver::bound(n);
        prop_assert!(b > std::f64::consts::LN_2 - 1e-9);
        prop_assert!(b <= 1.0 + 1e-9);
        prop_assert!(RmBoundResolver::bound(n + 1) <= b + 1e-12);
    }
}
