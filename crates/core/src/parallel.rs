//! Descriptor fleets on the two-executor kernel (§3 meets `rtos::exec`).
//!
//! The DRCR executive drives components through a single [`rtos::kernel::Kernel`]
//! it owns via `Rc<RefCell<..>>` — the right shape for lifecycle dynamics
//! (install/uninstall, cascades, re-resolution), but inherently serial. This
//! module is the complementary path for *steady-state* fleets: once a set of
//! component contracts is fixed, [`FleetBridge`] lowers the declarative
//! descriptors into an [`rtos::exec::Workload`] that runs unchanged under
//! [`rtos::exec::DeterministicExecutor`] (the executive's own semantics) or
//! [`rtos::exec::ParallelExecutor`] (one worker thread per simulated-CPU
//! group), with the linearization guarantee proven by the kernel's
//! equivalence suite.
//!
//! The lowering mirrors the executive's activation path exactly:
//!
//! * task contracts become the same [`TaskConfig`]s `Drcr::activate` builds
//!   (periodic/aperiodic, CPU placement, latency tracking, optional
//!   execution budgets derived from the claimed CPU fraction);
//! * SHM ports allocate last-value segments, mailbox outports create queues,
//!   stream outports create FIFOs with the same 4-buffer slack;
//! * mailbox and FIFO state is homed on the *consuming* component's CPU, so
//!   cross-CPU traffic flows through the executor's barrier exchange and
//!   aperiodic mailbox-wakeup bindings stay CPU-local, as the kernel
//!   requires;
//! * disabled components (`enabled="false"`) are created but not started,
//!   matching their executive lifecycle state.
//!
//! What the bridge deliberately does *not* reproduce is the executive
//! itself: no admission ledger, no wiring resolution, no supervision. Feed
//! it fleets the executive has already admitted.

use std::collections::BTreeMap;

use crate::descriptor::ComponentDescriptor;
use crate::error::DrcrError;
use crate::model::PortInterface;
use rtos::exec::{BodyFactory, TaskSpec as ExecTaskSpec, Workload};
use rtos::task::{TaskBody, TaskConfig};
use rtos::time::{SimDuration, SimTime};

/// One component in a bridged fleet: its declarative contract plus the
/// factory that builds its body on whichever thread executes its CPU.
pub struct FleetMember {
    descriptor: ComponentDescriptor,
    factory: BodyFactory,
    triggers: Vec<SimTime>,
}

/// Lowers a fixed set of [`ComponentDescriptor`]s into an executor-ready
/// [`Workload`]. See the module docs for the exact mapping.
pub struct FleetBridge {
    cpus: u32,
    seed: u64,
    enforce_budgets: bool,
    members: Vec<FleetMember>,
}

impl FleetBridge {
    /// Starts a bridge for a machine with `cpus` simulated CPUs and a
    /// deterministic seed.
    pub fn new(cpus: u32, seed: u64) -> Self {
        FleetBridge {
            cpus,
            seed,
            enforce_budgets: false,
            members: Vec::new(),
        }
    }

    /// Derives per-cycle execution budgets from each periodic component's
    /// claimed CPU fraction, exactly as the executive's enforcement layer
    /// does (budget = period × fraction, floored at 1 ns).
    pub fn enforce_budgets(mut self, on: bool) -> Self {
        self.enforce_budgets = on;
        self
    }

    /// Adds a component with its body factory.
    pub fn component(
        self,
        descriptor: ComponentDescriptor,
        factory: impl Fn() -> Box<dyn TaskBody> + Send + Sync + 'static,
    ) -> Self {
        self.member(FleetMember {
            descriptor,
            factory: rtos::exec::body_factory(factory),
            triggers: Vec::new(),
        })
    }

    /// Adds an aperiodic component with scripted release instants (the
    /// bridge-level stand-in for sporadic external events).
    pub fn component_with_triggers(
        self,
        descriptor: ComponentDescriptor,
        factory: impl Fn() -> Box<dyn TaskBody> + Send + Sync + 'static,
        triggers: Vec<SimTime>,
    ) -> Self {
        self.member(FleetMember {
            descriptor,
            factory: rtos::exec::body_factory(factory),
            triggers,
        })
    }

    /// Adds a fully specified member.
    pub fn member(mut self, member: FleetMember) -> Self {
        self.members.push(member);
        self
    }

    /// Lowers the fleet into a [`Workload`].
    ///
    /// # Errors
    ///
    /// [`DrcrError::DuplicateComponent`] on a repeated component name,
    /// [`DrcrError::MissingChannel`] when a stream inport has no producing
    /// outport anywhere in the fleet, [`DrcrError::Kernel`] when a
    /// contract cannot be expressed on this machine (CPU out of range,
    /// invalid task name, cross-CPU wakeup binding).
    pub fn build(&self) -> Result<Workload, DrcrError> {
        let mut seen: Vec<&str> = Vec::new();
        for member in &self.members {
            let name = member.descriptor.name.as_str();
            if seen.contains(&name) {
                return Err(DrcrError::DuplicateComponent(name.to_string()));
            }
            seen.push(name);
            let cpu = member.descriptor.task.cpu();
            if cpu >= self.cpus {
                return Err(DrcrError::Kernel(format!(
                    "component `{name}` wants CPU {cpu} but the machine has {}",
                    self.cpus
                )));
            }
        }

        // Message-passing ports are homed where they are consumed: a
        // mailbox or FIFO inport pins the queue's state to that
        // component's CPU (first consumer wins, deterministically by
        // member order), so the executor can keep wakeup bindings local
        // and route cross-CPU sends through the barrier exchange.
        let mut consumer_cpu: BTreeMap<&str, u32> = BTreeMap::new();
        for member in &self.members {
            for port in &member.descriptor.inports {
                if port.interface != PortInterface::Shm {
                    consumer_cpu
                        .entry(port.name.as_str())
                        .or_insert(member.descriptor.task.cpu());
                }
            }
        }

        let mut workload = Workload::new(self.cpus, self.seed);
        let mut declared: Vec<String> = Vec::new();
        let mut declare = |workload: Workload, port: &crate::model::PortSpec, owner_cpu: u32| {
            let name = port.name.as_str();
            if declared.contains(&name.to_string()) {
                return workload;
            }
            declared.push(name.to_string());
            let home = consumer_cpu.get(name).copied().unwrap_or(owner_cpu);
            match port.interface {
                PortInterface::Shm => workload.shm(name, port.data_type, port.size),
                PortInterface::Mailbox => workload.mailbox(name, port.size.max(1), home),
                // Streams get 4 buffers' worth of slack, as in the executive.
                PortInterface::Fifo => workload.fifo(name, port.byte_len().max(1) * 4, home),
            }
        };
        for member in &self.members {
            let cpu = member.descriptor.task.cpu();
            for port in &member.descriptor.outports {
                workload = declare(workload, port, cpu);
            }
        }
        // SHM inports allocate their segment too (the executive refcounts
        // the shared allocation); orphan mailbox inports still need a queue
        // to bind wakeups against.
        for member in &self.members {
            let cpu = member.descriptor.task.cpu();
            for port in &member.descriptor.inports {
                if port.interface != PortInterface::Fifo {
                    workload = declare(workload, port, cpu);
                }
            }
        }

        // A stream consumer with no producer anywhere in the fleet would
        // run against a channel that was never created and fail only from
        // inside its body at run time. Reject the topology here, typed,
        // before an executor ever spins up.
        for member in &self.members {
            for port in &member.descriptor.inports {
                if port.interface == PortInterface::Fifo
                    && !declared.iter().any(|d| d == port.name.as_str())
                {
                    return Err(DrcrError::MissingChannel {
                        component: member.descriptor.name.to_string(),
                        port: port.name.to_string(),
                    });
                }
            }
        }

        for member in &self.members {
            let descriptor = &member.descriptor;
            let name = descriptor.name.as_str();
            let mut config = match descriptor.task.period() {
                Some(period) => TaskConfig::periodic(name, descriptor.task.priority(), period)
                    .map_err(|e| DrcrError::Kernel(e.to_string()))?,
                None => TaskConfig::aperiodic(name, descriptor.task.priority())
                    .map_err(|e| DrcrError::Kernel(e.to_string()))?,
            }
            .on_cpu(descriptor.task.cpu())
            .with_latency_tracking();
            if self.enforce_budgets {
                if let Some(period) = descriptor.task.period() {
                    let budget_ns = (period.as_nanos() as f64 * descriptor.cpu_usage.fraction())
                        .round()
                        .max(1.0) as u64;
                    config = config.with_exec_budget(SimDuration::from_nanos(budget_ns));
                }
            }
            let wake_on = if descriptor.task.is_periodic() {
                None
            } else {
                match descriptor
                    .inports
                    .iter()
                    .find(|p| p.interface == PortInterface::Mailbox)
                {
                    Some(p) => {
                        // Wakeup bindings must stay CPU-local and the
                        // queue was homed on the fleet's *first* consumer;
                        // a second consumer on another CPU would otherwise
                        // surface only from `Workload::validate` at run
                        // time, without the component named.
                        let home = consumer_cpu
                            .get(p.name.as_str())
                            .copied()
                            .unwrap_or_else(|| descriptor.task.cpu());
                        if home != descriptor.task.cpu() {
                            return Err(DrcrError::Kernel(format!(
                                "component `{name}` wakes on mailbox `{}` homed on CPU {home}, not its CPU {}",
                                p.name,
                                descriptor.task.cpu()
                            )));
                        }
                        Some(p.name.to_string())
                    }
                    None => None,
                }
            };
            workload = workload.task_spec(ExecTaskSpec {
                config,
                factory: member.factory.clone(),
                autostart: descriptor.enabled,
                wake_on,
                triggers: member.triggers.clone(),
            });
        }
        Ok(workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::ComponentDescriptor;
    use rtos::exec::{linearization_equivalent, DeterministicExecutor, Executor, ParallelExecutor};
    use rtos::kernel::TaskCtx;
    use rtos::shm::DataType;
    use rtos::task::FnBody;
    use rtos::time::SimDuration;

    /// A quiescent two-CPU fleet: all IPC stays CPU-local, so the
    /// linearization guarantee applies at every worker count.
    fn pipeline_bridge() -> FleetBridge {
        let sensor = ComponentDescriptor::builder("sensor")
            .periodic(1000, 0, 3)
            .cpu_usage(0.2)
            .outport("img", PortInterface::Shm, DataType::Byte, 8)
            .outport("cmd", PortInterface::Mailbox, DataType::Byte, 8)
            .build()
            .unwrap();
        let filter = ComponentDescriptor::builder("filter")
            .periodic(500, 0, 2)
            .cpu_usage(0.1)
            .inport("img", PortInterface::Shm, DataType::Byte, 8)
            .build()
            .unwrap();
        let logger = ComponentDescriptor::builder("logger")
            .aperiodic(0, 4)
            .cpu_usage(0.05)
            .inport("cmd", PortInterface::Mailbox, DataType::Byte, 8)
            .build()
            .unwrap();
        let mixer = ComponentDescriptor::builder("mixer")
            .periodic(250, 1, 2)
            .cpu_usage(0.1)
            .outport("mix", PortInterface::Shm, DataType::Byte, 8)
            .build()
            .unwrap();
        FleetBridge::new(2, 42)
            .component(sensor, || {
                let mut cycle: u64 = 0;
                Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                    cycle += 1;
                    let _ = ctx.shm_write("img", &cycle.to_le_bytes());
                    if cycle.is_multiple_of(4) {
                        let _ = ctx.mailbox_send("cmd", &cycle.to_le_bytes());
                    }
                }))
            })
            .component(filter, || {
                Box::new(FnBody(|ctx: &mut TaskCtx<'_>| {
                    let _ = ctx.shm_read("img");
                    ctx.compute(SimDuration::from_micros(120));
                }))
            })
            .component(logger, || {
                Box::new(FnBody(
                    |ctx: &mut TaskCtx<'_>| {
                        while let Ok(Some(_)) = ctx.mailbox_recv("cmd") {}
                    },
                ))
            })
            .component(mixer, || {
                let mut cycle: u64 = 0;
                Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                    cycle += 1;
                    let _ = ctx.shm_write("mix", &cycle.to_le_bytes());
                }))
            })
    }

    #[test]
    fn descriptor_fleet_is_equivalent_across_executors() {
        let workload = pipeline_bridge().build().unwrap();
        let horizon = SimDuration::from_millis(30);
        let reference = DeterministicExecutor.run(&workload, horizon).unwrap();
        for workers in [1, 2] {
            let parallel = ParallelExecutor::new(workers)
                .run(&workload, horizon)
                .unwrap();
            linearization_equivalent(&reference, &parallel)
                .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
        }
        let sensor = reference.task("sensor").unwrap();
        assert!(sensor.cycles >= 29, "sensor ran {} cycles", sensor.cycles);
        // The logger woke on same-CPU mailbox posts, not scripted triggers.
        let logger = reference.task("logger").unwrap();
        assert!(logger.cycles > 0, "logger never woke on its mailbox");
        assert!(reference.task("mixer").unwrap().cycles > 0);
    }

    #[test]
    fn cross_cpu_mailbox_delivers_through_the_barrier_exchange() {
        // Producer on CPU 0, mailbox consumer homed on CPU 1: under the
        // parallel executor the posts cross worker threads at epoch
        // barriers. Delivery timing legitimately differs from the serial
        // schedule (the fleet is not quiescent), but every message must
        // still arrive and wake the consumer.
        let talker = ComponentDescriptor::builder("talker")
            .periodic(1000, 0, 3)
            .outport("cmd", PortInterface::Mailbox, DataType::Byte, 16)
            .build()
            .unwrap();
        let hearer = ComponentDescriptor::builder("hearer")
            .aperiodic(1, 4)
            .inport("cmd", PortInterface::Mailbox, DataType::Byte, 16)
            .build()
            .unwrap();
        let workload = FleetBridge::new(2, 7)
            .component(talker, || {
                let mut cycle: u64 = 0;
                Box::new(FnBody(move |ctx: &mut TaskCtx<'_>| {
                    cycle += 1;
                    if cycle.is_multiple_of(2) {
                        let _ = ctx.mailbox_send("cmd", &cycle.to_le_bytes());
                    }
                }))
            })
            .component(hearer, || {
                Box::new(FnBody(
                    |ctx: &mut TaskCtx<'_>| {
                        while let Ok(Some(_)) = ctx.mailbox_recv("cmd") {}
                    },
                ))
            })
            .build()
            .unwrap();
        let horizon = SimDuration::from_millis(40);
        for executor in [
            Box::new(DeterministicExecutor) as Box<dyn Executor>,
            Box::new(ParallelExecutor::new(2).with_epoch(SimDuration::from_millis(5))),
        ] {
            let outcome = executor.run(&workload, horizon).unwrap();
            let hearer = outcome.task("hearer").unwrap();
            assert!(
                hearer.cycles > 0,
                "{}: hearer never woke on cross-CPU posts",
                executor.name()
            );
        }
    }

    #[test]
    fn budgets_mirror_the_executive_derivation() {
        let workload = pipeline_bridge().enforce_budgets(true).build().unwrap();
        workload.validate().unwrap();
        let outcome = DeterministicExecutor
            .run(&workload, SimDuration::from_millis(10))
            .unwrap();
        assert!(outcome.task("filter").unwrap().cycles > 0);
    }

    #[test]
    fn out_of_range_cpu_is_rejected() {
        let stray = ComponentDescriptor::builder("stray")
            .periodic(100, 7, 2)
            .build()
            .unwrap();
        let err = FleetBridge::new(2, 1)
            .component(stray, || Box::new(rtos::task::IdleBody))
            .build()
            .err()
            .expect("out-of-range CPU must be rejected");
        assert!(matches!(err, DrcrError::Kernel(_)), "got {err:?}");
    }

    #[test]
    fn duplicate_component_names_are_rejected() {
        let a = ComponentDescriptor::builder("twin")
            .periodic(100, 0, 2)
            .build()
            .unwrap();
        let b = ComponentDescriptor::builder("twin")
            .periodic(200, 0, 3)
            .build()
            .unwrap();
        let err = FleetBridge::new(1, 1)
            .component(a, || Box::new(rtos::task::IdleBody))
            .component(b, || Box::new(rtos::task::IdleBody))
            .build()
            .err()
            .expect("duplicate names must be rejected");
        assert!(
            matches!(err, DrcrError::DuplicateComponent(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn orphan_fifo_inport_is_a_typed_missing_channel() {
        // A stream consumer whose producing outport exists nowhere in the
        // fleet: before the guard this lowered cleanly and failed only
        // from inside the body at run time.
        let eater = ComponentDescriptor::builder("eater")
            .periodic(100, 0, 2)
            .inport("stream", PortInterface::Fifo, DataType::Byte, 8)
            .build()
            .unwrap();
        let err = FleetBridge::new(1, 1)
            .component(eater, || Box::new(rtos::task::IdleBody))
            .build()
            .err()
            .expect("orphan stream inport must be rejected");
        assert_eq!(
            err,
            DrcrError::MissingChannel {
                component: "eater".into(),
                port: "stream".into(),
            }
        );
        // The same inport with a producer lowers fine.
        let maker = ComponentDescriptor::builder("maker")
            .periodic(100, 0, 3)
            .outport("stream", PortInterface::Fifo, DataType::Byte, 8)
            .build()
            .unwrap();
        let eater = ComponentDescriptor::builder("eater")
            .periodic(100, 0, 2)
            .inport("stream", PortInterface::Fifo, DataType::Byte, 8)
            .build()
            .unwrap();
        FleetBridge::new(1, 1)
            .component(maker, || Box::new(rtos::task::IdleBody))
            .component(eater, || Box::new(rtos::task::IdleBody))
            .build()
            .expect("provided stream must lower");
    }

    #[test]
    fn cross_cpu_wakeup_binding_is_a_typed_error() {
        // Two aperiodic consumers of one mailbox on different CPUs: the
        // queue homes on the first (CPU 0), so the second's wakeup binding
        // cannot stay CPU-local. Must fail at build() with the component
        // named, not at executor validation.
        let first = ComponentDescriptor::builder("first")
            .aperiodic(0, 3)
            .inport("cmd", PortInterface::Mailbox, DataType::Byte, 8)
            .build()
            .unwrap();
        let second = ComponentDescriptor::builder("second")
            .aperiodic(1, 3)
            .inport("cmd", PortInterface::Mailbox, DataType::Byte, 8)
            .build()
            .unwrap();
        let err = FleetBridge::new(2, 1)
            .component(first, || Box::new(rtos::task::IdleBody))
            .component(second, || Box::new(rtos::task::IdleBody))
            .build()
            .err()
            .expect("cross-CPU wakeup binding must be rejected");
        match err {
            DrcrError::Kernel(msg) => {
                assert!(msg.contains("second"), "component not named: {msg}");
                assert!(msg.contains("cmd"), "mailbox not named: {msg}");
            }
            other => panic!("expected Kernel error, got {other:?}"),
        }
    }

    #[test]
    fn disabled_components_do_not_autostart() {
        let idle = ComponentDescriptor::builder("idle")
            .periodic(1000, 0, 2)
            .enabled(false)
            .build()
            .unwrap();
        let workload = FleetBridge::new(1, 9)
            .component(idle, || Box::new(rtos::task::IdleBody))
            .build()
            .unwrap();
        let outcome = DeterministicExecutor
            .run(&workload, SimDuration::from_millis(10))
            .unwrap();
        assert_eq!(outcome.task("idle").unwrap().cycles, 0);
    }
}
