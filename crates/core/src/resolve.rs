//! Resolving services: pluggable admission policy.
//!
//! The paper's DRCR consults an **internal resolving service** and any
//! **customized resolving services** registered in the OSGi service
//! registry; a component activates only "when both services return positive
//! results". [`ResolvingService`] is that contract: a pure function from a
//! candidate + the global [`SystemView`] to a [`Decision`].
//!
//! Built-in policies:
//!
//! * [`UtilizationResolver`] — admit while the per-CPU reserved budget stays
//!   under a cap (the internal resolver's default, cap 1.0).
//! * [`RmBoundResolver`] — Liu–Layland rate-monotonic bound
//!   `n(2^{1/n} − 1)` over periodic components per CPU.
//! * [`EdfResolver`] — EDF bound (utilization ≤ 1) per CPU.
//! * [`CompositeResolver`] — all inner resolvers must admit.
//! * [`AlwaysAdmit`] / [`AlwaysReject`] — scenario and test plumbing.
//!
//! Customized resolvers are discovered under the service interface
//! [`RESOLVER_SERVICE`], wrapped in [`ResolverHandle`] so the registry can
//! hand back a concrete type.
//!
//! Above the per-candidate policy sits the [`Resolver`] trait: the unified
//! surface of a whole constraint-resolution *engine* (functional wiring
//! checks, the deactivation sweep's dirty cursor, internal admission, and
//! optional batched admission). The executive drives exactly one `Resolver`;
//! the old split between a `ResolutionStrategy` enum dispatch and a bare
//! `ResolvingService` collapses into engine constructors
//! ([`crate::reactive::ReactiveResolver`], [`crate::reactive::NaiveResolver`]).

use crate::descriptor::ComponentDescriptor;
use crate::lifecycle::ComponentState;
use crate::rta::RtaAnalysis;
use crate::view::{ComponentInfo, SystemView};
use crate::wiring::WiringResult;
use std::fmt;
use std::rc::Rc;

/// Service-registry interface name for customized resolving services.
pub const RESOLVER_SERVICE: &str = "drt.resolver";

/// Outcome of consulting a resolving service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The candidate may activate.
    Admit,
    /// The candidate must stay unsatisfied, with a reason for the log.
    Reject(String),
}

impl Decision {
    /// True for [`Decision::Admit`].
    pub fn is_admit(&self) -> bool {
        matches!(self, Decision::Admit)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Admit => write!(f, "admit"),
            Decision::Reject(reason) => write!(f, "reject: {reason}"),
        }
    }
}

/// An admission policy over the global view. See the [module docs](self).
pub trait ResolvingService {
    /// A short policy name for logs.
    fn name(&self) -> &str;

    /// Decides whether `candidate` may activate given the current view.
    ///
    /// The view includes the candidate itself (in its pre-activation state);
    /// implementations should reason about the hypothetical system where
    /// the candidate's claim is added to its CPU.
    fn admit(&self, candidate: &ComponentInfo, view: &SystemView) -> Decision;

    /// Whether verdicts may be memoized between resolve sweeps.
    ///
    /// A cacheable policy's verdict on a candidate depends only on the
    /// candidate's contract and the *admission-holding* component set of the
    /// candidate's CPU — so a memoized verdict stays valid until a component
    /// on that CPU activates or deactivates. All built-in policies qualify;
    /// the conservative default is `false` (policies that inspect arbitrary
    /// view details are re-evaluated every time).
    fn cacheable(&self) -> bool {
        false
    }
}

/// Result of one functional (wiring) check through a [`Resolver`], with the
/// work provenance the executive feeds into its `drcr.wiring.*` counters.
#[derive(Debug, Clone)]
pub struct WiringCheck {
    /// Chosen `(inport, provider)` pairs, or the unsatisfied inports.
    pub result: WiringResult,
    /// False when the result was served from a memoized node.
    pub evaluated: bool,
    /// True when the engine rebuilt a full wiring graph for this check
    /// (the naive reference only).
    pub graph_built: bool,
}

/// Result of one internal admission ruling through a [`Resolver`].
///
/// The executive re-emits events from the returned values (verdict, and the
/// analysis evidence when present), so a memo hit replays the exact event
/// bytes of the original evaluation.
#[derive(Debug, Clone)]
pub struct AdmissionRuling {
    /// Name of the ruling policy/analysis, for the verdict event.
    pub resolver: String,
    /// The verdict.
    pub decision: Decision,
    /// Response-time evidence, when the engine's admission side is the RTA
    /// analyst ([`crate::reactive::ReactiveResolver::response_time`]).
    pub analysis: Option<RtaAnalysis>,
    /// False when the ruling was served from a memoized node.
    pub evaluated: bool,
}

/// Result of admitting a whole arrival batch in one response-time pass per
/// CPU ([`Resolver::admit_batch`]). Returned only when every candidate is
/// admitted; any other outcome falls back to per-candidate rulings.
#[derive(Debug, Clone)]
pub struct BatchAdmission {
    /// Name of the ruling analysis.
    pub resolver: String,
    /// One full-set analysis per touched CPU, ascending CPU order. Each is
    /// the fixed-point analysis of the hypothetical view with *all* of that
    /// CPU's candidates active — byte-identical to the last analysis the
    /// sequential path would have produced for that CPU.
    pub analyses: Vec<RtaAnalysis>,
}

/// A constraint-resolution engine: the single pluggable surface the DRCR
/// executive drives.
///
/// One engine owns all four constraint-node kinds of a component — wiring,
/// admission claim, CPU placement and mode — behind change notifications
/// (`on_*`), a dirty-scope sweep cursor ([`Resolver::sweep_next`]), and
/// memoized checks. Implementations must preserve the executive's event
/// byte-compatibility: for identical notification sequences,
/// [`Resolver::check_wiring`] / [`Resolver::admit`] must return value-equal
/// results across engines (the lockstep proptests enforce this against
/// [`crate::reactive::NaiveResolver`], the differential oracle).
pub trait Resolver {
    /// A short engine name for logs and reports.
    fn name(&self) -> &str;

    /// A component registered (its provider entries start inactive).
    fn on_registered(&mut self, name: &Rc<str>, descriptor: &ComponentDescriptor);

    /// A component was removed.
    fn on_removed(&mut self, name: &str, descriptor: &ComponentDescriptor);

    /// A component's lifecycle state changed. The engine derives both
    /// wiring-side churn (`provides_outputs` flips seed the dirty scope)
    /// and admission-side churn (`holds_admission` flips invalidate the
    /// CPU's memoized verdicts) from the transition.
    fn on_state_changed(
        &mut self,
        name: &Rc<str>,
        cpu: u32,
        from: ComponentState,
        to: ComponentState,
    );

    /// A component's contract was re-written in place (mode switch, or a
    /// claim refinement published by [`crate::contracts::StochasticMonitor`];
    /// ports are preserved, frequency/claim/priority may change).
    /// `descriptor` is the rewritten contract. A changed claim moves the
    /// CPU's capacity arithmetic for *every* peer, so engines must also
    /// invalidate the CPU's memoized admission verdicts — a refinement that
    /// frees headroom must let previously rejected peers re-admit.
    fn on_contract_changed(&mut self, name: &str, descriptor: &ComponentDescriptor);

    /// The next component the deactivation sweep should re-check, strictly
    /// after `cursor` in name order; `None` ends the sweep. The engine
    /// decides scope: the reactive engine serves its dirty set (consuming
    /// entries as they are returned), the naive reference serves every
    /// known component.
    fn sweep_next(&mut self, cursor: Option<&str>) -> Option<Rc<str>>;

    /// Marks every known component dirty (used when an engine is swapped in
    /// mid-run and must conservatively re-check the world).
    fn seed_all(&mut self);

    /// Checks `candidate`'s functional constraints. Results are memoized
    /// per component (strict checks only: a non-empty `assume_active`
    /// bypasses the memo entirely).
    fn check_wiring(
        &mut self,
        candidate: &ComponentDescriptor,
        assume_active: &[Rc<str>],
    ) -> WiringCheck;

    /// The engine's internal admission ruling on one candidate. `memoize`
    /// is false for group-activation probes, which run against hypothetical
    /// views and must never populate the memo.
    fn admit(
        &mut self,
        candidate: &ComponentInfo,
        view: &SystemView,
        memoize: bool,
    ) -> AdmissionRuling;

    /// Admits a whole arrival batch in one response-time fixed-point pass
    /// per CPU, against the hypothetical view where all candidates are
    /// active. Returns `None` whenever single-pass admission is not
    /// provably equivalent to sequential admission (mixed analysis modes,
    /// any unschedulable CPU, or an engine without batching support) — the
    /// executive then falls back to the exact per-candidate path.
    fn admit_batch(
        &mut self,
        _candidates: &[ComponentInfo],
        _view: &SystemView,
    ) -> Option<BatchAdmission> {
        None
    }
}

/// Newtype wrapper so `Rc<dyn ResolvingService>` can live in the service
/// registry (which downcasts to concrete types).
pub struct ResolverHandle(pub Rc<dyn ResolvingService>);

impl fmt::Debug for ResolverHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ResolverHandle({})", self.0.name())
    }
}

/// Admits while `reserved + candidate ≤ cap` on the candidate's CPU.
///
/// ```
/// use drcom::resolve::{ResolvingService, UtilizationResolver};
/// use drcom::view::{ComponentInfo, SystemView};
/// use drcom::lifecycle::ComponentState;
///
/// let resolver = UtilizationResolver::new(0.8);
/// let candidate = ComponentInfo {
///     name: "calc".into(),
///     state: ComponentState::Unsatisfied,
///     cpu: 0,
///     cpu_usage: 0.5,
///     priority: 2,
///     period_ns: Some(1_000_000),
/// };
/// let view = SystemView::new(1, vec![candidate.clone()]);
/// assert!(resolver.admit(&candidate, &view).is_admit());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationResolver {
    cap: f64,
}

impl UtilizationResolver {
    /// A resolver with the given per-CPU cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not in `(0, 1]`.
    pub fn new(cap: f64) -> Self {
        assert!(cap > 0.0 && cap <= 1.0, "cap must be in (0, 1]");
        UtilizationResolver { cap }
    }

    /// The configured cap.
    pub fn cap(&self) -> f64 {
        self.cap
    }
}

impl Default for UtilizationResolver {
    fn default() -> Self {
        UtilizationResolver { cap: 1.0 }
    }
}

impl ResolvingService for UtilizationResolver {
    fn name(&self) -> &str {
        "utilization"
    }

    fn admit(&self, candidate: &ComponentInfo, view: &SystemView) -> Decision {
        let current = view.utilization(candidate.cpu);
        let hypothetical = current + candidate.cpu_usage;
        if hypothetical <= self.cap + 1e-9 {
            Decision::Admit
        } else {
            Decision::Reject(format!(
                "CPU {} budget: {current:.3} reserved + {:.3} claimed > cap {:.3}",
                candidate.cpu, candidate.cpu_usage, self.cap
            ))
        }
    }

    fn cacheable(&self) -> bool {
        true
    }
}

/// Liu–Layland rate-monotonic schedulability bound for periodic components.
///
/// With `n` periodic tasks on a CPU the bound is `n(2^{1/n} − 1)`;
/// aperiodic candidates fall back to a utilization cap of 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RmBoundResolver;

impl RmBoundResolver {
    /// The Liu–Layland bound for `n` tasks.
    pub fn bound(n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let n = n as f64;
        n * (2f64.powf(1.0 / n) - 1.0)
    }
}

impl ResolvingService for RmBoundResolver {
    fn name(&self) -> &str {
        "rm-bound"
    }

    fn admit(&self, candidate: &ComponentInfo, view: &SystemView) -> Decision {
        if !candidate.is_periodic() {
            let u = view.utilization(candidate.cpu) + candidate.cpu_usage;
            return if u <= 1.0 + 1e-9 {
                Decision::Admit
            } else {
                Decision::Reject(format!("aperiodic over full budget: {u:.3} > 1"))
            };
        }
        let n = view.periodic_count(candidate.cpu) + 1;
        let bound = Self::bound(n);
        let u: f64 = view
            .admitted_on(candidate.cpu)
            .filter(|c| c.is_periodic())
            .map(|c| c.cpu_usage)
            .sum::<f64>()
            + candidate.cpu_usage;
        if u <= bound + 1e-9 {
            Decision::Admit
        } else {
            Decision::Reject(format!(
                "RM bound: {u:.3} > n(2^(1/n)-1) = {bound:.3} for n = {n}"
            ))
        }
    }

    fn cacheable(&self) -> bool {
        true
    }
}

/// EDF schedulability: total utilization per CPU at most 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdfResolver;

impl ResolvingService for EdfResolver {
    fn name(&self) -> &str {
        "edf"
    }

    fn admit(&self, candidate: &ComponentInfo, view: &SystemView) -> Decision {
        let u = view.utilization(candidate.cpu) + candidate.cpu_usage;
        if u <= 1.0 + 1e-9 {
            Decision::Admit
        } else {
            Decision::Reject(format!("EDF: utilization {u:.3} > 1"))
        }
    }

    fn cacheable(&self) -> bool {
        true
    }
}

/// Admits only if every inner resolver admits; reports the first rejection.
pub struct CompositeResolver {
    name: String,
    inner: Vec<Box<dyn ResolvingService>>,
}

impl fmt::Debug for CompositeResolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompositeResolver({}; {} inner)",
            self.name,
            self.inner.len()
        )
    }
}

impl CompositeResolver {
    /// Composes the given resolvers under one name.
    pub fn new(name: &str, inner: Vec<Box<dyn ResolvingService>>) -> Self {
        CompositeResolver {
            name: name.to_string(),
            inner,
        }
    }
}

impl ResolvingService for CompositeResolver {
    fn name(&self) -> &str {
        &self.name
    }

    fn admit(&self, candidate: &ComponentInfo, view: &SystemView) -> Decision {
        for r in &self.inner {
            if let Decision::Reject(reason) = r.admit(candidate, view) {
                return Decision::Reject(format!("{}: {reason}", r.name()));
            }
        }
        Decision::Admit
    }

    fn cacheable(&self) -> bool {
        self.inner.iter().all(|r| r.cacheable())
    }
}

/// Admits everything (the "no admission control" ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysAdmit;

impl ResolvingService for AlwaysAdmit {
    fn name(&self) -> &str {
        "always-admit"
    }

    fn admit(&self, _candidate: &ComponentInfo, _view: &SystemView) -> Decision {
        Decision::Admit
    }

    fn cacheable(&self) -> bool {
        true
    }
}

/// Rejects everything, with a fixed reason (scenario plumbing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AlwaysReject(pub String);

impl ResolvingService for AlwaysReject {
    fn name(&self) -> &str {
        "always-reject"
    }

    fn admit(&self, _candidate: &ComponentInfo, _view: &SystemView) -> Decision {
        Decision::Reject(self.0.clone())
    }

    fn cacheable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::ComponentState;

    fn info(
        name: &str,
        state: ComponentState,
        cpu: u32,
        usage: f64,
        periodic: bool,
    ) -> ComponentInfo {
        ComponentInfo {
            name: name.into(),
            state,
            cpu,
            cpu_usage: usage,
            priority: 2,
            period_ns: periodic.then_some(1_000_000),
        }
    }

    fn view(components: Vec<ComponentInfo>) -> SystemView {
        SystemView::new(2, components)
    }

    #[test]
    fn utilization_resolver_respects_cap() {
        let r = UtilizationResolver::new(0.8);
        let v = view(vec![info("a", ComponentState::Active, 0, 0.5, true)]);
        let ok = info("b", ComponentState::Unsatisfied, 0, 0.3, true);
        assert!(r.admit(&ok, &v).is_admit());
        let too_much = info("c", ComponentState::Unsatisfied, 0, 0.31, true);
        assert!(!r.admit(&too_much, &v).is_admit());
        // Other CPU is unaffected.
        let other_cpu = info("d", ComponentState::Unsatisfied, 1, 0.8, true);
        assert!(r.admit(&other_cpu, &v).is_admit());
    }

    #[test]
    fn utilization_resolver_counts_suspended_reservations() {
        let r = UtilizationResolver::default();
        let v = view(vec![info("a", ComponentState::Suspended, 0, 0.9, true)]);
        let candidate = info("b", ComponentState::Unsatisfied, 0, 0.2, true);
        assert!(!r.admit(&candidate, &v).is_admit());
    }

    #[test]
    #[should_panic(expected = "cap must be in (0, 1]")]
    fn utilization_cap_validated() {
        let _ = UtilizationResolver::new(0.0);
    }

    #[test]
    fn liu_layland_bounds() {
        assert!((RmBoundResolver::bound(1) - 1.0).abs() < 1e-9);
        assert!((RmBoundResolver::bound(2) - 0.8284).abs() < 1e-3);
        assert!((RmBoundResolver::bound(3) - 0.7798).abs() < 1e-3);
        // Monotone decreasing towards ln 2.
        assert!(RmBoundResolver::bound(100) > 0.69);
        assert!(RmBoundResolver::bound(100) < RmBoundResolver::bound(3));
    }

    #[test]
    fn rm_resolver_is_stricter_than_edf() {
        let rm = RmBoundResolver;
        let edf = EdfResolver;
        let v = view(vec![info("a", ComponentState::Active, 0, 0.5, true)]);
        // 0.5 + 0.4 = 0.9: fine for EDF, over the 2-task RM bound (0.828).
        let candidate = info("b", ComponentState::Unsatisfied, 0, 0.4, true);
        assert!(edf.admit(&candidate, &v).is_admit());
        assert!(!rm.admit(&candidate, &v).is_admit());
        // 0.5 + 0.3 = 0.8 < 0.828: both admit.
        let smaller = info("c", ComponentState::Unsatisfied, 0, 0.3, true);
        assert!(rm.admit(&smaller, &v).is_admit());
    }

    #[test]
    fn rm_resolver_handles_aperiodic_candidates() {
        let rm = RmBoundResolver;
        let v = view(vec![info("a", ComponentState::Active, 0, 0.5, true)]);
        let aperiodic = info("e", ComponentState::Unsatisfied, 0, 0.4, false);
        assert!(rm.admit(&aperiodic, &v).is_admit());
        let hog = info("f", ComponentState::Unsatisfied, 0, 0.6, false);
        assert!(!rm.admit(&hog, &v).is_admit());
    }

    #[test]
    fn composite_requires_unanimity() {
        let c = CompositeResolver::new("both", vec![Box::new(AlwaysAdmit), Box::new(EdfResolver)]);
        let v = view(vec![info("a", ComponentState::Active, 0, 0.9, true)]);
        let small = info("b", ComponentState::Unsatisfied, 0, 0.05, true);
        assert!(c.admit(&small, &v).is_admit());
        let big = info("c", ComponentState::Unsatisfied, 0, 0.2, true);
        let d = c.admit(&big, &v);
        assert!(!d.is_admit());
        assert!(d.to_string().contains("edf"), "{d}");
    }

    #[test]
    fn always_variants() {
        let v = view(vec![]);
        let c = info("x", ComponentState::Unsatisfied, 0, 0.1, true);
        assert!(AlwaysAdmit.admit(&c, &v).is_admit());
        let rej = AlwaysReject("operator veto".into()).admit(&c, &v);
        assert_eq!(rej, Decision::Reject("operator veto".into()));
    }

    #[test]
    fn decisions_display() {
        assert_eq!(Decision::Admit.to_string(), "admit");
        assert!(Decision::Reject("x".into()).to_string().contains("x"));
    }
}
