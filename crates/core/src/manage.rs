//! The general real-time component management interface (§2.4).
//!
//! Every activated component gets a management service registered in the
//! OSGi service registry under [`MANAGEMENT_SERVICE`], so "general or
//! application specific adaptation managers can monitor the tasks status
//! and adjust the parameter\[s\]". The interface is deliberately small —
//! suspend, resume, get/set properties, status — and, faithful to the
//! paper, **does not expose init/uninit**: creation and destruction belong
//! exclusively to the DRCR, or the global view would rot.
//!
//! Property reads and status queries travel over the asynchronous §3.2
//! bridge, so they return a [`RequestToken`] that is later redeemed with
//! [`RtComponentManagement::poll_reply`] once the RT task has had a cycle
//! to answer.

use crate::error::DrcrError;
use crate::lifecycle::ComponentState;
use crate::model::PropertyValue;
use std::fmt;
use std::rc::Rc;

/// Service-registry interface name for component management services.
pub const MANAGEMENT_SERVICE: &str = "drt.management";

/// Correlation token for an in-flight asynchronous request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestToken(pub u32);

/// A decoded asynchronous answer from the RT side.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagementReply {
    /// A property value (or `None` if the RT side has no such property).
    Property {
        /// Property name.
        name: String,
        /// Value at the answering cycle.
        value: Option<PropertyValue>,
    },
    /// Task status snapshot.
    Status {
        /// Completed cycles at the answering cycle.
        cycles: u64,
        /// Virtual time (ns) of the answering cycle.
        at_ns: u64,
    },
    /// Liveness acknowledgement.
    Pong,
}

/// The management contract registered for every active component.
///
/// Implemented by the DRCR (which owns the lifecycle and the kernel handle);
/// external adaptation managers discover instances through the registry and
/// never touch the kernel directly.
pub trait RtComponentManagement {
    /// The managed component's name.
    fn component_name(&self) -> &str;

    /// Current lifecycle state in the DRCR's global view.
    fn state(&self) -> ComponentState;

    /// Parks the RT task. The reservation is kept so resuming cannot fail
    /// admission.
    ///
    /// # Errors
    ///
    /// [`DrcrError`] if the component is not in a suspendable state.
    fn suspend(&self) -> Result<(), DrcrError>;

    /// Resumes a suspended task.
    ///
    /// # Errors
    ///
    /// [`DrcrError`] if the component is not suspended.
    fn resume(&self) -> Result<(), DrcrError>;

    /// Queues a property replacement over the async bridge. Applied by the
    /// RT side between cycles.
    ///
    /// # Errors
    ///
    /// [`DrcrError::Management`] when the bridge is down or full.
    fn set_property(&self, name: &str, value: PropertyValue) -> Result<(), DrcrError>;

    /// Requests a property value; redeem with
    /// [`poll_reply`](Self::poll_reply) after the RT task's next cycle.
    ///
    /// # Errors
    ///
    /// [`DrcrError::Management`] when the bridge is down or full.
    fn request_property(&self, name: &str) -> Result<RequestToken, DrcrError>;

    /// Requests a status snapshot; redeem with
    /// [`poll_reply`](Self::poll_reply).
    ///
    /// # Errors
    ///
    /// [`DrcrError::Management`] when the bridge is down or full.
    fn request_status(&self) -> Result<RequestToken, DrcrError>;

    /// Polls for the answer to an earlier request. `Ok(None)` means "not
    /// answered yet" — advance the kernel and poll again.
    ///
    /// # Errors
    ///
    /// [`DrcrError::Management`] when the bridge is down.
    fn poll_reply(&self, token: RequestToken) -> Result<Option<ManagementReply>, DrcrError>;
}

/// The unified per-component control surface: suspend/resume, enable/
/// disable, mode switches and manual triggers.
///
/// Both the executive ([`crate::drcr::Drcr`], which owns the mechanics) and
/// the assembled container ([`crate::runtime::DrtRuntime`], which wraps each
/// call with event processing so the DRCR re-resolves) speak this one
/// vocabulary, so adaptation code is written once against the trait and runs
/// against either layer.
pub trait ComponentControl {
    /// Parks a component's RT task, keeping its admission reservation.
    ///
    /// # Errors
    ///
    /// [`DrcrError`] if the component is unknown or not active.
    fn suspend_component(&mut self, name: &str) -> Result<(), DrcrError>;

    /// Resumes a suspended component.
    ///
    /// # Errors
    ///
    /// [`DrcrError`] if the component is unknown or not suspended.
    fn resume_component(&mut self, name: &str) -> Result<(), DrcrError>;

    /// Disables a component (deactivating it first if needed); it is
    /// ignored by resolution until re-enabled.
    ///
    /// # Errors
    ///
    /// [`DrcrError`] on unknown components or illegal transitions.
    fn disable_component(&mut self, name: &str) -> Result<(), DrcrError>;

    /// Re-enables a disabled component.
    ///
    /// # Errors
    ///
    /// [`DrcrError`] unless the component is disabled.
    fn enable_component(&mut self, name: &str) -> Result<(), DrcrError>;

    /// Switches a component to one of its declared operating modes (or back
    /// to [`crate::model::BASE_MODE`]).
    ///
    /// # Errors
    ///
    /// [`DrcrError`] on unknown components or modes.
    fn switch_mode(&mut self, name: &str, mode: &str) -> Result<(), DrcrError>;

    /// Releases one cycle of an aperiodic component.
    ///
    /// # Errors
    ///
    /// [`DrcrError`] for periodic or inactive components.
    fn trigger_component(&mut self, name: &str) -> Result<(), DrcrError>;
}

/// Newtype wrapper so `Rc<dyn RtComponentManagement>` can live in the
/// service registry (which downcasts to concrete types).
pub struct ManagementHandle(pub Rc<dyn RtComponentManagement>);

impl fmt::Debug for ManagementHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ManagementHandle({})", self.0.component_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_comparable() {
        assert_eq!(RequestToken(1), RequestToken(1));
        assert_ne!(RequestToken(1), RequestToken(2));
    }

    #[test]
    fn replies_carry_payloads() {
        let r = ManagementReply::Property {
            name: "gain".into(),
            value: Some(PropertyValue::Integer(3)),
        };
        assert_eq!(r, r.clone());
        let s = ManagementReply::Status {
            cycles: 10,
            at_ns: 100,
        };
        assert_ne!(
            s,
            ManagementReply::Status {
                cycles: 11,
                at_ns: 100
            }
        );
    }
}
