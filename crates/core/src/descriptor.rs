//! The DRCom component descriptor: parse + validate the XML meta-data.
//!
//! The descriptor is the component's declared real-time contract (§2.3 of
//! the paper). [`ComponentDescriptor::parse_xml`] accepts documents shaped
//! like the paper's Figure 2:
//!
//! ```xml
//! <drt:component name="camera" desc="smart camera" type="periodic"
//!                enabled="true" cpuusage="0.1">
//!   <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
//!   <periodictask frequence="100" runoncup="0" priority="2"/>
//!   <outport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
//!   <inport name="xysize" interface="RTAI.SHM" type="Integer" size="400"/>
//!   <property name="prox00" type="Integer" value="6"/>
//! </drt:component>
//! ```
//!
//! Validation is strict: names obey the 6-character OS limit, `cpuusage`
//! must be in `(0, 1]`, periodic components need a `periodictask` element,
//! port names must be unique within the component, and port attributes must
//! be complete — a bad contract is rejected at deployment, never at run
//! time.

use crate::error::DescriptorError;
use crate::model::{
    CpuUsage, OperatingMode, PortDirection, PortInterface, PortSpec, PropertyValue, TaskSpec,
};
use crate::xml::{self, Element};
use rtos::shm::DataType;
use rtos::task::{ObjName, Priority};

/// A parsed, validated component descriptor.
///
/// ```
/// use drcom::descriptor::ComponentDescriptor;
/// use drcom::model::PortInterface;
/// use rtos::shm::DataType;
///
/// # fn main() -> Result<(), drcom::error::DescriptorError> {
/// let descriptor = ComponentDescriptor::builder("camera")
///     .periodic(100, 0, 2)
///     .cpu_usage(0.1)
///     .outport("images", PortInterface::Shm, DataType::Byte, 400)
///     .build()?;
/// // The XML form (the paper's Figure 2 grammar) roundtrips exactly.
/// let reparsed = ComponentDescriptor::parse_xml(&descriptor.to_xml())?;
/// assert_eq!(reparsed, descriptor);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDescriptor {
    /// Globally unique component name; also the RT task name (6-char limit).
    pub name: ObjName,
    /// Human-readable description (`desc` attribute).
    pub description: String,
    /// Whether the component activates automatically when deployed
    /// (`enabled` attribute, default `true`).
    pub enabled: bool,
    /// The task contract.
    pub task: TaskSpec,
    /// Claimed CPU fraction.
    pub cpu_usage: CpuUsage,
    /// Fully qualified implementation class (`bincode` attribute) — kept
    /// for fidelity with the paper; in this reproduction the implementation
    /// is supplied as a Rust factory alongside the descriptor.
    pub implementation: String,
    /// Required inputs.
    pub inports: Vec<PortSpec>,
    /// Provided outputs.
    pub outports: Vec<PortSpec>,
    /// Typed configuration properties in document order.
    pub properties: Vec<(String, PropertyValue)>,
    /// Alternate operating modes (periodic components only). The base
    /// contract is the implicit mode [`crate::model::BASE_MODE`].
    pub modes: Vec<OperatingMode>,
}

impl ComponentDescriptor {
    /// Parses and validates a descriptor document.
    ///
    /// # Errors
    ///
    /// Returns [`DescriptorError`] describing the first problem found.
    pub fn parse_xml(input: &str) -> Result<Self, DescriptorError> {
        let root = xml::parse(input)?;
        Self::from_element(&root)
    }

    /// Builds a descriptor from an already-parsed element.
    ///
    /// # Errors
    ///
    /// Returns [`DescriptorError`] describing the first problem found.
    pub fn from_element(root: &Element) -> Result<Self, DescriptorError> {
        if root.local_name() != "component" {
            return Err(DescriptorError::WrongRoot(root.name.clone()));
        }
        let name_raw = require_attr(root, "name")?;
        let name = ObjName::new(name_raw).map_err(|e| DescriptorError::BadValue {
            element: root.name.clone(),
            attribute: "name",
            reason: e.to_string(),
        })?;
        let description = root.attr("desc").unwrap_or("").to_string();
        let enabled = match root.attr("enabled") {
            None => true,
            Some(raw) => raw
                .trim()
                .parse::<bool>()
                .map_err(|_| DescriptorError::BadValue {
                    element: root.name.clone(),
                    attribute: "enabled",
                    reason: format!("`{raw}` is not a boolean"),
                })?,
        };
        let cpu_usage = {
            let raw = require_attr(root, "cpuusage")?;
            let parsed = raw
                .trim()
                .parse::<f64>()
                .map_err(|_| DescriptorError::BadValue {
                    element: root.name.clone(),
                    attribute: "cpuusage",
                    reason: format!("`{raw}` is not a number"),
                })?;
            CpuUsage::new(parsed).map_err(|reason| DescriptorError::BadValue {
                element: root.name.clone(),
                attribute: "cpuusage",
                reason,
            })?
        };
        let task = parse_task(root)?;
        let implementation = root
            .child_named("implementation")
            .ok_or(DescriptorError::MissingElement {
                parent: root.name.clone(),
                child: "implementation",
            })
            .and_then(|imp| require_attr(imp, "bincode"))?
            .to_string();

        let mut inports = Vec::new();
        let mut outports = Vec::new();
        for child in root.child_elements() {
            match child.local_name() {
                "inport" => inports.push(parse_port(child)?),
                "outport" => outports.push(parse_port(child)?),
                _ => {}
            }
        }
        // Port names must be unique within the component.
        let mut seen: Vec<&ObjName> = Vec::new();
        for p in inports.iter().chain(outports.iter()) {
            if seen.contains(&&p.name) {
                return Err(DescriptorError::DuplicatePort(p.name.to_string()));
            }
            seen.push(&p.name);
        }

        let mut properties = Vec::new();
        for prop in root.children_named("property") {
            let pname = require_attr(prop, "name")?.to_string();
            let ptype = require_attr(prop, "type")?;
            let praw = require_attr(prop, "value")?;
            let value = PropertyValue::parse_typed(ptype, praw).map_err(|reason| {
                DescriptorError::BadValue {
                    element: format!("property `{pname}`"),
                    attribute: "value",
                    reason,
                }
            })?;
            if properties.iter().any(|(n, _)| *n == pname) {
                return Err(DescriptorError::Invalid(format!(
                    "duplicate property `{pname}`"
                )));
            }
            properties.push((pname, value));
        }

        let mut modes = Vec::new();
        for mode in root.children_named("mode") {
            let mname = require_attr(mode, "name")?.to_string();
            if mname == crate::model::BASE_MODE
                || modes.iter().any(|m: &OperatingMode| m.name == mname)
            {
                return Err(DescriptorError::Invalid(format!(
                    "duplicate or reserved mode name `{mname}`"
                )));
            }
            if !task.is_periodic() {
                return Err(DescriptorError::Invalid(
                    "modes are only valid on periodic components".into(),
                ));
            }
            let frequency_hz = parse_u32(mode, "frequence", require_attr(mode, "frequence")?)?;
            if frequency_hz == 0 {
                return Err(DescriptorError::BadValue {
                    element: mode.name.clone(),
                    attribute: "frequence",
                    reason: "frequency must be positive".into(),
                });
            }
            let usage_raw = require_attr(mode, "cpuusage")?;
            let usage = usage_raw
                .trim()
                .parse::<f64>()
                .ok()
                .and_then(|u| CpuUsage::new(u).ok())
                .ok_or_else(|| DescriptorError::BadValue {
                    element: mode.name.clone(),
                    attribute: "cpuusage",
                    reason: format!("`{usage_raw}` is not a CPU fraction in (0, 1]"),
                })?;
            let prio_raw = mode
                .attr("priority")
                .map(str::to_string)
                .unwrap_or_else(|| task.priority().0.to_string());
            let prio = parse_u32(mode, "priority", &prio_raw)?;
            if prio > 254 {
                return Err(DescriptorError::BadValue {
                    element: mode.name.clone(),
                    attribute: "priority",
                    reason: "real-time priorities are 0..=254".into(),
                });
            }
            modes.push(OperatingMode {
                name: mname,
                frequency_hz,
                cpu_usage: usage.fraction(),
                priority: Priority(prio as u8),
            });
        }

        Ok(ComponentDescriptor {
            name,
            description,
            enabled,
            task,
            cpu_usage,
            implementation,
            inports,
            outports,
            properties,
            modes,
        })
    }

    /// Starts a programmatic descriptor (for tests and Rust-native
    /// components) — see [`DescriptorBuilder`].
    pub fn builder(name: &str) -> DescriptorBuilder {
        DescriptorBuilder::new(name)
    }

    /// The value of a named property.
    pub fn property(&self, name: &str) -> Option<&PropertyValue> {
        self.properties
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Looks up an operating mode. [`crate::model::BASE_MODE`] resolves to
    /// the base contract.
    pub fn mode(&self, name: &str) -> Option<OperatingMode> {
        if name == crate::model::BASE_MODE {
            if let TaskSpec::Periodic {
                frequency_hz,
                priority,
                ..
            } = self.task
            {
                return Some(OperatingMode {
                    name: crate::model::BASE_MODE.to_string(),
                    frequency_hz,
                    cpu_usage: self.cpu_usage.fraction(),
                    priority,
                });
            }
            return None;
        }
        self.modes.iter().find(|m| m.name == name).cloned()
    }

    /// The descriptor with one mode's contract substituted in (mode
    /// switching support; the DRCR uses this to re-admit under the new
    /// claim).
    pub fn with_mode(&self, mode: &OperatingMode) -> ComponentDescriptor {
        let mut d = self.clone();
        if let TaskSpec::Periodic { cpu, .. } = self.task {
            d.task = TaskSpec::Periodic {
                frequency_hz: mode.frequency_hz,
                cpu,
                priority: mode.priority,
            };
        }
        d.cpu_usage = CpuUsage::new(mode.cpu_usage).expect("modes are validated");
        d
    }

    /// All ports with their directions (inports first).
    pub fn ports(&self) -> impl Iterator<Item = (PortDirection, &PortSpec)> {
        self.inports
            .iter()
            .map(|p| (PortDirection::In, p))
            .chain(self.outports.iter().map(|p| (PortDirection::Out, p)))
    }

    /// Serializes the descriptor back to its XML form (the paper's Figure 2
    /// grammar). `parse_xml(d.to_xml())` reproduces `d` exactly.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "<drt:component name=\"{}\" desc=\"{}\" type=\"{}\" enabled=\"{}\" cpuusage=\"{}\">\n",
            self.name,
            escape_xml(&self.description),
            if self.task.is_periodic() {
                "periodic"
            } else {
                "aperiodic"
            },
            self.enabled,
            self.cpu_usage,
        ));
        out.push_str(&format!(
            "  <implementation bincode=\"{}\"/>\n",
            escape_xml(&self.implementation)
        ));
        match &self.task {
            TaskSpec::Periodic {
                frequency_hz,
                cpu,
                priority,
            } => out.push_str(&format!(
                "  <periodictask frequence=\"{frequency_hz}\" runoncup=\"{cpu}\" priority=\"{priority}\"/>\n"
            )),
            TaskSpec::Aperiodic { cpu, priority } => out.push_str(&format!(
                "  <aperiodictask runoncup=\"{cpu}\" priority=\"{priority}\"/>\n"
            )),
        }
        for (tag, ports) in [("outport", &self.outports), ("inport", &self.inports)] {
            for p in ports {
                out.push_str(&format!(
                    "  <{tag} name=\"{}\" interface=\"{}\" type=\"{}\" size=\"{}\"/>\n",
                    p.name, p.interface, p.data_type, p.size
                ));
            }
        }
        for (name, value) in &self.properties {
            out.push_str(&format!(
                "  <property name=\"{}\" type=\"{}\" value=\"{}\"/>\n",
                escape_xml(name),
                value.type_name(),
                escape_xml(&value.to_string())
            ));
        }
        for m in &self.modes {
            out.push_str(&format!(
                "  <mode name=\"{}\" frequence=\"{}\" cpuusage=\"{}\" priority=\"{}\"/>\n",
                escape_xml(&m.name),
                m.frequency_hz,
                m.cpu_usage,
                m.priority
            ));
        }
        out.push_str("</drt:component>\n");
        out
    }
}

fn escape_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

fn require_attr<'a>(e: &'a Element, attribute: &'static str) -> Result<&'a str, DescriptorError> {
    e.attr(attribute).ok_or(DescriptorError::MissingAttribute {
        element: e.name.clone(),
        attribute,
    })
}

fn parse_u32(e: &Element, attribute: &'static str, raw: &str) -> Result<u32, DescriptorError> {
    raw.trim()
        .parse::<u32>()
        .map_err(|_| DescriptorError::BadValue {
            element: e.name.clone(),
            attribute,
            reason: format!("`{raw}` is not a non-negative integer"),
        })
}

fn parse_task(root: &Element) -> Result<TaskSpec, DescriptorError> {
    let kind = require_attr(root, "type")?;
    match kind.to_ascii_lowercase().as_str() {
        "periodic" => {
            let t = root
                .child_named("periodictask")
                .ok_or(DescriptorError::MissingElement {
                    parent: root.name.clone(),
                    child: "periodictask",
                })?;
            let frequency_hz = parse_u32(t, "frequence", require_attr(t, "frequence")?)?;
            if frequency_hz == 0 {
                return Err(DescriptorError::BadValue {
                    element: t.name.clone(),
                    attribute: "frequence",
                    reason: "frequency must be positive".into(),
                });
            }
            // The paper's Figure 2 spells the CPU attribute `runoncup`;
            // accept the obvious `runoncpu` too.
            let cpu_raw = t
                .attr("runoncup")
                .or_else(|| t.attr("runoncpu"))
                .unwrap_or("0");
            let cpu = parse_u32(t, "runoncup", cpu_raw)?;
            let prio_raw = require_attr(t, "priority")?;
            let prio = parse_u32(t, "priority", prio_raw)?;
            if prio > 254 {
                return Err(DescriptorError::BadValue {
                    element: t.name.clone(),
                    attribute: "priority",
                    reason: "real-time priorities are 0..=254".into(),
                });
            }
            Ok(TaskSpec::Periodic {
                frequency_hz,
                cpu,
                priority: Priority(prio as u8),
            })
        }
        "aperiodic" => {
            let (cpu, prio) = match root.child_named("aperiodictask") {
                Some(t) => {
                    let cpu_raw = t
                        .attr("runoncup")
                        .or_else(|| t.attr("runoncpu"))
                        .unwrap_or("0");
                    let cpu = parse_u32(t, "runoncup", cpu_raw)?;
                    let prio_raw = t.attr("priority").unwrap_or("100");
                    (cpu, parse_u32(t, "priority", prio_raw)?)
                }
                None => (0, 100),
            };
            if prio > 254 {
                return Err(DescriptorError::BadValue {
                    element: root.name.clone(),
                    attribute: "priority",
                    reason: "real-time priorities are 0..=254".into(),
                });
            }
            Ok(TaskSpec::Aperiodic {
                cpu,
                priority: Priority(prio as u8),
            })
        }
        other => Err(DescriptorError::BadValue {
            element: root.name.clone(),
            attribute: "type",
            reason: format!("task type must be `periodic` or `aperiodic`, got `{other}`"),
        }),
    }
}

fn parse_port(e: &Element) -> Result<PortSpec, DescriptorError> {
    let name_raw = require_attr(e, "name")?;
    let name = ObjName::new(name_raw).map_err(|err| DescriptorError::BadValue {
        element: e.name.clone(),
        attribute: "name",
        reason: err.to_string(),
    })?;
    let interface: PortInterface =
        require_attr(e, "interface")?
            .parse()
            .map_err(|reason| DescriptorError::BadValue {
                element: e.name.clone(),
                attribute: "interface",
                reason,
            })?;
    let data_type: DataType =
        require_attr(e, "type")?
            .parse()
            .map_err(|reason| DescriptorError::BadValue {
                element: e.name.clone(),
                attribute: "type",
                reason,
            })?;
    let size = parse_u32(e, "size", require_attr(e, "size")?)? as usize;
    if size == 0 {
        return Err(DescriptorError::BadValue {
            element: e.name.clone(),
            attribute: "size",
            reason: "port size must be positive".into(),
        });
    }
    Ok(PortSpec {
        name,
        interface,
        data_type,
        size,
    })
}

/// Builder for programmatic descriptors (the Rust-native equivalent of
/// writing the XML by hand).
#[derive(Debug, Clone)]
pub struct DescriptorBuilder {
    name: String,
    description: String,
    enabled: bool,
    task: Option<TaskSpec>,
    cpu_usage: f64,
    implementation: String,
    inports: Vec<PortSpec>,
    outports: Vec<PortSpec>,
    properties: Vec<(String, PropertyValue)>,
    modes: Vec<OperatingMode>,
}

impl DescriptorBuilder {
    /// Starts a builder for a component named `name`.
    pub fn new(name: &str) -> Self {
        DescriptorBuilder {
            name: name.to_string(),
            description: String::new(),
            enabled: true,
            task: None,
            cpu_usage: 0.1,
            implementation: format!("rust::{name}"),
            inports: Vec::new(),
            outports: Vec::new(),
            properties: Vec::new(),
            modes: Vec::new(),
        }
    }

    /// Sets the human-readable description.
    pub fn description(mut self, desc: &str) -> Self {
        self.description = desc.to_string();
        self
    }

    /// Sets the enabled flag (default true).
    pub fn enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Declares a periodic task contract.
    pub fn periodic(mut self, frequency_hz: u32, cpu: u32, priority: u8) -> Self {
        self.task = Some(TaskSpec::Periodic {
            frequency_hz,
            cpu,
            priority: Priority(priority),
        });
        self
    }

    /// Declares an aperiodic task contract.
    pub fn aperiodic(mut self, cpu: u32, priority: u8) -> Self {
        self.task = Some(TaskSpec::Aperiodic {
            cpu,
            priority: Priority(priority),
        });
        self
    }

    /// Sets the claimed CPU fraction (default 0.1).
    pub fn cpu_usage(mut self, fraction: f64) -> Self {
        self.cpu_usage = fraction;
        self
    }

    /// Sets the implementation class name.
    pub fn implementation(mut self, bincode: &str) -> Self {
        self.implementation = bincode.to_string();
        self
    }

    /// Adds an inport.
    pub fn inport(
        mut self,
        name: &str,
        interface: PortInterface,
        data_type: DataType,
        size: usize,
    ) -> Self {
        self.inports.push(PortSpec {
            name: ObjName::new(name).expect("builder port names are validated in build()"),
            interface,
            data_type,
            size,
        });
        self
    }

    /// Adds an outport.
    pub fn outport(
        mut self,
        name: &str,
        interface: PortInterface,
        data_type: DataType,
        size: usize,
    ) -> Self {
        self.outports.push(PortSpec {
            name: ObjName::new(name).expect("builder port names are validated in build()"),
            interface,
            data_type,
            size,
        });
        self
    }

    /// Adds a typed property.
    pub fn property(mut self, name: &str, value: PropertyValue) -> Self {
        self.properties.push((name.to_string(), value));
        self
    }

    /// Adds an alternate operating mode (periodic components only).
    pub fn mode(mut self, name: &str, frequency_hz: u32, cpu_usage: f64, priority: u8) -> Self {
        self.modes.push(OperatingMode {
            name: name.to_string(),
            frequency_hz,
            cpu_usage,
            priority: Priority(priority),
        });
        self
    }

    /// Validates and produces the descriptor.
    ///
    /// # Errors
    ///
    /// The same rules as XML parsing: valid names, positive usage, a task
    /// contract, unique ports.
    pub fn build(self) -> Result<ComponentDescriptor, DescriptorError> {
        let name = ObjName::new(&self.name).map_err(|e| DescriptorError::BadValue {
            element: "component".into(),
            attribute: "name",
            reason: e.to_string(),
        })?;
        let task = self.task.ok_or(DescriptorError::MissingElement {
            parent: "component".into(),
            child: "periodictask",
        })?;
        let cpu_usage =
            CpuUsage::new(self.cpu_usage).map_err(|reason| DescriptorError::BadValue {
                element: "component".into(),
                attribute: "cpuusage",
                reason,
            })?;
        let mut seen: Vec<&ObjName> = Vec::new();
        for p in self.inports.iter().chain(self.outports.iter()) {
            if seen.contains(&&p.name) {
                return Err(DescriptorError::DuplicatePort(p.name.to_string()));
            }
            seen.push(&p.name);
        }
        for m in &self.modes {
            if m.name == crate::model::BASE_MODE
                || self.modes.iter().filter(|o| o.name == m.name).count() > 1
            {
                return Err(DescriptorError::Invalid(format!(
                    "duplicate or reserved mode name `{}`",
                    m.name
                )));
            }
            if !task.is_periodic() {
                return Err(DescriptorError::Invalid(
                    "modes are only valid on periodic components".into(),
                ));
            }
            if m.frequency_hz == 0 {
                return Err(DescriptorError::BadValue {
                    element: "mode".into(),
                    attribute: "frequence",
                    reason: "frequency must be positive".into(),
                });
            }
            CpuUsage::new(m.cpu_usage).map_err(|reason| DescriptorError::BadValue {
                element: "mode".into(),
                attribute: "cpuusage",
                reason,
            })?;
        }
        Ok(ComponentDescriptor {
            name,
            description: self.description,
            enabled: self.enabled,
            task,
            cpu_usage,
            implementation: self.implementation,
            inports: self.inports,
            outports: self.outports,
            properties: self.properties,
            modes: self.modes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 descriptor, normalised to ASCII quotes.
    pub const CAMERA_XML: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="camera" desc="this is a smart camera controller"
    type="periodic" enabled="true" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="images" interface="RTAI.SHM" type="Byte" size="400" />
  <inport name="xysize" interface="RTAI.SHM" type="Integer" size="400"/>
  <property name="prox00" type="Integer" value="6" />
</drt:component>"#;

    #[test]
    fn parses_figure_2() {
        let d = ComponentDescriptor::parse_xml(CAMERA_XML).unwrap();
        assert_eq!(d.name.as_str(), "camera");
        assert!(d.enabled);
        assert_eq!(d.cpu_usage.fraction(), 0.1);
        assert_eq!(
            d.task,
            TaskSpec::Periodic {
                frequency_hz: 100,
                cpu: 0,
                priority: Priority(2)
            }
        );
        assert_eq!(d.implementation, "ua.pats.demo.smartcamera.RTComponent");
        assert_eq!(d.outports.len(), 1);
        assert_eq!(d.outports[0].name.as_str(), "images");
        assert_eq!(d.outports[0].byte_len(), 400);
        assert_eq!(d.inports.len(), 1);
        assert_eq!(d.inports[0].data_type, DataType::Integer);
        assert_eq!(d.property("prox00"), Some(&PropertyValue::Integer(6)));
    }

    #[test]
    fn enabled_defaults_to_true() {
        let xml = r#"<drt:component name="x" type="aperiodic" cpuusage="0.1">
            <implementation bincode="a.B"/></drt:component>"#;
        let d = ComponentDescriptor::parse_xml(xml).unwrap();
        assert!(d.enabled);
        assert_eq!(
            d.task,
            TaskSpec::Aperiodic {
                cpu: 0,
                priority: Priority(100)
            }
        );
    }

    #[test]
    fn disabled_component_parses() {
        let xml = r#"<drt:component name="x" type="aperiodic" enabled="false" cpuusage="0.1">
            <implementation bincode="a.B"/></drt:component>"#;
        assert!(!ComponentDescriptor::parse_xml(xml).unwrap().enabled);
    }

    fn base(extra: &str) -> String {
        format!(
            r#"<drt:component name="x" type="periodic" cpuusage="0.2">
              <implementation bincode="a.B"/>
              <periodictask frequence="50" priority="3"/>
              {extra}
            </drt:component>"#
        )
    }

    #[test]
    fn missing_pieces_are_rejected() {
        // No name.
        let xml = r#"<drt:component type="periodic" cpuusage="0.1">
            <implementation bincode="a.B"/>
            <periodictask frequence="1" priority="1"/></drt:component>"#;
        assert!(matches!(
            ComponentDescriptor::parse_xml(xml),
            Err(DescriptorError::MissingAttribute {
                attribute: "name",
                ..
            })
        ));
        // No implementation.
        let xml = r#"<drt:component name="x" type="periodic" cpuusage="0.1">
            <periodictask frequence="1" priority="1"/></drt:component>"#;
        assert!(matches!(
            ComponentDescriptor::parse_xml(xml),
            Err(DescriptorError::MissingElement {
                child: "implementation",
                ..
            })
        ));
        // Periodic without periodictask.
        let xml = r#"<drt:component name="x" type="periodic" cpuusage="0.1">
            <implementation bincode="a.B"/></drt:component>"#;
        assert!(matches!(
            ComponentDescriptor::parse_xml(xml),
            Err(DescriptorError::MissingElement {
                child: "periodictask",
                ..
            })
        ));
    }

    #[test]
    fn bad_values_are_rejected() {
        for (xml, attr) in [
            (
                base("").replace("cpuusage=\"0.2\"", "cpuusage=\"1.5\""),
                "cpuusage",
            ),
            (
                base("").replace("cpuusage=\"0.2\"", "cpuusage=\"abc\""),
                "cpuusage",
            ),
            (
                base("").replace("frequence=\"50\"", "frequence=\"0\""),
                "frequence",
            ),
            (
                base("").replace("priority=\"3\"", "priority=\"999\""),
                "priority",
            ),
            (
                base("").replace("type=\"periodic\"", "type=\"sporadic\""),
                "type",
            ),
            (
                base("").replace("name=\"x\"", "name=\"waytoolong\""),
                "name",
            ),
        ] {
            match ComponentDescriptor::parse_xml(&xml) {
                Err(DescriptorError::BadValue { attribute, .. }) => {
                    assert_eq!(attribute, attr, "{xml}")
                }
                other => panic!("expected BadValue for {attr}, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_ports_are_rejected() {
        let dup = base(
            r#"<outport name="data" interface="RTAI.SHM" type="Byte" size="4"/>
               <inport name="data" interface="RTAI.SHM" type="Byte" size="4"/>"#,
        );
        assert!(matches!(
            ComponentDescriptor::parse_xml(&dup),
            Err(DescriptorError::DuplicatePort(_))
        ));
        let zero = base(r#"<outport name="data" interface="RTAI.SHM" type="Byte" size="0"/>"#);
        assert!(matches!(
            ComponentDescriptor::parse_xml(&zero),
            Err(DescriptorError::BadValue {
                attribute: "size",
                ..
            })
        ));
        let badif = base(r#"<outport name="data" interface="RTAI.PIPE" type="Byte" size="4"/>"#);
        assert!(matches!(
            ComponentDescriptor::parse_xml(&badif),
            Err(DescriptorError::BadValue {
                attribute: "interface",
                ..
            })
        ));
    }

    #[test]
    fn duplicate_properties_rejected() {
        let xml = base(
            r#"<property name="p" type="Integer" value="1"/>
               <property name="p" type="Integer" value="2"/>"#,
        );
        assert!(matches!(
            ComponentDescriptor::parse_xml(&xml),
            Err(DescriptorError::Invalid(_))
        ));
    }

    #[test]
    fn builder_equivalent_to_xml() {
        let built = ComponentDescriptor::builder("camera")
            .description("this is a smart camera controller")
            .periodic(100, 0, 2)
            .cpu_usage(0.1)
            .implementation("ua.pats.demo.smartcamera.RTComponent")
            .outport("images", PortInterface::Shm, DataType::Byte, 400)
            .inport("xysize", PortInterface::Shm, DataType::Integer, 400)
            .property("prox00", PropertyValue::Integer(6))
            .build()
            .unwrap();
        let parsed = ComponentDescriptor::parse_xml(CAMERA_XML).unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn builder_validates_like_parser() {
        assert!(ComponentDescriptor::builder("toolongname")
            .aperiodic(0, 1)
            .build()
            .is_err());
        assert!(ComponentDescriptor::builder("x").build().is_err()); // no task
        assert!(ComponentDescriptor::builder("x")
            .aperiodic(0, 1)
            .cpu_usage(2.0)
            .build()
            .is_err());
    }

    #[test]
    fn ports_iterator_labels_directions() {
        let d = ComponentDescriptor::parse_xml(CAMERA_XML).unwrap();
        let dirs: Vec<PortDirection> = d.ports().map(|(dir, _)| dir).collect();
        assert_eq!(dirs, vec![PortDirection::In, PortDirection::Out]);
    }
}
