//! The reactive incremental resolution engine (and its naive oracle).
//!
//! This module generalizes the persistent [`PortIndex`] and the dirty-set
//! deactivation sweep into a dependency-tracked constraint-node graph. Each
//! component owns up to four constraint nodes:
//!
//! * a **wiring node** — its memoized functional check
//!   ([`PortIndex::check_functional`] result);
//! * an **admission node** — its memoized internal verdict (policy decision
//!   plus, under response-time analysis, the full [`RtaAnalysis`] evidence);
//! * a **placement node** — the CPU its admission verdict is scoped to
//!   (tracked as a per-CPU epoch the admission memo is keyed on);
//! * a **mode node** — the contract revision; a mode switch invalidates the
//!   component's wiring and admission nodes wholesale.
//!
//! Invalidation is *scoped*: provider-side churn on a channel (a provider
//! registering, unregistering, or flipping its providing state) dirties
//! exactly the wiring nodes of that channel's consumers; an
//! admission-holding flip on a CPU bumps that CPU's epoch, lazily
//! invalidating only the admission nodes scoped to it. Everything else stays
//! memoized, so a resolve round after a localized change does O(changed)
//! node re-evaluations, not O(components).
//!
//! Batching: event storms coalesce naturally — N invalidations of the same
//! node before its next read cost one re-evaluation, and a K-component
//! arrival batch can be admitted in **one** response-time fixed-point pass
//! per CPU ([`RtaResolver::analyze_batch`]) instead of K.
//!
//! [`NaiveResolver`] is the differential oracle: the same [`Resolver`]
//! surface with no memos, no dirty scope (every component is swept every
//! round) and a [`WiringGraph`] rebuilt per check. The lockstep proptests
//! drive both engines with identical notification sequences and require the
//! executive's event streams to stay byte-identical.

use crate::descriptor::ComponentDescriptor;
use crate::lifecycle::ComponentState;
use crate::resolve::{
    AdmissionRuling, BatchAdmission, Decision, Resolver, ResolvingService, WiringCheck,
};
use crate::rta::{RtaAnalysis, RtaResolver};
use crate::view::{ComponentInfo, SystemView};
use crate::wiring::{PortIndex, WiringGraph, WiringResult};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::Bound;
use std::rc::Rc;

/// The internal admission authority an engine rules with: either a
/// pluggable [`ResolvingService`] policy or exact response-time analysis
/// (which additionally yields [`RtaAnalysis`] evidence and unlocks batched
/// admission).
#[derive(Clone)]
pub enum AdmissionPolicy {
    /// A pure admission policy (utilization cap, RM/EDF bound, composite,
    /// or a custom service).
    Service(Rc<dyn ResolvingService>),
    /// Per-CPU fixed-priority response-time analysis.
    ResponseTime(RtaResolver),
}

impl fmt::Debug for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionPolicy::Service(svc) => write!(f, "AdmissionPolicy::Service({})", svc.name()),
            AdmissionPolicy::ResponseTime(_) => write!(f, "AdmissionPolicy::ResponseTime"),
        }
    }
}

impl AdmissionPolicy {
    /// Evaluates the policy on one candidate (always a fresh evaluation).
    fn rule(&self, candidate: &ComponentInfo, view: &SystemView) -> AdmissionRuling {
        match self {
            AdmissionPolicy::Service(svc) => AdmissionRuling {
                resolver: svc.name().to_string(),
                decision: svc.admit(candidate, view),
                analysis: None,
                evaluated: true,
            },
            AdmissionPolicy::ResponseTime(rta) => {
                let analysis = rta.analyze(candidate, view);
                let decision = if analysis.schedulable {
                    Decision::Admit
                } else {
                    Decision::Reject(
                        analysis
                            .reason
                            .clone()
                            .unwrap_or_else(|| "RTA: unschedulable".to_string()),
                    )
                };
                AdmissionRuling {
                    resolver: rta.name().to_string(),
                    decision,
                    analysis: Some(analysis),
                    evaluated: true,
                }
            }
        }
    }

    /// Whether verdicts may be memoized (see
    /// [`ResolvingService::cacheable`]; response-time analysis qualifies by
    /// construction — it reads only the admitted set of the candidate's
    /// CPU).
    fn cacheable(&self) -> bool {
        match self {
            AdmissionPolicy::Service(svc) => svc.cacheable(),
            AdmissionPolicy::ResponseTime(_) => true,
        }
    }
}

/// One memoized admission node: the ruling plus the CPU epoch it was
/// computed under.
#[derive(Debug, Clone)]
struct AdmissionMemo {
    epoch: u64,
    resolver: String,
    decision: Decision,
    analysis: Option<RtaAnalysis>,
}

/// The reactive incremental engine. See the [module docs](self).
#[derive(Debug)]
pub struct ReactiveResolver {
    /// Persistent port topology, maintained across every notification.
    port_index: PortIndex,
    /// All known component names (sweep universe for [`Resolver::seed_all`]).
    names: BTreeSet<Rc<str>>,
    /// Components whose wiring must be re-checked by the deactivation
    /// sweep: seeded with the consumers of every channel whose provider
    /// stopped providing.
    dirty: BTreeSet<Rc<str>>,
    /// Memoized wiring nodes: component → last strict functional result.
    wiring_memo: HashMap<String, WiringResult>,
    /// The internal admission authority.
    policy: AdmissionPolicy,
    /// Admission-scope epochs: bumped per CPU on every admission-holding
    /// flip, lazily invalidating that CPU's memoized verdicts.
    epochs: HashMap<u32, u64>,
    /// Memoized admission nodes.
    admission_memo: HashMap<String, AdmissionMemo>,
}

impl ReactiveResolver {
    /// A fresh engine ruling admission with `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        ReactiveResolver {
            port_index: PortIndex::new(),
            names: BTreeSet::new(),
            dirty: BTreeSet::new(),
            wiring_memo: HashMap::new(),
            policy,
            epochs: HashMap::new(),
            admission_memo: HashMap::new(),
        }
    }

    /// A fresh engine ruling admission with response-time analysis.
    pub fn response_time(rta: RtaResolver) -> Self {
        Self::new(AdmissionPolicy::ResponseTime(rta))
    }

    /// Drops the memoized wiring nodes of every consumer of `channel`.
    fn invalidate_consumers(&mut self, channel: &str) {
        for consumer in self.port_index.consumers_of(channel) {
            self.wiring_memo.remove(&**consumer);
        }
    }
}

impl Resolver for ReactiveResolver {
    fn name(&self) -> &str {
        "reactive"
    }

    fn on_registered(&mut self, name: &Rc<str>, descriptor: &ComponentDescriptor) {
        self.port_index.insert(name, descriptor);
        self.names.insert(name.clone());
        // A new provider — even an inactive one — can change a consumer's
        // diagnosis (`NoProvider` → `ProviderInactive`) or its provider
        // scan order, so the consumers' wiring nodes go stale. It cannot
        // break a satisfied component, so nothing is seeded for the sweep.
        for port in &descriptor.outports {
            self.invalidate_consumers(port.name.as_str());
        }
    }

    fn on_removed(&mut self, name: &str, descriptor: &ComponentDescriptor) {
        // Symmetric to registration: consumers' diagnoses go stale
        // (`ProviderInactive` → `NoProvider`). The executive deactivates a
        // running component before removing it, so the providing flip —
        // and the sweep seeding it implies — already happened.
        for port in &descriptor.outports {
            self.invalidate_consumers(port.name.as_str());
        }
        self.port_index.remove(name, descriptor);
        self.names.remove(name);
        self.dirty.remove(name);
        self.wiring_memo.remove(name);
        self.admission_memo.remove(name);
    }

    fn on_state_changed(
        &mut self,
        name: &Rc<str>,
        cpu: u32,
        from: ComponentState,
        to: ComponentState,
    ) {
        if from.provides_outputs() != to.provides_outputs() {
            let now = to.provides_outputs();
            self.port_index.set_active(name, now);
            // Either direction invalidates the consumers' wiring nodes;
            // only providing → *false* can break a satisfied component, so
            // only that direction seeds the deactivation sweep.
            let mut affected: Vec<Rc<str>> = Vec::new();
            for channel in self.port_index.outports_of(name) {
                for consumer in self.port_index.consumers_of(channel) {
                    affected.push(consumer.clone());
                }
            }
            for consumer in &affected {
                self.wiring_memo.remove(&**consumer);
            }
            if !now {
                self.dirty.extend(affected);
            }
        }
        if from.holds_admission() != to.holds_admission() {
            *self.epochs.entry(cpu).or_insert(0) += 1;
        }
    }

    fn on_contract_changed(&mut self, name: &str, descriptor: &ComponentDescriptor) {
        // A mode or claim rewrite substitutes frequency/claim/priority,
        // never ports: the port index stays valid, but the component's own
        // nodes do not.
        self.wiring_memo.remove(name);
        self.admission_memo.remove(name);
        // Contract rewrites change the CPU's capacity picture even while
        // the component is inactive (a refined claim frees headroom a
        // waiting peer was rejected against), so the CPU's admission epoch
        // advances and peers' memoized rulings go stale. Conservative:
        // memo misses only re-run analyses, decisions and event streams
        // are unchanged.
        *self.epochs.entry(descriptor.task.cpu()).or_insert(0) += 1;
    }

    fn sweep_next(&mut self, cursor: Option<&str>) -> Option<Rc<str>> {
        let next = match cursor {
            None => self.dirty.iter().next().cloned(),
            Some(c) => self
                .dirty
                .range::<str, _>((Bound::Excluded(c), Bound::Unbounded))
                .next()
                .cloned(),
        }?;
        self.dirty.remove(&next);
        Some(next)
    }

    fn seed_all(&mut self) {
        self.dirty = self.names.clone();
        self.wiring_memo.clear();
        self.admission_memo.clear();
    }

    fn check_wiring(
        &mut self,
        candidate: &ComponentDescriptor,
        assume_active: &[Rc<str>],
    ) -> WiringCheck {
        if !assume_active.is_empty() {
            // Group-activation probes reason about hypothetical states and
            // must neither read nor populate the memo.
            return WiringCheck {
                result: self.port_index.check_functional(candidate, assume_active),
                evaluated: true,
                graph_built: false,
            };
        }
        if let Some(cached) = self.wiring_memo.get(candidate.name.as_str()) {
            return WiringCheck {
                result: cached.clone(),
                evaluated: false,
                graph_built: false,
            };
        }
        let result = self.port_index.check_functional(candidate, &[]);
        self.wiring_memo
            .insert(candidate.name.to_string(), result.clone());
        WiringCheck {
            result,
            evaluated: true,
            graph_built: false,
        }
    }

    fn admit(
        &mut self,
        candidate: &ComponentInfo,
        view: &SystemView,
        memoize: bool,
    ) -> AdmissionRuling {
        if !(memoize && self.policy.cacheable()) {
            return self.policy.rule(candidate, view);
        }
        let epoch = self.epochs.get(&candidate.cpu).copied().unwrap_or(0);
        if let Some(memo) = self.admission_memo.get(&*candidate.name) {
            if memo.epoch == epoch {
                return AdmissionRuling {
                    resolver: memo.resolver.clone(),
                    decision: memo.decision.clone(),
                    analysis: memo.analysis.clone(),
                    evaluated: false,
                };
            }
        }
        let ruling = self.policy.rule(candidate, view);
        self.admission_memo.insert(
            candidate.name.to_string(),
            AdmissionMemo {
                epoch,
                resolver: ruling.resolver.clone(),
                decision: ruling.decision.clone(),
                analysis: ruling.analysis.clone(),
            },
        );
        ruling
    }

    fn admit_batch(
        &mut self,
        candidates: &[ComponentInfo],
        view: &SystemView,
    ) -> Option<BatchAdmission> {
        let AdmissionPolicy::ResponseTime(rta) = &self.policy else {
            return None;
        };
        let analyses = rta.analyze_batch(candidates, view)?;
        Some(BatchAdmission {
            resolver: rta.name().to_string(),
            analyses,
        })
    }
}

/// The pre-index reference engine: no memos, no dirty scope, a
/// [`WiringGraph`] rebuilt from scratch for every check, and a sweep that
/// visits every known component every round. Kept as the differential
/// oracle and benchmark baseline.
pub struct NaiveResolver {
    mirror: BTreeMap<Rc<str>, (ComponentDescriptor, ComponentState)>,
    policy: AdmissionPolicy,
}

impl fmt::Debug for NaiveResolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NaiveResolver")
            .field("components", &self.mirror.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl NaiveResolver {
    /// A fresh oracle ruling admission with `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        NaiveResolver {
            mirror: BTreeMap::new(),
            policy,
        }
    }
}

impl Resolver for NaiveResolver {
    fn name(&self) -> &str {
        "naive-reference"
    }

    fn on_registered(&mut self, name: &Rc<str>, descriptor: &ComponentDescriptor) {
        self.mirror.insert(
            name.clone(),
            (descriptor.clone(), ComponentState::Installed),
        );
    }

    fn on_removed(&mut self, name: &str, _descriptor: &ComponentDescriptor) {
        self.mirror.remove(name);
    }

    fn on_state_changed(
        &mut self,
        name: &Rc<str>,
        _cpu: u32,
        _from: ComponentState,
        to: ComponentState,
    ) {
        if let Some((_, state)) = self.mirror.get_mut(&**name) {
            *state = to;
        }
    }

    fn on_contract_changed(&mut self, name: &str, descriptor: &ComponentDescriptor) {
        if let Some((desc, _)) = self.mirror.get_mut(name) {
            *desc = descriptor.clone();
        }
    }

    fn sweep_next(&mut self, cursor: Option<&str>) -> Option<Rc<str>> {
        match cursor {
            None => self.mirror.keys().next().cloned(),
            Some(c) => self
                .mirror
                .range::<str, _>((Bound::Excluded(c), Bound::Unbounded))
                .next()
                .map(|(k, _)| k.clone()),
        }
    }

    fn seed_all(&mut self) {}

    fn check_wiring(
        &mut self,
        candidate: &ComponentDescriptor,
        assume_active: &[Rc<str>],
    ) -> WiringCheck {
        let entries: Vec<_> = self.mirror.values().map(|(d, s)| (d, *s)).collect();
        let graph = WiringGraph::new(entries);
        WiringCheck {
            result: graph.check_functional(candidate, assume_active),
            evaluated: true,
            graph_built: true,
        }
    }

    fn admit(
        &mut self,
        candidate: &ComponentInfo,
        view: &SystemView,
        _memoize: bool,
    ) -> AdmissionRuling {
        self.policy.rule(candidate, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PortInterface;
    use crate::resolve::{AlwaysAdmit, UtilizationResolver};
    use rtos::shm::DataType;

    fn provider(name: &str) -> ComponentDescriptor {
        ComponentDescriptor::builder(name)
            .periodic(1000, 0, 2)
            .cpu_usage(0.2)
            .outport("latdat", PortInterface::Shm, DataType::Integer, 4)
            .build()
            .unwrap()
    }

    fn consumer(name: &str) -> ComponentDescriptor {
        ComponentDescriptor::builder(name)
            .periodic(4, 0, 5)
            .cpu_usage(0.05)
            .inport("latdat", PortInterface::Shm, DataType::Integer, 4)
            .build()
            .unwrap()
    }

    fn info(name: &str, state: ComponentState, cpu: u32, usage: f64) -> ComponentInfo {
        ComponentInfo {
            name: name.into(),
            state,
            cpu,
            cpu_usage: usage,
            priority: 2,
            period_ns: Some(1_000_000),
        }
    }

    fn register(engine: &mut dyn Resolver, desc: &ComponentDescriptor) -> Rc<str> {
        let name: Rc<str> = Rc::from(desc.name.as_str());
        engine.on_registered(&name, desc);
        name
    }

    #[test]
    fn wiring_memo_hits_until_provider_churn() {
        let mut engine = ReactiveResolver::new(AdmissionPolicy::Service(Rc::new(AlwaysAdmit)));
        let p = provider("calc");
        let c = consumer("disp");
        register(&mut engine, &p);
        register(&mut engine, &c);

        let first = engine.check_wiring(&c, &[]);
        assert!(first.evaluated && first.result.is_err());
        let second = engine.check_wiring(&c, &[]);
        assert!(!second.evaluated, "second strict check must hit the memo");
        assert_eq!(
            format!("{:?}", second.result),
            format!("{:?}", first.result)
        );

        // Provider activates: memo invalidated, fresh check succeeds.
        let calc: Rc<str> = Rc::from("calc");
        engine.on_state_changed(
            &calc,
            0,
            ComponentState::Unsatisfied,
            ComponentState::Active,
        );
        let third = engine.check_wiring(&c, &[]);
        assert!(third.evaluated && third.result.is_ok());
        // Activation-side churn invalidates but does not seed the sweep.
        assert_eq!(engine.sweep_next(None), None);

        // Provider stops: memo invalidated again AND the consumer is
        // seeded for the deactivation sweep.
        engine.on_state_changed(
            &calc,
            0,
            ComponentState::Active,
            ComponentState::Unsatisfied,
        );
        assert_eq!(engine.sweep_next(None).as_deref(), Some("disp"));
        assert_eq!(engine.sweep_next(Some("disp")), None);
        let fourth = engine.check_wiring(&c, &[]);
        assert!(fourth.evaluated && fourth.result.is_err());
    }

    #[test]
    fn registration_churn_refreshes_consumer_diagnosis() {
        let mut engine = ReactiveResolver::new(AdmissionPolicy::Service(Rc::new(AlwaysAdmit)));
        let c = consumer("disp");
        register(&mut engine, &c);
        assert!(engine.check_wiring(&c, &[]).result.is_err()); // NoProvider
        let p = provider("calc");
        register(&mut engine, &p);
        let check = engine.check_wiring(&c, &[]);
        assert!(check.evaluated, "new provider must invalidate the memo");
        let missing = check.result.unwrap_err();
        assert!(missing[0].to_string().contains("not active"), "{missing:?}");
        engine.on_removed("calc", &p);
        let check = engine.check_wiring(&c, &[]);
        assert!(check.evaluated);
        assert!(
            check.result.unwrap_err()[0]
                .to_string()
                .contains("no provider"),
            "removal must fall back to NoProvider"
        );
    }

    #[test]
    fn probe_checks_bypass_the_memo() {
        let mut engine = ReactiveResolver::new(AdmissionPolicy::Service(Rc::new(AlwaysAdmit)));
        let p = provider("calc");
        let c = consumer("disp");
        register(&mut engine, &p);
        register(&mut engine, &c);
        engine.check_wiring(&c, &[]); // populate the strict memo (Err)
        let assume: Vec<Rc<str>> = vec![Rc::from("calc")];
        let probe = engine.check_wiring(&c, &assume);
        assert!(probe.evaluated && probe.result.is_ok());
        // The probe must not have poisoned the strict memo.
        let strict = engine.check_wiring(&c, &[]);
        assert!(!strict.evaluated && strict.result.is_err());
    }

    #[test]
    fn admission_memo_keyed_on_cpu_epoch() {
        let mut engine = ReactiveResolver::new(AdmissionPolicy::Service(Rc::new(
            UtilizationResolver::default(),
        )));
        let cand = info("disp", ComponentState::Unsatisfied, 0, 0.3);
        let view = SystemView::new(2, vec![cand.clone()]);

        assert!(engine.admit(&cand, &view, true).evaluated);
        assert!(!engine.admit(&cand, &view, true).evaluated, "memo hit");

        // Suspend ↔ resume keeps admission: no epoch bump, memo survives.
        let other: Rc<str> = Rc::from("calc");
        engine.on_state_changed(&other, 0, ComponentState::Active, ComponentState::Suspended);
        assert!(!engine.admit(&cand, &view, true).evaluated);

        // An admission-holding flip on the same CPU invalidates...
        engine.on_state_changed(
            &other,
            0,
            ComponentState::Suspended,
            ComponentState::Unsatisfied,
        );
        assert!(engine.admit(&cand, &view, true).evaluated);
        // ...but a flip on another CPU does not.
        engine.on_state_changed(
            &other,
            1,
            ComponentState::Unsatisfied,
            ComponentState::Active,
        );
        assert!(!engine.admit(&cand, &view, true).evaluated);

        // Group probes never read nor populate the memo.
        assert!(engine.admit(&cand, &view, false).evaluated);
        assert!(!engine.admit(&cand, &view, true).evaluated);
    }

    #[test]
    fn mode_switch_clears_both_nodes() {
        let mut engine = ReactiveResolver::new(AdmissionPolicy::Service(Rc::new(
            UtilizationResolver::default(),
        )));
        let c = consumer("disp");
        register(&mut engine, &c);
        let cand = info("disp", ComponentState::Unsatisfied, 0, 0.3);
        let view = SystemView::new(1, vec![cand.clone()]);
        engine.check_wiring(&c, &[]);
        engine.admit(&cand, &view, true);
        engine.on_contract_changed("disp", &c);
        assert!(engine.check_wiring(&c, &[]).evaluated);
        assert!(engine.admit(&cand, &view, true).evaluated);
    }

    #[test]
    fn contract_change_bumps_the_cpu_admission_epoch_for_peers() {
        // A claim rewrite frees (or consumes) capacity a *different*
        // waiting component was last ruled against: its memoized ruling on
        // the same CPU must go stale, while other CPUs are untouched.
        let mut engine = ReactiveResolver::new(AdmissionPolicy::Service(Rc::new(
            UtilizationResolver::default(),
        )));
        let peer0 = info("peer0", ComponentState::Unsatisfied, 0, 0.3);
        let peer1 = info("peer1", ComponentState::Unsatisfied, 1, 0.3);
        let view = SystemView::new(2, vec![peer0.clone(), peer1.clone()]);
        engine.admit(&peer0, &view, true);
        engine.admit(&peer1, &view, true);
        assert!(!engine.admit(&peer0, &view, true).evaluated, "memo hit");
        assert!(!engine.admit(&peer1, &view, true).evaluated, "memo hit");

        // `hog` (CPU 0) gets its claim refined.
        let hog = provider("hog"); // cpu 0 descriptor
        engine.on_contract_changed("hog", &hog);
        assert!(
            engine.admit(&peer0, &view, true).evaluated,
            "same-CPU peer ruling must be re-evaluated"
        );
        assert!(
            !engine.admit(&peer1, &view, true).evaluated,
            "other-CPU peer ruling survives"
        );
    }

    #[test]
    fn seed_all_marks_every_component_and_drops_memos() {
        let mut engine = ReactiveResolver::new(AdmissionPolicy::Service(Rc::new(AlwaysAdmit)));
        let p = provider("calc");
        let c = consumer("disp");
        register(&mut engine, &p);
        register(&mut engine, &c);
        engine.check_wiring(&c, &[]);
        engine.seed_all();
        assert_eq!(engine.sweep_next(None).as_deref(), Some("calc"));
        assert_eq!(engine.sweep_next(Some("calc")).as_deref(), Some("disp"));
        assert_eq!(engine.sweep_next(Some("disp")), None);
        assert!(engine.check_wiring(&c, &[]).evaluated);
    }

    #[test]
    fn naive_oracle_agrees_with_reactive_engine() {
        let mut reactive = ReactiveResolver::new(AdmissionPolicy::Service(Rc::new(
            UtilizationResolver::default(),
        )));
        let mut naive = NaiveResolver::new(AdmissionPolicy::Service(Rc::new(
            UtilizationResolver::default(),
        )));
        let engines: &mut [&mut dyn Resolver] = &mut [&mut reactive, &mut naive];
        let p = provider("calc");
        let c = consumer("disp");
        for engine in engines.iter_mut() {
            register(*engine, &p);
            register(*engine, &c);
        }
        let calc: Rc<str> = Rc::from("calc");
        let flips = [
            (ComponentState::Installed, ComponentState::Unsatisfied),
            (ComponentState::Unsatisfied, ComponentState::Active),
            (ComponentState::Active, ComponentState::Suspended),
            (ComponentState::Suspended, ComponentState::Active),
            (ComponentState::Active, ComponentState::Unsatisfied),
        ];
        for (from, to) in flips {
            let mut results = Vec::new();
            for engine in engines.iter_mut() {
                engine.on_state_changed(&calc, 0, from, to);
                // Strict check twice: a memo hit must replay equal values.
                let once = engine.check_wiring(&c, &[]);
                let twice = engine.check_wiring(&c, &[]);
                assert_eq!(format!("{:?}", once.result), format!("{:?}", twice.result));
                results.push(once.result);
            }
            assert_eq!(
                format!("{:?}", results[0]),
                format!("{:?}", results[1]),
                "engines diverged on {from:?} → {to:?}"
            );
        }
        // The naive sweep serves every component, the reactive sweep only
        // its dirty scope (seeded by the final providing → false flip).
        assert_eq!(naive.sweep_next(None).as_deref(), Some("calc"));
        assert_eq!(naive.sweep_next(Some("calc")).as_deref(), Some("disp"));
        assert_eq!(reactive.sweep_next(None).as_deref(), Some("disp"));
        assert_eq!(reactive.sweep_next(Some("disp")), None);
    }

    #[test]
    fn batch_admission_requires_response_time_policy() {
        let mut engine = ReactiveResolver::new(AdmissionPolicy::Service(Rc::new(AlwaysAdmit)));
        let cand = info("a", ComponentState::Unsatisfied, 0, 0.1);
        let view = SystemView::new(1, vec![cand.clone()]);
        assert!(engine.admit_batch(&[cand], &view).is_none());
    }

    #[test]
    fn batch_admission_yields_one_analysis_per_cpu() {
        let mut engine = ReactiveResolver::response_time(RtaResolver::default());
        let a = info("a", ComponentState::Unsatisfied, 0, 0.2);
        let b = info("b", ComponentState::Unsatisfied, 0, 0.2);
        let c = info("c", ComponentState::Unsatisfied, 1, 0.2);
        let view = SystemView::new(2, vec![a.clone(), b.clone(), c.clone()]);
        let batch = engine
            .admit_batch(&[a, b, c], &view)
            .expect("schedulable batch admits in one pass");
        assert_eq!(batch.resolver, "response-time");
        assert_eq!(batch.analyses.len(), 2, "one analysis per touched CPU");
        assert_eq!(batch.analyses[0].cpu, 0);
        assert_eq!(batch.analyses[1].cpu, 1);
        assert!(batch.analyses.iter().all(|a| a.schedulable));
    }
}
