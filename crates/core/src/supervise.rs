//! Fault supervision policy for the DRCR executive.
//!
//! The kernel contains a panicking component the instant it happens (the
//! task parks in `Faulted`, its partial port writes rolled back); this
//! module decides what the executive does *next*. Each component carries a
//! [`RestartPolicy`] — never restart, restart immediately up to a budget,
//! or restart with exponential backoff — plus an optional sliding-window
//! [`QuarantineRule`] that overrides any policy when a component faults too
//! often (a flapping component is worse than a dead one: every restart
//! cascades its consumers down and back up).
//!
//! The supervisor holds only bookkeeping: fault timestamps, restart
//! counters and backoff deadlines, all in virtual kernel time so every
//! decision is deterministic and replayable. The mechanics — tearing the
//! component down, releasing its admission, cascading consumers, rewiring
//! on re-activation — stay in [`crate::drcr::Drcr`], which polls the kernel
//! for faulted tasks at the top of every `process` call and consults this
//! module for the verdict. Quarantine maps onto the existing `Disabled`
//! lifecycle state (no seventh state): the reservation is released and the
//! component is ignored by resolution until an operator re-enables it,
//! which also resets its supervision counters.

use rtos::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// What the executive does when a component's RT task faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Fail-stop (the default): the first fault quarantines the component.
    #[default]
    Never,
    /// Re-admit through normal resolution right away, at most `max_restarts`
    /// times over the component's lifetime; the next fault quarantines.
    Immediate {
        /// Total restart budget before quarantine.
        max_restarts: u32,
    },
    /// Re-admit after an exponentially growing delay in virtual time:
    /// attempt *n* waits `initial * factor^(n-1)`, capped at `cap`.
    Backoff {
        /// Delay before the first restart attempt.
        initial: SimDuration,
        /// Multiplier applied per subsequent attempt.
        factor: u32,
        /// Upper bound on the delay.
        cap: SimDuration,
        /// Total restart budget before quarantine.
        max_restarts: u32,
    },
}

/// Sliding-window flap detector: `max_faults` faults within `window`
/// quarantine the component regardless of its restart policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineRule {
    /// Width of the sliding window (virtual time).
    pub window: SimDuration,
    /// Faults tolerated inside one window before quarantine.
    pub max_faults: u32,
}

/// Per-component supervision configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisionConfig {
    /// The restart policy.
    pub policy: RestartPolicy,
    /// Optional flap detector layered over the policy.
    pub quarantine: Option<QuarantineRule>,
}

impl SupervisionConfig {
    /// Fail-stop: quarantine on the first fault (the default).
    pub fn never() -> Self {
        SupervisionConfig::default()
    }

    /// Immediate restarts up to a budget.
    pub fn immediate(max_restarts: u32) -> Self {
        SupervisionConfig {
            policy: RestartPolicy::Immediate { max_restarts },
            quarantine: None,
        }
    }

    /// Exponential backoff restarts up to a budget.
    pub fn backoff(initial: SimDuration, factor: u32, cap: SimDuration, max_restarts: u32) -> Self {
        SupervisionConfig {
            policy: RestartPolicy::Backoff {
                initial,
                factor,
                cap,
                max_restarts,
            },
            quarantine: None,
        }
    }

    /// Layers a sliding-window flap detector over the policy.
    pub fn with_quarantine(mut self, window: SimDuration, max_faults: u32) -> Self {
        self.quarantine = Some(QuarantineRule { window, max_faults });
        self
    }
}

/// The supervisor's verdict on one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultDecision {
    /// Disable the component and release its reservation; it stays out
    /// until an operator re-enables it.
    Quarantine {
        /// Why (policy exhausted, flap window tripped, or fail-stop).
        reason: String,
    },
    /// Deactivate to `Unsatisfied` and re-admit after `delay` (zero for
    /// immediate policies).
    Restart {
        /// 1-based attempt number.
        attempt: u32,
        /// Virtual-time delay before the attempt is released to resolution.
        delay: SimDuration,
    },
}

#[derive(Debug, Default)]
struct Entry {
    /// `None` means the supervisor default applies.
    config: Option<SupervisionConfig>,
    /// Lifetime restart attempts consumed.
    restarts: u32,
    /// Fault instants, pruned to the quarantine window.
    fault_times: VecDeque<SimTime>,
    /// Pending backoff: (deadline, attempt number).
    hold: Option<(SimTime, u32)>,
    quarantined: bool,
    /// Why the component sits in quarantine (typed evidence for audits;
    /// `None` while not quarantined).
    quarantine_reason: Option<String>,
}

/// Deterministic supervision bookkeeping for all components. See the
/// [module docs](self).
#[derive(Debug, Default)]
pub(crate) struct Supervisor {
    default_config: SupervisionConfig,
    entries: BTreeMap<Rc<str>, Entry>,
}

impl Supervisor {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Sets the config applied to components without their own.
    pub(crate) fn set_default(&mut self, config: SupervisionConfig) {
        self.default_config = config;
    }

    /// Sets one component's config.
    pub(crate) fn set_config(&mut self, name: &str, config: SupervisionConfig) {
        self.entries.entry(Rc::from(name)).or_default().config = Some(config);
    }

    /// The config in force for `name`.
    pub(crate) fn config_of(&self, name: &str) -> SupervisionConfig {
        self.entries
            .get(name)
            .and_then(|e| e.config)
            .unwrap_or(self.default_config)
    }

    /// Records one fault at `now` and rules on it.
    pub(crate) fn on_fault(&mut self, name: &Rc<str>, now: SimTime) -> FaultDecision {
        let config = self.config_of(name);
        let entry = self.entries.entry(name.clone()).or_default();
        entry.hold = None;
        entry.fault_times.push_back(now);
        if let Some(rule) = config.quarantine {
            while let Some(&front) = entry.fault_times.front() {
                if now.duration_since(front) > rule.window {
                    entry.fault_times.pop_front();
                } else {
                    break;
                }
            }
            if entry.fault_times.len() as u32 >= rule.max_faults {
                let reason = format!(
                    "{} faults within {} ns window",
                    entry.fault_times.len(),
                    rule.window.as_nanos()
                );
                entry.quarantined = true;
                entry.quarantine_reason = Some(reason.clone());
                return FaultDecision::Quarantine { reason };
            }
        }
        match config.policy {
            RestartPolicy::Never => {
                let reason = "restart policy Never".to_string();
                entry.quarantined = true;
                entry.quarantine_reason = Some(reason.clone());
                FaultDecision::Quarantine { reason }
            }
            RestartPolicy::Immediate { max_restarts } => {
                if entry.restarts >= max_restarts {
                    let reason = format!("restart budget exhausted ({max_restarts})");
                    entry.quarantined = true;
                    entry.quarantine_reason = Some(reason.clone());
                    FaultDecision::Quarantine { reason }
                } else {
                    entry.restarts += 1;
                    FaultDecision::Restart {
                        attempt: entry.restarts,
                        delay: SimDuration::ZERO,
                    }
                }
            }
            RestartPolicy::Backoff {
                initial,
                factor,
                cap,
                max_restarts,
            } => {
                if entry.restarts >= max_restarts {
                    let reason = format!("restart budget exhausted ({max_restarts})");
                    entry.quarantined = true;
                    entry.quarantine_reason = Some(reason.clone());
                    FaultDecision::Quarantine { reason }
                } else {
                    let mut delay_ns = initial.as_nanos().max(1);
                    let cap_ns = cap.as_nanos().max(1);
                    for _ in 0..entry.restarts {
                        delay_ns = delay_ns.saturating_mul(factor.max(1) as u64).min(cap_ns);
                    }
                    entry.restarts += 1;
                    FaultDecision::Restart {
                        attempt: entry.restarts,
                        delay: SimDuration::from_nanos(delay_ns.min(cap_ns)),
                    }
                }
            }
        }
    }

    /// Parks a component behind a backoff deadline; resolution skips it
    /// until [`Supervisor::release_expired`] frees it.
    pub(crate) fn hold(&mut self, name: Rc<str>, deadline: SimTime, attempt: u32) {
        self.entries.entry(name).or_default().hold = Some((deadline, attempt));
    }

    /// True while a backoff hold is pending (expiry is only observed by
    /// [`Supervisor::release_expired`], keeping resolution deterministic).
    pub(crate) fn is_held(&self, name: &str) -> bool {
        self.entries.get(name).is_some_and(|e| e.hold.is_some())
    }

    /// Releases every hold whose deadline has passed, in name order.
    pub(crate) fn release_expired(&mut self, now: SimTime) -> Vec<(Rc<str>, u32)> {
        let mut released = Vec::new();
        for (name, entry) in &mut self.entries {
            if let Some((deadline, attempt)) = entry.hold {
                if deadline <= now {
                    entry.hold = None;
                    released.push((name.clone(), attempt));
                }
            }
        }
        released
    }

    /// Marks a component quarantined without a fault (the enforcement
    /// path routes `Disable` actions here), recording why.
    pub(crate) fn quarantine(&mut self, name: &str, reason: &str) {
        let entry = self.entries.entry(Rc::from(name)).or_default();
        entry.quarantined = true;
        entry.quarantine_reason = Some(reason.to_string());
        entry.hold = None;
    }

    /// Whether the component sits in quarantine.
    pub(crate) fn is_quarantined(&self, name: &str) -> bool {
        self.entries.get(name).is_some_and(|e| e.quarantined)
    }

    /// The recorded cause of a quarantine, while one is in force.
    pub(crate) fn quarantine_reason(&self, name: &str) -> Option<&str> {
        self.entries
            .get(name)
            .filter(|e| e.quarantined)
            .and_then(|e| e.quarantine_reason.as_deref())
    }

    /// Fresh slate on operator re-enable: counters, window and quarantine
    /// flag all clear (the configured policy is kept).
    pub(crate) fn reset(&mut self, name: &str) {
        if let Some(entry) = self.entries.get_mut(name) {
            entry.restarts = 0;
            entry.fault_times.clear();
            entry.hold = None;
            entry.quarantined = false;
            entry.quarantine_reason = None;
        }
    }

    /// Drops all state for a removed component.
    pub(crate) fn clear(&mut self, name: &str) {
        self.entries.remove(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn default_policy_is_fail_stop() {
        let mut s = Supervisor::new();
        let name: Rc<str> = Rc::from("calc");
        assert_eq!(
            s.on_fault(&name, t(1)),
            FaultDecision::Quarantine {
                reason: "restart policy Never".into()
            }
        );
        assert!(s.is_quarantined("calc"));
    }

    #[test]
    fn immediate_policy_exhausts_its_budget() {
        let mut s = Supervisor::new();
        let name: Rc<str> = Rc::from("calc");
        s.set_config("calc", SupervisionConfig::immediate(2));
        assert_eq!(
            s.on_fault(&name, t(1)),
            FaultDecision::Restart {
                attempt: 1,
                delay: SimDuration::ZERO
            }
        );
        assert_eq!(
            s.on_fault(&name, t(2)),
            FaultDecision::Restart {
                attempt: 2,
                delay: SimDuration::ZERO
            }
        );
        assert!(matches!(
            s.on_fault(&name, t(3)),
            FaultDecision::Quarantine { .. }
        ));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let mut s = Supervisor::new();
        let name: Rc<str> = Rc::from("calc");
        s.set_config(
            "calc",
            SupervisionConfig::backoff(
                SimDuration::from_millis(10),
                2,
                SimDuration::from_millis(35),
                4,
            ),
        );
        let delays: Vec<u64> = (0..4)
            .map(|i| match s.on_fault(&name, t(i)) {
                FaultDecision::Restart { delay, .. } => delay.as_nanos() / 1_000_000,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(delays, vec![10, 20, 35, 35]);
        assert!(matches!(
            s.on_fault(&name, t(9)),
            FaultDecision::Quarantine { .. }
        ));
    }

    #[test]
    fn sliding_window_overrides_policy() {
        let mut s = Supervisor::new();
        let name: Rc<str> = Rc::from("calc");
        s.set_config(
            "calc",
            SupervisionConfig::immediate(100).with_quarantine(SimDuration::from_millis(50), 3),
        );
        assert!(matches!(
            s.on_fault(&name, t(0)),
            FaultDecision::Restart { .. }
        ));
        assert!(matches!(
            s.on_fault(&name, t(10)),
            FaultDecision::Restart { .. }
        ));
        // Third fault inside the 50 ms window trips the detector.
        assert!(matches!(
            s.on_fault(&name, t(20)),
            FaultDecision::Quarantine { .. }
        ));
    }

    #[test]
    fn spaced_faults_slide_out_of_the_window() {
        let mut s = Supervisor::new();
        let name: Rc<str> = Rc::from("calc");
        s.set_config(
            "calc",
            SupervisionConfig::immediate(100).with_quarantine(SimDuration::from_millis(50), 3),
        );
        for i in 0..6 {
            // 60 ms apart: at most two faults ever share a window.
            assert!(
                matches!(s.on_fault(&name, t(i * 60)), FaultDecision::Restart { .. }),
                "fault {i} should restart"
            );
        }
    }

    #[test]
    fn quarantine_reason_is_recorded_and_cleared_on_reset() {
        let mut s = Supervisor::new();
        let name: Rc<str> = Rc::from("calc");
        assert_eq!(s.quarantine_reason("calc"), None);
        s.on_fault(&name, t(1));
        assert_eq!(s.quarantine_reason("calc"), Some("restart policy Never"));
        s.reset("calc");
        assert_eq!(s.quarantine_reason("calc"), None);
        // The direct (enforcement) path records its own evidence.
        s.quarantine("calc", "stochastic violation: rate 0.4 > 0.05");
        assert!(s.is_quarantined("calc"));
        assert_eq!(
            s.quarantine_reason("calc"),
            Some("stochastic violation: rate 0.4 > 0.05")
        );
    }

    #[test]
    fn holds_release_in_order_and_reset_clears_everything() {
        let mut s = Supervisor::new();
        s.hold(Rc::from("b"), t(20), 1);
        s.hold(Rc::from("a"), t(10), 2);
        assert!(s.is_held("a") && s.is_held("b"));
        assert!(s.release_expired(t(5)).is_empty());
        let freed = s.release_expired(t(15));
        assert_eq!(freed.len(), 1);
        assert_eq!(&*freed[0].0, "a");
        assert_eq!(freed[0].1, 2);
        assert!(!s.is_held("a") && s.is_held("b"));
        s.reset("b");
        assert!(!s.is_held("b"));
    }
}
