//! The Declarative Real-time Component Runtime (DRCR) executive.
//!
//! The DRCR owns the **whole lifecycle** of every declarative real-time
//! component (§2.2): components are activated and deactivated only through
//! it, which is what keeps its global view — the [`SystemView`] handed to
//! resolving services — complete and accurate. It reacts to framework
//! events (component bundles arriving and departing, resolvers coming and
//! going) by re-running constraint resolution:
//!
//! 1. **Functional constraints** — every inport wired to a compatible
//!    outport of an *active* component ([`crate::wiring`]).
//! 2. **Non-functional constraints** — the internal resolving service *and
//!    all* customized resolving services found in the service registry must
//!    admit the candidate (§4.3: "when both services return positive
//!    results").
//!
//! On departure the DRCR cascades: consumers left without an active
//! provider are deactivated back to `Unsatisfied` (releasing their
//! admission), and re-activated automatically when a provider returns.
//! Every decision is recorded in a transition log for audit and for the
//! paper's dynamicity scenario.

use crate::admission::AdmissionLedger;
use crate::descriptor::ComponentDescriptor;
use crate::error::DrcrError;
use crate::hybrid::{BridgeMode, Command, HybridRtBody, PortBinding, Reply, RtLogic};
use crate::lifecycle::{ComponentState, Transition};
use crate::manage::{
    ManagementHandle, ManagementReply, RequestToken, RtComponentManagement, MANAGEMENT_SERVICE,
};
use crate::model::{CpuUsage, PortInterface, PropertyValue, TaskSpec};
use crate::obs::{
    BridgeEvent, DrcrEvent, EventSink, Histogram, MetricsRegistry, MetricsReport, Timestamped,
    TraceRing, TraceSubscriber,
};
use crate::reactive::{AdmissionPolicy, NaiveResolver, ReactiveResolver};
use crate::resolve::{
    Decision, Resolver, ResolverHandle, ResolvingService, UtilizationResolver, RESOLVER_SERVICE,
};
use crate::rta::{RtaAnalysis, RtaParams, RtaResolver};
use crate::supervise::{FaultDecision, SupervisionConfig, Supervisor};
use crate::view::{ComponentInfo, SystemView};
use crate::wiring::WiringResult;
use osgi::event::{BundleId, FrameworkEvent, ServiceEventKind};
use osgi::framework::Framework;
use osgi::ldap::{PropValue, Properties};
use osgi::registry::ServiceId;
use rtos::kernel::Kernel;
use rtos::task::{TaskConfig, TaskId};
use rtos::time::SimDuration;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::rc::{Rc, Weak};

/// Service-registry interface name under which component bundles publish
/// their descriptor + implementation factory.
pub const COMPONENT_SERVICE: &str = "drt.component";

/// Property key carrying the component name on `drt.component` and
/// `drt.management` registrations.
pub const PROP_COMPONENT_NAME: &str = "drt.name";

/// Capacity of the executive's event rings; older events are dropped
/// (counted, and still delivered to live subscribers first).
const EVENT_RING_CAPACITY: usize = 10_000;

/// Which constraint-resolution engine the executive drives.
///
/// Each variant is a constructor for a [`Resolver`] engine
/// ([`Drcr::set_resolution_strategy`] rebuilds the engine and replays the
/// current component world into it). `Incremental` and `NaiveReference`
/// produce byte-identical [`DrcrEvent`] streams; they differ only in work
/// done (visible through the `drcr.wiring.*` / `drcr.admission.*`
/// counters). `ResponseTime` keeps the reactive engine but swaps the
/// *non-functional* half: internal verdicts come from exact response-time
/// analysis ([`crate::rta`]), so its event stream legitimately differs
/// (different admission verdicts, plus [`DrcrEvent::AdmissionAnalysis`]
/// evidence events) — and it unlocks batched arrival admission
/// ([`Drcr::set_batched_admission`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolutionStrategy {
    /// The default: [`ReactiveResolver`] with the configured internal
    /// resolving service — a persistent port index maintained across
    /// deploy/undeploy/state transitions, memoized wiring and admission
    /// nodes, and a deactivation sweep driven by a dirty-set seeded from
    /// the changed component's consumers.
    #[default]
    Incremental,
    /// [`NaiveResolver`]: the pre-index behaviour, kept as a
    /// differential-testing reference and benchmark baseline — rebuild a
    /// wiring graph for every check and re-scan every running component
    /// every sweep.
    NaiveReference,
    /// [`ReactiveResolver`] with response-time admission: reactive wiring +
    /// schedulability-aware internal verdicts from per-CPU fixed-priority
    /// response-time analysis instead of the configured service.
    ResponseTime,
}

/// A deployable component: validated descriptor plus the factory producing
/// its real-time logic.
///
/// This is the Rust-native equivalent of the paper's bundle payload (XML
/// descriptor + implementation class named by `bincode`).
pub struct ComponentProvider {
    descriptor: ComponentDescriptor,
    factory: Rc<dyn Fn() -> Box<dyn RtLogic>>,
}

impl fmt::Debug for ComponentProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ComponentProvider({})", self.descriptor.name)
    }
}

impl ComponentProvider {
    /// Pairs a descriptor with its logic factory.
    pub fn new(
        descriptor: ComponentDescriptor,
        factory: impl Fn() -> Box<dyn RtLogic> + 'static,
    ) -> Self {
        ComponentProvider {
            descriptor,
            factory: Rc::new(factory),
        }
    }

    /// Parses the descriptor from XML, then pairs it with the factory.
    ///
    /// # Errors
    ///
    /// Propagates descriptor parse/validation errors.
    pub fn from_xml(
        xml: &str,
        factory: impl Fn() -> Box<dyn RtLogic> + 'static,
    ) -> Result<Self, crate::error::DescriptorError> {
        Ok(ComponentProvider {
            descriptor: ComponentDescriptor::parse_xml(xml)?,
            factory: Rc::new(factory),
        })
    }

    /// The validated descriptor.
    pub fn descriptor(&self) -> &ComponentDescriptor {
        &self.descriptor
    }

    pub(crate) fn factory(&self) -> Rc<dyn Fn() -> Box<dyn RtLogic>> {
        self.factory.clone()
    }
}

struct ComponentRecord {
    /// The contract currently in force (mode-substituted).
    descriptor: ComponentDescriptor,
    /// The pristine contract as registered (mode switches derive from it).
    base_descriptor: ComponentDescriptor,
    factory: Rc<dyn Fn() -> Box<dyn RtLogic>>,
    state: ComponentState,
    bundle: Option<BundleId>,
    task: Option<TaskId>,
    mgmt: Option<ServiceId>,
    cmd_mbx: Option<String>,
    reply_mbx: Option<String>,
    /// Chosen provider per inport at activation (for diagnostics).
    providers: Vec<(String, String)>,
    /// The operating mode currently substituted into the contract.
    current_mode: String,
    /// Replies already drained from the reply mailbox, by token.
    reply_buffer: HashMap<u32, ManagementReply>,
}

/// The DRCR executive. Construct with [`Drcr::new_shared`]; the shared
/// handle is what management services capture. See the [module docs](self).
pub struct Drcr {
    kernel: Rc<RefCell<Kernel>>,
    components: BTreeMap<Rc<str>, ComponentRecord>,
    ledger: AdmissionLedger,
    /// The configured internal resolving service (the admission policy the
    /// engine rules with under `Incremental`/`NaiveReference`).
    internal_policy: Rc<dyn ResolvingService>,
    bridge: BridgeMode,
    enforce_budgets: bool,
    transitions: Vec<Transition>,
    events: EventSink<DrcrEvent>,
    bridge_events: EventSink<BridgeEvent>,
    metrics: MetricsRegistry,
    resolve_round: u64,
    /// Tokened requests in flight: token -> (component, enqueue time ns).
    pending_replies: HashMap<u32, (String, u64)>,
    next_chan: u32,
    next_token: u32,
    dirty: bool,
    strategy: ResolutionStrategy,
    /// The constraint-resolution engine: wiring index + memoized nodes +
    /// sweep cursor + internal admission, behind one pluggable surface.
    resolver: Box<dyn Resolver>,
    /// Components currently `Unsatisfied` (the activation sweep's work
    /// list), maintained on every state transition.
    unsatisfied: BTreeSet<Rc<str>>,
    /// Cached global view. Lifecycle flips are applied in place; structural
    /// changes (register/remove/mode switch) set `view_dirty` for a full
    /// rebuild at the next refresh.
    view_cache: SystemView,
    /// Name → index into `view_cache.components`, rebuilt with the view.
    view_index: HashMap<Rc<str>, usize>,
    /// Set by every *structural* change to the view's contents.
    view_dirty: bool,
    /// Restart/quarantine bookkeeping for faulted components.
    supervisor: Supervisor,
    /// Response-time analysis tuning for the `ResponseTime` engine.
    rta_params: RtaParams,
    /// Admit whole arrival batches in one RTA pass per CPU when the engine
    /// supports it (opt-in; see [`Drcr::set_batched_admission`]).
    batched_admission: bool,
    /// Kernel task → owning component, for O(faulted) supervision scans.
    task_names: BTreeMap<TaskId, Rc<str>>,
    self_ref: Weak<RefCell<Drcr>>,
}

impl fmt::Debug for Drcr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Drcr")
            .field("components", &self.components.len())
            .field("reserved", &self.ledger.len())
            .finish()
    }
}

impl Drcr {
    /// Creates the executive with the default internal resolver
    /// (utilization cap 1.0).
    pub fn new_shared(kernel: Rc<RefCell<Kernel>>) -> Rc<RefCell<Drcr>> {
        Self::with_resolver(kernel, Box::new(UtilizationResolver::default()))
    }

    /// Creates the executive with a custom internal resolving service.
    pub fn with_resolver(
        kernel: Rc<RefCell<Kernel>>,
        internal: Box<dyn ResolvingService>,
    ) -> Rc<RefCell<Drcr>> {
        let cpu_count = kernel.borrow().cpu_count();
        let internal_policy: Rc<dyn ResolvingService> = Rc::from(internal);
        let resolver: Box<dyn Resolver> = Box::new(ReactiveResolver::new(
            AdmissionPolicy::Service(internal_policy.clone()),
        ));
        let drcr = Rc::new(RefCell::new(Drcr {
            kernel,
            components: BTreeMap::new(),
            ledger: AdmissionLedger::new(cpu_count),
            internal_policy,
            bridge: BridgeMode::AsyncPoll,
            enforce_budgets: false,
            transitions: Vec::new(),
            events: EventSink::new(EVENT_RING_CAPACITY),
            bridge_events: EventSink::new(EVENT_RING_CAPACITY),
            metrics: MetricsRegistry::new(),
            resolve_round: 0,
            pending_replies: HashMap::new(),
            next_chan: 0,
            next_token: 0,
            dirty: false,
            strategy: ResolutionStrategy::default(),
            resolver,
            unsatisfied: BTreeSet::new(),
            view_cache: SystemView::new(cpu_count, Vec::new()),
            view_index: HashMap::new(),
            view_dirty: false,
            supervisor: Supervisor::new(),
            rta_params: RtaParams::default(),
            batched_admission: false,
            task_names: BTreeMap::new(),
            self_ref: Weak::new(),
        }));
        drcr.borrow_mut().self_ref = Rc::downgrade(&drcr);
        drcr
    }

    /// Sets the intra-component bridge mode used for future activations
    /// (the ablation hook; default [`BridgeMode::AsyncPoll`]).
    pub fn set_bridge_mode(&mut self, bridge: BridgeMode) {
        self.bridge = bridge;
    }

    /// When enabled, future activations of periodic components get a
    /// kernel-enforced per-cycle execution budget of `cpuusage x period`,
    /// making the declared claim binding (see [`crate::enforce`]).
    pub fn set_budget_enforcement(&mut self, on: bool) {
        self.enforce_budgets = on;
    }

    /// Selects the constraint-resolution engine (differential-testing and
    /// benchmarking hook; the default is
    /// [`ResolutionStrategy::Incremental`]). Rebuilds the engine, replays
    /// the current component world into it, and conservatively marks
    /// everything for re-checking at the next resolve round.
    pub fn set_resolution_strategy(&mut self, strategy: ResolutionStrategy) {
        self.strategy = strategy;
        self.rebuild_resolver();
    }

    /// Tunes the response-time analysis backing
    /// [`ResolutionStrategy::ResponseTime`] (container overhead and
    /// blocking term; the defaults model this kernel's cost constants).
    pub fn set_rta_params(&mut self, params: RtaParams) {
        self.rta_params = params;
        self.rebuild_resolver();
    }

    /// Opts into batched arrival admission: when several components wait on
    /// the same resolve round under [`ResolutionStrategy::ResponseTime`]
    /// (and no customized resolvers are registered), the whole batch is
    /// admitted with **one** response-time fixed-point pass per CPU instead
    /// of one per component. Admit/reject outcomes are provably equal to
    /// sequential admission (the engine falls back to per-candidate
    /// analysis whenever single-pass equivalence cannot be guaranteed), but
    /// the event *order* differs: wiring diagnoses for the batch precede
    /// its admission verdicts, and one [`DrcrEvent::AdmissionAnalysis`] per
    /// CPU stands for the whole batch.
    pub fn set_batched_admission(&mut self, on: bool) {
        self.batched_admission = on;
    }

    /// Constructs the engine for the current strategy and replays the
    /// registered world into it. Called on strategy/params changes; the
    /// fresh engine starts with every component marked dirty, which is
    /// event-safe (a sweep over satisfied components emits nothing).
    fn rebuild_resolver(&mut self) {
        let policy = match self.strategy {
            ResolutionStrategy::ResponseTime => {
                AdmissionPolicy::ResponseTime(RtaResolver::new(self.rta_params))
            }
            _ => AdmissionPolicy::Service(self.internal_policy.clone()),
        };
        let mut resolver: Box<dyn Resolver> = match self.strategy {
            ResolutionStrategy::NaiveReference => Box::new(NaiveResolver::new(policy)),
            _ => Box::new(ReactiveResolver::new(policy)),
        };
        for (name, rec) in &self.components {
            resolver.on_registered(name, &rec.descriptor);
            if rec.state != ComponentState::Installed {
                resolver.on_state_changed(
                    name,
                    rec.descriptor.task.cpu(),
                    ComponentState::Installed,
                    rec.state,
                );
            }
        }
        resolver.seed_all();
        self.resolver = resolver;
    }

    /// Sets the supervision config applied to components that have no
    /// per-component config (the default is fail-stop:
    /// [`crate::supervise::RestartPolicy::Never`]).
    pub fn set_default_supervision(&mut self, config: SupervisionConfig) {
        self.supervisor.set_default(config);
    }

    /// Sets one component's supervision config (restart policy plus
    /// optional flap-quarantine window). Takes effect at its next fault.
    pub fn set_supervision(&mut self, name: &str, config: SupervisionConfig) {
        self.supervisor.set_config(name, config);
    }

    /// Whether the supervisor has quarantined `name` (the component also
    /// shows as [`ComponentState::Disabled`]; re-enable clears it).
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.supervisor.is_quarantined(name)
    }

    /// The recorded cause of a quarantine, while one is in force — the
    /// typed evidence behind the verdict (fault policy, enforcement action
    /// or stochastic-contract violation).
    pub fn quarantine_reason(&self, name: &str) -> Option<&str> {
        self.supervisor.quarantine_reason(name)
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Registers a component with the executive (normally driven by service
    /// events; callable directly for embedded use).
    ///
    /// # Errors
    ///
    /// [`DrcrError::DuplicateComponent`] — component names are globally
    /// unique (§2.3).
    pub fn register_component(
        &mut self,
        descriptor: ComponentDescriptor,
        factory: Rc<dyn Fn() -> Box<dyn RtLogic>>,
        bundle: Option<BundleId>,
    ) -> Result<(), DrcrError> {
        let id: Rc<str> = Rc::from(descriptor.name.as_str());
        if self.components.contains_key(&*id) {
            return Err(DrcrError::DuplicateComponent(id.to_string()));
        }
        let initial = if descriptor.enabled {
            ComponentState::Unsatisfied
        } else {
            ComponentState::Disabled
        };
        self.record_transition(
            &id,
            ComponentState::Installed,
            initial,
            "descriptor registered",
        );
        // A fresh registration starts inactive in the engine; it cannot
        // break any running consumer (it only *adds* a provider), so no
        // dirty-set seeding happens — the engine just refreshes the stale
        // wiring memos of the new provider's consumers.
        self.resolver.on_registered(&id, &descriptor);
        self.resolver.on_state_changed(
            &id,
            descriptor.task.cpu(),
            ComponentState::Installed,
            initial,
        );
        if initial == ComponentState::Unsatisfied {
            self.unsatisfied.insert(id.clone());
        }
        self.components.insert(
            id.clone(),
            ComponentRecord {
                base_descriptor: descriptor.clone(),
                descriptor,
                factory,
                state: initial,
                bundle,
                task: None,
                mgmt: None,
                cmd_mbx: None,
                reply_mbx: None,
                providers: Vec::new(),
                current_mode: crate::model::BASE_MODE.to_string(),
                reply_buffer: HashMap::new(),
            },
        );
        self.note(DrcrEvent::Registered {
            component: id.to_string(),
        });
        self.view_dirty = true;
        self.dirty = true;
        Ok(())
    }

    /// Removes a component: deactivates it if needed, destroys its record.
    ///
    /// # Errors
    ///
    /// [`DrcrError::NoSuchComponent`].
    pub fn remove_component(&mut self, name: &str, fw: &mut Framework) -> Result<(), DrcrError> {
        if !self.components.contains_key(name) {
            return Err(DrcrError::NoSuchComponent(name.to_string()));
        }
        let state = self.components[name].state;
        if state.holds_admission() {
            self.deactivate(name, fw, ComponentState::Destroyed, "component removed")?;
        } else {
            self.record_transition(name, state, ComponentState::Destroyed, "component removed");
        }
        if let Some(rec) = self.components.remove(name) {
            // Mode switches preserve ports, so either descriptor describes
            // the indexed entries.
            self.resolver.on_removed(name, &rec.descriptor);
        }
        self.unsatisfied.remove(name);
        self.supervisor.clear(name);
        self.view_dirty = true;
        self.dirty = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Current lifecycle state of a component.
    pub fn state_of(&self, name: &str) -> Option<ComponentState> {
        self.components.get(name).map(|r| r.state)
    }

    /// Names of all registered components, sorted.
    pub fn component_names(&self) -> Vec<String> {
        self.components.keys().map(|k| k.to_string()).collect()
    }

    /// The providers chosen for a component's inports at activation.
    pub fn providers_of(&self, name: &str) -> Option<&[(String, String)]> {
        self.components.get(name).map(|r| r.providers.as_slice())
    }

    /// The full transition log, oldest first.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The typed executive event log (resolve rounds, admission verdicts,
    /// wiring diagnoses, cascades, mode switches, rollbacks), newest-bounded.
    pub fn events(&self) -> &TraceRing<DrcrEvent> {
        self.events.ring()
    }

    /// The management-bridge event log (command enqueues, reply drains and
    /// latencies).
    pub fn bridge_events(&self) -> &TraceRing<BridgeEvent> {
        self.bridge_events.ring()
    }

    /// Registers a live tap on executive events; it sees every event, even
    /// ones later evicted from the bounded ring.
    pub fn add_event_subscriber(&mut self, subscriber: Box<dyn TraceSubscriber<DrcrEvent>>) {
        self.events.subscribe(subscriber);
    }

    /// Registers a live tap on bridge events.
    pub fn add_bridge_subscriber(&mut self, subscriber: Box<dyn TraceSubscriber<BridgeEvent>>) {
        self.bridge_events.subscribe(subscriber);
    }

    /// Executive events concerning one component.
    pub fn events_for<'a>(
        &'a self,
        component: &'a str,
    ) -> impl Iterator<Item = &'a Timestamped<DrcrEvent>> + 'a {
        self.events
            .iter()
            .filter(move |e| e.event.component() == Some(component))
    }

    /// Admission verdicts only (both admissions and rejections), in order.
    pub fn admission_verdicts(&self) -> impl Iterator<Item = &Timestamped<DrcrEvent>> {
        self.events.iter().filter(|e| {
            matches!(
                e.event,
                DrcrEvent::AdmissionVerdict { .. } | DrcrEvent::GroupAbandoned { .. }
            )
        })
    }

    /// Departure-cascade deactivations only, in order.
    pub fn cascade_events(&self) -> impl Iterator<Item = &Timestamped<DrcrEvent>> {
        self.events
            .iter()
            .filter(|e| matches!(e.event, DrcrEvent::CascadeDeactivation { .. }))
    }

    /// The executive's metrics registry (counters, gauges, histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A deterministic snapshot of the executive's metrics.
    pub fn metrics_report(&self) -> MetricsReport {
        self.metrics.snapshot()
    }

    /// The admission ledger (reserved budgets).
    pub fn ledger(&self) -> &AdmissionLedger {
        &self.ledger
    }

    /// Snapshot of the global real-time context.
    ///
    /// Served from the executive's cached view when it is current (the
    /// common case); rebuilt on demand after an invalidating transition.
    pub fn system_view(&self) -> SystemView {
        if self.view_dirty {
            self.build_view()
        } else {
            self.view_cache.clone()
        }
    }

    /// Builds a fresh view from the component table. Interned names are
    /// shared with the table, so a rebuild allocates only the list itself.
    fn build_view(&self) -> SystemView {
        SystemView::new(
            self.ledger.cpu_count(),
            self.components
                .iter()
                .map(|(id, r)| {
                    ComponentInfo::from_contract_interned(
                        id.clone(),
                        r.state,
                        &r.descriptor.task,
                        r.descriptor.cpu_usage.fraction(),
                    )
                })
                .collect(),
        )
    }

    /// Re-derives the cached view if a *structural* change invalidated it
    /// (lifecycle flips are applied in place and never get here).
    fn refresh_view(&mut self) {
        if self.view_dirty {
            self.view_cache = self.build_view();
            self.view_index = self
                .view_cache
                .components
                .iter()
                .enumerate()
                .map(|(i, c)| (c.name.clone(), i))
                .collect();
            self.view_dirty = false;
            self.metrics.count("drcr.view.rebuilds", 1);
        }
    }

    /// Applies one lifecycle flip to the cached view in place (O(1), cache
    /// invalidation only when the admission-holding status changes). A
    /// structurally-dirty view skips the update — the pending rebuild will
    /// pick the state up from the component table.
    fn view_set_state(&mut self, name: &str, state: ComponentState) {
        if self.view_dirty {
            return;
        }
        match self.view_index.get(name) {
            Some(&idx) => {
                self.view_cache.set_state_at(idx, state);
                self.metrics.count("drcr.view.updates", 1);
            }
            // Unknown to the cached view (never refreshed since this
            // component registered): fall back to a rebuild.
            None => self.view_dirty = true,
        }
    }

    /// The single state-transition bottleneck: updates the record, the
    /// activation work-list, the engine's constraint nodes and the cached
    /// view. Callers record the transition log entry and events themselves.
    fn apply_state(&mut self, name: &Rc<str>, to: ComponentState) {
        let rec = self.components.get_mut(&**name).expect("present");
        let from = rec.state;
        if from == to {
            return;
        }
        rec.state = to;
        let cpu = rec.descriptor.task.cpu();
        if to == ComponentState::Unsatisfied {
            self.unsatisfied.insert(name.clone());
        } else {
            self.unsatisfied.remove(&**name);
        }
        self.resolver.on_state_changed(name, cpu, from, to);
        self.view_set_state(&name.clone(), to);
    }

    /// The kernel task id behind an active component.
    pub fn task_of(&self, name: &str) -> Option<TaskId> {
        self.components.get(name).and_then(|r| r.task)
    }

    /// The bundle that deployed a component, when it came through one.
    pub fn bundle_of(&self, name: &str) -> Option<BundleId> {
        self.components.get(name).and_then(|r| r.bundle)
    }

    /// A copy of a component's declared contract. Prefer
    /// [`Drcr::descriptor_ref`] when a borrow suffices.
    pub fn descriptor_of(&self, name: &str) -> Option<ComponentDescriptor> {
        self.descriptor_ref(name).cloned()
    }

    /// The contract currently in force (mode-substituted), borrowed.
    pub fn descriptor_ref(&self, name: &str) -> Option<&ComponentDescriptor> {
        self.components.get(name).map(|r| &r.descriptor)
    }

    /// The operating mode a component currently runs under. Prefer
    /// [`Drcr::current_mode_ref`] when a borrow suffices.
    pub fn current_mode(&self, name: &str) -> Option<String> {
        self.current_mode_ref(name).map(str::to_string)
    }

    /// The current operating-mode name, borrowed.
    pub fn current_mode_ref(&self, name: &str) -> Option<&str> {
        self.components.get(name).map(|r| r.current_mode.as_str())
    }

    /// Releases one cycle of an aperiodic component (the manual trigger;
    /// mailbox inports trigger automatically on arrival).
    ///
    /// # Errors
    ///
    /// [`DrcrError::NoSuchComponent`] / [`DrcrError::Management`] for
    /// periodic or inactive components.
    pub fn trigger_component(&mut self, name: &str) -> Result<(), DrcrError> {
        let rec = self
            .components
            .get(name)
            .ok_or_else(|| DrcrError::NoSuchComponent(name.to_string()))?;
        if rec.descriptor.task.is_periodic() {
            return Err(DrcrError::Management(format!(
                "component `{name}` is periodic; only aperiodic components are triggered"
            )));
        }
        let Some(task) = rec.task else {
            return Err(DrcrError::Management(format!(
                "component `{name}` is not active (state {:?})",
                rec.state
            )));
        };
        self.kernel.borrow_mut().trigger(task)?;
        Ok(())
    }

    /// Switches a component to one of its declared operating modes (or back
    /// to [`crate::model::BASE_MODE`]).
    ///
    /// An active component is deactivated, its contract re-written with the
    /// mode's frequency/claim/priority, and re-admitted on the next resolve
    /// pass — the mode switch goes through the same admission gate as a
    /// fresh deployment, so a switch the system cannot afford leaves the
    /// component `Unsatisfied` rather than overcommitting the CPU.
    ///
    /// Switching a *suspended* component implicitly resumes it (the switch
    /// is a reconfiguration epoch: the old instance is torn down and a
    /// fresh one admitted under the new contract).
    ///
    /// # Errors
    ///
    /// [`DrcrError::NoSuchComponent`] for unknown components,
    /// [`DrcrError::Management`] for unknown modes or aperiodic components.
    pub fn switch_mode(
        &mut self,
        name: &str,
        mode_name: &str,
        fw: &mut Framework,
    ) -> Result<(), DrcrError> {
        let rec = self
            .components
            .get(name)
            .ok_or_else(|| DrcrError::NoSuchComponent(name.to_string()))?;
        if rec.current_mode == mode_name {
            return Ok(());
        }
        // Modes are alternatives to the *base* contract, not cumulative
        // rewrites, so lookup and substitution both run against the
        // pristine registered descriptor.
        let mode = rec.base_descriptor.mode(mode_name).ok_or_else(|| {
            DrcrError::Management(format!("component `{name}` has no mode `{mode_name}`"))
        })?;
        let was_running = rec.state.holds_admission();
        if was_running {
            self.deactivate(
                name,
                fw,
                ComponentState::Unsatisfied,
                &format!("mode switch to `{mode_name}`"),
            )?;
        }
        let rec = self.components.get_mut(name).expect("present");
        rec.descriptor = rec.base_descriptor.with_mode(&mode);
        rec.current_mode = mode_name.to_string();
        // A mode substitutes frequency/priority/claim, never ports — the
        // wiring index stays valid across the switch.
        debug_assert!(
            rec.descriptor.inports == rec.base_descriptor.inports
                && rec.descriptor.outports == rec.base_descriptor.outports,
            "mode substitution must preserve ports"
        );
        let descriptor = rec.descriptor.clone();
        // The contract node changed: drop this component's memoized wiring
        // and admission results (its ports are unchanged, but its claim,
        // frequency and priority are not).
        self.resolver.on_contract_changed(name, &descriptor);
        // The cached view takes the rewritten contract in place.
        if !self.view_dirty {
            match self.view_index.get(name).copied() {
                Some(idx) => {
                    let (key, rec) = self.components.get_key_value(name).expect("present");
                    let info = ComponentInfo::from_contract_interned(
                        key.clone(),
                        rec.state,
                        &rec.descriptor.task,
                        rec.descriptor.cpu_usage.fraction(),
                    );
                    self.view_cache.replace_at(idx, info);
                    self.metrics.count("drcr.view.updates", 1);
                }
                None => self.view_dirty = true,
            }
        }
        self.note(DrcrEvent::ModeSwitch {
            component: name.to_string(),
            mode: mode_name.to_string(),
            frequency_hz: mode.frequency_hz,
            cpu_usage: mode.cpu_usage,
        });
        self.metrics.count("drcr.mode_switches", 1);
        self.dirty = true;
        Ok(())
    }

    /// Re-writes a component's CPU claim to a *measured* value — the
    /// stochastic-contract refinement loop (see [`crate::contracts`]).
    ///
    /// Like a mode switch, the rewrite is a reconfiguration epoch: a
    /// running component is deactivated and re-admitted on the next
    /// resolve pass against the refined claim, so the refinement goes
    /// through the same admission gate as a fresh deployment. Unlike a
    /// mode switch, only `cpuusage` changes; frequency, priority and ports
    /// stay as declared. The *base* descriptor is untouched: a later mode
    /// switch re-derives from the pristine registered contract and
    /// overrides any refinement (the estimator simply re-learns under the
    /// new mode).
    ///
    /// `samples` is the evidence size recorded in the
    /// [`DrcrEvent::ClaimRefined`] event.
    ///
    /// # Errors
    ///
    /// [`DrcrError::NoSuchComponent`] for unknown components,
    /// [`DrcrError::Management`] for invalid claims.
    pub fn refine_claim(
        &mut self,
        name: &str,
        refined: f64,
        samples: u64,
        fw: &mut Framework,
    ) -> Result<(), DrcrError> {
        let rec = self
            .components
            .get(name)
            .ok_or_else(|| DrcrError::NoSuchComponent(name.to_string()))?;
        let refined_claim = CpuUsage::new(refined)
            .map_err(|e| DrcrError::Management(format!("refined claim for `{name}`: {e}")))?;
        let declared = rec.descriptor.cpu_usage.fraction();
        if declared == refined {
            return Ok(());
        }
        let was_running = rec.state.holds_admission();
        if was_running {
            self.deactivate(
                name,
                fw,
                ComponentState::Unsatisfied,
                &format!("claim refinement to {refined:.3}"),
            )?;
        }
        let rec = self.components.get_mut(name).expect("present");
        rec.descriptor.cpu_usage = refined_claim;
        let descriptor = rec.descriptor.clone();
        // The contract node changed: drop this component's memoized wiring
        // and admission results, and invalidate the CPU's admission epoch
        // so peers' memoized rejections are re-evaluated against the
        // reclaimed capacity.
        self.resolver.on_contract_changed(name, &descriptor);
        if !self.view_dirty {
            match self.view_index.get(name).copied() {
                Some(idx) => {
                    let (key, rec) = self.components.get_key_value(name).expect("present");
                    let info = ComponentInfo::from_contract_interned(
                        key.clone(),
                        rec.state,
                        &rec.descriptor.task,
                        rec.descriptor.cpu_usage.fraction(),
                    );
                    self.view_cache.replace_at(idx, info);
                    self.metrics.count("drcr.view.updates", 1);
                }
                None => self.view_dirty = true,
            }
        }
        self.note(DrcrEvent::ClaimRefined {
            component: name.to_string(),
            declared,
            refined,
            samples,
        });
        self.metrics.count("drcr.contracts.refinements", 1);
        self.dirty = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // The event-driven resolve loop
    // ------------------------------------------------------------------

    /// Drains framework events and re-runs constraint resolution.
    ///
    /// This is the paper's "DRCR receives notifications from the OSGi
    /// framework for component state changes; these notifications can
    /// trigger re-configuration activities".
    pub fn process(&mut self, fw: &mut Framework) {
        self.supervise(fw);
        for event in fw.drain_events() {
            let FrameworkEvent::Service(e) = event else {
                continue;
            };
            let is_component = e.interfaces.iter().any(|i| i == COMPONENT_SERVICE);
            let is_resolver = e.interfaces.iter().any(|i| i == RESOLVER_SERVICE);
            match (e.kind, is_component, is_resolver) {
                (ServiceEventKind::Registered, true, _) => {
                    if let Some(provider) = fw.registry().get::<ComponentProvider>(e.service) {
                        let bundle = match e.properties.get(osgi::registry::SERVICE_BUNDLE) {
                            Some(PropValue::Int(i)) => fw.bundle_by_id(*i as u64),
                            _ => None,
                        };
                        let result = self.register_component(
                            provider.descriptor().clone(),
                            provider.factory(),
                            bundle,
                        );
                        if let Err(err) = result {
                            self.note(DrcrEvent::RegistrationRefused {
                                reason: err.to_string(),
                            });
                        }
                    }
                }
                (ServiceEventKind::Unregistering, true, _) => {
                    if let Some(PropValue::Str(name)) = e.properties.get(PROP_COMPONENT_NAME) {
                        let name = name.clone();
                        let _ = self.remove_component(&name, fw);
                    }
                }
                (_, _, true) => {
                    // Resolver arrived or departed: re-resolve.
                    self.dirty = true;
                }
                _ => {}
            }
        }
        if self.dirty {
            self.dirty = false;
            self.resolve_all(fw);
        }
    }

    /// Polls the kernel for component tasks parked in
    /// [`TaskState::Faulted`] and applies each component's restart policy:
    /// quarantine (→ `Disabled`, reservation released) or restart
    /// (→ `Unsatisfied`, re-admitted through normal resolution, after the
    /// backoff delay if any). Also releases backoff holds whose virtual-time
    /// deadline has passed. Runs at the top of every [`Drcr::process`], so
    /// fault reaction latency is one management-poll period.
    fn supervise(&mut self, fw: &mut Framework) {
        let now = self.kernel.borrow().now();
        // Collect first: `note` and `deactivate` need the kernel un-borrowed.
        // The kernel indexes its faulted tasks, so this poll is O(faulted),
        // not O(components); sorting by component name preserves the
        // reaction order of the old full-table scan.
        let faulted: Vec<(Rc<str>, String, u64)> = {
            let kernel = self.kernel.borrow();
            let mut list: Vec<(Rc<str>, String, u64)> = kernel
                .faulted_tasks()
                .filter_map(|task| {
                    let name = self.task_names.get(&task)?;
                    let cause = kernel
                        .task_fault_cause(task)
                        .unwrap_or("unknown cause")
                        .to_string();
                    let total = kernel.task_faults(task).unwrap_or(1);
                    Some((name.clone(), cause, total))
                })
                .collect();
            list.sort_by(|a, b| a.0.cmp(&b.0));
            list
        };
        for (name, cause, total) in faulted {
            self.note(DrcrEvent::ComponentFault {
                component: name.to_string(),
                cause: cause.clone(),
                total_faults: total,
            });
            self.metrics.count("drcr.supervision.faults", 1);
            match self.supervisor.on_fault(&name, now) {
                FaultDecision::Quarantine { reason } => {
                    let reason = format!("fault ({cause}); {reason}");
                    let _ = self.deactivate(&name, fw, ComponentState::Disabled, &reason);
                    // Upgrade the recorded evidence to include the fault
                    // cause (on_fault stored only the policy verdict).
                    self.supervisor.quarantine(&name, &reason);
                    self.note(DrcrEvent::Quarantined {
                        component: name.to_string(),
                        reason,
                    });
                    self.metrics.count("drcr.supervision.quarantines", 1);
                }
                FaultDecision::Restart { attempt, delay } => {
                    let _ = self.deactivate(
                        &name,
                        fw,
                        ComponentState::Unsatisfied,
                        &format!("fault ({cause}); restart #{attempt}"),
                    );
                    self.note(DrcrEvent::RestartScheduled {
                        component: name.to_string(),
                        attempt,
                        delay_ns: delay.as_nanos(),
                    });
                    self.metrics.count("drcr.supervision.restarts", 1);
                    if delay == SimDuration::ZERO {
                        // Deactivation marked the executive dirty; the next
                        // resolve pass re-admits the component.
                        self.note(DrcrEvent::RestartAttempt {
                            component: name.to_string(),
                            attempt,
                        });
                    } else {
                        self.metrics.observe(
                            "drcr.supervision.backoff_ns",
                            delay.as_nanos(),
                            Histogram::latency_ns,
                        );
                        self.supervisor.hold(name.clone(), now + delay, attempt);
                    }
                }
            }
        }
        for (name, attempt) in self.supervisor.release_expired(now) {
            // The component may have been removed, disabled or manually
            // re-activated while the hold was pending.
            if self
                .components
                .get(&*name)
                .is_some_and(|r| r.state == ComponentState::Unsatisfied)
            {
                self.note(DrcrEvent::RestartAttempt {
                    component: name.to_string(),
                    attempt,
                });
                self.dirty = true;
            }
        }
    }

    /// Runs deactivation cascades and activation attempts to a fixpoint.
    fn resolve_all(&mut self, fw: &mut Framework) {
        self.resolve_round += 1;
        let round = self.resolve_round;
        self.note(DrcrEvent::ResolveRoundStarted { round });
        self.refresh_view();
        let mut activations: u32 = 0;
        let mut deactivations: u32 = 0;
        let mut sweeps: u64 = 0;
        loop {
            sweeps += 1;
            let mut changed = false;

            // Deactivation sweep: running components whose functional
            // constraints may have broken fall back to Unsatisfied. The
            // engine nominates the candidates — the reactive engine walks
            // its dirty scope (only consumers of departed providers can
            // have broken), the naive reference re-visits every component.
            //
            // The engine is driven with a strictly ascending cursor rather
            // than draining its scope up front. A cascade seeds the
            // consumers of the component it just deactivated; a full-scan
            // reference visits those *this* sweep when they sort after the
            // current position and *next* sweep when they sort before it.
            // The cursor reproduces that order exactly, keeping the two
            // engines' event streams byte-identical.
            let mut cursor: Option<Rc<str>> = None;
            while let Some(name) = self.resolver.sweep_next(cursor.as_deref()) {
                cursor = Some(name.clone());
                if !self
                    .components
                    .get(&*name)
                    .is_some_and(|r| r.state.holds_admission())
                {
                    continue;
                }
                if self.cascade_check(&name, fw) {
                    deactivations += 1;
                    changed = true;
                }
            }

            // Activation sweep. Components behind a backoff hold stay out
            // until the supervisor releases them.
            let waiting: Vec<Rc<str>> = self
                .unsatisfied
                .iter()
                .filter(|n| !self.supervisor.is_held(n))
                .cloned()
                .collect();
            let batched = if self.batched_admission {
                self.try_activate_batch(&waiting, fw)
            } else {
                None
            };
            match batched {
                Some(n) => {
                    if n > 0 {
                        activations += n;
                        changed = true;
                    }
                }
                None => {
                    for name in waiting {
                        match self.try_activate(&name, fw) {
                            Ok(true) => {
                                activations += 1;
                                changed = true;
                            }
                            Ok(false) => {}
                            Err(err) => self.note(DrcrEvent::ActivationFailed {
                                component: name.to_string(),
                                reason: err.to_string(),
                            }),
                        }
                    }
                }
            }

            // Cyclically dependent components cannot activate one at a time
            // (each waits for the other). When the strict sweep stalls, try
            // co-activating a mutually-consistent group.
            if !changed {
                let group = self.try_activate_group(fw);
                if group > 0 {
                    activations += group;
                    changed = true;
                }
            }

            if !changed {
                break;
            }
        }
        self.note(DrcrEvent::ResolveRoundEnded {
            round,
            activations,
            deactivations,
        });
        self.metrics.count("drcr.resolve.rounds", 1);
        self.metrics
            .observe("drcr.resolve.sweeps", sweeps, Histogram::small_counts);
        if deactivations > 0 {
            self.metrics.observe(
                "drcr.cascade.width",
                deactivations as u64,
                Histogram::small_counts,
            );
        }
        self.update_admission_gauges();
    }

    /// Checks one component's functional constraints through the resolution
    /// engine, counting the work in the `drcr.wiring.*` metrics:
    /// `checks` for every query, `evals` vs `memo_hits` for whether the
    /// engine re-evaluated or replayed a memoized result, and
    /// `graph_builds` when it rebuilt a wiring graph from scratch (the
    /// naive reference does; the reactive engine never does).
    fn check_wiring(&mut self, name: &str, assume_active: &[Rc<str>]) -> WiringResult {
        self.metrics.count("drcr.wiring.checks", 1);
        let rec = &self.components[name];
        let check = self.resolver.check_wiring(&rec.descriptor, assume_active);
        if check.evaluated {
            self.metrics.count("drcr.wiring.evals", 1);
        } else {
            self.metrics.count("drcr.wiring.memo_hits", 1);
        }
        if check.graph_built {
            self.metrics.count("drcr.wiring.graph_builds", 1);
        }
        check.result
    }

    /// The internal non-functional verdict on one candidate, ruled by the
    /// engine's admission policy (the configured resolving service, or
    /// exact response-time analysis under
    /// [`ResolutionStrategy::ResponseTime`]). Callers must
    /// [`Drcr::refresh_view`] first. Returns the ruling resolver's name
    /// with the decision; an RTA ruling also emits a
    /// [`DrcrEvent::AdmissionAnalysis`] evidence event and feeds the
    /// candidate's computed WCRT into the `drcr.admission.wcrt_ns`
    /// histogram — a memoized ruling replays both identically, so the
    /// evidence stream is independent of cache behaviour.
    ///
    /// `memoize` lets the engine reuse a ruling computed against an
    /// equivalent view (same per-CPU admission epoch); pass `false` for
    /// one-off probes that must not populate the memo.
    fn internal_admit(&mut self, candidate: &ComponentInfo, memoize: bool) -> (String, Decision) {
        self.metrics.count("drcr.admission.checks", 1);
        let ruling = self.resolver.admit(candidate, &self.view_cache, memoize);
        if ruling.evaluated {
            self.metrics.count("drcr.admission.evals", 1);
        } else {
            self.metrics.count("drcr.admission.memo_hits", 1);
        }
        if let Some(analysis) = &ruling.analysis {
            if ruling.evaluated {
                self.metrics.count("drcr.admission.rta_passes", 1);
            }
            if let Some(wcrt) = analysis.wcrt_of(&candidate.name) {
                self.metrics
                    .observe("drcr.admission.wcrt_ns", wcrt, Histogram::latency_ns);
            }
            self.note(DrcrEvent::AdmissionAnalysis {
                component: candidate.name.to_string(),
                cpu: analysis.cpu,
                schedulable: analysis.schedulable,
                wcrts: analysis
                    .wcrts
                    .iter()
                    .map(|w| (w.name.clone(), w.wcrt_ns, w.deadline_ns))
                    .collect(),
            });
        }
        (ruling.resolver, ruling.decision)
    }

    /// Re-checks one running component during the deactivation sweep,
    /// cascading it back to `Unsatisfied` when its wiring broke. Returns
    /// `true` when it cascaded.
    fn cascade_check(&mut self, name: &Rc<str>, fw: &mut Framework) -> bool {
        if self.components[&**name].descriptor.inports.is_empty() {
            return false;
        }
        let Err(missing) = self.check_wiring(name, &[]) else {
            return false;
        };
        let reason = missing
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        self.note(DrcrEvent::CascadeDeactivation {
            component: name.to_string(),
            reason: reason.clone(),
        });
        self.metrics.count("drcr.cascades", 1);
        let _ = self.deactivate(name, fw, ComponentState::Unsatisfied, &reason);
        true
    }

    /// Optimistic group activation: finds the largest set of unsatisfied
    /// components that are functionally consistent *assuming each other
    /// active* (greatest fixpoint), admission-checks them, and activates
    /// the whole group. Returns the number of components activated.
    fn try_activate_group(&mut self, fw: &mut Framework) -> u32 {
        let mut assume: Vec<Rc<str>> = self
            .unsatisfied
            .iter()
            .filter(|n| !self.supervisor.is_held(n))
            .cloned()
            .collect();
        if assume.len() < 2 {
            return 0;
        }
        // Strike out members whose constraints fail even under the
        // assumption, until stable.
        loop {
            let before = assume.len();
            let mut keep: Vec<Rc<str>> = Vec::with_capacity(before);
            for name in &assume {
                if self.check_wiring(name, &assume).is_ok() {
                    keep.push(name.clone());
                }
            }
            assume = keep;
            if assume.len() == before {
                break;
            }
        }
        // A group of one would have activated in the strict sweep already.
        if assume.len() < 2 {
            return 0;
        }
        // Admission for every member, against the view as members join.
        for name in &assume {
            let candidate = {
                let rec = &self.components[&**name];
                ComponentInfo::from_contract_interned(
                    name.clone(),
                    rec.state,
                    &rec.descriptor.task,
                    rec.descriptor.cpu_usage.fraction(),
                )
            };
            self.refresh_view();
            let (resolver, verdict) = self.internal_admit(&candidate, true);
            if let Decision::Reject(reason) = verdict {
                self.note(DrcrEvent::GroupAbandoned {
                    component: name.to_string(),
                    resolver,
                    internal: true,
                    reason,
                });
                self.metrics.count("drcr.admission.rejections", 1);
                return 0;
            }
            for service_ref in fw.registry().find(RESOLVER_SERVICE, None) {
                let Some(handle) = fw.registry().get::<ResolverHandle>(service_ref.id()) else {
                    continue;
                };
                if let Decision::Reject(reason) = handle.0.admit(&candidate, &self.view_cache) {
                    let resolver = handle.0.name().to_string();
                    self.note(DrcrEvent::GroupAbandoned {
                        component: name.to_string(),
                        resolver,
                        internal: false,
                        reason,
                    });
                    self.metrics.count("drcr.admission.rejections", 1);
                    return 0;
                }
            }
        }
        self.note(DrcrEvent::GroupCoActivation {
            members: assume.iter().map(|s| s.to_string()).collect(),
        });
        let mut activated: u32 = 0;
        for name in assume.clone() {
            let providers = match self.check_wiring(&name, &assume) {
                Ok(p) => p,
                Err(_) => continue,
            };
            match self.activate(&name, fw, providers) {
                Ok(()) => activated += 1,
                Err(err) => self.note(DrcrEvent::ActivationFailed {
                    component: name.to_string(),
                    reason: format!("group member failed to activate: {err}"),
                }),
            }
        }
        activated
    }

    /// Attempts one activation; `Ok(true)` when the component went active.
    fn try_activate(&mut self, name: &Rc<str>, fw: &mut Framework) -> Result<bool, DrcrError> {
        if !self.components.contains_key(&**name) {
            return Err(DrcrError::NoSuchComponent(name.to_string()));
        }
        // Functional constraints (strict: providers must be Active now).
        let providers = match self.check_wiring(name, &[]) {
            Ok(p) => p,
            Err(missing) => {
                self.note(DrcrEvent::WiringUnsatisfied {
                    component: name.to_string(),
                    missing: missing
                        .iter()
                        .map(|m| m.to_string())
                        .collect::<Vec<_>>()
                        .join("; "),
                });
                return Ok(false);
            }
        };

        // Non-functional constraints: internal + every customized resolver.
        let candidate = {
            let rec = &self.components[&**name];
            ComponentInfo::from_contract_interned(
                name.clone(),
                rec.state,
                &rec.descriptor.task,
                rec.descriptor.cpu_usage.fraction(),
            )
        };
        self.refresh_view();
        let (resolver, verdict) = self.internal_admit(&candidate, true);
        let rejected = matches!(verdict, Decision::Reject(_));
        self.note(DrcrEvent::AdmissionVerdict {
            component: name.to_string(),
            resolver,
            internal: true,
            admitted: !rejected,
            reason: match verdict {
                Decision::Reject(reason) => reason,
                _ => String::new(),
            },
        });
        if rejected {
            self.metrics.count("drcr.admission.rejections", 1);
            return Ok(false);
        }
        for service_ref in fw.registry().find(RESOLVER_SERVICE, None) {
            let Some(handle) = fw.registry().get::<ResolverHandle>(service_ref.id()) else {
                continue;
            };
            let verdict = handle.0.admit(&candidate, &self.view_cache);
            let resolver = handle.0.name().to_string();
            let rejected = matches!(verdict, Decision::Reject(_));
            self.note(DrcrEvent::AdmissionVerdict {
                component: name.to_string(),
                resolver,
                internal: false,
                admitted: !rejected,
                reason: match verdict {
                    Decision::Reject(reason) => reason,
                    _ => String::new(),
                },
            });
            if rejected {
                self.metrics.count("drcr.admission.rejections", 1);
                return Ok(false);
            }
        }

        self.activate(name, fw, providers)?;
        Ok(true)
    }

    /// Batched admission of one arrival wave: screens every waiting
    /// component's wiring, then asks the engine to admit all survivors in
    /// **one** analysis pass — one RTA fixed-point per CPU instead of one
    /// per candidate (see [`crate::rta::RtaResolver::analyze_batch`] for
    /// the soundness argument).
    ///
    /// Returns `None` — before emitting any event — when batching does not
    /// apply: fewer than two candidates, or customized resolver services
    /// registered (they rule per-candidate and must see the view grow
    /// member by member). The caller then runs the sequential sweep.
    /// Otherwise it completes the whole activation pass, falling back to
    /// per-candidate admission internally when the engine declines the
    /// batch (mixed task models, an unschedulable CPU, or a policy without
    /// batch support).
    ///
    /// Event attribution in the batched path: one
    /// [`DrcrEvent::AdmissionAnalysis`] per CPU, carried by that CPU's
    /// last candidate (whose analysis the batch pass actually ran); every
    /// admitted candidate still gets its own `AdmissionVerdict`.
    fn try_activate_batch(&mut self, waiting: &[Rc<str>], fw: &mut Framework) -> Option<u32> {
        if waiting.len() < 2 {
            return None;
        }
        if !fw.registry().find(RESOLVER_SERVICE, None).is_empty() {
            return None;
        }
        self.refresh_view();

        // Wiring screen (strict: providers must be Active now). A
        // candidate failing here stays Unsatisfied; if this wave activates
        // a provider it needs, the next sweep picks it up.
        type Passer = (Rc<str>, Vec<(String, String)>);
        let mut passers: Vec<Passer> = Vec::new();
        for name in waiting {
            match self.check_wiring(name, &[]) {
                Ok(providers) => passers.push((name.clone(), providers)),
                Err(missing) => self.note(DrcrEvent::WiringUnsatisfied {
                    component: name.to_string(),
                    missing: missing
                        .iter()
                        .map(|m| m.to_string())
                        .collect::<Vec<_>>()
                        .join("; "),
                }),
            }
        }

        let candidates: Vec<ComponentInfo> = passers
            .iter()
            .map(|(name, _)| {
                let rec = &self.components[&**name];
                ComponentInfo::from_contract_interned(
                    name.clone(),
                    rec.state,
                    &rec.descriptor.task,
                    rec.descriptor.cpu_usage.fraction(),
                )
            })
            .collect();
        let batch = if candidates.len() > 1 {
            self.resolver.admit_batch(&candidates, &self.view_cache)
        } else {
            None
        };

        let mut activated: u32 = 0;
        if let Some(batch) = batch {
            self.metrics.count("drcr.admission.batches", 1);
            self.metrics
                .count("drcr.admission.checks", candidates.len() as u64);
            self.metrics
                .count("drcr.admission.rta_passes", batch.analyses.len() as u64);
            let by_cpu: HashMap<u32, &RtaAnalysis> =
                batch.analyses.iter().map(|a| (a.cpu, a)).collect();
            let mut last_of_cpu: HashMap<u32, &str> = HashMap::new();
            for c in &candidates {
                last_of_cpu.insert(c.cpu, &c.name);
            }
            // Every candidate's WCRT is present in its CPU's single
            // analysis (the batch pass models them all admitted), so the
            // histogram sees the same observations as K sequential passes.
            for c in &candidates {
                if let Some(wcrt) = by_cpu.get(&c.cpu).and_then(|a| a.wcrt_of(&c.name)) {
                    self.metrics
                        .observe("drcr.admission.wcrt_ns", wcrt, Histogram::latency_ns);
                }
            }
            for (name, providers) in passers {
                let cpu = self.components[&*name].descriptor.task.cpu();
                if last_of_cpu.get(&cpu).is_some_and(|n| *n == &*name) {
                    let analysis = by_cpu[&cpu];
                    self.note(DrcrEvent::AdmissionAnalysis {
                        component: name.to_string(),
                        cpu: analysis.cpu,
                        schedulable: analysis.schedulable,
                        wcrts: analysis
                            .wcrts
                            .iter()
                            .map(|w| (w.name.clone(), w.wcrt_ns, w.deadline_ns))
                            .collect(),
                    });
                }
                self.note(DrcrEvent::AdmissionVerdict {
                    component: name.to_string(),
                    resolver: batch.resolver.clone(),
                    internal: true,
                    admitted: true,
                    reason: String::new(),
                });
                match self.activate(&name, fw, providers) {
                    Ok(()) => activated += 1,
                    Err(err) => self.note(DrcrEvent::ActivationFailed {
                        component: name.to_string(),
                        reason: err.to_string(),
                    }),
                }
            }
        } else {
            // Engine declined the batch: exact sequential admission over
            // the screened candidates.
            for (name, providers) in passers {
                self.refresh_view();
                let candidate = {
                    let rec = &self.components[&*name];
                    ComponentInfo::from_contract_interned(
                        name.clone(),
                        rec.state,
                        &rec.descriptor.task,
                        rec.descriptor.cpu_usage.fraction(),
                    )
                };
                let (resolver, verdict) = self.internal_admit(&candidate, true);
                let rejected = matches!(verdict, Decision::Reject(_));
                self.note(DrcrEvent::AdmissionVerdict {
                    component: name.to_string(),
                    resolver,
                    internal: true,
                    admitted: !rejected,
                    reason: match verdict {
                        Decision::Reject(reason) => reason,
                        _ => String::new(),
                    },
                });
                if rejected {
                    self.metrics.count("drcr.admission.rejections", 1);
                    continue;
                }
                match self.activate(&name, fw, providers) {
                    Ok(()) => activated += 1,
                    Err(err) => self.note(DrcrEvent::ActivationFailed {
                        component: name.to_string(),
                        reason: err.to_string(),
                    }),
                }
            }
        }
        Some(activated)
    }

    /// Performs the activation: channels, RT task, admission, management
    /// service registration, lifecycle transition.
    fn activate(
        &mut self,
        name: &str,
        fw: &mut Framework,
        providers: Vec<(String, String)>,
    ) -> Result<(), DrcrError> {
        let (descriptor, factory, from_state) = {
            let rec = &self.components[name];
            (rec.descriptor.clone(), rec.factory.clone(), rec.state)
        };
        debug_assert!(from_state.can_transition(ComponentState::Active));

        let mut kernel = self.kernel.borrow_mut();

        // Everything allocated below is recorded so a mid-activation
        // failure (e.g. a channel-shape conflict with an unrelated kernel
        // object) rolls back cleanly instead of leaking.
        enum Created {
            Shm(String),
            Mbx(String),
            Fifo(String),
        }
        let mut created: Vec<Created> = Vec::new();
        macro_rules! rollback {
            ($kernel:expr, $err:expr) => {{
                let err: DrcrError = $err.into();
                for c in created.into_iter().rev() {
                    match c {
                        Created::Shm(n) => {
                            let _ = $kernel.shm_mut().free(&n);
                        }
                        Created::Mbx(n) => {
                            let _ = $kernel.mailboxes_mut().delete(&n);
                        }
                        Created::Fifo(n) => {
                            let _ = $kernel.fifos_mut().destroy(&n);
                        }
                    }
                }
                let now = $kernel.now();
                self.events.emit(
                    now,
                    DrcrEvent::Rollback {
                        component: name.to_string(),
                        reason: err.to_string(),
                    },
                );
                self.metrics.count("drcr.rollbacks", 1);
                return Err(err);
            }};
        }

        // 1. Port channels: providers own their outport channels; consumers
        //    attach to SHM (refcounted) and share mailboxes.
        for port in &descriptor.outports {
            let result = match port.interface {
                PortInterface::Shm => kernel
                    .shm_mut()
                    .alloc(port.name.as_str(), port.data_type, port.size)
                    .map(|()| Created::Shm(port.name.to_string())),
                PortInterface::Mailbox => kernel
                    .mailboxes_mut()
                    .create(port.name.as_str(), port.size.max(1))
                    .map(|()| Created::Mbx(port.name.to_string())),
                // Streams get 4 buffers' worth of slack.
                PortInterface::Fifo => kernel
                    .fifos_mut()
                    .create(port.name.as_str(), port.byte_len().max(1) * 4)
                    .map(|()| Created::Fifo(port.name.to_string())),
            };
            match result {
                Ok(c) => created.push(c),
                Err(e) => rollback!(kernel, e),
            }
        }
        for port in &descriptor.inports {
            if port.interface == PortInterface::Shm {
                match kernel
                    .shm_mut()
                    .alloc(port.name.as_str(), port.data_type, port.size)
                {
                    Ok(()) => created.push(Created::Shm(port.name.to_string())),
                    Err(e) => rollback!(kernel, e),
                }
            }
        }

        // 2. The §3.2 intra-component bridge. Channel names are allocated
        // from a wrap-around counter, skipping names still held by live
        // components so long-running systems never alias two bridges.
        // Kernel object names cap at 6 ASCII alphanumerics, so the counter
        // is rendered as 5 base-36 digits — a 60M-name space, far wider
        // than any realistic live-component count, so the skip loop
        // terminates on its first probe in practice.
        let (cmd_mbx, reply_mbx) = match self.bridge {
            BridgeMode::Disconnected => (None, None),
            _ => {
                const BASE36_SPACE: u32 = 36 * 36 * 36 * 36 * 36;
                fn base36(mut v: u32) -> [u8; 5] {
                    const DIGITS: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";
                    let mut out = [b'0'; 5];
                    for slot in out.iter_mut().rev() {
                        *slot = DIGITS[(v % 36) as usize];
                        v /= 36;
                    }
                    out
                }
                let mut chosen = None;
                for _ in 0..100_000 {
                    self.next_chan = self.next_chan.wrapping_add(1);
                    let digits = base36(self.next_chan % BASE36_SPACE);
                    let tail = std::str::from_utf8(&digits).expect("base36 is ASCII");
                    let c = format!("c{tail}");
                    let r = format!("r{tail}");
                    if kernel.mailboxes().get(&c).is_none() && kernel.mailboxes().get(&r).is_none()
                    {
                        chosen = Some((c, r));
                        break;
                    }
                }
                let Some((c, r)) = chosen else {
                    rollback!(
                        kernel,
                        DrcrError::Kernel("no free bridge channel names".into())
                    );
                };
                if let Err(e) = kernel.mailboxes_mut().create(&c, 16) {
                    rollback!(kernel, e);
                }
                created.push(Created::Mbx(c.clone()));
                if let Err(e) = kernel.mailboxes_mut().create(&r, 16) {
                    rollback!(kernel, e);
                }
                created.push(Created::Mbx(r.clone()));
                (Some(c), Some(r))
            }
        };

        // 3. The RT task.
        let bindings: Vec<PortBinding> = descriptor
            .ports()
            .map(|(direction, spec)| PortBinding {
                spec: spec.clone(),
                direction,
            })
            .collect();
        let body = HybridRtBody::new(
            factory(),
            bindings,
            descriptor.properties.clone(),
            cmd_mbx.clone(),
            reply_mbx.clone(),
            self.bridge,
        );
        let mut cfg = match descriptor.task {
            TaskSpec::Periodic { .. } => TaskConfig::periodic(
                descriptor.name.as_str(),
                descriptor.task.priority(),
                descriptor.task.period().expect("periodic"),
            )
            .map_err(|e| DrcrError::Kernel(e.to_string()))?
            .on_cpu(descriptor.task.cpu())
            .with_latency_tracking(),
            TaskSpec::Aperiodic { .. } => {
                TaskConfig::aperiodic(descriptor.name.as_str(), descriptor.task.priority())
                    .map_err(|e| DrcrError::Kernel(e.to_string()))?
                    .on_cpu(descriptor.task.cpu())
                    .with_latency_tracking()
            }
        };
        if self.enforce_budgets {
            if let Some(period) = descriptor.task.period() {
                let budget_ns = (period.as_nanos() as f64 * descriptor.cpu_usage.fraction())
                    .round()
                    .max(1.0) as u64;
                cfg = cfg.with_exec_budget(rtos::time::SimDuration::from_nanos(budget_ns));
            }
        }
        let task = match kernel.create_task(cfg, Box::new(body)) {
            Ok(t) => t,
            Err(e) => rollback!(kernel, e),
        };
        if let Err(e) = kernel.start_task(task) {
            let _ = kernel.delete_task(task);
            rollback!(kernel, e);
        }
        // Event-driven components: aperiodic tasks wake on arrivals at
        // their mailbox inports.
        if !descriptor.task.is_periodic() {
            for port in &descriptor.inports {
                if port.interface == PortInterface::Mailbox {
                    let _ = kernel.bind_mailbox_wakeup(port.name.as_str(), task);
                }
            }
        }
        drop(kernel);

        // 4. Admission reservation.
        self.ledger
            .reserve(name, descriptor.task.cpu(), descriptor.cpu_usage.fraction())
            .map_err(|e| DrcrError::Kernel(e.to_string()))?;

        // 5. Management service.
        let mgmt = self.self_ref.upgrade().map(|drcr| {
            let service: Rc<dyn RtComponentManagement> = Rc::new(DrcrManagement {
                drcr,
                component: name.to_string(),
            });
            fw.registry_mut().register(
                &[MANAGEMENT_SERVICE],
                Rc::new(ManagementHandle(service)),
                Properties::new()
                    .with(PROP_COMPONENT_NAME, name)
                    .with("drt.cpu", descriptor.task.cpu() as i64)
                    .with("drt.cpuusage", descriptor.cpu_usage.fraction()),
            )
        });

        // 6. Book-keeping + transition.
        let key = self
            .components
            .get_key_value(name)
            .map(|(k, _)| k.clone())
            .expect("checked above");
        let rec = self.components.get_mut(name).expect("checked above");
        rec.task = Some(task);
        rec.mgmt = mgmt;
        rec.cmd_mbx = cmd_mbx;
        rec.reply_mbx = reply_mbx;
        rec.providers = providers;
        self.task_names.insert(task, key.clone());
        // A newly active provider can only *satisfy* consumers, never break
        // one, so the engine refreshes its memos without seeding the dirty
        // scope; the cached view takes the flip in place.
        self.apply_state(&key, ComponentState::Active);
        self.record_transition(
            name,
            from_state,
            ComponentState::Active,
            "constraints satisfied; admitted",
        );
        self.note(DrcrEvent::Activated {
            component: name.to_string(),
        });
        self.metrics.count("drcr.activations", 1);
        Ok(())
    }

    /// Tears an active/suspended component down to `to` (Unsatisfied,
    /// Disabled or Destroyed).
    fn deactivate(
        &mut self,
        name: &str,
        fw: &mut Framework,
        to: ComponentState,
        reason: &str,
    ) -> Result<(), DrcrError> {
        let (descriptor, task, mgmt, cmd_mbx, reply_mbx, from_state) = {
            let rec = self
                .components
                .get(name)
                .ok_or_else(|| DrcrError::NoSuchComponent(name.to_string()))?;
            (
                rec.descriptor.clone(),
                rec.task,
                rec.mgmt,
                rec.cmd_mbx.clone(),
                rec.reply_mbx.clone(),
                rec.state,
            )
        };
        if !from_state.can_transition(to) {
            return Err(DrcrError::IllegalTransition {
                component: name.to_string(),
                from: from_state,
                to,
            });
        }
        let mut kernel = self.kernel.borrow_mut();
        if let Some(task) = task {
            let _ = kernel.delete_task(task);
        }
        for port in &descriptor.outports {
            match port.interface {
                PortInterface::Shm => {
                    let _ = kernel.shm_mut().free(port.name.as_str());
                }
                PortInterface::Mailbox => {
                    let _ = kernel.mailboxes_mut().delete(port.name.as_str());
                }
                PortInterface::Fifo => {
                    let _ = kernel.fifos_mut().destroy(port.name.as_str());
                }
            }
        }
        for port in &descriptor.inports {
            if port.interface == PortInterface::Shm {
                let _ = kernel.shm_mut().free(port.name.as_str());
            }
        }
        for mbx in [cmd_mbx, reply_mbx].into_iter().flatten() {
            let _ = kernel.mailboxes_mut().delete(&mbx);
        }
        drop(kernel);
        // Non-holding states legitimately carry no reservation (an
        // Unsatisfied component being uninstalled, say); holding states
        // must release exactly once — the ledger's NotReserved guard makes
        // a double release loud instead of silently skewing totals.
        if self.ledger.release(name).is_err() {
            debug_assert!(
                !from_state.holds_admission(),
                "`{name}` held admission but no ledger reservation"
            );
        }
        if let Some(svc) = mgmt {
            fw.registry_mut().unregister(svc);
        }
        let key = self
            .components
            .get_key_value(name)
            .map(|(k, _)| k.clone())
            .expect("checked above");
        let rec = self.components.get_mut(name).expect("checked above");
        rec.task = None;
        rec.mgmt = None;
        rec.cmd_mbx = None;
        rec.reply_mbx = None;
        rec.providers.clear();
        rec.reply_buffer.clear();
        if let Some(task) = task {
            self.task_names.remove(&task);
        }
        // The engine seeds this component's consumers into its dirty scope
        // (a departed provider is the only way a satisfied check breaks)
        // and drops their memoized wiring results.
        self.apply_state(&key, to);
        self.record_transition(name, from_state, to, reason);
        self.note(DrcrEvent::Deactivated {
            component: name.to_string(),
            to,
            reason: reason.to_string(),
        });
        self.metrics.count("drcr.deactivations", 1);
        self.dirty = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Management operations (called through DrcrManagement)
    // ------------------------------------------------------------------

    /// Suspends an active component, keeping its admission reservation.
    ///
    /// # Errors
    ///
    /// [`DrcrError::IllegalTransition`] unless the component is active.
    pub fn suspend_component(&mut self, name: &str) -> Result<(), DrcrError> {
        let rec = self
            .components
            .get(name)
            .ok_or_else(|| DrcrError::NoSuchComponent(name.to_string()))?;
        if rec.state != ComponentState::Active {
            return Err(DrcrError::IllegalTransition {
                component: name.to_string(),
                from: rec.state,
                to: ComponentState::Suspended,
            });
        }
        let task = rec.task.expect("active component has a task");
        self.kernel.borrow_mut().suspend_task(task)?;
        let key = self
            .components
            .get_key_value(name)
            .map(|(k, _)| k.clone())
            .expect("present");
        // A suspended provider stops feeding its consumers: the engine
        // seeds them into its dirty scope and the next pass re-resolves. A
        // component consuming its own outport seeds itself here, which is
        // required — it no longer provides its own input.
        self.apply_state(&key, ComponentState::Suspended);
        self.record_transition(
            name,
            ComponentState::Active,
            ComponentState::Suspended,
            "management suspend",
        );
        self.dirty = true;
        Ok(())
    }

    /// Resumes a suspended component.
    ///
    /// # Errors
    ///
    /// [`DrcrError::IllegalTransition`] unless the component is suspended.
    pub fn resume_component(&mut self, name: &str) -> Result<(), DrcrError> {
        let rec = self
            .components
            .get(name)
            .ok_or_else(|| DrcrError::NoSuchComponent(name.to_string()))?;
        if rec.state != ComponentState::Suspended {
            return Err(DrcrError::IllegalTransition {
                component: name.to_string(),
                from: rec.state,
                to: ComponentState::Active,
            });
        }
        let task = rec.task.expect("suspended component keeps its task");
        self.kernel.borrow_mut().resume_task(task)?;
        let key = self
            .components
            .get_key_value(name)
            .map(|(k, _)| k.clone())
            .expect("present");
        self.apply_state(&key, ComponentState::Active);
        self.record_transition(
            name,
            ComponentState::Suspended,
            ComponentState::Active,
            "management resume",
        );
        self.dirty = true;
        Ok(())
    }

    /// Disables a component (deactivating it first if needed); it is
    /// ignored by resolution until re-enabled.
    ///
    /// # Errors
    ///
    /// [`DrcrError::NoSuchComponent`] / illegal transitions.
    pub fn disable_component(&mut self, name: &str, fw: &mut Framework) -> Result<(), DrcrError> {
        let state = self
            .state_of(name)
            .ok_or_else(|| DrcrError::NoSuchComponent(name.to_string()))?;
        if state.holds_admission() {
            self.deactivate(name, fw, ComponentState::Disabled, "management disable")?;
        } else if state.can_transition(ComponentState::Disabled) {
            let key = self
                .components
                .get_key_value(name)
                .map(|(k, _)| k.clone())
                .expect("present");
            self.apply_state(&key, ComponentState::Disabled);
            self.record_transition(name, state, ComponentState::Disabled, "management disable");
        } else {
            return Err(DrcrError::IllegalTransition {
                component: name.to_string(),
                from: state,
                to: ComponentState::Disabled,
            });
        }
        self.dirty = true;
        Ok(())
    }

    /// Quarantines a component through the supervisor: it falls to
    /// `Disabled` (reservation released, consumers cascaded) and is marked
    /// so [`Drcr::is_quarantined`] reports it, with a [`DrcrEvent::Quarantined`]
    /// event and the `supervision.quarantines` counter. This is the single
    /// reaction path shared by fault supervision and contract enforcement
    /// (a quarantine is a disable with a recorded cause).
    ///
    /// # Errors
    ///
    /// [`DrcrError::NoSuchComponent`] / illegal transitions.
    pub fn quarantine_component(
        &mut self,
        name: &str,
        fw: &mut Framework,
        reason: &str,
    ) -> Result<(), DrcrError> {
        let state = self
            .state_of(name)
            .ok_or_else(|| DrcrError::NoSuchComponent(name.to_string()))?;
        if state.holds_admission() {
            self.deactivate(name, fw, ComponentState::Disabled, reason)?;
        } else if state.can_transition(ComponentState::Disabled) {
            let key = self
                .components
                .get_key_value(name)
                .map(|(k, _)| k.clone())
                .expect("present");
            self.apply_state(&key, ComponentState::Disabled);
            self.record_transition(name, state, ComponentState::Disabled, reason);
        } else {
            return Err(DrcrError::IllegalTransition {
                component: name.to_string(),
                from: state,
                to: ComponentState::Disabled,
            });
        }
        self.supervisor.quarantine(name, reason);
        self.note(DrcrEvent::Quarantined {
            component: name.to_string(),
            reason: reason.to_string(),
        });
        self.metrics.count("drcr.supervision.quarantines", 1);
        self.dirty = true;
        Ok(())
    }

    /// Re-enables a disabled component (the descriptor's
    /// `enableRTComponent` method).
    ///
    /// # Errors
    ///
    /// [`DrcrError::IllegalTransition`] unless the component is disabled.
    pub fn enable_component(&mut self, name: &str) -> Result<(), DrcrError> {
        let state = self
            .state_of(name)
            .ok_or_else(|| DrcrError::NoSuchComponent(name.to_string()))?;
        if state != ComponentState::Disabled {
            return Err(DrcrError::IllegalTransition {
                component: name.to_string(),
                from: state,
                to: ComponentState::Unsatisfied,
            });
        }
        let key = self
            .components
            .get_key_value(name)
            .map(|(k, _)| k.clone())
            .expect("present");
        self.apply_state(&key, ComponentState::Unsatisfied);
        // Operator re-enable grants a fresh slate: quarantine flag, restart
        // budget and fault window all reset.
        self.supervisor.reset(name);
        self.record_transition(
            name,
            state,
            ComponentState::Unsatisfied,
            "management enable",
        );
        self.dirty = true;
        Ok(())
    }

    fn send_command(&mut self, name: &str, command: Command) -> Result<(), DrcrError> {
        let rec = self
            .components
            .get(name)
            .ok_or_else(|| DrcrError::NoSuchComponent(name.to_string()))?;
        let Some(cmd_mbx) = rec.cmd_mbx.clone() else {
            return Err(DrcrError::Management(format!(
                "component `{name}` has no management channel (state {:?})",
                rec.state
            )));
        };
        let token = match &command {
            Command::SetProperty { .. } => None,
            Command::GetProperty { token, .. }
            | Command::QueryStatus { token }
            | Command::Ping { token } => Some(*token),
        };
        let frame = command
            .encode()
            .map_err(|e| DrcrError::Management(e.to_string()))?;
        let (queued, depth, now) = {
            let mut kernel = self.kernel.borrow_mut();
            let queued = kernel
                .mailboxes_mut()
                .send(&cmd_mbx, &frame)
                .map_err(|e| DrcrError::Management(e.to_string()))?;
            let depth = kernel.mailboxes().get(&cmd_mbx).map_or(0, |m| m.len());
            (queued, depth, kernel.now())
        };
        if !queued {
            return Err(DrcrError::Management(format!(
                "command mailbox of `{name}` is full"
            )));
        }
        if let Some(token) = token {
            self.pending_replies
                .insert(token, (name.to_string(), now.as_nanos()));
        }
        self.bridge_events.emit(
            now,
            BridgeEvent::CommandEnqueued {
                component: name.to_string(),
                token,
                depth,
            },
        );
        self.metrics.count("bridge.commands", 1);
        self.metrics.observe(
            "bridge.cmd_mbx.depth",
            depth as u64,
            Histogram::small_counts,
        );
        Ok(())
    }

    fn fresh_token(&mut self) -> u32 {
        self.next_token += 1;
        self.next_token
    }

    fn drain_replies(&mut self, name: &str) -> Result<(), DrcrError> {
        let Some(rec) = self.components.get(name) else {
            return Err(DrcrError::NoSuchComponent(name.to_string()));
        };
        let Some(reply_mbx) = rec.reply_mbx.clone() else {
            return Ok(());
        };
        let mut drained: u32 = 0;
        loop {
            let msg = self
                .kernel
                .borrow_mut()
                .mailboxes_mut()
                .recv(&reply_mbx)
                .map_err(|e| DrcrError::Management(e.to_string()))?;
            let Some(msg) = msg else { break };
            let Ok(reply) = Reply::decode(&msg) else {
                continue;
            };
            let token = reply.token();
            let decoded = match reply {
                Reply::Property { name, value, .. } => ManagementReply::Property { name, value },
                Reply::Status { cycles, at_ns, .. } => ManagementReply::Status { cycles, at_ns },
                Reply::Pong { .. } => ManagementReply::Pong,
            };
            drained += 1;
            let now = self.kernel.borrow().now();
            if let Some((component, sent_ns)) = self.pending_replies.remove(&token) {
                let latency_ns = now.as_nanos().saturating_sub(sent_ns);
                self.bridge_events.emit(
                    now,
                    BridgeEvent::ReplyLatency {
                        component,
                        token,
                        latency_ns,
                    },
                );
                self.metrics
                    .observe("bridge.reply_latency_ns", latency_ns, Histogram::latency_ns);
            }
            self.components
                .get_mut(name)
                .expect("checked above")
                .reply_buffer
                .insert(token, decoded);
        }
        if drained > 0 {
            self.metrics.count("bridge.replies", drained as u64);
            self.note_bridge(BridgeEvent::RepliesDrained {
                component: name.to_string(),
                count: drained,
            });
        }
        Ok(())
    }

    /// Emits an executive event stamped with current virtual time. Must not
    /// be called while the kernel is borrowed (use the sink directly there).
    pub(crate) fn note(&mut self, event: DrcrEvent) {
        let now = self.kernel.borrow().now();
        self.events.emit(now, event);
    }

    /// Emits a bridge event stamped with current virtual time.
    fn note_bridge(&mut self, event: BridgeEvent) {
        let now = self.kernel.borrow().now();
        self.bridge_events.emit(now, event);
    }

    /// Refreshes the per-CPU reserved-utilization gauges from the ledger —
    /// once per resolve round, not per transition: the ledger fold is
    /// O(components), and every activation/deactivation happens inside,
    /// or is immediately followed by, a resolve round.
    fn update_admission_gauges(&mut self) {
        for cpu in 0..self.ledger.cpu_count() {
            self.metrics.gauge(
                &format!("admission.cpu{cpu}.utilization"),
                self.ledger.utilization(cpu),
            );
        }
    }

    fn record_transition(
        &mut self,
        component: &str,
        from: ComponentState,
        to: ComponentState,
        reason: &str,
    ) {
        self.transitions.push(Transition {
            component: component.to_string(),
            from,
            to,
            reason: reason.to_string(),
        });
    }
}

/// The management service the DRCR registers per active component.
///
/// Holds the shared executive, so every call goes through the DRCR and the
/// global view stays accurate.
pub struct DrcrManagement {
    drcr: Rc<RefCell<Drcr>>,
    component: String,
}

impl fmt::Debug for DrcrManagement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DrcrManagement({})", self.component)
    }
}

impl RtComponentManagement for DrcrManagement {
    fn component_name(&self) -> &str {
        &self.component
    }

    fn state(&self) -> ComponentState {
        self.drcr
            .borrow()
            .state_of(&self.component)
            .unwrap_or(ComponentState::Destroyed)
    }

    fn suspend(&self) -> Result<(), DrcrError> {
        self.drcr.borrow_mut().suspend_component(&self.component)
    }

    fn resume(&self) -> Result<(), DrcrError> {
        self.drcr.borrow_mut().resume_component(&self.component)
    }

    fn set_property(&self, name: &str, value: PropertyValue) -> Result<(), DrcrError> {
        self.drcr.borrow_mut().send_command(
            &self.component,
            Command::SetProperty {
                name: name.to_string(),
                value,
            },
        )
    }

    fn request_property(&self, name: &str) -> Result<RequestToken, DrcrError> {
        let mut drcr = self.drcr.borrow_mut();
        let token = drcr.fresh_token();
        drcr.send_command(
            &self.component,
            Command::GetProperty {
                token,
                name: name.to_string(),
            },
        )?;
        Ok(RequestToken(token))
    }

    fn request_status(&self) -> Result<RequestToken, DrcrError> {
        let mut drcr = self.drcr.borrow_mut();
        let token = drcr.fresh_token();
        drcr.send_command(&self.component, Command::QueryStatus { token })?;
        Ok(RequestToken(token))
    }

    fn poll_reply(&self, token: RequestToken) -> Result<Option<ManagementReply>, DrcrError> {
        let mut drcr = self.drcr.borrow_mut();
        drcr.drain_replies(&self.component)?;
        Ok(drcr
            .components
            .get_mut(self.component.as_str())
            .and_then(|r| r.reply_buffer.remove(&token.0)))
    }
}
