//! Contract enforcement: making declared CPU claims *binding*.
//!
//! The paper argues that "the resource budget should be 'enforced' by a
//! central scheme rather than by each single bundle" (§2.1) and positions
//! itself next to Härtig & Zschaler's *enforceable* component contracts
//! (§5). Admission alone only checks claims at activation; a component
//! whose real demand exceeds its declared `cpuusage` can still starve its
//! peers. This module closes that gap from two sides:
//!
//! * **Kernel-level budgets** — [`crate::drcr::Drcr::set_budget_enforcement`]
//!   makes the executive create every periodic task with a
//!   per-cycle execution budget of `cpuusage × period`; the kernel clamps
//!   overruns, so a lying component can *never* take more than it claimed.
//! * **Monitoring + policy** — [`ContractMonitor`] periodically compares
//!   each active component's *observed* utilization (from the kernel's
//!   per-task CPU accounting) against its claim and applies an
//!   [`EnforcementAction`] to violators: log, suspend, or disable.
//!
//! Both are deliberately centralized in the executive — the component
//! itself is never trusted with its own enforcement.

use crate::error::DrcrError;
use crate::lifecycle::ComponentState;
use crate::manage::ComponentControl;
use crate::runtime::DrtRuntime;
use rtos::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;

/// What the monitor does to a component caught over its claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnforcementAction {
    /// Record the violation only.
    Log,
    /// Suspend the component (reservation kept; an operator decides).
    Suspend,
    /// Disable the component (reservation released; stays out until
    /// re-enabled). Routed through the supervisor as a permanent
    /// quarantine, so enforcement and fault supervision share one reaction
    /// path and one event/metric vocabulary.
    Disable,
}

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct EnforcementPolicy {
    /// Observed/claimed ratio above which a component is in violation
    /// (1.2 = 20 % grace).
    pub tolerance: f64,
    /// Action applied to violators.
    pub action: EnforcementAction,
    /// Minimum observation window before judging a component.
    pub min_window: SimDuration,
}

impl Default for EnforcementPolicy {
    fn default() -> Self {
        EnforcementPolicy {
            tolerance: 1.2,
            action: EnforcementAction::Log,
            min_window: SimDuration::from_millis(100),
        }
    }
}

impl EnforcementPolicy {
    /// The violation predicate: `observed > claimed × tolerance`. The
    /// boundary is inclusive — a component sitting *exactly* at its
    /// tolerated ceiling is not in violation.
    pub fn violates(&self, observed: f64, claimed: f64) -> bool {
        observed > claimed * self.tolerance
    }
}

/// One detected contract violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The offending component.
    pub component: String,
    /// Its declared CPU fraction.
    pub claimed: f64,
    /// The utilization observed over the window.
    pub observed: f64,
    /// When the violation was detected.
    pub at: SimTime,
    /// The action that was applied.
    pub action: EnforcementAction,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "contract violation at {}: `{}` observed {:.3} > claimed {:.3} ({:?})",
            self.at, self.component, self.observed, self.claimed, self.action
        )
    }
}

/// Periodic contract checker. Create once, call
/// [`ContractMonitor::check`] from the management loop.
#[derive(Debug)]
pub struct ContractMonitor {
    policy: EnforcementPolicy,
    /// Per-component last sample: (time, accumulated CPU time).
    samples: HashMap<String, (SimTime, SimDuration)>,
    violations: Vec<Violation>,
    /// Transition-log entries already scanned for baseline resets.
    transitions_seen: usize,
}

impl ContractMonitor {
    /// Creates a monitor with the given policy.
    pub fn new(policy: EnforcementPolicy) -> Self {
        ContractMonitor {
            policy,
            samples: HashMap::new(),
            violations: Vec::new(),
            transitions_seen: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &EnforcementPolicy {
        &self.policy
    }

    /// All violations detected so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Samples every active component's CPU consumption and applies the
    /// policy to violators. Returns the violations detected this round.
    ///
    /// # Errors
    ///
    /// Propagates [`DrcrError`] from applied actions.
    pub fn check(&mut self, rt: &mut DrtRuntime) -> Result<Vec<Violation>, DrcrError> {
        let now = rt.kernel().now();
        let mut fresh = Vec::new();
        // A transition *into* Active means a fresh task instance (restart,
        // resume, re-admission): its CPU accounting restarts at zero and
        // the wall-clock gap it was away must not dilute the next window.
        // Any baseline recorded before such a transition is stale.
        {
            let drcr = rt.drcr();
            let transitions = drcr.transitions();
            for t in &transitions[self.transitions_seen.min(transitions.len())..] {
                if t.to == ComponentState::Active {
                    self.samples.remove(&t.component);
                }
            }
            self.transitions_seen = transitions.len();
        }
        let names = rt.drcr().component_names();
        // One snapshot for the whole sweep: the claimed fractions it is
        // read for cannot change from the suspend/disable actions applied
        // mid-loop.
        let view = rt.drcr().system_view();
        for name in names {
            if rt.component_state(&name) != Some(ComponentState::Active) {
                self.samples.remove(&name);
                continue;
            }
            let Some(task) = rt.drcr().task_of(&name) else {
                continue;
            };
            let Some(claimed) = view.component(&name).map(|c| c.cpu_usage) else {
                // A component absent from the view has no claim to judge
                // against. Defaulting one in (the old `unwrap_or(1.0)`)
                // would silently exempt it from enforcement; skip loudly
                // instead.
                rt.drcr_mut()
                    .note(crate::obs::DrcrEvent::EnforcementSkipped {
                        component: name.clone(),
                        reason: "component missing from the system view; claim unknown".to_string(),
                    });
                continue;
            };
            let Some(cpu_time) = rt.kernel().task_cpu_time(task) else {
                continue;
            };
            let Some(&(t0, cpu0)) = self.samples.get(&name) else {
                self.samples.insert(name.clone(), (now, cpu_time));
                continue;
            };
            let window = now.duration_since(t0);
            // The explicit zero check matters even when `min_window` is
            // zero: a zero-width window would make `observed` 0/0 = NaN,
            // which fails every comparison and silently waives the check.
            if window.as_nanos() == 0 || window < self.policy.min_window {
                continue;
            }
            let used = cpu_time.saturating_sub(cpu0);
            let observed = used.as_nanos() as f64 / window.as_nanos() as f64;
            self.samples.insert(name.clone(), (now, cpu_time));
            if self.policy.violates(observed, claimed) {
                let violation = Violation {
                    component: name.clone(),
                    claimed,
                    observed,
                    at: now,
                    action: self.policy.action,
                };
                match self.policy.action {
                    EnforcementAction::Log => {}
                    EnforcementAction::Suspend => rt.suspend_component(&name)?,
                    EnforcementAction::Disable => rt.quarantine_component(
                        &name,
                        &format!(
                            "contract violation: observed {observed:.3} > claimed {claimed:.3}"
                        ),
                    )?,
                }
                self.violations.push(violation.clone());
                fresh.push(violation);
            }
        }
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::ComponentDescriptor;
    use crate::drcr::ComponentProvider;
    use crate::hybrid::{FnLogic, RtIo};
    use rtos::kernel::KernelConfig;
    use rtos::latency::TimerJitterModel;

    /// Claims 10% but burns ~50% of a 10 ms period.
    fn liar() -> ComponentProvider {
        let d = ComponentDescriptor::builder("liar")
            .periodic(100, 0, 2)
            .cpu_usage(0.10)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                io.compute(SimDuration::from_millis(5));
            }))
        })
    }

    /// Claims 10% and honestly uses ~5%.
    fn honest() -> ComponentProvider {
        let d = ComponentDescriptor::builder("honest")
            .periodic(100, 0, 3)
            .cpu_usage(0.10)
            .build()
            .unwrap();
        ComponentProvider::new(d, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                io.compute(SimDuration::from_micros(500));
            }))
        })
    }

    fn runtime() -> DrtRuntime {
        DrtRuntime::new(KernelConfig::new(31).with_timer(TimerJitterModel::ideal()))
    }

    #[test]
    fn monitor_flags_only_the_liar() {
        let mut rt = runtime();
        rt.install_component("demo.liar", liar()).unwrap();
        rt.install_component("demo.honest", honest()).unwrap();
        let mut monitor = ContractMonitor::new(EnforcementPolicy::default());
        // First check establishes baselines.
        monitor.check(&mut rt).unwrap();
        rt.advance(SimDuration::from_millis(500));
        let violations = monitor.check(&mut rt).unwrap();
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(v.component, "liar");
        assert!(v.observed > 0.4, "observed {}", v.observed);
        assert_eq!(v.claimed, 0.10);
        // Log action leaves states alone.
        assert_eq!(rt.component_state("liar"), Some(ComponentState::Active));
    }

    #[test]
    fn suspend_action_parks_the_violator() {
        let mut rt = runtime();
        rt.install_component("demo.liar", liar()).unwrap();
        let mut monitor = ContractMonitor::new(EnforcementPolicy {
            action: EnforcementAction::Suspend,
            ..EnforcementPolicy::default()
        });
        monitor.check(&mut rt).unwrap();
        rt.advance(SimDuration::from_millis(300));
        let violations = monitor.check(&mut rt).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(rt.component_state("liar"), Some(ComponentState::Suspended));
        // Reservation intentionally retained under Suspend.
        assert!(rt.drcr().ledger().reservation("liar").is_some());
    }

    #[test]
    fn disable_action_evicts_and_frees_budget() {
        let mut rt = runtime();
        rt.install_component("demo.liar", liar()).unwrap();
        let mut monitor = ContractMonitor::new(EnforcementPolicy {
            action: EnforcementAction::Disable,
            ..EnforcementPolicy::default()
        });
        monitor.check(&mut rt).unwrap();
        rt.advance(SimDuration::from_millis(300));
        monitor.check(&mut rt).unwrap();
        assert_eq!(rt.component_state("liar"), Some(ComponentState::Disabled));
        assert!(rt.drcr().ledger().is_empty());
        // Disable is routed through the supervisor as a quarantine.
        assert!(rt.drcr().is_quarantined("liar"));
        // Operator re-enable clears the quarantine and re-admits.
        rt.enable_component("liar").unwrap();
        assert!(!rt.drcr().is_quarantined("liar"));
        assert_eq!(rt.component_state("liar"), Some(ComponentState::Active));
    }

    #[test]
    fn kernel_budgets_cap_the_liar_mechanically() {
        let mut rt = runtime();
        rt.drcr_mut().set_budget_enforcement(true);
        rt.install_component("demo.liar", liar()).unwrap();
        rt.install_component("demo.honest", honest()).unwrap();
        rt.advance(SimDuration::from_secs(1));
        let liar_task = rt.drcr().task_of("liar").unwrap();
        // Clamped to 10% of the 10 ms period = 1 ms per cycle.
        let cpu = rt.kernel().task_cpu_time(liar_task).unwrap().as_nanos() as f64;
        let elapsed = rt.kernel().now().as_nanos() as f64;
        assert!(cpu / elapsed < 0.11, "liar used {}", cpu / elapsed);
        assert!(rt.kernel().task_budget_overruns(liar_task).unwrap() > 90);
        // And the monitor now sees a clean system.
        let mut monitor = ContractMonitor::new(EnforcementPolicy::default());
        monitor.check(&mut rt).unwrap();
        rt.advance(SimDuration::from_millis(300));
        assert!(monitor.check(&mut rt).unwrap().is_empty());
    }

    #[test]
    fn short_windows_are_not_judged() {
        let mut rt = runtime();
        rt.install_component("demo.liar", liar()).unwrap();
        let mut monitor = ContractMonitor::new(EnforcementPolicy::default());
        monitor.check(&mut rt).unwrap();
        rt.advance(SimDuration::from_millis(20)); // below min_window
        assert!(monitor.check(&mut rt).unwrap().is_empty());
    }

    #[test]
    fn tolerance_boundary_is_inclusive() {
        let policy = EnforcementPolicy {
            tolerance: 1.5,
            ..EnforcementPolicy::default()
        };
        // 0.5 × 1.5 = 0.75 exactly in binary floating point, so the
        // boundary itself is testable without rounding slop.
        assert!(
            !policy.violates(0.75, 0.5),
            "observed == claimed × tolerance is not a violation"
        );
        assert!(
            policy.violates(0.75 + f64::EPSILON, 0.5),
            "epsilon above the ceiling is"
        );
        assert!(!policy.violates(0.74, 0.5));
    }

    /// Claims 10% of a 10 ms period and burns `burn_us` µs per cycle.
    fn claimant(name: &str, burn_us: u64) -> ComponentProvider {
        let d = ComponentDescriptor::builder(name)
            .periodic(100, 0, 2)
            .cpu_usage(0.10)
            .build()
            .unwrap();
        ComponentProvider::new(d, move || {
            Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
                io.compute(SimDuration::from_micros(burn_us));
            }))
        })
    }

    #[test]
    fn just_under_the_tolerated_ceiling_is_not_flagged() {
        // Ceiling = 0.10 × 1.2 = 0.12; burning 1.1 ms of every 10 ms
        // lands at ~0.11 regardless of ±1 cycle of window skew.
        let mut rt = runtime();
        rt.install_component("demo.edge", claimant("edge", 1100))
            .unwrap();
        let mut monitor = ContractMonitor::new(EnforcementPolicy::default());
        monitor.check(&mut rt).unwrap();
        rt.advance(SimDuration::from_millis(505));
        assert!(monitor.check(&mut rt).unwrap().is_empty());
    }

    #[test]
    fn just_over_the_tolerated_ceiling_is_flagged() {
        // Burning 1.35 ms of every 10 ms lands at ~0.135 > 0.12.
        let mut rt = runtime();
        rt.install_component("demo.over", claimant("over", 1350))
            .unwrap();
        let mut monitor = ContractMonitor::new(EnforcementPolicy::default());
        monitor.check(&mut rt).unwrap();
        rt.advance(SimDuration::from_millis(505));
        let violations = monitor.check(&mut rt).unwrap();
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert!(
            v.observed > 0.12 && v.observed < 0.15,
            "observed {}",
            v.observed
        );
    }

    #[test]
    fn zero_width_windows_are_skipped_not_nan_judged() {
        let mut rt = runtime();
        rt.install_component("demo.liar", liar()).unwrap();
        let mut monitor = ContractMonitor::new(EnforcementPolicy {
            min_window: SimDuration::from_nanos(0),
            ..EnforcementPolicy::default()
        });
        // Baseline.
        monitor.check(&mut rt).unwrap();
        // Same instant again: a zero-width window divides 0 by 0. The
        // old code produced a NaN `observed` that failed every
        // comparison and silently waived the check; now the sample is
        // skipped outright.
        assert!(monitor.check(&mut rt).unwrap().is_empty());
        // The skip did not poison the baseline: the liar is still
        // caught, with a finite observation.
        rt.advance(SimDuration::from_millis(300));
        let violations = monitor.check(&mut rt).unwrap();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].observed.is_finite());
        assert!(violations[0].observed > 0.4);
    }

    #[test]
    fn restart_resets_sampling_baselines() {
        use crate::supervise::SupervisionConfig;
        use std::cell::Cell;
        use std::rc::Rc;
        let mut rt = runtime();
        let instances = Rc::new(Cell::new(0u32));
        let d = ComponentDescriptor::builder("flaky")
            .periodic(100, 0, 2)
            .cpu_usage(0.10)
            .build()
            .unwrap();
        let provider = ComponentProvider::new(d, {
            let instances = instances.clone();
            move || {
                instances.set(instances.get() + 1);
                let first = instances.get() == 1;
                Box::new(FnLogic(move |io: &mut RtIo<'_, '_>| {
                    io.compute(SimDuration::from_millis(2));
                    if first && io.cycle() == 11 {
                        panic!("transient fault");
                    }
                }))
            }
        });
        rt.set_supervision("flaky", SupervisionConfig::immediate(3));
        rt.install_component("demo.flaky", provider).unwrap();
        let mut monitor = ContractMonitor::new(EnforcementPolicy::default());
        rt.advance(SimDuration::from_millis(100));
        // Baseline at t = 100 ms, taken against the first instance.
        monitor.check(&mut rt).unwrap();
        // The first instance dies at ~110 ms; this advance detects the
        // fault and restarts a fresh task — with fresh CPU accounting —
        // at ~150 ms, entirely *between* two monitor checks.
        rt.advance(SimDuration::from_millis(50));
        assert_eq!(rt.component_state("flaky"), Some(ComponentState::Active));
        assert_eq!(instances.get(), 2);
        rt.advance(SimDuration::from_millis(450));
        // t = 600 ms: the pre-restart baseline must not be judged — its
        // window straddles two task instances and a dead gap, which used
        // to yield a contaminated verdict. The monitor re-baselines.
        assert!(monitor.check(&mut rt).unwrap().is_empty());
        rt.advance(SimDuration::from_millis(500));
        // t = 1100 ms: a clean single-instance window, judged undiluted.
        let violations = monitor.check(&mut rt).unwrap();
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(v.component, "flaky");
        assert!(
            v.observed > 0.19 && v.observed < 0.21,
            "observed {} should reflect only the live instance",
            v.observed
        );
    }
}
