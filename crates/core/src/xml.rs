//! XML parsing for DRCom descriptors — re-exported from the shared
//! [`xmlite`] crate (the `osgi` Declarative Services runtime parses its
//! `component.xml` documents with the same parser).

pub use xmlite::{parse, Element, Node, XmlError};
