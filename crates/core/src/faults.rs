//! Deterministic fault injection for robustness testing and benchmarks.
//!
//! A [`FaultPlan`] declares exactly which faults fire at which task cycles:
//! panics (caught and contained by the kernel), execution-time spikes,
//! corrupted or dropped port payloads, and bridge stalls (a long busy
//! period that delays management-command servicing). Plans are either
//! written out fault by fault ([`FaultPlan::at`]) or generated from a seed
//! ([`FaultPlan::storm`]); both are pure functions of their inputs, so two
//! runs of the same scenario inject byte-identical fault sequences — the
//! property the `fault_storm` benchmark and the failure-injection tests
//! rely on to assert recovery behaviour.
//!
//! [`FaultInjector`] wraps any [`RtLogic`] and executes the plan from
//! inside the component, exactly where real defects live. Injections are
//! tallied in a host-side [`InjectionLog`] shared across restarts of the
//! component (factories wrap each fresh instance), which deliberately
//! survives the kernel's faulted-cycle rollback: the log records what was
//! *injected*, the kernel trace records what *escaped*.

use crate::hybrid::{RtIo, RtLogic};
use crate::model::PropertyValue;
use rtos::rng::SimRng;
use rtos::time::SimDuration;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic out of the cycle body (the kernel contains it, rolls back the
    /// cycle's port writes and parks the task in `Faulted`).
    Panic,
    /// Charge extra CPU time before the functional routine (a budget/
    /// deadline stressor).
    Spike(SimDuration),
    /// Overwrite an outport with deterministic garbage after the
    /// functional routine ran (a data-integrity stressor for consumers).
    CorruptPort {
        /// The outport to poison.
        port: String,
        /// Payload length in bytes (must match the port shape for SHM).
        bytes: usize,
    },
    /// Skip the functional routine entirely this cycle: consumers see
    /// stale state (SHM) or no message (mailbox/FIFO).
    DropCycle,
    /// Charge a long busy period *after* the functional routine, delaying
    /// the end-of-cycle management pump — pending bridge commands stall.
    BridgeStall(SimDuration),
}

/// A deterministic schedule of faults keyed on task cycle number.
///
/// Cycle numbers restart from zero when the supervisor restarts a
/// component (each restart is a fresh task), so a plan with an early panic
/// models a *wedged* component that faults again after every restart;
/// factories that stop wrapping after the first instance model a
/// *transient* fault that a restart clears.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: BTreeMap<u64, Vec<FaultKind>>,
}

impl FaultPlan {
    /// An empty plan; `seed` drives corruption payloads.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: BTreeMap::new(),
        }
    }

    /// Adds one fault at one cycle (chainable; multiple faults on the same
    /// cycle fire in insertion order, panics always last).
    pub fn at(mut self, cycle: u64, kind: FaultKind) -> Self {
        self.faults.entry(cycle).or_default().push(kind);
        self
    }

    /// Generates a random-but-deterministic plan over `horizon` cycles:
    /// each kind fires with its given per-cycle probability. Same inputs,
    /// same plan — always.
    pub fn storm(seed: u64, horizon: u64, rates: &StormRates) -> Self {
        let mut rng = SimRng::from_seed(seed);
        let mut plan = FaultPlan::new(seed);
        for cycle in 0..horizon {
            if rng.chance(rates.spike) {
                let extra = SimDuration::from_nanos(
                    rng.uniform_u64(rates.spike_ns.0.max(1), rates.spike_ns.1.max(2)),
                );
                plan = plan.at(cycle, FaultKind::Spike(extra));
            }
            if rng.chance(rates.drop) {
                plan = plan.at(cycle, FaultKind::DropCycle);
            }
            if let Some((port, bytes)) = &rates.corrupt_port {
                if rng.chance(rates.corrupt) {
                    plan = plan.at(
                        cycle,
                        FaultKind::CorruptPort {
                            port: port.clone(),
                            bytes: *bytes,
                        },
                    );
                }
            }
            if rng.chance(rates.stall) {
                let dur = SimDuration::from_nanos(
                    rng.uniform_u64(rates.stall_ns.0.max(1), rates.stall_ns.1.max(2)),
                );
                plan = plan.at(cycle, FaultKind::BridgeStall(dur));
            }
            if rng.chance(rates.panic) {
                plan = plan.at(cycle, FaultKind::Panic);
            }
        }
        plan
    }

    /// Generates a "lying component" plan: a spike on *every* cycle with a
    /// uniformly drawn magnitude in `demand_ns`, so the component's real
    /// per-cycle demand is whatever the spikes say rather than what its
    /// descriptor claims. Drive a component whose declared `cpuusage`
    /// under- or over-states `demand_ns` to exercise the stochastic
    /// contract monitor ([`crate::contracts`]). Same inputs, same plan —
    /// always.
    pub fn lying(seed: u64, horizon: u64, demand_ns: (u64, u64)) -> Self {
        let mut rng = SimRng::from_seed(seed);
        let mut plan = FaultPlan::new(seed);
        for cycle in 0..horizon {
            let extra =
                SimDuration::from_nanos(rng.uniform_u64(demand_ns.0.max(1), demand_ns.1.max(2)));
            plan = plan.at(cycle, FaultKind::Spike(extra));
        }
        plan
    }

    /// The faults declared for one cycle.
    pub fn faults_at(&self, cycle: u64) -> &[FaultKind] {
        self.faults.get(&cycle).map_or(&[], |v| v.as_slice())
    }

    /// Total declared faults.
    pub fn total(&self) -> usize {
        self.faults.values().map(Vec::len).sum()
    }

    /// Cycles that carry at least one fault, ascending.
    pub fn cycles(&self) -> impl Iterator<Item = u64> + '_ {
        self.faults.keys().copied()
    }
}

/// Per-cycle probabilities and magnitudes for [`FaultPlan::storm`].
#[derive(Debug, Clone)]
pub struct StormRates {
    /// Probability of a panic per cycle.
    pub panic: f64,
    /// Probability of an execution-time spike per cycle.
    pub spike: f64,
    /// Spike magnitude range in nanoseconds (uniform).
    pub spike_ns: (u64, u64),
    /// Probability of a dropped cycle.
    pub drop: f64,
    /// Probability of a corrupted outport payload.
    pub corrupt: f64,
    /// Which outport to corrupt, and the payload length.
    pub corrupt_port: Option<(String, usize)>,
    /// Probability of a bridge stall per cycle.
    pub stall: f64,
    /// Stall duration range in nanoseconds (uniform).
    pub stall_ns: (u64, u64),
}

impl Default for StormRates {
    fn default() -> Self {
        StormRates {
            panic: 0.0,
            spike: 0.0,
            spike_ns: (10_000, 100_000),
            drop: 0.0,
            corrupt: 0.0,
            corrupt_port: None,
            stall: 0.0,
            stall_ns: (100_000, 1_000_000),
        }
    }
}

/// Host-side tally of injected faults, shared (via `Rc`) across every
/// instance a component factory produces. Survives the kernel's
/// faulted-cycle rollback by construction — it lives outside the kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectionLog {
    /// Panics injected.
    pub panics: u64,
    /// Execution-time spikes injected.
    pub spikes: u64,
    /// Corrupted payloads written.
    pub corruptions: u64,
    /// Cycles dropped.
    pub drops: u64,
    /// Bridge stalls injected.
    pub stalls: u64,
    /// Logic instances wrapped (1 + number of restarts reaching the body).
    pub instances: u64,
}

impl InjectionLog {
    /// A fresh shared log.
    pub fn shared() -> Rc<RefCell<InjectionLog>> {
        Rc::new(RefCell::new(InjectionLog::default()))
    }

    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.panics + self.spikes + self.corruptions + self.drops + self.stalls
    }
}

/// Wraps an [`RtLogic`] and executes a [`FaultPlan`] around it. See the
/// [module docs](self).
pub struct FaultInjector {
    inner: Box<dyn RtLogic>,
    plan: Rc<FaultPlan>,
    log: Rc<RefCell<InjectionLog>>,
    rng: SimRng,
}

impl FaultInjector {
    /// Wraps `inner`; corruption payloads derive from the plan's seed, so
    /// every instance of the same plan injects identical bytes.
    pub fn wrap(
        plan: Rc<FaultPlan>,
        log: Rc<RefCell<InjectionLog>>,
        inner: Box<dyn RtLogic>,
    ) -> Box<dyn RtLogic> {
        log.borrow_mut().instances += 1;
        let rng = SimRng::from_seed(plan.seed ^ 0x5EED_FA17);
        Box::new(FaultInjector {
            inner,
            plan,
            log,
            rng,
        })
    }
}

impl RtLogic for FaultInjector {
    fn on_init(&mut self, io: &mut RtIo<'_, '_>) {
        self.inner.on_init(io);
    }

    fn on_cycle(&mut self, io: &mut RtIo<'_, '_>) {
        let cycle = io.cycle();
        let faults = self.plan.faults_at(cycle).to_vec();
        let mut run_inner = true;
        for fault in &faults {
            match fault {
                FaultKind::Spike(extra) => {
                    self.log.borrow_mut().spikes += 1;
                    io.compute(*extra);
                }
                FaultKind::DropCycle => {
                    self.log.borrow_mut().drops += 1;
                    run_inner = false;
                }
                _ => {}
            }
        }
        if run_inner {
            self.inner.on_cycle(io);
        }
        for fault in &faults {
            match fault {
                FaultKind::CorruptPort { port, bytes } => {
                    self.log.borrow_mut().corruptions += 1;
                    let garbage: Vec<u8> = (0..*bytes).map(|_| self.rng.next_u64() as u8).collect();
                    let _ = io.write(port, &garbage);
                }
                FaultKind::BridgeStall(dur) => {
                    self.log.borrow_mut().stalls += 1;
                    io.compute(*dur);
                }
                _ => {}
            }
        }
        // Panics last: spikes and corruption already landed, and the panic
        // unwinds out through the kernel's containment.
        if faults.contains(&FaultKind::Panic) {
            self.log.borrow_mut().panics += 1;
            panic!("injected fault at cycle {cycle}");
        }
    }

    fn on_property_changed(&mut self, name: &str, value: &PropertyValue) {
        self.inner.on_property_changed(name, value);
    }
}

// ---------------------------------------------------------------------
// Node-level faults (federation)
// ---------------------------------------------------------------------

/// One injectable fault at federation level — a whole node or the bridge
/// fabric between nodes, rather than a single component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// Hard-kill a node: its kernel stops advancing mid-run and every
    /// component it hosted is displaced.
    Crash {
        /// The node to kill.
        node: u32,
    },
    /// Cut a set of nodes off from the hub (and from every node outside
    /// the set): messages in either direction stop arriving until a
    /// [`NodeFaultKind::Heal`].
    Partition {
        /// The isolated (minority) node set.
        isolated: Vec<u32>,
    },
    /// Heal the active partition.
    Heal,
}

/// Per-message loss/latency probabilities for the inter-node bridge
/// links, applied uniformly to every link (acks included, so the
/// at-least-once retry and receiver dedup paths are genuinely exercised).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRates {
    /// Probability that a message transmission is lost.
    pub drop: f64,
    /// Probability that a surviving transmission is delayed.
    pub delay: f64,
    /// Delay magnitude range in federation ticks (uniform, inclusive
    /// lower bound).
    pub delay_ticks: (u64, u64),
}

impl Default for LinkRates {
    fn default() -> Self {
        LinkRates {
            drop: 0.0,
            delay: 0.0,
            delay_ticks: (1, 3),
        }
    }
}

/// A deterministic schedule of node/link faults keyed on federation tick,
/// extending [`FaultPlan`] one layer up: same seeded, pure-function
/// construction, but the unit of failure is a node or the bridge fabric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeFaultPlan {
    seed: u64,
    events: BTreeMap<u64, Vec<NodeFaultKind>>,
    rates: LinkRates,
}

impl NodeFaultPlan {
    /// An empty plan; `seed` drives per-link drop/delay draws.
    pub fn new(seed: u64) -> Self {
        NodeFaultPlan {
            seed,
            events: BTreeMap::new(),
            rates: LinkRates::default(),
        }
    }

    /// Adds one fault at one tick (chainable; same-tick faults fire in
    /// insertion order).
    pub fn at(mut self, tick: u64, kind: NodeFaultKind) -> Self {
        self.events.entry(tick).or_default().push(kind);
        self
    }

    /// Sets the per-message link loss/latency rates.
    pub fn with_link_rates(mut self, rates: LinkRates) -> Self {
        self.rates = rates;
        self
    }

    /// The seed driving link-level randomness.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-message link rates.
    pub fn rates(&self) -> &LinkRates {
        &self.rates
    }

    /// The faults declared for one tick.
    pub fn events_at(&self, tick: u64) -> &[NodeFaultKind] {
        self.events.get(&tick).map_or(&[], |v| v.as_slice())
    }

    /// Total declared faults.
    pub fn total(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// Ticks that carry at least one fault, ascending.
    pub fn ticks(&self) -> impl Iterator<Item = u64> + '_ {
        self.events.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plans_answer_per_cycle_lookups() {
        let plan = FaultPlan::new(7)
            .at(3, FaultKind::Panic)
            .at(3, FaultKind::Spike(SimDuration::from_micros(10)))
            .at(9, FaultKind::DropCycle);
        assert_eq!(plan.total(), 3);
        assert_eq!(plan.faults_at(3).len(), 2);
        assert_eq!(plan.faults_at(9), &[FaultKind::DropCycle]);
        assert!(plan.faults_at(4).is_empty());
        assert_eq!(plan.cycles().collect::<Vec<_>>(), vec![3, 9]);
    }

    #[test]
    fn storms_are_deterministic_in_the_seed() {
        let rates = StormRates {
            panic: 0.01,
            spike: 0.05,
            drop: 0.02,
            corrupt: 0.03,
            corrupt_port: Some(("outdat".into(), 4)),
            stall: 0.01,
            ..StormRates::default()
        };
        let a = FaultPlan::storm(0xABCD, 2_000, &rates);
        let b = FaultPlan::storm(0xABCD, 2_000, &rates);
        let c = FaultPlan::storm(0xABCE, 2_000, &rates);
        assert_eq!(a.faults, b.faults);
        assert_ne!(a.faults, c.faults);
        assert!(a.total() > 0, "storm injected nothing");
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::storm(1, 10_000, &StormRates::default());
        assert_eq!(plan.total(), 0);
    }

    #[test]
    fn lying_plans_spike_every_cycle_deterministically() {
        let a = FaultPlan::lying(0x11AB, 500, (200_000, 900_000));
        let b = FaultPlan::lying(0x11AB, 500, (200_000, 900_000));
        let c = FaultPlan::lying(0x11AC, 500, (200_000, 900_000));
        assert_eq!(a.faults, b.faults);
        assert_ne!(a.faults, c.faults);
        assert_eq!(a.total(), 500, "one spike per cycle");
        for cycle in 0..500 {
            match a.faults_at(cycle) {
                [FaultKind::Spike(d)] => {
                    assert!((200_000..900_000).contains(&d.as_nanos()));
                }
                other => panic!("cycle {cycle}: expected one spike, got {other:?}"),
            }
        }
    }

    #[test]
    fn node_plans_answer_per_tick_lookups() {
        let plan = NodeFaultPlan::new(5)
            .at(4, NodeFaultKind::Crash { node: 2 })
            .at(
                4,
                NodeFaultKind::Partition {
                    isolated: vec![0, 1],
                },
            )
            .at(9, NodeFaultKind::Heal)
            .with_link_rates(LinkRates {
                drop: 0.1,
                ..LinkRates::default()
            });
        assert_eq!(plan.total(), 3);
        assert_eq!(plan.events_at(4).len(), 2);
        assert_eq!(plan.events_at(9), &[NodeFaultKind::Heal]);
        assert!(plan.events_at(5).is_empty());
        assert_eq!(plan.ticks().collect::<Vec<_>>(), vec![4, 9]);
        assert_eq!(plan.seed(), 5);
        assert!((plan.rates().drop - 0.1).abs() < 1e-12);
    }
}
