//! `DrtRuntime`: the assembled split-container system (paper Figure 3).
//!
//! One object wiring the three layers together: the [`rtos`] kernel (the
//! RTAI side), the [`osgi`] framework (the Java side), and the shared
//! [`Drcr`] executive in between. This is the entry point examples and
//! benches use:
//!
//! ```
//! use drcom::prelude::*;
//! use rtos::kernel::KernelConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rt = DrtRuntime::new(KernelConfig::new(42));
//! let descriptor = ComponentDescriptor::builder("blink")
//!     .periodic(10, 0, 2)
//!     .cpu_usage(0.01)
//!     .build()?;
//! rt.install_component(
//!     "demo.blink",
//!     ComponentProvider::new(descriptor, || {
//!         Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
//!             io.compute(SimDuration::from_micros(100));
//!         }))
//!     }),
//! )?;
//! rt.advance(SimDuration::from_secs(1));
//! assert_eq!(rt.component_state("blink"), Some(ComponentState::Active));
//! # Ok(())
//! # }
//! ```
//!
//! The runtime executes on the kernel's serial event loop — the semantics
//! the [`rtos::exec::DeterministicExecutor`] reproduces. To run an
//! already-admitted fleet across worker threads (one per simulated-CPU
//! group) instead, lower its descriptors through
//! [`crate::parallel::FleetBridge`] and hand the resulting workload to
//! [`rtos::exec::ParallelExecutor`]; the kernel's linearization guarantee
//! makes the two paths observably equivalent on quiescent fleets.

use crate::drcr::{ComponentProvider, Drcr, COMPONENT_SERVICE, PROP_COMPONENT_NAME};
use crate::error::DrcrError;
use crate::lifecycle::ComponentState;
use crate::manage::{
    ComponentControl, ManagementHandle, RtComponentManagement, MANAGEMENT_SERVICE,
};
use crate::resolve::{ResolverHandle, ResolvingService, RESOLVER_SERVICE};
use osgi::event::BundleId;
use osgi::framework::{BundleActivator, BundleContext, Framework, FrameworkError};
use osgi::ldap::{Filter, Properties};
use osgi::manifest::BundleManifest;
use osgi::registry::ServiceId;
use osgi::version::Version;
use rtos::kernel::{Kernel, KernelConfig};
use rtos::time::SimDuration;
use std::cell::{Ref, RefCell, RefMut};
use std::fmt;
use std::rc::Rc;

/// The bundle activator that publishes a [`ComponentProvider`] into the
/// service registry when its bundle starts — the DRCR picks it up from the
/// `Registered` service event, exactly as the paper's DRCR parses bundle
/// meta-data on deployment.
pub struct DrcomActivator {
    provider: Rc<ComponentProvider>,
}

impl fmt::Debug for DrcomActivator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DrcomActivator({})", self.provider.descriptor().name)
    }
}

impl DrcomActivator {
    /// Wraps a provider for deployment.
    pub fn new(provider: ComponentProvider) -> Self {
        DrcomActivator {
            provider: Rc::new(provider),
        }
    }
}

impl BundleActivator for DrcomActivator {
    fn start(&mut self, ctx: &mut BundleContext<'_>) -> Result<(), String> {
        let d = self.provider.descriptor();
        let props = Properties::new()
            .with(PROP_COMPONENT_NAME, d.name.as_str())
            .with(
                "drt.type",
                if d.task.is_periodic() {
                    "periodic"
                } else {
                    "aperiodic"
                },
            )
            .with("drt.cpuusage", d.cpu_usage.fraction())
            .with("drt.enabled", d.enabled);
        ctx.register_service(&[COMPONENT_SERVICE], self.provider.clone(), props);
        Ok(())
    }
    // stop: the framework unregisters the provider service, which the DRCR
    // observes as the component's departure.
}

/// The assembled system. See the [module docs](self).
pub struct DrtRuntime {
    framework: Framework,
    kernel: Rc<RefCell<Kernel>>,
    drcr: Rc<RefCell<Drcr>>,
}

impl fmt::Debug for DrtRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DrtRuntime")
            .field("framework", &self.framework)
            .field("drcr", &*self.drcr.borrow())
            .finish()
    }
}

impl DrtRuntime {
    /// Boots the split container with the default internal resolver.
    pub fn new(kernel_config: KernelConfig) -> Self {
        let kernel = Rc::new(RefCell::new(Kernel::new(kernel_config)));
        let drcr = Drcr::new_shared(kernel.clone());
        DrtRuntime {
            framework: Framework::new(),
            kernel,
            drcr,
        }
    }

    /// Boots with a custom internal resolving service.
    pub fn with_resolver(kernel_config: KernelConfig, internal: Box<dyn ResolvingService>) -> Self {
        let kernel = Rc::new(RefCell::new(Kernel::new(kernel_config)));
        let drcr = Drcr::with_resolver(kernel.clone(), internal);
        DrtRuntime {
            framework: Framework::new(),
            kernel,
            drcr,
        }
    }

    /// The OSGi framework.
    pub fn framework(&self) -> &Framework {
        &self.framework
    }

    /// The OSGi framework, mutably (install your own bundles, query the
    /// registry). Call [`DrtRuntime::process`] afterwards so the DRCR sees
    /// the events.
    pub fn framework_mut(&mut self) -> &mut Framework {
        &mut self.framework
    }

    /// Immutable view of the kernel.
    pub fn kernel(&self) -> Ref<'_, Kernel> {
        self.kernel.borrow()
    }

    /// Mutable access to the kernel (e.g. to apply load).
    pub fn kernel_mut(&self) -> RefMut<'_, Kernel> {
        self.kernel.borrow_mut()
    }

    /// A shared handle to the kernel.
    pub fn kernel_handle(&self) -> Rc<RefCell<Kernel>> {
        self.kernel.clone()
    }

    /// The shared DRCR executive.
    pub fn drcr(&self) -> Ref<'_, Drcr> {
        self.drcr.borrow()
    }

    /// The shared DRCR executive, mutably.
    pub fn drcr_mut(&self) -> RefMut<'_, Drcr> {
        self.drcr.borrow_mut()
    }

    /// Selects how the executive checks functional constraints
    /// (differential-testing and benchmarking hook).
    pub fn set_resolution_strategy(&mut self, strategy: crate::drcr::ResolutionStrategy) {
        self.drcr.borrow_mut().set_resolution_strategy(strategy);
    }

    /// Tunes the response-time analysis backing
    /// [`ResolutionStrategy::ResponseTime`](crate::drcr::ResolutionStrategy);
    /// see [`crate::rta::RtaParams`].
    pub fn set_rta_params(&mut self, params: crate::rta::RtaParams) {
        self.drcr.borrow_mut().set_rta_params(params);
    }

    /// Sets one component's supervision config (restart policy plus
    /// optional flap-quarantine window); see [`crate::supervise`].
    pub fn set_supervision(&mut self, name: &str, config: crate::supervise::SupervisionConfig) {
        self.drcr.borrow_mut().set_supervision(name, config);
    }

    /// Sets the supervision config applied to components without their own.
    pub fn set_default_supervision(&mut self, config: crate::supervise::SupervisionConfig) {
        self.drcr.borrow_mut().set_default_supervision(config);
    }

    /// Quarantines a component through the supervisor (the shared reaction
    /// path of fault supervision and contract enforcement) and re-resolves.
    ///
    /// # Errors
    ///
    /// Propagates [`DrcrError`] from the underlying disable.
    pub fn quarantine_component(&mut self, name: &str, reason: &str) -> Result<(), DrcrError> {
        self.drcr
            .borrow_mut()
            .quarantine_component(name, &mut self.framework, reason)?;
        self.process();
        Ok(())
    }

    /// Re-writes a component's CPU claim to a measured value and
    /// re-resolves — the stochastic-contract refinement loop (see
    /// [`crate::contracts`] and [`crate::drcr::Drcr::refine_claim`]).
    ///
    /// # Errors
    ///
    /// Propagates [`DrcrError`] from the underlying contract rewrite.
    pub fn refine_claim(
        &mut self,
        name: &str,
        refined: f64,
        samples: u64,
    ) -> Result<(), DrcrError> {
        self.drcr
            .borrow_mut()
            .refine_claim(name, refined, samples, &mut self.framework)?;
        self.process();
        Ok(())
    }

    /// Installs and starts a bundle carrying one declarative component,
    /// then lets the DRCR resolve.
    ///
    /// # Errors
    ///
    /// Propagates framework install/start failures.
    pub fn install_component(
        &mut self,
        bundle_symbolic_name: &str,
        provider: ComponentProvider,
    ) -> Result<BundleId, FrameworkError> {
        let manifest = BundleManifest::new(bundle_symbolic_name, Version::new(1, 0, 0));
        let bundle = self
            .framework
            .install(manifest, Box::new(DrcomActivator::new(provider)))?;
        self.framework.start(bundle)?;
        self.process();
        Ok(bundle)
    }

    /// Installs and starts a wave of component bundles, then resolves
    /// **once**: all arrivals land in the same resolve round. Under
    /// [`DrtRuntime::set_batched_admission`] the whole wave is admitted in
    /// a single batched analysis pass (one response-time fixed-point per
    /// CPU) instead of one pass per component.
    ///
    /// # Errors
    ///
    /// Propagates framework install/start failures. Bundles installed
    /// before a failure stay installed; the next resolve picks them up.
    pub fn install_components<S: AsRef<str>>(
        &mut self,
        components: impl IntoIterator<Item = (S, ComponentProvider)>,
    ) -> Result<Vec<BundleId>, FrameworkError> {
        let mut bundles = Vec::new();
        for (name, provider) in components {
            let manifest = BundleManifest::new(name.as_ref(), Version::new(1, 0, 0));
            let bundle = self
                .framework
                .install(manifest, Box::new(DrcomActivator::new(provider)))?;
            self.framework.start(bundle)?;
            bundles.push(bundle);
        }
        self.process();
        Ok(bundles)
    }

    /// Enables or disables batched admission of arrival waves; see
    /// [`crate::drcr::Drcr::set_batched_admission`] for semantics and the
    /// event-attribution differences of the batched path.
    pub fn set_batched_admission(&mut self, on: bool) {
        self.drcr.borrow_mut().set_batched_admission(on);
    }

    /// Stops a component bundle (the paper's "component Calculation is
    /// stopped" scenario step), then lets the DRCR cascade.
    ///
    /// # Errors
    ///
    /// Propagates framework stop failures.
    pub fn stop_bundle(&mut self, bundle: BundleId) -> Result<(), FrameworkError> {
        self.framework.stop(bundle)?;
        self.process();
        Ok(())
    }

    /// Restarts a stopped component bundle.
    ///
    /// # Errors
    ///
    /// Propagates framework start failures.
    pub fn start_bundle(&mut self, bundle: BundleId) -> Result<(), FrameworkError> {
        self.framework.start(bundle)?;
        self.process();
        Ok(())
    }

    /// Uninstalls a component bundle.
    ///
    /// # Errors
    ///
    /// Propagates framework uninstall failures.
    pub fn uninstall_bundle(&mut self, bundle: BundleId) -> Result<(), FrameworkError> {
        self.framework.uninstall(bundle)?;
        self.process();
        Ok(())
    }

    /// Registers a customized resolving service (§2.2's "resolving service
    /// … plugged into the DRCR runtime by using OSGi service model") and
    /// re-resolves.
    pub fn register_resolver(&mut self, resolver: Rc<dyn ResolvingService>) -> ServiceId {
        let name = resolver.name().to_string();
        let id = self.framework.registry_mut().register(
            &[RESOLVER_SERVICE],
            Rc::new(ResolverHandle(resolver)),
            Properties::new().with("drt.resolver.name", name.as_str()),
        );
        self.process();
        id
    }

    /// Removes a customized resolving service and re-resolves.
    pub fn unregister_resolver(&mut self, id: ServiceId) {
        self.framework.registry_mut().unregister(id);
        self.process();
    }

    /// Drains framework events into the DRCR and resolves to a fixpoint.
    pub fn process(&mut self) {
        self.drcr.borrow_mut().process(&mut self.framework);
    }

    /// Advances virtual time, processing DRCR work before and after.
    pub fn advance(&mut self, span: SimDuration) {
        self.process();
        self.kernel.borrow_mut().run_for(span);
        self.process();
    }

    /// Current lifecycle state of a component.
    pub fn component_state(&self, name: &str) -> Option<ComponentState> {
        self.drcr.borrow().state_of(name)
    }

    /// Looks up the management service of a component, the way an external
    /// adaptation manager would: through the service registry with an LDAP
    /// filter on the component name.
    pub fn management(&self, name: &str) -> Option<Rc<dyn RtComponentManagement>> {
        let filter = Filter::parse(&format!("({PROP_COMPONENT_NAME}={name})")).ok()?;
        let service_ref = self
            .framework
            .registry()
            .find_one(MANAGEMENT_SERVICE, Some(&filter))?;
        let handle = self
            .framework
            .registry()
            .get::<ManagementHandle>(service_ref.id())?;
        Some(handle.0.clone())
    }

    /// A deterministic metrics snapshot covering all three layers: the
    /// executive's own series (resolve rounds, admission utilization,
    /// bridge latency) merged with kernel-derived series (per-component
    /// scheduling latency, per-CPU real-time utilization, trace volume).
    pub fn metrics_report(&self) -> crate::obs::MetricsReport {
        let drcr = self.drcr.borrow();
        let mut metrics = drcr.metrics().clone();
        let kernel = self.kernel.borrow();
        for name in drcr.component_names() {
            let Some(task) = drcr.task_of(&name) else {
                continue;
            };
            let Some(stats) = kernel.task_stats(task) else {
                continue;
            };
            if stats.is_empty() {
                continue;
            }
            metrics.gauge(&format!("sched.{name}.latency.avg_ns"), stats.average());
            metrics.gauge(&format!("sched.{name}.latency.avedev_ns"), stats.avedev());
            metrics.gauge(
                &format!("sched.{name}.latency.max_ns"),
                stats.max().unwrap_or(0) as f64,
            );
            metrics.count(&format!("sched.{name}.cycles"), stats.count() as u64);
        }
        for cpu in 0..kernel.cpu_count() {
            metrics.gauge(
                &format!("kernel.cpu{cpu}.rt_utilization"),
                kernel.cpu_rt_utilization(cpu),
            );
        }
        metrics.count("kernel.trace.recorded", kernel.trace().total_recorded());
        metrics.count("kernel.trace.dropped", kernel.trace().dropped());
        metrics.snapshot()
    }

    /// Posts a message into a named mailbox from outside the RT domain,
    /// waking any event-driven components bound to it. Returns `false`
    /// when the mailbox was full.
    ///
    /// # Errors
    ///
    /// Propagates [`DrcrError`] for unknown mailboxes.
    pub fn post(&mut self, mailbox: &str, msg: &[u8]) -> Result<bool, DrcrError> {
        self.kernel
            .borrow_mut()
            .post(mailbox, msg)
            .map_err(|e| DrcrError::Kernel(e.to_string()))
    }
}

/// The container's side of the unified control surface: every operation
/// delegates to the DRCR (which owns the mechanics and the global view),
/// then runs [`DrtRuntime::process`] so the system re-resolves immediately.
impl ComponentControl for DrtRuntime {
    fn suspend_component(&mut self, name: &str) -> Result<(), DrcrError> {
        self.drcr.borrow_mut().suspend_component(name)?;
        self.process();
        Ok(())
    }

    fn resume_component(&mut self, name: &str) -> Result<(), DrcrError> {
        self.drcr.borrow_mut().resume_component(name)?;
        self.process();
        Ok(())
    }

    fn disable_component(&mut self, name: &str) -> Result<(), DrcrError> {
        self.drcr
            .borrow_mut()
            .disable_component(name, &mut self.framework)?;
        self.process();
        Ok(())
    }

    fn enable_component(&mut self, name: &str) -> Result<(), DrcrError> {
        self.drcr.borrow_mut().enable_component(name)?;
        self.process();
        Ok(())
    }

    fn switch_mode(&mut self, name: &str, mode: &str) -> Result<(), DrcrError> {
        self.drcr
            .borrow_mut()
            .switch_mode(name, mode, &mut self.framework)?;
        self.process();
        Ok(())
    }

    fn trigger_component(&mut self, name: &str) -> Result<(), DrcrError> {
        self.drcr.borrow_mut().trigger_component(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::ComponentDescriptor;
    use crate::hybrid::{FnLogic, RtIo};
    use crate::model::{PortInterface, PropertyValue};
    use crate::resolve::AlwaysReject;
    use rtos::latency::TimerJitterModel;
    use rtos::shm::DataType;

    fn runtime() -> DrtRuntime {
        DrtRuntime::new(KernelConfig::new(99).with_timer(TimerJitterModel::ideal()))
    }

    fn calc_provider() -> ComponentProvider {
        let descriptor = ComponentDescriptor::builder("calc")
            .periodic(1000, 0, 2)
            .cpu_usage(0.2)
            .outport("latdat", PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(descriptor, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let v = (io.cycle() as i32).to_le_bytes();
                io.compute(SimDuration::from_micros(50));
                io.write("latdat", &v).unwrap();
            }))
        })
    }

    fn disp_provider() -> ComponentProvider {
        let descriptor = ComponentDescriptor::builder("disp")
            .periodic(4, 0, 5)
            .cpu_usage(0.05)
            .inport("latdat", PortInterface::Shm, DataType::Integer, 1)
            .build()
            .unwrap();
        ComponentProvider::new(descriptor, || {
            Box::new(FnLogic(|io: &mut RtIo<'_, '_>| {
                let _ = io.read("latdat").unwrap();
                io.compute(SimDuration::from_micros(20));
            }))
        })
    }

    #[test]
    fn standalone_component_activates_and_runs() {
        let mut rt = runtime();
        rt.install_component("demo.calc", calc_provider()).unwrap();
        assert_eq!(rt.component_state("calc"), Some(ComponentState::Active));
        rt.advance(SimDuration::from_millis(10));
        let task = rt.drcr().task_of("calc").unwrap();
        assert!(rt.kernel().task_cycles(task).unwrap() >= 9);
        // The outport exists as a SHM segment.
        assert!(rt.kernel().shm().get("latdat").is_some());
    }

    #[test]
    fn dependent_component_waits_for_provider() {
        // The §4.3 scenario, forward direction.
        let mut rt = runtime();
        rt.install_component("demo.disp", disp_provider()).unwrap();
        assert_eq!(
            rt.component_state("disp"),
            Some(ComponentState::Unsatisfied)
        );
        rt.install_component("demo.calc", calc_provider()).unwrap();
        assert_eq!(rt.component_state("disp"), Some(ComponentState::Active));
        assert_eq!(
            rt.drcr().providers_of("disp").unwrap(),
            &[("latdat".to_string(), "calc".to_string())]
        );
    }

    #[test]
    fn stopping_provider_cascades_to_consumer() {
        // The §4.3 scenario, reverse direction.
        let mut rt = runtime();
        let calc_bundle = rt.install_component("demo.calc", calc_provider()).unwrap();
        rt.install_component("demo.disp", disp_provider()).unwrap();
        rt.advance(SimDuration::from_millis(5));
        assert_eq!(rt.component_state("disp"), Some(ComponentState::Active));
        rt.stop_bundle(calc_bundle).unwrap();
        // calc's provider service vanished -> component destroyed -> disp
        // unsatisfied.
        assert_eq!(rt.component_state("calc"), None);
        assert_eq!(
            rt.component_state("disp"),
            Some(ComponentState::Unsatisfied)
        );
        // Admission released.
        assert!(rt.drcr().ledger().is_empty());
        // Restarting the provider re-activates the consumer automatically.
        rt.start_bundle(calc_bundle).unwrap();
        assert_eq!(rt.component_state("disp"), Some(ComponentState::Active));
    }

    #[test]
    fn customized_resolver_vetoes_activation() {
        let mut rt = runtime();
        let veto = rt.register_resolver(Rc::new(AlwaysReject("maintenance window".into())));
        rt.install_component("demo.calc", calc_provider()).unwrap();
        assert_eq!(
            rt.component_state("calc"),
            Some(ComponentState::Unsatisfied)
        );
        assert!(rt.drcr().admission_verdicts().any(|e| matches!(
            &e.event,
            crate::obs::DrcrEvent::AdmissionVerdict {
                internal: false,
                admitted: false,
                reason,
                ..
            } if reason.contains("maintenance window")
        )));
        // Removing the resolver re-resolves and admits.
        rt.unregister_resolver(veto);
        assert_eq!(rt.component_state("calc"), Some(ComponentState::Active));
    }

    #[test]
    fn utilization_admission_blocks_overload_and_recovers() {
        let mut rt = runtime();
        let mk = |name: &str, usage: f64| {
            let d = ComponentDescriptor::builder(name)
                .periodic(100, 0, 3)
                .cpu_usage(usage)
                .build()
                .unwrap();
            ComponentProvider::new(d, || Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {})))
        };
        let big = rt.install_component("demo.big", mk("big", 0.7)).unwrap();
        rt.install_component("demo.mid", mk("mid", 0.4)).unwrap();
        assert_eq!(rt.component_state("big"), Some(ComponentState::Active));
        // 0.7 + 0.4 > 1.0: mid must wait.
        assert_eq!(rt.component_state("mid"), Some(ComponentState::Unsatisfied));
        // When big leaves, mid gets in.
        rt.stop_bundle(big).unwrap();
        assert_eq!(rt.component_state("mid"), Some(ComponentState::Active));
    }

    #[test]
    fn management_suspend_resume_roundtrip() {
        let mut rt = runtime();
        rt.install_component("demo.calc", calc_provider()).unwrap();
        rt.advance(SimDuration::from_millis(5));
        let mgmt = rt.management("calc").unwrap();
        assert_eq!(mgmt.state(), ComponentState::Active);
        mgmt.suspend().unwrap();
        rt.process();
        assert_eq!(rt.component_state("calc"), Some(ComponentState::Suspended));
        // Reservation kept while suspended.
        assert_eq!(rt.drcr().ledger().reservation("calc"), Some((0, 0.2)));
        let task = rt.drcr().task_of("calc").unwrap();
        // A cycle in flight at suspend time completes (suspend takes effect
        // at cycle end, §3.2); after that the count freezes.
        rt.advance(SimDuration::from_millis(10));
        let frozen = rt.kernel().task_cycles(task).unwrap();
        rt.advance(SimDuration::from_millis(10));
        assert_eq!(rt.kernel().task_cycles(task).unwrap(), frozen);
        mgmt.resume().unwrap();
        rt.advance(SimDuration::from_millis(10));
        assert!(rt.kernel().task_cycles(task).unwrap() > frozen);
    }

    #[test]
    fn suspending_provider_unsatisfies_consumer() {
        let mut rt = runtime();
        rt.install_component("demo.calc", calc_provider()).unwrap();
        rt.install_component("demo.disp", disp_provider()).unwrap();
        rt.suspend_component("calc").unwrap();
        assert_eq!(
            rt.component_state("disp"),
            Some(ComponentState::Unsatisfied)
        );
        rt.resume_component("calc").unwrap();
        assert_eq!(rt.component_state("disp"), Some(ComponentState::Active));
    }

    #[test]
    fn async_property_roundtrip_over_the_bridge() {
        let mut rt = runtime();
        let descriptor = ComponentDescriptor::builder("gainer")
            .periodic(1000, 0, 2)
            .cpu_usage(0.1)
            .property("gain", PropertyValue::Integer(1))
            .build()
            .unwrap();
        rt.install_component(
            "demo.gainer",
            ComponentProvider::new(descriptor, || {
                Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
            }),
        )
        .unwrap();
        let mgmt = rt.management("gainer").unwrap();

        // Read the initial value asynchronously.
        let token = mgmt.request_property("gain").unwrap();
        // Not answered before the RT task has cycled.
        assert_eq!(mgmt.poll_reply(token).unwrap(), None);
        rt.advance(SimDuration::from_millis(2));
        let mgmt = rt.management("gainer").unwrap();
        assert_eq!(
            mgmt.poll_reply(token).unwrap(),
            Some(crate::manage::ManagementReply::Property {
                name: "gain".into(),
                value: Some(PropertyValue::Integer(1)),
            })
        );

        // Replace it, then read it back.
        mgmt.set_property("gain", PropertyValue::Integer(7))
            .unwrap();
        rt.advance(SimDuration::from_millis(2));
        let token = mgmt.request_property("gain").unwrap();
        rt.advance(SimDuration::from_millis(2));
        match mgmt.poll_reply(token).unwrap() {
            Some(crate::manage::ManagementReply::Property { value, .. }) => {
                assert_eq!(value, Some(PropertyValue::Integer(7)));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn status_query_reports_cycles() {
        let mut rt = runtime();
        rt.install_component("demo.calc", calc_provider()).unwrap();
        rt.advance(SimDuration::from_millis(10));
        let mgmt = rt.management("calc").unwrap();
        let token = mgmt.request_status().unwrap();
        rt.advance(SimDuration::from_millis(2));
        match mgmt.poll_reply(token).unwrap() {
            Some(crate::manage::ManagementReply::Status { cycles, .. }) => {
                assert!(cycles >= 10, "cycles {cycles}");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn disabled_component_ignores_resolution_until_enabled() {
        let mut rt = runtime();
        let descriptor = ComponentDescriptor::builder("idle")
            .periodic(10, 0, 2)
            .cpu_usage(0.1)
            .enabled(false)
            .build()
            .unwrap();
        rt.install_component(
            "demo.idle",
            ComponentProvider::new(descriptor, || {
                Box::new(FnLogic(|_io: &mut RtIo<'_, '_>| {}))
            }),
        )
        .unwrap();
        assert_eq!(rt.component_state("idle"), Some(ComponentState::Disabled));
        rt.enable_component("idle").unwrap();
        assert_eq!(rt.component_state("idle"), Some(ComponentState::Active));
        // And back to disabled, tearing the task down.
        rt.disable_component("idle").unwrap();
        assert_eq!(rt.component_state("idle"), Some(ComponentState::Disabled));
        assert!(rt.drcr().ledger().is_empty());
    }

    #[test]
    fn transition_log_tells_the_story() {
        let mut rt = runtime();
        let calc_bundle = rt.install_component("demo.calc", calc_provider()).unwrap();
        rt.install_component("demo.disp", disp_provider()).unwrap();
        rt.stop_bundle(calc_bundle).unwrap();
        let log: Vec<String> = rt
            .drcr()
            .transitions()
            .iter()
            .map(|t| t.to_string())
            .collect();
        assert!(log
            .iter()
            .any(|l| l.contains("calc: INSTALLED -> UNSATISFIED")));
        assert!(log
            .iter()
            .any(|l| l.contains("calc: UNSATISFIED -> ACTIVE")));
        assert!(log
            .iter()
            .any(|l| l.contains("disp: UNSATISFIED -> ACTIVE")));
        assert!(log
            .iter()
            .any(|l| l.contains("disp: ACTIVE -> UNSATISFIED")));
        assert!(log.iter().any(|l| l.contains("calc: ACTIVE -> DESTROYED")));
    }
}
