//! Core data model of the declarative real-time component (DRCom).
//!
//! These types are the in-memory form of the XML descriptor of §2.3: the
//! task contract (type, priority, frequency, CPU placement, claimed CPU
//! usage), the communication ports, and typed configuration properties.

use rtos::shm::DataType;
use rtos::task::{ObjName, Priority};
use rtos::time::SimDuration;
use std::fmt;
use std::str::FromStr;

/// The real-time task contract of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSpec {
    /// A periodic task (`type="periodic"`).
    Periodic {
        /// Release frequency in Hz (`frequence` attribute).
        frequency_hz: u32,
        /// CPU the task is pinned to (`runoncup` attribute — sic, the
        /// paper's descriptor uses this spelling).
        cpu: u32,
        /// Fixed priority (lower is more urgent).
        priority: Priority,
    },
    /// An event-driven task (`type="aperiodic"`).
    Aperiodic {
        /// CPU the task is pinned to.
        cpu: u32,
        /// Fixed priority (lower is more urgent).
        priority: Priority,
    },
}

impl TaskSpec {
    /// The CPU the task runs on.
    pub fn cpu(&self) -> u32 {
        match self {
            TaskSpec::Periodic { cpu, .. } | TaskSpec::Aperiodic { cpu, .. } => *cpu,
        }
    }

    /// The task priority.
    pub fn priority(&self) -> Priority {
        match self {
            TaskSpec::Periodic { priority, .. } | TaskSpec::Aperiodic { priority, .. } => *priority,
        }
    }

    /// The period, if periodic.
    pub fn period(&self) -> Option<SimDuration> {
        match self {
            TaskSpec::Periodic { frequency_hz, .. } => {
                Some(SimDuration::from_hz(u64::from(*frequency_hz)))
            }
            TaskSpec::Aperiodic { .. } => None,
        }
    }

    /// True for periodic tasks.
    pub fn is_periodic(&self) -> bool {
        matches!(self, TaskSpec::Periodic { .. })
    }
}

/// The transport a port uses (`interface` attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortInterface {
    /// `RTAI.SHM` — last-value shared memory (periodic data flow).
    Shm,
    /// `RTAI.Mailbox` — queued messages (event flow).
    Mailbox,
    /// `RTAI.FIFO` — byte streams (extension beyond the paper's prototype;
    /// see `rtos::fifo`).
    Fifo,
}

impl fmt::Display for PortInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortInterface::Shm => write!(f, "RTAI.SHM"),
            PortInterface::Mailbox => write!(f, "RTAI.Mailbox"),
            PortInterface::Fifo => write!(f, "RTAI.FIFO"),
        }
    }
}

impl FromStr for PortInterface {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "RTAI.SHM" | "SHM" => Ok(PortInterface::Shm),
            "RTAI.MAILBOX" | "MAILBOX" => Ok(PortInterface::Mailbox),
            "RTAI.FIFO" | "FIFO" => Ok(PortInterface::Fifo),
            other => Err(format!("unknown port interface `{other}`")),
        }
    }
}

/// Direction of a port from the component's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Data the component requires (`inport`).
    In,
    /// Data the component provides (`outport`).
    Out,
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDirection::In => write!(f, "inport"),
            PortDirection::Out => write!(f, "outport"),
        }
    }
}

/// One communication port of a component.
///
/// Ports with equal `name`, `interface`, `data_type` and `size` are
/// compatible; an inport is wired to the outport sharing its name (§2.3:
/// "these attributes are used to determine the port compatibility between
/// the provided and required interfaces").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSpec {
    /// Channel name (6-character OS limit; also the SHM/mailbox name).
    pub name: ObjName,
    /// Transport.
    pub interface: PortInterface,
    /// Element type.
    pub data_type: DataType,
    /// Element count.
    pub size: usize,
}

impl PortSpec {
    /// Creates a port spec.
    ///
    /// # Errors
    ///
    /// Returns the name-validation error for invalid channel names.
    pub fn new(
        name: &str,
        interface: PortInterface,
        data_type: DataType,
        size: usize,
    ) -> Result<Self, rtos::NameError> {
        Ok(PortSpec {
            name: ObjName::new(name)?,
            interface,
            data_type,
            size,
        })
    }

    /// True when an outport of this shape satisfies an inport of `other`'s
    /// shape (all four attributes must agree).
    pub fn compatible_with(&self, other: &PortSpec) -> bool {
        self.name == other.name
            && self.interface == other.interface
            && self.data_type == other.data_type
            && self.size == other.size
    }

    /// Total size of the carried buffer in bytes.
    pub fn byte_len(&self) -> usize {
        self.data_type.element_size() * self.size
    }
}

/// A typed configuration property (the descriptor's `property` elements).
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyValue {
    /// `type="Integer"`.
    Integer(i64),
    /// `type="Float"`.
    Float(f64),
    /// `type="String"`.
    Text(String),
    /// `type="Boolean"`.
    Boolean(bool),
}

impl PropertyValue {
    /// Parses a value of the declared descriptor type.
    ///
    /// # Errors
    ///
    /// Describes the offending type name or unparsable value.
    pub fn parse_typed(type_name: &str, raw: &str) -> Result<Self, String> {
        match type_name.to_ascii_lowercase().as_str() {
            "integer" | "int" | "byte" => raw
                .trim()
                .parse::<i64>()
                .map(PropertyValue::Integer)
                .map_err(|_| format!("`{raw}` is not an integer")),
            "float" | "double" => raw
                .trim()
                .parse::<f64>()
                .map(PropertyValue::Float)
                .map_err(|_| format!("`{raw}` is not a float")),
            "string" => Ok(PropertyValue::Text(raw.to_string())),
            "boolean" | "bool" => raw
                .trim()
                .parse::<bool>()
                .map(PropertyValue::Boolean)
                .map_err(|_| format!("`{raw}` is not a boolean")),
            other => Err(format!("unknown property type `{other}`")),
        }
    }

    /// The descriptor type name of this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            PropertyValue::Integer(_) => "Integer",
            PropertyValue::Float(_) => "Float",
            PropertyValue::Text(_) => "String",
            PropertyValue::Boolean(_) => "Boolean",
        }
    }
}

impl fmt::Display for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyValue::Integer(i) => write!(f, "{i}"),
            PropertyValue::Float(x) => write!(f, "{x}"),
            PropertyValue::Text(s) => write!(f, "{s}"),
            PropertyValue::Boolean(b) => write!(f, "{b}"),
        }
    }
}

/// An alternate operating mode of a periodic component: a named variant of
/// its real-time contract (frequency, CPU claim, priority) that the DRCR
/// can switch to at run time — re-running admission for the new claim.
///
/// Modes extend the descriptor grammar with `<mode>` elements:
///
/// ```xml
/// <mode name="degraded" frequence="100" cpuusage="0.05" priority="2"/>
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingMode {
    /// Unique mode name within the component.
    pub name: String,
    /// Release frequency in this mode.
    pub frequency_hz: u32,
    /// CPU claim in this mode.
    pub cpu_usage: f64,
    /// Priority in this mode.
    pub priority: Priority,
}

/// The name of the implicit mode described by the base contract.
pub const BASE_MODE: &str = "normal";

/// The CPU fraction a component claims (`cpuusage` attribute), validated to
/// lie in `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct CpuUsage(f64);

impl CpuUsage {
    /// Validates and wraps a claimed CPU fraction.
    ///
    /// # Errors
    ///
    /// Rejects values outside `(0, 1]` and non-finite values.
    pub fn new(fraction: f64) -> Result<Self, String> {
        if !fraction.is_finite() || fraction <= 0.0 || fraction > 1.0 {
            return Err(format!("cpuusage must be in (0, 1], got {fraction}"));
        }
        Ok(CpuUsage(fraction))
    }

    /// The claimed fraction.
    pub fn fraction(self) -> f64 {
        self.0
    }
}

impl fmt::Display for CpuUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_spec_accessors() {
        let p = TaskSpec::Periodic {
            frequency_hz: 100,
            cpu: 1,
            priority: Priority(2),
        };
        assert_eq!(p.cpu(), 1);
        assert_eq!(p.priority(), Priority(2));
        assert_eq!(p.period(), Some(SimDuration::from_millis(10)));
        assert!(p.is_periodic());
        let a = TaskSpec::Aperiodic {
            cpu: 0,
            priority: Priority(5),
        };
        assert_eq!(a.period(), None);
        assert!(!a.is_periodic());
    }

    #[test]
    fn port_interface_parses_paper_spelling() {
        assert_eq!(
            "RTAI.SHM".parse::<PortInterface>().unwrap(),
            PortInterface::Shm
        );
        assert_eq!(
            "RTAI.Mailbox".parse::<PortInterface>().unwrap(),
            PortInterface::Mailbox
        );
        assert_eq!(
            "RTAI.FIFO".parse::<PortInterface>().unwrap(),
            PortInterface::Fifo
        );
        assert!("RTAI.PIPE".parse::<PortInterface>().is_err());
        assert_eq!(PortInterface::Shm.to_string(), "RTAI.SHM");
    }

    #[test]
    fn port_compatibility_needs_all_four_attributes() {
        let base = PortSpec::new("images", PortInterface::Shm, DataType::Byte, 400).unwrap();
        assert!(base.compatible_with(&base.clone()));
        let other_name = PortSpec::new("image2", PortInterface::Shm, DataType::Byte, 400).unwrap();
        let other_if =
            PortSpec::new("images", PortInterface::Mailbox, DataType::Byte, 400).unwrap();
        let other_ty = PortSpec::new("images", PortInterface::Shm, DataType::Integer, 400).unwrap();
        let other_sz = PortSpec::new("images", PortInterface::Shm, DataType::Byte, 401).unwrap();
        for p in [other_name, other_if, other_ty, other_sz] {
            assert!(!base.compatible_with(&p), "{p:?}");
        }
    }

    #[test]
    fn port_byte_len_scales_with_type() {
        let p = PortSpec::new("xysize", PortInterface::Shm, DataType::Integer, 400).unwrap();
        assert_eq!(p.byte_len(), 1600);
        let b = PortSpec::new("images", PortInterface::Shm, DataType::Byte, 400).unwrap();
        assert_eq!(b.byte_len(), 400);
    }

    #[test]
    fn property_parsing_by_declared_type() {
        assert_eq!(
            PropertyValue::parse_typed("Integer", "6").unwrap(),
            PropertyValue::Integer(6)
        );
        assert_eq!(
            PropertyValue::parse_typed("Float", "0.5").unwrap(),
            PropertyValue::Float(0.5)
        );
        assert_eq!(
            PropertyValue::parse_typed("String", "hi").unwrap(),
            PropertyValue::Text("hi".into())
        );
        assert_eq!(
            PropertyValue::parse_typed("Boolean", "true").unwrap(),
            PropertyValue::Boolean(true)
        );
        assert!(PropertyValue::parse_typed("Integer", "x").is_err());
        assert!(PropertyValue::parse_typed("Blob", "x").is_err());
    }

    #[test]
    fn cpu_usage_bounds() {
        assert!(CpuUsage::new(0.1).is_ok());
        assert!(CpuUsage::new(1.0).is_ok());
        for bad in [0.0, -0.1, 1.01, f64::NAN, f64::INFINITY] {
            assert!(CpuUsage::new(bad).is_err(), "{bad}");
        }
        assert_eq!(CpuUsage::new(0.25).unwrap().fraction(), 0.25);
    }
}
