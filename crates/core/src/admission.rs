//! The per-CPU admission ledger.
//!
//! The ledger is the DRCR's book-keeping of *reserved* CPU budget: a
//! component's claimed `cpuusage` is reserved when it activates and released
//! when it deactivates. The ledger records; [resolving
//! services](crate::resolve) decide — the split keeps admission *policy*
//! pluggable (paper §2.2: "the resource budget should be enforced by a
//! central scheme rather than by each single bundle") while the *accounting*
//! stays authoritative in one place.

use std::collections::BTreeMap;
use std::fmt;

/// A ledger accounting failure.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The component already holds a reservation.
    AlreadyReserved(String),
    /// The CPU does not exist.
    NoSuchCpu(u32),
    /// The usage claim is not a finite fraction in `(0, 1]`.
    InvalidUsage(f64),
    /// The component holds no reservation (release-twice or
    /// release-unknown — either is an accounting bug in the caller).
    NotReserved(String),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::AlreadyReserved(name) => {
                write!(f, "component `{name}` already holds a reservation")
            }
            LedgerError::NoSuchCpu(cpu) => write!(f, "no CPU {cpu}"),
            LedgerError::InvalidUsage(usage) => {
                write!(f, "usage claim {usage} outside (0, 1]")
            }
            LedgerError::NotReserved(name) => {
                write!(f, "component `{name}` holds no reservation")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// Per-CPU reserved-budget accounting. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct AdmissionLedger {
    cpu_count: u32,
    reservations: BTreeMap<String, (u32, f64)>,
}

impl AdmissionLedger {
    /// Creates a ledger for `cpu_count` CPUs.
    pub fn new(cpu_count: u32) -> Self {
        AdmissionLedger {
            cpu_count,
            reservations: BTreeMap::new(),
        }
    }

    /// Number of CPUs tracked.
    pub fn cpu_count(&self) -> u32 {
        self.cpu_count
    }

    /// Reserves `usage` of CPU `cpu` for `component`.
    ///
    /// # Errors
    ///
    /// [`LedgerError::AlreadyReserved`] / [`LedgerError::NoSuchCpu`] /
    /// [`LedgerError::InvalidUsage`].
    pub fn reserve(&mut self, component: &str, cpu: u32, usage: f64) -> Result<(), LedgerError> {
        if cpu >= self.cpu_count {
            return Err(LedgerError::NoSuchCpu(cpu));
        }
        // Same range `CpuUsage` enforces at parse time. Pluggable resolvers
        // feed this path too, and a single NaN reservation would poison
        // every later `utilization()` sum (NaN propagates, and every
        // `hypothetical > cap` comparison against NaN is false — everything
        // would be admitted from then on).
        if !usage.is_finite() || usage <= 0.0 || usage > 1.0 {
            return Err(LedgerError::InvalidUsage(usage));
        }
        if self.reservations.contains_key(component) {
            return Err(LedgerError::AlreadyReserved(component.to_string()));
        }
        self.reservations
            .insert(component.to_string(), (cpu, usage));
        Ok(())
    }

    /// Releases a component's reservation, returning the freed
    /// `(cpu, usage)`.
    ///
    /// # Errors
    ///
    /// [`LedgerError::NotReserved`] when the component holds no
    /// reservation — a release-twice or release-unknown is an accounting
    /// bug in the caller (before this guard a double release silently
    /// passed, masking per-CPU total corruption), so it is surfaced as a
    /// typed error instead of a silent no-op.
    pub fn release(&mut self, component: &str) -> Result<(u32, f64), LedgerError> {
        self.reservations
            .remove(component)
            .ok_or_else(|| LedgerError::NotReserved(component.to_string()))
    }

    /// Total reserved fraction on `cpu`.
    pub fn utilization(&self, cpu: u32) -> f64 {
        self.reservations
            .values()
            .filter(|(c, _)| *c == cpu)
            .map(|(_, u)| u)
            .sum()
    }

    /// The reservation held by a component.
    pub fn reservation(&self, component: &str) -> Option<(u32, f64)> {
        self.reservations.get(component).copied()
    }

    /// Number of live reservations.
    pub fn len(&self) -> usize {
        self.reservations.len()
    }

    /// True when nothing is reserved.
    pub fn is_empty(&self) -> bool {
        self.reservations.is_empty()
    }

    /// Iterates over `(component, cpu, usage)` reservations.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32, f64)> {
        self.reservations
            .iter()
            .map(|(name, (cpu, usage))| (name.as_str(), *cpu, *usage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_roundtrip() {
        let mut l = AdmissionLedger::new(2);
        l.reserve("calc", 0, 0.3).unwrap();
        l.reserve("disp", 0, 0.1).unwrap();
        l.reserve("cam", 1, 0.5).unwrap();
        assert!((l.utilization(0) - 0.4).abs() < 1e-9);
        assert!((l.utilization(1) - 0.5).abs() < 1e-9);
        assert_eq!(l.release("calc"), Ok((0, 0.3)));
        assert!((l.utilization(0) - 0.1).abs() < 1e-9);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn release_twice_and_release_unknown_are_typed_errors() {
        let mut l = AdmissionLedger::new(1);
        l.reserve("calc", 0, 0.3).unwrap();
        assert_eq!(l.release("calc"), Ok((0, 0.3)));
        // Second release of the same component: the reservation is gone.
        assert_eq!(
            l.release("calc"),
            Err(LedgerError::NotReserved("calc".into()))
        );
        // Release of a component that never reserved.
        assert_eq!(
            l.release("ghost"),
            Err(LedgerError::NotReserved("ghost".into()))
        );
        // Neither failed release disturbed the totals.
        assert_eq!(l.len(), 0);
        assert!((l.utilization(0)).abs() < 1e-12);
    }

    #[test]
    fn double_reserve_rejected() {
        let mut l = AdmissionLedger::new(1);
        l.reserve("calc", 0, 0.3).unwrap();
        assert_eq!(
            l.reserve("calc", 0, 0.1),
            Err(LedgerError::AlreadyReserved("calc".into()))
        );
    }

    #[test]
    fn bad_cpu_rejected() {
        let mut l = AdmissionLedger::new(1);
        assert_eq!(l.reserve("calc", 1, 0.1), Err(LedgerError::NoSuchCpu(1)));
    }

    #[test]
    fn invalid_usage_rejected_before_it_poisons_sums() {
        let mut l = AdmissionLedger::new(1);
        l.reserve("good", 0, 0.5).unwrap();
        for bad in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.1,
            0.0,
            1.0 + 1e-9,
        ] {
            let err = l.reserve("evil", 0, bad).unwrap_err();
            assert!(
                matches!(err, LedgerError::InvalidUsage(_)),
                "usage {bad} gave {err:?}"
            );
        }
        // The boundary itself is a legal full-CPU claim.
        let mut full = AdmissionLedger::new(1);
        full.reserve("whole", 0, 1.0).unwrap();
        // Sums stay finite and correct after the rejections.
        assert!((l.utilization(0) - 0.5).abs() < 1e-9);
        assert!(l.utilization(0).is_finite());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn reservation_lookup_and_iter() {
        let mut l = AdmissionLedger::new(4);
        assert!(l.is_empty());
        l.reserve("a", 2, 0.25).unwrap();
        assert_eq!(l.reservation("a"), Some((2, 0.25)));
        assert_eq!(l.reservation("b"), None);
        let all: Vec<_> = l.iter().collect();
        assert_eq!(all, vec![("a", 2, 0.25)]);
    }
}
